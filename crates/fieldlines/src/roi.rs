//! Region-of-interest tools (§3.3.3, Figure 6(h)–(i)).
//!
//! "One approach is to 'cut away' the data which is not in the region of
//! interest. While effective ... in other cases this could take away the
//! global context for the current region of interest. The other approach
//! is to leave the region of interest opaque while using transparency to
//! de-emphasize the remaining data."

use crate::line::FieldLine;
use accelviz_math::{Aabb, Vec3};

/// A region of interest.
#[derive(Clone, Copy, Debug)]
pub enum Region {
    /// A sphere.
    Sphere {
        /// Sphere center.
        center: Vec3,
        /// Sphere radius.
        radius: f64,
    },
    /// An axis-aligned box.
    Box(Aabb),
    /// The half space `p · normal >= offset` (the paper's "front half of
    /// the mesh has been removed" cutaways).
    HalfSpace {
        /// Plane normal.
        normal: Vec3,
        /// Plane offset along the normal.
        offset: f64,
    },
}

impl Region {
    /// `true` when the point is inside the region.
    pub fn contains(&self, p: Vec3) -> bool {
        match *self {
            Region::Sphere { center, radius } => p.distance(center) <= radius,
            Region::Box(b) => b.contains(p),
            Region::HalfSpace { normal, offset } => p.dot(normal) >= offset,
        }
    }

    /// Fraction of a line's points inside the region (0 for empty lines).
    pub fn coverage(&self, line: &FieldLine) -> f64 {
        if line.is_empty() {
            return 0.0;
        }
        let inside = line.points.iter().filter(|&&p| self.contains(p)).count();
        inside as f64 / line.len() as f64
    }
}

/// Cutaway (Figure 6(h)): keeps only the geometry inside the region,
/// *clipping* lines at the boundary — a line is split into the maximal
/// runs of consecutive inside points. Lines entirely outside vanish.
pub fn cutaway(lines: &[FieldLine], region: &Region) -> Vec<FieldLine> {
    let mut out = Vec::new();
    for line in lines {
        let mut run = FieldLine::new();
        for i in 0..line.len() {
            if region.contains(line.points[i]) {
                run.push(line.points[i], line.tangents[i], line.magnitudes[i]);
            } else if run.len() >= 2 {
                out.push(std::mem::take(&mut run));
            } else {
                run = FieldLine::new();
            }
        }
        if run.len() >= 2 {
            out.push(run);
        }
    }
    out
}

/// Focus + context (Figure 6(i)): per-line opacity multipliers — 1 for
/// lines touching the region of interest, `context_alpha` for the rest —
/// so "the interior structures can remain clear, and the global context
/// is not lost".
pub fn focus_alphas(lines: &[FieldLine], region: &Region, context_alpha: f32) -> Vec<f32> {
    lines
        .iter()
        .map(|l| {
            if region.coverage(l) > 0.0 {
                1.0
            } else {
                context_alpha
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_through(xs: &[f64]) -> FieldLine {
        let mut l = FieldLine::new();
        for &x in xs {
            l.push(Vec3::new(x, 0.0, 0.0), Vec3::UNIT_X, 1.0);
        }
        l
    }

    #[test]
    fn region_membership() {
        let s = Region::Sphere {
            center: Vec3::ZERO,
            radius: 1.0,
        };
        assert!(s.contains(Vec3::new(0.5, 0.0, 0.0)));
        assert!(!s.contains(Vec3::new(1.5, 0.0, 0.0)));
        let b = Region::Box(Aabb::new(Vec3::ZERO, Vec3::ONE));
        assert!(b.contains(Vec3::splat(0.5)));
        assert!(!b.contains(Vec3::splat(1.5)));
        let h = Region::HalfSpace {
            normal: Vec3::UNIT_X,
            offset: 0.0,
        };
        assert!(h.contains(Vec3::new(1.0, -5.0, 3.0)));
        assert!(!h.contains(Vec3::new(-0.1, 0.0, 0.0)));
    }

    #[test]
    fn cutaway_clips_lines_at_the_boundary() {
        // A line crossing x = 0: the half-space cutaway keeps only the
        // non-negative-x run.
        let line = line_through(&[-2.0, -1.0, 0.5, 1.0, 2.0]);
        let region = Region::HalfSpace {
            normal: Vec3::UNIT_X,
            offset: 0.0,
        };
        let cut = cutaway(&[line], &region);
        assert_eq!(cut.len(), 1);
        assert_eq!(cut[0].len(), 3);
        assert!(cut[0].points.iter().all(|p| p.x >= 0.0));
    }

    #[test]
    fn cutaway_splits_reentrant_lines() {
        // In, out, in again: two runs.
        let line = line_through(&[0.0, 0.5, 3.0, 4.0, 0.5, 0.2]);
        let region = Region::Box(Aabb::new(Vec3::new(-1.0, -1.0, -1.0), Vec3::ONE));
        let cut = cutaway(&[line], &region);
        assert_eq!(cut.len(), 2, "re-entrant line must split: {cut:?}");
        assert_eq!(cut[0].len(), 2);
        assert_eq!(cut[1].len(), 2);
    }

    #[test]
    fn cutaway_drops_outside_lines_and_single_points() {
        let outside = line_through(&[5.0, 6.0, 7.0]);
        let grazing = line_through(&[5.0, 0.5, 6.0]); // one inside point
        let region = Region::Box(Aabb::new(Vec3::new(-1.0, -1.0, -1.0), Vec3::ONE));
        let cut = cutaway(&[outside, grazing], &region);
        assert!(cut.is_empty(), "single-point runs cannot form segments");
    }

    #[test]
    fn focus_alphas_preserve_context() {
        let inside = line_through(&[0.0, 0.5]);
        let outside = line_through(&[5.0, 6.0]);
        let region = Region::Sphere {
            center: Vec3::ZERO,
            radius: 1.0,
        };
        let alphas = focus_alphas(&[inside, outside], &region, 0.15);
        assert_eq!(alphas, vec![1.0, 0.15]);
        // Unlike cutaway, every line survives — "the global context is
        // not lost".
        assert_eq!(alphas.len(), 2);
    }

    #[test]
    fn coverage_fractions() {
        let line = line_through(&[-1.0, 0.5, 0.7, 5.0]);
        let region = Region::Box(Aabb::new(Vec3::new(0.0, -1.0, -1.0), Vec3::ONE));
        assert!((region.coverage(&line) - 0.5).abs() < 1e-12);
        assert_eq!(region.coverage(&FieldLine::new()), 0.0);
    }
}
