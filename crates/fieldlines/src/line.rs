//! Field-line polylines.

use accelviz_math::Vec3;

/// A traced field line: an ordered polyline with per-point unit tangents
/// and local field magnitudes. Tangents are what the self-orienting
/// surface construction needs ("a sequence of points along a curve, an
/// associated sequence of tangent vectors, and a viewing position", §3.1).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FieldLine {
    /// Polyline vertices.
    pub points: Vec<Vec3>,
    /// Unit tangent at each vertex (field direction).
    pub tangents: Vec<Vec3>,
    /// |F| at each vertex.
    pub magnitudes: Vec<f64>,
}

impl FieldLine {
    /// An empty line.
    pub fn new() -> FieldLine {
        FieldLine::default()
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the line has no vertices.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.points.len().saturating_sub(1)
    }

    /// Total arc length.
    pub fn arc_length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].distance(w[1])).sum()
    }

    /// Appends a vertex.
    pub fn push(&mut self, point: Vec3, tangent: Vec3, magnitude: f64) {
        debug_assert!(self.points.len() == self.tangents.len());
        self.points.push(point);
        self.tangents.push(tangent);
        self.magnitudes.push(magnitude);
    }

    /// Reverses the line in place (used when joining backward and forward
    /// traces; tangents flip sign so they keep pointing along the
    /// traversal direction).
    pub fn reverse(&mut self) {
        self.points.reverse();
        self.tangents.reverse();
        for t in &mut self.tangents {
            *t = -*t;
        }
        self.magnitudes.reverse();
    }

    /// Concatenates another line onto the end of this one, skipping the
    /// other's first vertex when it duplicates this line's last.
    pub fn extend_with(&mut self, other: &FieldLine) {
        let skip = usize::from(
            !self.is_empty()
                && !other.is_empty()
                && self.points.last().unwrap().distance(other.points[0]) < 1e-12,
        );
        self.points.extend_from_slice(&other.points[skip..]);
        self.tangents.extend_from_slice(&other.tangents[skip..]);
        self.magnitudes.extend_from_slice(&other.magnitudes[skip..]);
    }

    /// Resamples the line at (approximately) uniform arc-length `spacing`
    /// using Catmull–Rom interpolation through the stored points. The
    /// endpoints are preserved exactly; tangents are recomputed from the
    /// resampled polyline.
    ///
    /// This is the storage dial of the compact format: integration can
    /// run at a fine step for accuracy while the stored line keeps only
    /// as many vertices as the curvature justifies.
    pub fn resample(&self, spacing: f64) -> FieldLine {
        assert!(spacing > 0.0, "spacing must be positive");
        let n = self.len();
        if n < 3 {
            return self.clone();
        }
        // Cumulative arc length per input vertex.
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0;
        cum.push(0.0);
        for w in self.points.windows(2) {
            acc += w[0].distance(w[1]);
            cum.push(acc);
        }
        let total = acc;
        if total <= spacing {
            // Too short to resample: keep the endpoints.
            let mut out = FieldLine::new();
            out.push(self.points[0], self.tangents[0], self.magnitudes[0]);
            out.push(
                *self.points.last().unwrap(),
                *self.tangents.last().unwrap(),
                *self.magnitudes.last().unwrap(),
            );
            return out;
        }
        let samples = ((total / spacing).round() as usize).max(2);
        let mut out = FieldLine::new();
        let mut seg = 0usize;
        for si in 0..=samples {
            let target = total * si as f64 / samples as f64;
            while seg + 1 < n - 1 && cum[seg + 1] < target {
                seg += 1;
            }
            let seg_len = (cum[seg + 1] - cum[seg]).max(1e-300);
            let t = ((target - cum[seg]) / seg_len).clamp(0.0, 1.0);
            let idx = |i: isize| -> usize { i.clamp(0, n as isize - 1) as usize };
            let (p0, p1, p2, p3) = (
                self.points[idx(seg as isize - 1)],
                self.points[seg],
                self.points[seg + 1],
                self.points[idx(seg as isize + 2)],
            );
            let pos = Vec3::new(
                accelviz_math::catmull_rom(p0.x, p1.x, p2.x, p3.x, t),
                accelviz_math::catmull_rom(p0.y, p1.y, p2.y, p3.y, t),
                accelviz_math::catmull_rom(p0.z, p1.z, p2.z, p3.z, t),
            );
            let mag = accelviz_math::lerp(self.magnitudes[seg], self.magnitudes[seg + 1], t);
            out.push(pos, Vec3::ZERO, mag);
        }
        // Exact endpoints.
        let last = out.len() - 1;
        out.points[0] = self.points[0];
        out.points[last] = *self.points.last().unwrap();
        // Tangents from central differences.
        let m = out.len();
        for i in 0..m {
            let prev = out.points[i.saturating_sub(1)];
            let next = out.points[(i + 1).min(m - 1)];
            out.tangents[i] = (next - prev).normalized_or(self.tangents[0]);
        }
        out
    }

    /// Mean field magnitude along the line (0 for empty lines).
    pub fn mean_magnitude(&self) -> f64 {
        if self.magnitudes.is_empty() {
            0.0
        } else {
            self.magnitudes.iter().sum::<f64>() / self.magnitudes.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_line(n: usize) -> FieldLine {
        let mut l = FieldLine::new();
        for i in 0..n {
            l.push(Vec3::new(i as f64, 0.0, 0.0), Vec3::UNIT_X, 1.0 + i as f64);
        }
        l
    }

    #[test]
    fn lengths_and_counts() {
        let l = straight_line(5);
        assert_eq!(l.len(), 5);
        assert_eq!(l.segment_count(), 4);
        assert!((l.arc_length() - 4.0).abs() < 1e-12);
        assert!(!l.is_empty());
        assert_eq!(FieldLine::new().segment_count(), 0);
        assert_eq!(FieldLine::new().arc_length(), 0.0);
    }

    #[test]
    fn reverse_flips_points_and_tangents() {
        let mut l = straight_line(3);
        l.reverse();
        assert_eq!(l.points[0], Vec3::new(2.0, 0.0, 0.0));
        assert_eq!(l.tangents[0], -Vec3::UNIT_X);
        assert_eq!(l.magnitudes, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn extend_with_dedupes_shared_vertex() {
        let mut a = straight_line(3);
        let mut b = FieldLine::new();
        b.push(Vec3::new(2.0, 0.0, 0.0), Vec3::UNIT_X, 3.0); // duplicates a's end
        b.push(Vec3::new(3.0, 0.0, 0.0), Vec3::UNIT_X, 4.0);
        a.extend_with(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.points[3], Vec3::new(3.0, 0.0, 0.0));
        // Extending with a disjoint line keeps everything.
        let mut c = FieldLine::new();
        c.push(Vec3::new(10.0, 0.0, 0.0), Vec3::UNIT_X, 1.0);
        a.extend_with(&c);
        assert_eq!(a.len(), 5);
    }

    fn helix(n: usize, step: f64) -> FieldLine {
        let mut l = FieldLine::new();
        for i in 0..n {
            let a = i as f64 * step;
            l.push(
                Vec3::new(a.cos(), a.sin(), 0.1 * a),
                Vec3::new(-a.sin(), a.cos(), 0.1).normalized().unwrap(),
                1.0 + 0.01 * a,
            );
        }
        l
    }

    #[test]
    fn resample_preserves_endpoints_and_shape() {
        let fine = helix(200, 0.05);
        let coarse = fine.resample(0.25);
        assert!(coarse.len() < fine.len() / 3, "must actually decimate");
        assert!(coarse.points[0].distance(fine.points[0]) < 1e-12);
        assert!(
            coarse
                .points
                .last()
                .unwrap()
                .distance(*fine.points.last().unwrap())
                < 1e-12
        );
        // Arc length is approximately preserved (chords shorten slightly).
        assert!((coarse.arc_length() / fine.arc_length() - 1.0).abs() < 0.05);
        // Every resampled point lies close to the original curve (within
        // a fraction of the spacing, thanks to Catmull–Rom).
        for q in &coarse.points {
            let d = fine
                .points
                .iter()
                .map(|p| p.distance(*q))
                .fold(f64::INFINITY, f64::min);
            assert!(d < 0.08, "resampled point {q} strays {d} from the curve");
        }
        // Tangents are unit length.
        for t in &coarse.tangents {
            assert!((t.length() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn resample_reduces_compact_storage() {
        let fine = helix(300, 0.02);
        let coarse = fine.resample(0.2);
        let fine_bytes = crate::compact::compact_bytes(std::slice::from_ref(&fine));
        let coarse_bytes = crate::compact::compact_bytes(std::slice::from_ref(&coarse));
        assert!(
            fine_bytes > 5 * coarse_bytes,
            "decimation must shrink storage: {fine_bytes} vs {coarse_bytes}"
        );
    }

    #[test]
    fn resample_degenerate_cases() {
        // Short lines pass through unchanged.
        let short = straight_line(2);
        assert_eq!(short.resample(0.1), short);
        // Lines shorter than the spacing collapse to their endpoints.
        let tiny = straight_line(5); // length 4 with unit spacing
        let collapsed = tiny.resample(10.0);
        assert_eq!(collapsed.len(), 2);
        assert_eq!(collapsed.points[0], tiny.points[0]);
        assert_eq!(collapsed.points[1], *tiny.points.last().unwrap());
    }

    #[test]
    #[should_panic]
    fn resample_zero_spacing_panics() {
        let _ = straight_line(5).resample(0.0);
    }

    #[test]
    fn mean_magnitude() {
        let l = straight_line(3); // magnitudes 1, 2, 3
        assert!((l.mean_magnitude() - 2.0).abs() < 1e-12);
        assert_eq!(FieldLine::new().mean_magnitude(), 0.0);
    }
}
