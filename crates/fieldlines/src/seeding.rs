//! The paper's seeding strategy and incremental visualization (§3.2).
//!
//! "Our approach is to select seeds so that the local density anywhere in
//! the final distribution of field lines is approximately proportional to
//! the local magnitude of the underlying field. ... The implementation
//! consists in computing a desired average number of field lines to pass
//! through each element of the mesh. This is the average field intensity
//! at the element's vertices multiplied by the volume of the element.
//! These numbers are then scaled so that the sum over all elements is
//! equal to the total maximum number of field lines to pre-integrate. The
//! algorithm consists of selecting the element which most needs an
//! additional field line, picking a random seed point within that element,
//! and integrating the field line from there. During integration, as each
//! new element is visited, that element's desired number of field lines is
//! decremented. ... By always choosing the element that most needs an
//! additional field line, the images that result from rendering the first
//! n field lines are always nearly correct."

use crate::integrate::{trace, TraceParams};
use crate::line::FieldLine;
use accelviz_emsim::sample::{FieldSampler, VectorField3};
use accelviz_math::stats::pearson;
use accelviz_math::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Seeding configuration.
#[derive(Clone, Copy, Debug)]
pub struct SeedingParams {
    /// Total number of field lines to pre-integrate.
    pub n_lines: usize,
    /// Streamline integration parameters.
    pub trace: TraceParams,
    /// RNG seed (random point within the chosen element).
    pub seed: u64,
    /// Elements whose |F| is below this fraction of the maximum get zero
    /// desire (keeps lines out of numerically-dead regions).
    pub min_magnitude_frac: f64,
}

impl Default for SeedingParams {
    fn default() -> SeedingParams {
        SeedingParams {
            n_lines: 200,
            trace: TraceParams::default(),
            seed: 1,
            min_magnitude_frac: 1e-4,
        }
    }
}

/// One seeded field line, in seeding order. The incremental property:
/// rendering lines `0..n` gives the best n-line density portrait, and each
/// successive image's line set is a superset of the previous one.
#[derive(Clone, Debug)]
pub struct SeededLine {
    /// Position in the incremental order (0 = first / strongest region).
    pub order: usize,
    /// Flat index of the element the seed point was placed in.
    pub seed_element: usize,
    /// The traced line.
    pub line: FieldLine,
}

/// Max-heap entry with f64 priority.
struct Entry {
    desire: f64,
    cell: usize,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.desire == other.desire && self.cell == other.cell
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.desire
            .total_cmp(&other.desire)
            .then(self.cell.cmp(&other.cell))
    }
}

/// Computes per-element desired line counts: ⟨|F|⟩ · volume, scaled to sum
/// to `n_lines`; metal cells and near-zero-field cells get zero.
pub fn desired_counts(field: &FieldSampler, params: &SeedingParams) -> Vec<f64> {
    let [nx, ny, nz] = field.dims();
    let max_mag = field.max_magnitude();
    let cutoff = max_mag * params.min_magnitude_frac;
    let mut desire = vec![0.0f64; nx * ny * nz];
    if max_mag <= 0.0 {
        return desire;
    }
    // Uniform grid: volume factor is constant and cancels in the scaling.
    let mut total = 0.0;
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let idx = i + nx * (j + ny * k);
                if !field.cell_is_vacuum(i, j, k) {
                    continue;
                }
                let m = field.at_cell(i, j, k).length();
                if m > cutoff {
                    desire[idx] = m;
                    total += m;
                }
            }
        }
    }
    if total > 0.0 {
        let scale = params.n_lines as f64 / total;
        for d in &mut desire {
            *d *= scale;
        }
    }
    desire
}

/// The paper's literal per-element desire formula on an unstructured
/// hexahedral mesh: "the average field intensity at the element's
/// vertices multiplied by the volume of the element", scaled so the sum
/// over all elements equals `n_lines`.
///
/// The grid-based [`desired_counts`] is the uniform-mesh special case; on
/// meshes with varying element sizes this is the form that keeps *line
/// density* (not line count) proportional to field magnitude.
pub fn desired_counts_mesh(
    mesh: &accelviz_emsim::mesh::HexMesh,
    field: &dyn VectorField3,
    n_lines: usize,
) -> Vec<f64> {
    let mut desire = vec![0.0f64; mesh.element_count()];
    let mut total = 0.0;
    for (e, d) in desire.iter_mut().enumerate() {
        let verts = &mesh.elements[e].verts;
        let avg_intensity: f64 = verts
            .iter()
            .map(|&v| field.sample(mesh.vertices[v as usize]).length())
            .sum::<f64>()
            / 8.0;
        *d = avg_intensity * mesh.element_volume(e);
        total += *d;
    }
    if total > 0.0 {
        let scale = n_lines as f64 / total;
        for d in &mut desire {
            *d *= scale;
        }
    }
    desire
}

/// Runs the full seeding algorithm, returning lines in incremental order.
///
/// ```
/// use accelviz_emsim::sample::FieldSampler;
/// use accelviz_fieldlines::seeding::{seed_lines, SeedingParams};
/// use accelviz_math::{Aabb, Vec3};
///
/// // A uniform +z field on the unit cube.
/// let field = FieldSampler::from_vectors(
///     [4, 4, 4],
///     Aabb::new(Vec3::ZERO, Vec3::ONE),
///     vec![Vec3::UNIT_Z; 64],
/// );
/// let lines = seed_lines(&field, &SeedingParams { n_lines: 10, ..Default::default() });
/// assert!(!lines.is_empty());
/// // Incremental order: the first n lines are always the best n-line
/// // density portrait, and orders are consecutive.
/// for (i, sl) in lines.iter().enumerate() {
///     assert_eq!(sl.order, i);
/// }
/// ```
pub fn seed_lines(field: &FieldSampler, params: &SeedingParams) -> Vec<SeededLine> {
    let [nx, ny, nz] = field.dims();
    let bounds = field.bounds();
    let size = bounds.size();
    let cell_size = Vec3::new(size.x / nx as f64, size.y / ny as f64, size.z / nz as f64);
    let mut desire = desired_counts(field, params);
    let mut heap: BinaryHeap<Entry> = desire
        .iter()
        .enumerate()
        .filter(|(_, &d)| d > 0.0)
        .map(|(cell, &d)| Entry { desire: d, cell })
        .collect();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut out = Vec::with_capacity(params.n_lines);

    let cell_of = |p: Vec3| -> Option<usize> {
        let t = bounds.normalized_coords(p);
        if !(0.0..=1.0).contains(&t.x) || !(0.0..=1.0).contains(&t.y) || !(0.0..=1.0).contains(&t.z)
        {
            return None;
        }
        let i = ((t.x * nx as f64) as usize).min(nx - 1);
        let j = ((t.y * ny as f64) as usize).min(ny - 1);
        let k = ((t.z * nz as f64) as usize).min(nz - 1);
        Some(i + nx * (j + ny * k))
    };

    while out.len() < params.n_lines {
        // Pop the neediest element, skipping stale heap entries.
        let cell = loop {
            match heap.pop() {
                Some(e) => {
                    if (e.desire - desire[e.cell]).abs() < 1e-12 {
                        break Some(e.cell);
                    }
                    // Stale: re-push with the current desire if positive.
                    if desire[e.cell] > 0.0 {
                        heap.push(Entry {
                            desire: desire[e.cell],
                            cell: e.cell,
                        });
                    }
                }
                None => break None,
            }
        };
        let Some(cell) = cell else {
            break; // no element wants more lines
        };
        if desire[cell] <= 0.0 {
            break;
        }

        // Random seed point within the element.
        let (i, j, k) = (cell % nx, (cell / nx) % ny, cell / (nx * ny));
        let p = bounds.min
            + Vec3::new(
                (i as f64 + rng.gen_range(0.0..1.0)) * cell_size.x,
                (j as f64 + rng.gen_range(0.0..1.0)) * cell_size.y,
                (k as f64 + rng.gen_range(0.0..1.0)) * cell_size.z,
            );
        let line = trace(field, p, &params.trace);

        // Decrement desire in every element the line visits (deduped).
        let mut last_cell = usize::MAX;
        let mut visited_any = false;
        for q in &line.points {
            if let Some(c) = cell_of(*q) {
                if c != last_cell {
                    desire[c] -= 1.0;
                    if desire[c] > 0.0 {
                        heap.push(Entry {
                            desire: desire[c],
                            cell: c,
                        });
                    }
                    last_cell = c;
                    visited_any = true;
                }
            }
        }
        if !visited_any {
            // Dead seed (zero-field pocket): retire this element so the
            // loop can't spin on it.
            desire[cell] = 0.0;
            continue;
        }
        out.push(SeededLine {
            order: out.len(),
            seed_element: cell,
            line,
        });
    }
    out
}

/// Pearson correlation between per-element line-visit counts (of the first
/// `prefix` lines) and the underlying field magnitude, over vacuum
/// elements with non-negligible field. This is the FIG7 metric: ≈ 1 means
/// line density ∝ field magnitude.
pub fn density_correlation(field: &FieldSampler, lines: &[SeededLine], prefix: usize) -> f64 {
    let [nx, ny, nz] = field.dims();
    let bounds = field.bounds();
    let mut counts = vec![0.0f64; nx * ny * nz];
    for sl in lines.iter().take(prefix) {
        let mut last = usize::MAX;
        for q in &sl.line.points {
            let t = bounds.normalized_coords(*q);
            if !(0.0..=1.0).contains(&t.x)
                || !(0.0..=1.0).contains(&t.y)
                || !(0.0..=1.0).contains(&t.z)
            {
                continue;
            }
            let i = ((t.x * nx as f64) as usize).min(nx - 1);
            let j = ((t.y * ny as f64) as usize).min(ny - 1);
            let k = ((t.z * nz as f64) as usize).min(nz - 1);
            let c = i + nx * (j + ny * k);
            if c != last {
                counts[c] += 1.0;
                last = c;
            }
        }
    }
    let max_mag = field.max_magnitude();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                if !field.cell_is_vacuum(i, j, k) {
                    continue;
                }
                let m = field.at_cell(i, j, k).length();
                if m > 1e-6 * max_mag {
                    xs.push(m);
                    ys.push(counts[i + nx * (j + ny * k)]);
                }
            }
        }
    }
    pearson(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_math::Aabb;

    /// F = (0, 0, 1 + 3x) on the unit cube: straight vertical lines whose
    /// proper density should grow linearly in x.
    fn graded_field() -> FieldSampler {
        let n = 16;
        let bounds = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let mut vectors = Vec::with_capacity(n * n * n);
        for _k in 0..n {
            for _j in 0..n {
                for i in 0..n {
                    let x = (i as f64 + 0.5) / n as f64;
                    vectors.push(Vec3::new(0.0, 0.0, 1.0 + 3.0 * x));
                }
            }
        }
        FieldSampler::from_vectors([n, n, n], bounds, vectors)
    }

    fn params(n_lines: usize) -> SeedingParams {
        SeedingParams {
            n_lines,
            trace: TraceParams {
                step: 0.04,
                max_steps: 200,
                ..Default::default()
            },
            seed: 7,
            min_magnitude_frac: 1e-6,
        }
    }

    #[test]
    fn desired_counts_sum_to_n_lines() {
        let f = graded_field();
        let p = params(100);
        let desire = desired_counts(&f, &p);
        let total: f64 = desire.iter().sum();
        assert!((total - 100.0).abs() < 1e-9, "sum {total}");
        // Desire grows with x.
        let [nx, ..] = f.dims();
        assert!(desire[nx - 1] > desire[0]);
    }

    #[test]
    fn mesh_desires_match_grid_desires_on_uniform_mesh() {
        use accelviz_emsim::mesh::HexMesh;
        // Build the hex mesh of the same uniform grid the sampler uses;
        // the per-element desires must be proportional to the grid-based
        // ones (same normalization, same ordering).
        let f = graded_field();
        let p = params(100);
        let grid_desire = desired_counts(&f, &p);
        let mesh = HexMesh::from_grid_mask(f.bounds(), f.dims(), |_| true);
        let mesh_desire = desired_counts_mesh(&mesh, &f, 100);
        assert_eq!(mesh_desire.len(), grid_desire.len());
        let sum: f64 = mesh_desire.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        // Correlated orderings: both rank the high-x column highest. The
        // mesh version samples at *vertices* (trilinear) so values differ
        // slightly at the boundary, but the correlation must be ~1.
        let r = accelviz_math::stats::pearson(&grid_desire, &mesh_desire);
        assert!(r > 0.98, "grid vs mesh desire correlation {r}");
    }

    #[test]
    fn mesh_desires_weight_by_element_volume() {
        use accelviz_emsim::mesh::HexMesh;
        use accelviz_math::Aabb;
        // Two elements, same field, one 8x the volume: it should want 8x
        // the lines.
        let f = FieldSampler::from_vectors(
            [2, 1, 1],
            Aabb::new(Vec3::ZERO, Vec3::new(2.0, 1.0, 1.0)),
            vec![Vec3::UNIT_Z; 2],
        );
        let mut mesh = HexMesh::default();
        for v in [
            // Small cube [0,0.5]³.
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.5, 0.0, 0.0),
            Vec3::new(0.0, 0.5, 0.0),
            Vec3::new(0.5, 0.5, 0.0),
            Vec3::new(0.0, 0.0, 0.5),
            Vec3::new(0.5, 0.0, 0.5),
            Vec3::new(0.0, 0.5, 0.5),
            Vec3::new(0.5, 0.5, 0.5),
            // Big cube [1,2]x[0,1]x[0,1] — 8x the volume.
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
            Vec3::new(2.0, 1.0, 0.0),
            Vec3::new(1.0, 0.0, 1.0),
            Vec3::new(2.0, 0.0, 1.0),
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(2.0, 1.0, 1.0),
        ] {
            mesh.vertices.push(v);
        }
        mesh.elements.push(accelviz_emsim::mesh::HexElement {
            verts: [0, 1, 2, 3, 4, 5, 6, 7],
        });
        mesh.elements.push(accelviz_emsim::mesh::HexElement {
            verts: [8, 9, 10, 11, 12, 13, 14, 15],
        });
        let desire = desired_counts_mesh(&mesh, &f, 90);
        // Constant field: 0.125 vs 1.0 volumes → 10 and 80 lines.
        assert!((desire[1] / desire[0] - 8.0).abs() < 0.2, "{desire:?}");
        assert!((desire.iter().sum::<f64>() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn seeding_returns_requested_count_in_order() {
        let f = graded_field();
        let lines = seed_lines(&f, &params(50));
        assert_eq!(lines.len(), 50);
        for (i, sl) in lines.iter().enumerate() {
            assert_eq!(sl.order, i);
            assert!(!sl.line.is_empty());
        }
    }

    #[test]
    fn first_line_seeds_in_the_strongest_region() {
        let f = graded_field();
        let lines = seed_lines(&f, &params(30));
        let [nx, ..] = f.dims();
        let i = lines[0].seed_element % nx;
        // Strongest field is at max x.
        assert!(
            i >= nx - 2,
            "first seed must be in the high-field column, got i = {i}"
        );
    }

    #[test]
    fn line_density_tracks_field_magnitude() {
        // Budget below saturation (the 16×16 columns of this field can
        // hold at most one distinct line each): density of the seeded
        // lines must correlate with |F|.
        let f = graded_field();
        let lines = seed_lines(&f, &params(120));
        let r_full = density_correlation(&f, &lines, lines.len());
        assert!(
            r_full > 0.55,
            "density ∝ magnitude at full budget: r = {r_full}"
        );
        // The incremental claim: even a modest prefix is already
        // positively correlated.
        let r_half = density_correlation(&f, &lines, lines.len() / 2);
        assert!(r_half > 0.4, "prefix correlation r = {r_half}");
    }

    #[test]
    fn saturated_budget_fills_every_column_exactly_once() {
        // Once every column holds a line, additional budget cannot force
        // disproportionate density: the seeder stops at 256 lines (one per
        // column) because all desire is exhausted — the paper's guard
        // against "disproportionately high densities of field lines".
        let f = graded_field();
        let lines = seed_lines(&f, &params(1_000));
        assert_eq!(lines.len(), 16 * 16);
        let mut columns: Vec<usize> = lines.iter().map(|sl| sl.seed_element % (16 * 16)).collect();
        columns.sort_unstable();
        columns.dedup();
        assert_eq!(columns.len(), 16 * 16, "each column seeded exactly once");
    }

    #[test]
    fn seeding_is_deterministic() {
        let f = graded_field();
        let a = seed_lines(&f, &params(20));
        let b = seed_lines(&f, &params(20));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed_element, y.seed_element);
            assert_eq!(x.line.points, y.line.points);
        }
    }

    #[test]
    fn prefix_is_a_superset_chain() {
        // Structural check of the incremental property: the first n lines
        // of a larger budget equal the lines of the same run truncated.
        let f = graded_field();
        let lines = seed_lines(&f, &params(40));
        let prefix: Vec<_> = lines.iter().take(10).collect();
        for (i, sl) in prefix.iter().enumerate() {
            assert_eq!(sl.order, i);
        }
        // (The chain property holds by construction: rendering n+1 lines
        // adds exactly one line to the set rendered with n.)
    }

    #[test]
    fn zero_field_seeds_nothing() {
        let bounds = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let f = FieldSampler::from_vectors([4, 4, 4], bounds, vec![Vec3::ZERO; 64]);
        let lines = seed_lines(&f, &params(10));
        assert!(lines.is_empty());
    }

    #[test]
    fn more_lines_than_desire_terminates() {
        // Ask for far more lines than the field can justify: the loop must
        // terminate once desire is exhausted.
        let f = graded_field();
        let lines = seed_lines(&f, &params(20_000));
        assert!(lines.len() <= 20_000);
        assert!(!lines.is_empty());
    }
}
