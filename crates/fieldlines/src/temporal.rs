//! Time-varying field-line animation (§3.4).
//!
//! "The ability to animate field lines in the temporal domain is
//! particularly valuable. For example, from these four images, scientists
//! can examine and verify the propagation of the RF waves. Storing the
//! precomputed field lines rather than the raw data can significantly cut
//! down the data storage and transfer requirements making interactive
//! interrogation of the time-varying electromagnetic field lines data
//! possible. ... We are presently parallelizing the field line
//! calculations on PC clusters to speed up this preprocessing task."
//!
//! [`precompute_animation`] is that parallelized preprocessing: one
//! independent seeding pass per captured time step, fanned out with Rayon
//! (the "PC cluster" of this reproduction).

use crate::compact::{compact_bytes, serialize_lines};
use crate::line::FieldLine;
use crate::seeding::{seed_lines, SeedingParams};
use accelviz_emsim::sample::FieldSampler;
use rayon::prelude::*;

/// Pre-integrated field lines for a sequence of time steps.
#[derive(Clone, Debug, Default)]
pub struct LineAnimation {
    /// One line set per captured time step, in time order.
    pub steps: Vec<Vec<FieldLine>>,
}

impl LineAnimation {
    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when no steps are stored.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total compact storage of the whole animation.
    pub fn total_bytes(&self) -> u64 {
        self.steps.iter().map(|s| compact_bytes(s)).sum()
    }

    /// Serializes every step (concatenated compact line sets).
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for step in &self.steps {
            serialize_lines(&mut out, step).expect("writing to Vec cannot fail");
        }
        out
    }

    /// Storage saving versus keeping the raw per-step E+B fields for a
    /// mesh of `elements_per_step` elements — the animation-scale version
    /// of the paper's "factor of 25".
    pub fn saving_factor(&self, elements_per_step: u64) -> f64 {
        let raw = accelviz_emsim::io::snapshot_bytes(elements_per_step)
            .saturating_mul(self.len() as u64) as f64;
        let compact = self.total_bytes() as f64;
        if compact <= 0.0 {
            f64::INFINITY
        } else {
            raw / compact
        }
    }
}

/// Precomputes field lines for every captured time step in parallel. Each
/// step is seeded independently (with the same seed, so a steady field
/// yields a steady line set) — steps are embarrassingly parallel, exactly
/// what the paper was distributing across its PC cluster.
pub fn precompute_animation(fields: &[FieldSampler], params: &SeedingParams) -> LineAnimation {
    let steps = fields
        .par_iter()
        .map(|f| {
            seed_lines(f, params)
                .into_iter()
                .map(|sl| sl.line)
                .collect()
        })
        .collect();
    LineAnimation { steps }
}

/// Sequential reference implementation (used by tests to pin down the
/// parallel path).
pub fn precompute_animation_serial(
    fields: &[FieldSampler],
    params: &SeedingParams,
) -> LineAnimation {
    let steps = fields
        .iter()
        .map(|f| {
            seed_lines(f, params)
                .into_iter()
                .map(|sl| sl.line)
                .collect()
        })
        .collect();
    LineAnimation { steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::TraceParams;
    use accelviz_math::{Aabb, Vec3};

    /// A sequence of graded fields whose strength ramps over "time".
    fn field_sequence(n_steps: usize) -> Vec<FieldSampler> {
        let n = 8;
        let bounds = Aabb::new(Vec3::ZERO, Vec3::ONE);
        (0..n_steps)
            .map(|s| {
                let amp = 1.0 + s as f64;
                let mut vectors = Vec::with_capacity(n * n * n);
                for _k in 0..n {
                    for _j in 0..n {
                        for i in 0..n {
                            let x = (i as f64 + 0.5) / n as f64;
                            vectors.push(Vec3::new(0.0, 0.0, amp * (1.0 + 3.0 * x)));
                        }
                    }
                }
                FieldSampler::from_vectors([n, n, n], bounds, vectors)
            })
            .collect()
    }

    fn params() -> SeedingParams {
        SeedingParams {
            n_lines: 20,
            trace: TraceParams {
                step: 0.05,
                max_steps: 80,
                ..Default::default()
            },
            seed: 3,
            min_magnitude_frac: 1e-6,
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let fields = field_sequence(4);
        let p = params();
        let par = precompute_animation(&fields, &p);
        let ser = precompute_animation_serial(&fields, &p);
        assert_eq!(par.len(), ser.len());
        for (a, b) in par.steps.iter().zip(&ser.steps) {
            assert_eq!(a.len(), b.len());
            for (la, lb) in a.iter().zip(b) {
                assert_eq!(la.points, lb.points);
            }
        }
    }

    #[test]
    fn animation_accounting() {
        let fields = field_sequence(3);
        let anim = precompute_animation(&fields, &params());
        assert_eq!(anim.len(), 3);
        assert!(!anim.is_empty());
        let per_step: u64 = anim.steps.iter().map(|s| compact_bytes(s)).sum();
        assert_eq!(anim.total_bytes(), per_step);
        let blob = anim.serialize();
        assert_eq!(blob.len() as u64, anim.total_bytes());
    }

    #[test]
    fn saving_factor_grows_with_mesh_size() {
        let fields = field_sequence(2);
        let anim = precompute_animation(&fields, &params());
        let small = anim.saving_factor(1_000);
        let big = anim.saving_factor(1_600_000);
        assert!(big > small);
        assert!(big / small > 1_000.0);
        assert_eq!(LineAnimation::default().saving_factor(1_000), f64::INFINITY);
    }

    #[test]
    fn identical_fields_give_identical_line_sets() {
        // A steady field animated over time must not flicker: same seed,
        // same field ⇒ same lines each step.
        let f = field_sequence(1).pop().unwrap();
        let fields = vec![f.clone(), f.clone(), f];
        let anim = precompute_animation(&fields, &params());
        for w in anim.steps.windows(2) {
            assert_eq!(w[0].len(), w[1].len());
            for (a, b) in w[0].iter().zip(&w[1]) {
                assert_eq!(a.points, b.points);
            }
        }
    }
}
