//! Wide textured ribbons (Figure 6(e)).
//!
//! "Using a wider version of the self-orienting surfaces it is possible to
//! give the impression of the field density by only rendering a small
//! number of self-orienting surfaces, with line density textured according
//! to local field strength. The reduction in the number of lines that must
//! be traced and plotted can help maintain a desirable level of
//! interactivity."

use crate::line::FieldLine;
use crate::sos::{sos_strip, SosParams};
use accelviz_math::Vec3;
use accelviz_render::rasterizer::Vertex;

/// Ribbon parameters: a wide self-orienting strip plus a strand-count
/// mapping from field magnitude.
#[derive(Clone, Copy, Debug)]
pub struct RibbonParams {
    /// The underlying strip parameters (use a large `half_width`).
    pub strip: SosParams,
    /// Strand count at the maximum field magnitude.
    pub max_strands: usize,
    /// Normalizing magnitude (field maximum).
    pub max_magnitude: f64,
}

impl Default for RibbonParams {
    fn default() -> RibbonParams {
        RibbonParams {
            strip: SosParams {
                half_width: 0.06,
                ..Default::default()
            },
            max_strands: 8,
            max_magnitude: 1.0,
        }
    }
}

/// Builds the ribbon strip and the per-vertex strand counts: the
/// number of texture strands to show at each point of the line, encoding
/// local field strength as line density. The renderer selects the
/// `ribbon_density_map` texture with the returned strand count.
pub fn ribbon_strip(
    line: &FieldLine,
    eye: Vec3,
    params: &RibbonParams,
) -> (Vec<Vertex>, Vec<usize>) {
    let verts = sos_strip(line, eye, &params.strip);
    let mut strands = Vec::with_capacity(verts.len());
    for i in 0..line.len() {
        let m = if params.max_magnitude > 0.0 {
            (line.magnitudes[i] / params.max_magnitude).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let s = ((m * params.max_strands as f64).round() as usize).max(1);
        // Two strip vertices per line point share the strand count.
        strands.push(s);
        strands.push(s);
    }
    (verts, strands)
}

/// The line-budget saving of ribbons: how many individual lines one
/// ribbon of `strands` strands replaces.
pub fn lines_replaced_by_ribbon(strands: usize) -> usize {
    strands.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graded_line() -> FieldLine {
        let mut l = FieldLine::new();
        for i in 0..10 {
            // Magnitude ramps from 0.1 to 1.0 along the line.
            l.push(
                Vec3::new(i as f64 * 0.1, 0.0, 0.0),
                Vec3::UNIT_X,
                0.1 + 0.1 * i as f64,
            );
        }
        l
    }

    #[test]
    fn strand_counts_track_magnitude() {
        let line = graded_line();
        let (verts, strands) =
            ribbon_strip(&line, Vec3::new(0.0, 0.0, 5.0), &RibbonParams::default());
        assert_eq!(verts.len(), strands.len());
        // Strand count is non-decreasing along this ramping line.
        for w in strands.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(strands[0] < *strands.last().unwrap());
        assert!(*strands.last().unwrap() <= 8);
        assert!(strands[0] >= 1, "at least one strand everywhere");
    }

    #[test]
    fn ribbon_is_wider_than_default_sos() {
        let line = graded_line();
        let params = RibbonParams::default();
        let (verts, _) = ribbon_strip(&line, Vec3::new(0.0, 0.0, 5.0), &params);
        let across = verts[1].pos - verts[0].pos;
        assert!((across.length() - 2.0 * params.strip.half_width).abs() < 1e-9);
        assert!(across.length() > 0.1, "ribbons are wide");
    }

    #[test]
    fn zero_max_magnitude_degrades_gracefully() {
        let line = graded_line();
        let params = RibbonParams {
            max_magnitude: 0.0,
            ..Default::default()
        };
        let (_, strands) = ribbon_strip(&line, Vec3::ZERO, &params);
        assert!(strands.iter().all(|&s| s == 1));
    }

    #[test]
    fn line_budget_saving() {
        assert_eq!(lines_replaced_by_ribbon(8), 8);
        assert_eq!(lines_replaced_by_ribbon(0), 1);
    }
}
