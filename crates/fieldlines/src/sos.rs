//! Self-orienting surfaces (§3.1): view-aligned triangle strips.
//!
//! "Each self-orienting surface is a triangle strip which is constructed
//! from a sequence of points along a curve, an associated sequence of
//! tangent vectors, and a viewing position. The triangle strip always
//! orients toward the observer which makes aligning a texture to the strip
//! easy." Two triangles per segment — "about five to six times less than a
//! typical streamtube representation would require".

use crate::line::FieldLine;
use accelviz_math::{Rgba, Vec3};
use accelviz_render::rasterizer::Vertex;

/// Self-orienting surface construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct SosParams {
    /// Half-width of the strip in world units.
    pub half_width: f64,
    /// Texture repeat length along the strip (world units per u cycle).
    pub u_period: f64,
    /// Base color (per-vertex colors can be overridden by a style).
    pub color: Rgba,
}

impl Default for SosParams {
    fn default() -> SosParams {
        SosParams {
            half_width: 0.01,
            u_period: 0.1,
            color: Rgba::rgb(0.35, 0.55, 1.0),
        }
    }
}

/// Builds the triangle strip of a self-orienting surface for a field line
/// seen from `eye`. Returns the strip vertices (2 per line point, so the
/// strip has `2·(n−1)` triangles); `uv.1` is 0 on one edge and 1 on the
/// other (the bump/halo texture coordinate), `uv.0` accumulates arc length
/// in units of `u_period`.
pub fn sos_strip(line: &FieldLine, eye: Vec3, params: &SosParams) -> Vec<Vertex> {
    let n = line.len();
    let mut verts = Vec::with_capacity(2 * n);
    let mut u = 0.0;
    let mut prev_point: Option<Vec3> = None;
    let mut prev_side: Option<Vec3> = None;
    for i in 0..n {
        let p = line.points[i];
        let t = line.tangents[i];
        if let Some(q) = prev_point {
            u += p.distance(q) / params.u_period;
        }
        // The self-orienting frame: side ⟂ tangent, ⟂ view direction.
        let view = eye - p;
        let mut side = t.cross(view).normalized_or_else_prev(prev_side, t);
        // Keep a consistent side orientation along the strip (avoid
        // flips where the view direction crosses the tangent plane).
        if let Some(ps) = prev_side {
            if side.dot(ps) < 0.0 {
                side = -side;
            }
        }
        prev_side = Some(side);
        prev_point = Some(p);
        let offset = side * params.half_width;
        verts.push(Vertex {
            pos: p - offset,
            uv: (u, 0.0),
            color: params.color,
        });
        verts.push(Vertex {
            pos: p + offset,
            uv: (u, 1.0),
            color: params.color,
        });
    }
    verts
}

/// Number of triangles in the strip for a line with `n` points.
pub fn sos_triangle_count(n_points: usize) -> usize {
    if n_points < 2 {
        0
    } else {
        2 * (n_points - 1)
    }
}

trait NormalizedOrPrev {
    fn normalized_or_else_prev(self, prev: Option<Vec3>, tangent: Vec3) -> Vec3;
}

impl NormalizedOrPrev for Vec3 {
    /// Normalize; when degenerate (view ∥ tangent), reuse the previous
    /// side vector or any perpendicular of the tangent.
    fn normalized_or_else_prev(self, prev: Option<Vec3>, tangent: Vec3) -> Vec3 {
        match self.normalized() {
            Some(v) => v,
            None => prev.unwrap_or_else(|| tangent.any_perpendicular()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_line(n: usize) -> FieldLine {
        let mut l = FieldLine::new();
        for i in 0..n {
            l.push(Vec3::new(i as f64 * 0.1, 0.0, 0.0), Vec3::UNIT_X, 1.0);
        }
        l
    }

    #[test]
    fn strip_has_two_vertices_per_point() {
        let line = straight_line(10);
        let eye = Vec3::new(0.5, 0.0, 5.0);
        let verts = sos_strip(&line, eye, &SosParams::default());
        assert_eq!(verts.len(), 20);
        assert_eq!(sos_triangle_count(10), 18);
        assert_eq!(sos_triangle_count(1), 0);
        assert_eq!(sos_triangle_count(0), 0);
    }

    #[test]
    fn strip_faces_the_observer() {
        // For a line along x viewed from +z, the side vector must be ±y:
        // the strip lies in the xy plane, facing the viewer.
        let line = straight_line(5);
        let eye = Vec3::new(0.2, 0.0, 5.0);
        let params = SosParams {
            half_width: 0.05,
            ..Default::default()
        };
        let verts = sos_strip(&line, eye, &params);
        for pair in verts.chunks(2) {
            let across = pair[1].pos - pair[0].pos;
            assert!(
                across.z.abs() < 1e-9,
                "strip must be perpendicular to the view"
            );
            assert!((across.length() - 0.1).abs() < 1e-9, "width = 2·half_width");
        }
    }

    #[test]
    fn texture_v_spans_zero_to_one_u_accumulates() {
        let line = straight_line(5); // spacing 0.1
        let eye = Vec3::new(0.0, 0.0, 5.0);
        let params = SosParams {
            u_period: 0.1,
            ..Default::default()
        };
        let verts = sos_strip(&line, eye, &params);
        for (i, v) in verts.iter().enumerate() {
            assert_eq!(v.uv.1, if i % 2 == 0 { 0.0 } else { 1.0 });
        }
        // u advances by 1 per point (0.1 spacing / 0.1 period).
        assert!((verts[0].uv.0 - 0.0).abs() < 1e-9);
        assert!((verts[8].uv.0 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn side_orientation_is_continuous() {
        // A gentle arc: consecutive side vectors must never flip sign.
        let mut line = FieldLine::new();
        for i in 0..50 {
            let a = i as f64 * 0.05;
            line.push(
                Vec3::new(a.cos(), a.sin(), 0.0),
                Vec3::new(-a.sin(), a.cos(), 0.0),
                1.0,
            );
        }
        let eye = Vec3::new(0.0, 0.0, 4.0);
        let verts = sos_strip(&line, eye, &SosParams::default());
        let mut prev: Option<Vec3> = None;
        for pair in verts.chunks(2) {
            let across = (pair[1].pos - pair[0].pos).normalized().unwrap();
            if let Some(p) = prev {
                assert!(across.dot(p) > 0.5, "side vector flipped");
            }
            prev = Some(across);
        }
    }

    #[test]
    fn degenerate_view_direction_is_handled() {
        // Eye exactly along the tangent of the first point.
        let line = straight_line(3);
        let eye = Vec3::new(10.0, 0.0, 0.0);
        let verts = sos_strip(&line, eye, &SosParams::default());
        for v in &verts {
            assert!(v.pos.is_finite());
        }
    }

    #[test]
    fn empty_line_gives_empty_strip() {
        let verts = sos_strip(&FieldLine::new(), Vec3::ZERO, &SosParams::default());
        assert!(verts.is_empty());
    }
}
