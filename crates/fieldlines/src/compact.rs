//! Compact storage of pre-integrated field lines.
//!
//! "Storing the precomputed field lines rather than the raw data can
//! significantly cut down the data storage and transfer requirements ...
//! The typical saving is about a factor of 25" (§3.4). The compact layout
//! stores single-precision positions plus a quantized magnitude — all a
//! viewer needs to rebuild every representation (strips orient at render
//! time from the view position; tangents are recovered from differences).

use crate::line::FieldLine;
use std::io::{self, Read, Write};

/// Magic bytes of the compact line format.
pub const MAGIC: [u8; 8] = *b"AVIZLINE";

/// Bytes per stored line vertex: 3 × f32 position + f32 magnitude.
pub const BYTES_PER_VERTEX: u64 = 16;

/// Exact serialized size of a line set.
pub fn compact_bytes(lines: &[FieldLine]) -> u64 {
    let header = 8 + 8; // magic + line count
    let per_line: u64 = lines
        .iter()
        .map(|l| 4 + l.len() as u64 * BYTES_PER_VERTEX)
        .sum();
    header + per_line
}

/// Serializes a line set to the compact format.
pub fn serialize_lines<W: Write>(w: &mut W, lines: &[FieldLine]) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&(lines.len() as u64).to_le_bytes())?;
    for line in lines {
        w.write_all(&(line.len() as u32).to_le_bytes())?;
        for i in 0..line.len() {
            let p = line.points[i];
            w.write_all(&(p.x as f32).to_le_bytes())?;
            w.write_all(&(p.y as f32).to_le_bytes())?;
            w.write_all(&(p.z as f32).to_le_bytes())?;
            w.write_all(&(line.magnitudes[i] as f32).to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserializes a compact line set; tangents are reconstructed from
/// central differences of the stored polyline.
pub fn deserialize_lines<R: Read>(r: &mut R) -> io::Result<Vec<FieldLine>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad line-set magic",
        ));
    }
    let mut u64b = [0u8; 8];
    r.read_exact(&mut u64b)?;
    let n_lines = u64::from_le_bytes(u64b);
    if n_lines > (1 << 32) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "implausible line count",
        ));
    }
    let mut f32b = [0u8; 4];
    let mut read_f32 = |r: &mut R| -> io::Result<f32> {
        r.read_exact(&mut f32b)?;
        Ok(f32::from_le_bytes(f32b))
    };
    let mut out = Vec::with_capacity(n_lines as usize);
    for _ in 0..n_lines {
        let mut u32b = [0u8; 4];
        r.read_exact(&mut u32b)?;
        let count = u32::from_le_bytes(u32b) as usize;
        let mut line = FieldLine::new();
        for _ in 0..count {
            let x = read_f32(r)? as f64;
            let y = read_f32(r)? as f64;
            let z = read_f32(r)? as f64;
            let m = read_f32(r)? as f64;
            line.push(
                accelviz_math::Vec3::new(x, y, z),
                accelviz_math::Vec3::ZERO,
                m,
            );
        }
        // Rebuild tangents from the polyline.
        let n = line.len();
        for i in 0..n {
            let prev = line.points[i.saturating_sub(1)];
            let next = line.points[(i + 1).min(n.saturating_sub(1))];
            line.tangents[i] = (next - prev).normalized_or(accelviz_math::Vec3::UNIT_X);
        }
        out.push(line);
    }
    Ok(out)
}

/// The storage-saving factor of a compact line set relative to a raw
/// E+B field dump over `mesh_elements` elements — the paper's "factor of
/// 25".
pub fn saving_factor(lines: &[FieldLine], mesh_elements: u64) -> f64 {
    let raw = accelviz_emsim::io::snapshot_bytes(mesh_elements) as f64;
    let compact = compact_bytes(lines) as f64;
    if compact <= 0.0 {
        f64::INFINITY
    } else {
        raw / compact
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_math::Vec3;

    fn sample_lines() -> Vec<FieldLine> {
        (0..5)
            .map(|li| {
                let mut l = FieldLine::new();
                for i in 0..20 {
                    l.push(
                        Vec3::new(i as f64 * 0.1, li as f64, (i as f64 * 0.3).sin()),
                        Vec3::UNIT_X,
                        0.5 + i as f64 * 0.01,
                    );
                }
                l
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_geometry_within_f32() {
        let lines = sample_lines();
        let mut buf = Vec::new();
        serialize_lines(&mut buf, &lines).unwrap();
        assert_eq!(buf.len() as u64, compact_bytes(&lines));
        let back = deserialize_lines(&mut buf.as_slice()).unwrap();
        assert_eq!(back.len(), lines.len());
        for (a, b) in lines.iter().zip(&back) {
            assert_eq!(a.len(), b.len());
            for i in 0..a.len() {
                assert!(a.points[i].distance(b.points[i]) < 1e-6);
                assert!((a.magnitudes[i] - b.magnitudes[i]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn tangents_are_reconstructed() {
        let lines = sample_lines();
        let mut buf = Vec::new();
        serialize_lines(&mut buf, &lines).unwrap();
        let back = deserialize_lines(&mut buf.as_slice()).unwrap();
        for l in &back {
            for t in &l.tangents {
                assert!((t.length() - 1.0).abs() < 1e-9, "tangents must be unit");
            }
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        serialize_lines(&mut buf, &sample_lines()).unwrap();
        buf[3] ^= 0x55;
        assert!(deserialize_lines(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut buf = Vec::new();
        serialize_lines(&mut buf, &sample_lines()).unwrap();
        let cut = &buf[..buf.len() - 3];
        assert!(deserialize_lines(&mut &cut[..]).is_err());
    }

    #[test]
    fn empty_set_roundtrips() {
        let mut buf = Vec::new();
        serialize_lines(&mut buf, &[]).unwrap();
        let back = deserialize_lines(&mut buf.as_slice()).unwrap();
        assert!(back.is_empty());
        assert_eq!(compact_bytes(&[]), 16);
    }

    #[test]
    fn paper_scale_saving_factor_is_about_25() {
        // Paper-typical budget: a few thousand pre-integrated lines versus
        // an 80 MB (1.6 M-element) raw field step. 4 000 lines × ~47
        // vertices × 16 B ≈ 3 MB → saving ≈ 25×.
        let lines: Vec<FieldLine> = (0..4_000)
            .map(|_| {
                let mut l = FieldLine::new();
                for i in 0..47 {
                    l.push(Vec3::new(i as f64, 0.0, 0.0), Vec3::UNIT_X, 1.0);
                }
                l
            })
            .collect();
        let factor = saving_factor(&lines, 1_600_000);
        assert!(
            (20.0..32.0).contains(&factor),
            "saving factor ≈25, got {factor:.1}"
        );
    }
}
