//! Illuminated field lines baseline (Figure 6(b); Stalling, Zöckler &
//! Hege, the paper's ref \[13\]).
//!
//! Classic line-primitive illumination: the intensity of an infinitely
//! thin line is computed from its tangent, `diffuse ∝ √(1 − (L·T)²)`,
//! with the well-known limitation the paper calls out — "thin lines could
//! look artificial because the texture does not vary sideways across the
//! width of the lines" and they provide no perspective depth cue.

use crate::line::FieldLine;
use accelviz_math::{Rgba, Vec3};

/// A shaded line segment ready for 1-pixel-wide rendering.
#[derive(Clone, Copy, Debug)]
pub struct ShadedSegment {
    /// Segment start.
    pub a: Vec3,
    /// Segment end.
    pub b: Vec3,
    /// Illuminated color (constant across the line's width — the
    /// limitation the self-orienting surfaces fix).
    pub color: Rgba,
}

/// Tangent-based line illumination for a light direction `light`.
pub fn illuminate_tangent(tangent: Vec3, light: Vec3, base: Rgba) -> Rgba {
    let t = tangent.normalized_or(Vec3::UNIT_X);
    let l = light.normalized_or(Vec3::UNIT_Z);
    let lt = t.dot(l).clamp(-1.0, 1.0);
    // Maximal diffuse when the line is perpendicular to the light.
    let diffuse = (1.0 - lt * lt).sqrt() as f32;
    let spec = diffuse.powi(16) * 0.4;
    Rgba::new(
        (base.r * (0.1 + 0.8 * diffuse) + spec).min(1.0),
        (base.g * (0.1 + 0.8 * diffuse) + spec).min(1.0),
        (base.b * (0.1 + 0.8 * diffuse) + spec).min(1.0),
        base.a,
    )
}

/// Converts a field line into illuminated segments for a headlight at
/// `eye`.
pub fn illuminated_segments(line: &FieldLine, eye: Vec3, base: Rgba) -> Vec<ShadedSegment> {
    let mut out = Vec::with_capacity(line.segment_count());
    for i in 0..line.segment_count() {
        let a = line.points[i];
        let b = line.points[i + 1];
        let mid = (a + b) * 0.5;
        let color = illuminate_tangent(line.tangents[i], eye - mid, base);
        out.push(ShadedSegment { a, b, color });
    }
    out
}

/// Geometry cost of the illuminated-lines representation: line segments,
/// not triangles (for the FIG6 primitive-count table).
pub fn segment_count(line: &FieldLine) -> usize {
    line.segment_count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perpendicular_lines_are_brightest() {
        let base = Rgba::rgb(0.5, 0.5, 0.5);
        let perp = illuminate_tangent(Vec3::UNIT_X, Vec3::UNIT_Z, base);
        let parallel = illuminate_tangent(Vec3::UNIT_Z, Vec3::UNIT_Z, base);
        assert!(perp.luminance() > parallel.luminance());
        // A line parallel to the light gets only the ambient floor.
        assert!(parallel.luminance() < 0.12);
    }

    #[test]
    fn illumination_is_symmetric_in_light_sign() {
        let base = Rgba::rgb(0.3, 0.6, 0.9);
        let a = illuminate_tangent(Vec3::UNIT_X, Vec3::UNIT_Z, base);
        let b = illuminate_tangent(Vec3::UNIT_X, -Vec3::UNIT_Z, base);
        assert!((a.luminance() - b.luminance()).abs() < 1e-6);
    }

    #[test]
    fn segments_cover_the_line() {
        let mut line = FieldLine::new();
        for i in 0..6 {
            line.push(Vec3::new(i as f64, 0.0, 0.0), Vec3::UNIT_X, 1.0);
        }
        let segs = illuminated_segments(&line, Vec3::new(0.0, 0.0, 10.0), Rgba::WHITE);
        assert_eq!(segs.len(), 5);
        assert_eq!(segment_count(&line), 5);
        for (i, s) in segs.iter().enumerate() {
            assert_eq!(s.a, line.points[i]);
            assert_eq!(s.b, line.points[i + 1]);
        }
    }

    #[test]
    fn no_sideways_variation() {
        // The documented limitation: one color per segment, regardless of
        // where across the (conceptual) width you sample.
        let base = Rgba::rgb(1.0, 0.2, 0.2);
        let c = illuminate_tangent(Vec3::UNIT_X, Vec3::UNIT_Z, base);
        // (Nothing to vary: the API has no cross-line coordinate at all,
        // which is exactly what Figure 6(d) improves on.)
        assert!(c.a == base.a);
    }
}
