//! Evenly-spaced streamline placement — the prior-art baseline (§3.2).
//!
//! "Much work has been done [2, 7, 14] for providing aesthetically
//! pleasing streamlines through careful selection of seed points. The
//! emphasis is generally on producing a visually uniform density of
//! streamlines in the final image. Our approach is to select seeds so
//! that the local density ... is approximately proportional to the local
//! magnitude of the underlying field."
//!
//! This module implements a Jobard–Lefer-style evenly-spaced placement so
//! the comparison the paper draws (uniform density vs magnitude-
//! proportional density) can be measured: uniform placement should show
//! ~zero correlation between line density and field magnitude, the
//! paper's seeder a positive one.

use crate::integrate::{trace, TraceParams};
use crate::line::FieldLine;
use accelviz_emsim::sample::{FieldSampler, VectorField3};
use accelviz_math::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Evenly-spaced placement parameters.
#[derive(Clone, Copy, Debug)]
pub struct UniformSeedingParams {
    /// Target number of lines.
    pub n_lines: usize,
    /// Minimum separation between any two line points (world units) — the
    /// "even spacing" knob.
    pub separation: f64,
    /// Streamline integration parameters.
    pub trace: TraceParams,
    /// RNG seed for candidate positions.
    pub seed: u64,
    /// Maximum candidate seeds tried before giving up.
    pub max_candidates: usize,
}

impl Default for UniformSeedingParams {
    fn default() -> UniformSeedingParams {
        UniformSeedingParams {
            n_lines: 100,
            separation: 0.05,
            trace: TraceParams::default(),
            seed: 1,
            max_candidates: 10_000,
        }
    }
}

/// A coarse spatial hash for the separation test.
struct SeparationGrid {
    cell: f64,
    origin: Vec3,
    dims: [usize; 3],
    occupied: Vec<Vec<Vec3>>,
}

impl SeparationGrid {
    fn new(bounds: &accelviz_math::Aabb, separation: f64) -> SeparationGrid {
        let cell = separation.max(1e-9);
        let size = bounds.size();
        let dims = [
            ((size.x / cell).ceil() as usize).max(1),
            ((size.y / cell).ceil() as usize).max(1),
            ((size.z / cell).ceil() as usize).max(1),
        ];
        SeparationGrid {
            cell,
            origin: bounds.min,
            dims,
            occupied: vec![Vec::new(); dims[0] * dims[1] * dims[2]],
        }
    }

    fn cell_of(&self, p: Vec3) -> [isize; 3] {
        [
            ((p.x - self.origin.x) / self.cell).floor() as isize,
            ((p.y - self.origin.y) / self.cell).floor() as isize,
            ((p.z - self.origin.z) / self.cell).floor() as isize,
        ]
    }

    fn index(&self, c: [isize; 3]) -> Option<usize> {
        if c.iter()
            .zip(self.dims.iter())
            .any(|(&v, &d)| v < 0 || v >= d as isize)
        {
            return None;
        }
        Some(c[0] as usize + self.dims[0] * (c[1] as usize + self.dims[1] * c[2] as usize))
    }

    fn is_clear(&self, p: Vec3, separation: f64) -> bool {
        let base = self.cell_of(p);
        for dz in -1..=1 {
            for dy in -1..=1 {
                for dx in -1..=1 {
                    let c = [base[0] + dx, base[1] + dy, base[2] + dz];
                    if let Some(idx) = self.index(c) {
                        for q in &self.occupied[idx] {
                            if q.distance(p) < separation {
                                return false;
                            }
                        }
                    }
                }
            }
        }
        true
    }

    fn insert(&mut self, p: Vec3) {
        let c = self.cell_of(p);
        if let Some(idx) = self.index(c) {
            self.occupied[idx].push(p);
        }
    }
}

/// Seeds evenly-spaced streamlines: random candidate seeds are accepted
/// only when the traced line keeps the minimum separation from all
/// previously placed lines. Field magnitude plays no role — by design.
pub fn seed_lines_uniform(field: &FieldSampler, params: &UniformSeedingParams) -> Vec<FieldLine> {
    let bounds = field.bounds();
    let mut grid = SeparationGrid::new(&bounds, params.separation);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut out = Vec::new();
    let mut tried = 0;
    while out.len() < params.n_lines && tried < params.max_candidates {
        tried += 1;
        let p = Vec3::new(
            rng.gen_range(bounds.min.x..bounds.max.x),
            rng.gen_range(bounds.min.y..bounds.max.y),
            rng.gen_range(bounds.min.z..bounds.max.z),
        );
        if !grid.is_clear(p, params.separation) {
            continue;
        }
        let line = trace(field, p, &params.trace);
        if line.len() < 2 {
            continue;
        }
        // Accept only if the whole line keeps its distance (sampled every
        // few points to keep the test cheap, as the published algorithms
        // do).
        if !line
            .points
            .iter()
            .step_by(2)
            .all(|&q| grid.is_clear(q, params.separation))
        {
            continue;
        }
        for &q in line.points.iter().step_by(2) {
            grid.insert(q);
        }
        out.push(line);
    }
    out
}

/// Minimum pairwise distance between points of different lines (the
/// even-spacing quality metric).
pub fn min_inter_line_distance(lines: &[FieldLine]) -> f64 {
    let mut min = f64::INFINITY;
    for i in 0..lines.len() {
        for j in (i + 1)..lines.len() {
            for a in lines[i].points.iter().step_by(2) {
                for b in lines[j].points.iter().step_by(2) {
                    min = min.min(a.distance(*b));
                }
            }
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_math::Aabb;

    /// F = (0, 0, 1 + 3x) on the unit cube (same as the seeding tests).
    fn graded_field() -> FieldSampler {
        let n = 16;
        let bounds = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let mut vectors = Vec::with_capacity(n * n * n);
        for _k in 0..n {
            for _j in 0..n {
                for i in 0..n {
                    let x = (i as f64 + 0.5) / n as f64;
                    vectors.push(Vec3::new(0.0, 0.0, 1.0 + 3.0 * x));
                }
            }
        }
        FieldSampler::from_vectors([n, n, n], bounds, vectors)
    }

    fn params(n: usize, sep: f64) -> UniformSeedingParams {
        UniformSeedingParams {
            n_lines: n,
            separation: sep,
            trace: TraceParams {
                step: 0.04,
                max_steps: 100,
                ..Default::default()
            },
            seed: 7,
            max_candidates: 20_000,
        }
    }

    #[test]
    fn lines_respect_the_separation() {
        let f = graded_field();
        let lines = seed_lines_uniform(&f, &params(40, 0.08));
        assert!(lines.len() > 5, "placement must succeed: {}", lines.len());
        let d = min_inter_line_distance(&lines);
        // The accept test samples every other point, so the guarantee is
        // slightly loose; half the separation is the conservative bound.
        assert!(d > 0.04, "separation violated: {d}");
    }

    #[test]
    fn smaller_separation_allows_more_lines() {
        let f = graded_field();
        let sparse = seed_lines_uniform(&f, &params(400, 0.15));
        let dense = seed_lines_uniform(&f, &params(400, 0.05));
        assert!(
            dense.len() > sparse.len(),
            "{} vs {}",
            dense.len(),
            sparse.len()
        );
    }

    #[test]
    fn uniform_placement_ignores_field_magnitude() {
        // The paper's contrast: even spacing produces near-uniform density
        // regardless of |F|, so its correlation with |F| is ~0, while the
        // magnitude-proportional seeder's is clearly positive.
        use crate::seeding::{density_correlation, seed_lines, SeededLine, SeedingParams};
        let f = graded_field();
        let uniform = seed_lines_uniform(&f, &params(120, 0.05));
        // Wrap in SeededLine form to reuse the correlation metric.
        let wrapped: Vec<SeededLine> = uniform
            .into_iter()
            .enumerate()
            .map(|(i, line)| SeededLine {
                order: i,
                seed_element: 0,
                line,
            })
            .collect();
        let r_uniform = density_correlation(&f, &wrapped, wrapped.len());
        let proportional = seed_lines(
            &f,
            &SeedingParams {
                n_lines: 120,
                trace: TraceParams {
                    step: 0.04,
                    max_steps: 200,
                    ..Default::default()
                },
                seed: 7,
                min_magnitude_frac: 1e-6,
            },
        );
        let r_prop = density_correlation(&f, &proportional, proportional.len());
        assert!(
            r_prop > r_uniform + 0.2,
            "magnitude-proportional (r = {r_prop:.3}) must beat uniform (r = {r_uniform:.3})"
        );
        assert!(
            r_uniform.abs() < 0.35,
            "uniform placement should be ~uncorrelated: {r_uniform}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let f = graded_field();
        let a = seed_lines_uniform(&f, &params(30, 0.08));
        let b = seed_lines_uniform(&f, &params(30, 0.08));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.points, y.points);
        }
    }

    #[test]
    fn empty_field_places_nothing() {
        let bounds = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let f = FieldSampler::from_vectors([4, 4, 4], bounds, vec![Vec3::ZERO; 64]);
        let lines = seed_lines_uniform(&f, &params(10, 0.05));
        assert!(lines.is_empty());
    }
}
