//! Color/opacity styling by field strength (Figure 10).
//!
//! "The sequence of images in Figure 10 shows incremental loading of field
//! lines ... with line transparency and color assigned according to the
//! field strength. The key is that the scientist is allowed to
//! interactively change these visualization and viewing parameters, and
//! then see the resulting visualization immediately" — restyling touches
//! only per-vertex colors, never re-integrates lines, which is what the
//! FIG10 bench measures.

use crate::line::FieldLine;
use crate::sos::{sos_strip, SosParams};
use accelviz_math::{Rgba, Vec3};
use accelviz_render::rasterizer::Vertex;

/// A magnitude-driven line style.
#[derive(Clone, Copy, Debug)]
pub struct LineStyle {
    /// Color at zero magnitude.
    pub cold_color: Rgba,
    /// Color at `max_magnitude`.
    pub hot_color: Rgba,
    /// Opacity at zero magnitude (Figure 10 top row: weak lines fade out).
    pub min_opacity: f32,
    /// Opacity at `max_magnitude`.
    pub max_opacity: f32,
    /// Normalizing magnitude.
    pub max_magnitude: f64,
}

impl LineStyle {
    /// The paper's electric-field styling: blue (the E lines of Figure 9
    /// are "shown in blue") ramping to white-hot, opacity proportional to
    /// field strength.
    pub fn electric(max_magnitude: f64) -> LineStyle {
        LineStyle {
            cold_color: Rgba::rgb(0.1, 0.2, 0.9),
            hot_color: Rgba::rgb(1.0, 1.0, 1.0),
            min_opacity: 0.05,
            max_opacity: 1.0,
            max_magnitude: max_magnitude.max(1e-300),
        }
    }

    /// Magnetic-field styling (warm colors).
    pub fn magnetic(max_magnitude: f64) -> LineStyle {
        LineStyle {
            cold_color: Rgba::rgb(0.6, 0.15, 0.05),
            hot_color: Rgba::rgb(1.0, 0.9, 0.3),
            min_opacity: 0.05,
            max_opacity: 1.0,
            max_magnitude: max_magnitude.max(1e-300),
        }
    }

    /// Color + opacity for a field magnitude.
    pub fn color_for(&self, magnitude: f64) -> Rgba {
        let t = (magnitude / self.max_magnitude).clamp(0.0, 1.0) as f32;
        self.cold_color
            .lerp(self.hot_color, t)
            .with_alpha(self.min_opacity + (self.max_opacity - self.min_opacity) * t)
    }

    /// Builds a styled self-orienting strip: geometry from [`sos_strip`],
    /// per-vertex colors from the local field magnitude.
    pub fn styled_strip(&self, line: &FieldLine, eye: Vec3, params: &SosParams) -> Vec<Vertex> {
        let mut verts = sos_strip(line, eye, params);
        self.restyle_strip(line, &mut verts);
        verts
    }

    /// Re-colors an existing strip in place (the interactive restyle
    /// path: no re-integration, no re-orientation).
    pub fn restyle_strip(&self, line: &FieldLine, verts: &mut [Vertex]) {
        for (i, v) in verts.iter_mut().enumerate() {
            let point_idx = (i / 2).min(line.magnitudes.len().saturating_sub(1));
            v.color = self.color_for(line.magnitudes[point_idx]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graded_line() -> FieldLine {
        let mut l = FieldLine::new();
        for i in 0..10 {
            l.push(
                Vec3::new(i as f64 * 0.1, 0.0, 0.0),
                Vec3::UNIT_X,
                i as f64 / 9.0,
            );
        }
        l
    }

    #[test]
    fn opacity_is_monotone_in_magnitude() {
        let style = LineStyle::electric(1.0);
        let mut prev = -1.0f32;
        for i in 0..=10 {
            let c = style.color_for(i as f64 / 10.0);
            assert!(c.a >= prev, "opacity must grow with magnitude");
            prev = c.a;
        }
        assert!((style.color_for(0.0).a - 0.05).abs() < 1e-6);
        assert!((style.color_for(1.0).a - 1.0).abs() < 1e-6);
        // Clamped beyond the max.
        assert_eq!(style.color_for(5.0).a, style.color_for(1.0).a);
    }

    #[test]
    fn colors_interpolate_between_endpoints() {
        let style = LineStyle::electric(1.0);
        let cold = style.color_for(0.0);
        let hot = style.color_for(1.0);
        assert!(cold.b > cold.r, "cold end is blue");
        assert!(hot.r > 0.9 && hot.g > 0.9, "hot end is white");
    }

    #[test]
    fn styled_strip_matches_geometry_of_plain_strip() {
        let line = graded_line();
        let eye = Vec3::new(0.0, 0.0, 5.0);
        let params = SosParams::default();
        let plain = sos_strip(&line, eye, &params);
        let styled = LineStyle::electric(1.0).styled_strip(&line, eye, &params);
        assert_eq!(plain.len(), styled.len());
        for (a, b) in plain.iter().zip(&styled) {
            assert_eq!(a.pos, b.pos, "restyling must not move geometry");
            assert_eq!(a.uv, b.uv);
        }
        // But colors differ along the ramp.
        assert!(styled[0].color.a < styled[styled.len() - 1].color.a);
    }

    #[test]
    fn restyle_in_place_changes_only_color() {
        let line = graded_line();
        let eye = Vec3::new(0.0, 0.0, 5.0);
        let mut verts = sos_strip(&line, eye, &SosParams::default());
        let before: Vec<_> = verts.iter().map(|v| v.pos).collect();
        LineStyle::magnetic(1.0).restyle_strip(&line, &mut verts);
        for (v, p) in verts.iter().zip(&before) {
            assert_eq!(v.pos, *p);
        }
        // Magnetic palette is warm at the hot end.
        let hot = verts.last().unwrap().color;
        assert!(hot.r > hot.b);
    }
}
