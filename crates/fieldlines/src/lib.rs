//! Field-line visualization: magnitude-proportional incremental seeding
//! and the *self-orienting surfaces* representation (§3 of the paper;
//! Schussman & Ma, Pacific Graphics 2002).
//!
//! - [`mod@line`] — field-line polylines with tangents and local magnitudes.
//! - [`integrate`] — RK4 streamline tracing through a
//!   [`accelviz_emsim::sample::VectorField3`].
//! - [`seeding`] — the paper's seeding strategy: per-element desired line
//!   counts proportional to ⟨|F|⟩·volume, always extending from the
//!   neediest element, decrementing as lines pass through elements — so
//!   any prefix of the line list shows density ∝ field magnitude and each
//!   rendered set is a superset of the previous (incremental
//!   visualization, Figures 7 and 10).
//! - [`sos`] — self-orienting surfaces: view-aligned triangle strips with
//!   texture-based tube shading (2 triangles per segment).
//! - [`tube`] — the conventional streamtube baseline (2·m triangles per
//!   segment for an m-gon cross-section) the paper compares against.
//! - [`ribbon`] — the wide textured-ribbon variant of Figure 6(e).
//! - [`illuminated`] — the illuminated-field-lines baseline \[13\].
//! - [`compact`] — the compact pre-integrated line storage that buys the
//!   paper's ~25× reduction over raw field dumps.
//! - [`style`] — color/opacity mapping by field strength (Figure 10).
//! - [`uniform`] — the evenly-spaced placement baseline of the prior art
//!   the paper contrasts with (§3.2 refs [2, 7, 14]).
//! - [`roi`] — region-of-interest cutaway and focus+context (§3.3.3).
//! - [`temporal`] — time-varying line animation with parallel
//!   pre-integration (§3.4).

pub mod compact;
pub mod illuminated;
pub mod integrate;
pub mod line;
pub mod ribbon;
pub mod roi;
pub mod seeding;
pub mod sos;
pub mod style;
pub mod temporal;
pub mod tube;
pub mod uniform;

pub use compact::{compact_bytes, deserialize_lines, serialize_lines};
pub use integrate::{trace, TraceParams};
pub use line::FieldLine;
pub use roi::{cutaway, focus_alphas, Region};
pub use seeding::{seed_lines, SeededLine, SeedingParams};
pub use sos::{sos_strip, SosParams};
pub use style::LineStyle;
pub use temporal::{precompute_animation, LineAnimation};
pub use tube::{tube_triangles, TubeParams};
pub use uniform::{seed_lines_uniform, UniformSeedingParams};
