//! RK4 streamline integration through a vector field.

use crate::line::FieldLine;
use accelviz_emsim::sample::VectorField3;
use accelviz_math::Vec3;

/// Streamline tracing parameters.
#[derive(Clone, Copy, Debug)]
pub struct TraceParams {
    /// Integration step length (world units).
    pub step: f64,
    /// Maximum vertices per direction.
    pub max_steps: usize,
    /// Stop when |F| falls below this (field lines of E "originate and
    /// terminate at the surface of the mesh", where the interpolated field
    /// decays to zero).
    pub min_magnitude: f64,
    /// Trace both directions from the seed and join (true for field
    /// lines; false traces downstream only).
    pub bidirectional: bool,
}

impl Default for TraceParams {
    fn default() -> TraceParams {
        TraceParams {
            step: 0.02,
            max_steps: 500,
            min_magnitude: 1e-9,
            bidirectional: true,
        }
    }
}

/// One RK4 step along the *normalized* field (arc-length parameterization,
/// so step size is geometric regardless of field strength).
fn rk4_step(field: &dyn VectorField3, p: Vec3, h: f64) -> Option<Vec3> {
    let dir = |q: Vec3| -> Option<Vec3> { field.sample(q).normalized() };
    let k1 = dir(p)?;
    let k2 = dir(p + k1 * (h / 2.0))?;
    let k3 = dir(p + k2 * (h / 2.0))?;
    let k4 = dir(p + k3 * h)?;
    Some(p + (k1 + k2 * 2.0 + k3 * 2.0 + k4) * (h / 6.0))
}

/// Traces a single direction from `seed` (sign of `h` selects direction).
fn trace_direction(
    field: &dyn VectorField3,
    seed: Vec3,
    h: f64,
    params: &TraceParams,
) -> FieldLine {
    let mut line = FieldLine::new();
    let bounds = field.bounds();
    let mut p = seed;
    for _ in 0..params.max_steps {
        let f = field.sample(p);
        let mag = f.length();
        if mag < params.min_magnitude || !bounds.contains(p) {
            break;
        }
        let t = f / mag * h.signum();
        line.push(p, t, mag);
        match rk4_step(field, p, h) {
            Some(next) => {
                if next.distance(p) < 1e-3 * h.abs() {
                    break; // stagnation point
                }
                p = next;
            }
            None => break,
        }
    }
    line
}

/// Traces a field line through `seed`. With `bidirectional`, the backward
/// trace is reversed and joined with the forward trace so the result runs
/// tail → head along the field direction.
pub fn trace(field: &dyn VectorField3, seed: Vec3, params: &TraceParams) -> FieldLine {
    assert!(params.step > 0.0, "step must be positive");
    let forward = trace_direction(field, seed, params.step, params);
    if !params.bidirectional {
        return forward;
    }
    let mut backward = trace_direction(field, seed, -params.step, params);
    backward.reverse();
    // `backward` now ends at the seed; `forward` starts there.
    backward.extend_with(&forward);
    backward
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_emsim::sample::FieldSampler;
    use accelviz_math::Aabb;

    /// A uniform +x field on the unit cube.
    fn uniform_x() -> FieldSampler {
        FieldSampler::from_vectors(
            [8, 8, 8],
            Aabb::new(Vec3::ZERO, Vec3::ONE),
            vec![Vec3::UNIT_X; 512],
        )
    }

    /// A circular field about the z axis on [-1,1]³: F = (−y, x, 0).
    fn circular() -> FieldSampler {
        let bounds = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        let n = 24;
        let mut vectors = Vec::with_capacity(n * n * n);
        for k in 0..n {
            let _ = k;
            for j in 0..n {
                for i in 0..n {
                    let x = -1.0 + (i as f64 + 0.5) * 2.0 / n as f64;
                    let y = -1.0 + (j as f64 + 0.5) * 2.0 / n as f64;
                    vectors.push(Vec3::new(-y, x, 0.0));
                }
            }
        }
        FieldSampler::from_vectors([n, n, n], bounds, vectors)
    }

    #[test]
    fn uniform_field_gives_straight_line() {
        let f = uniform_x();
        let params = TraceParams {
            step: 0.05,
            max_steps: 100,
            ..Default::default()
        };
        let line = trace(&f, Vec3::splat(0.5), &params);
        assert!(line.len() > 10);
        // All points share y = z = 0.5.
        for p in &line.points {
            assert!((p.y - 0.5).abs() < 1e-9 && (p.z - 0.5).abs() < 1e-9);
        }
        // Bidirectional trace spans (nearly) the whole cube in x.
        let x0 = line.points.first().unwrap().x;
        let x1 = line.points.last().unwrap().x;
        assert!(x0 < 0.15 && x1 > 0.85, "span [{x0}, {x1}]");
        // Points advance monotonically along +x with unit tangents.
        for w in line.points.windows(2) {
            assert!(w[1].x > w[0].x);
        }
        for t in &line.tangents {
            assert!(t.distance(Vec3::UNIT_X) < 1e-9);
        }
    }

    #[test]
    fn forward_only_traces_downstream() {
        let f = uniform_x();
        let params = TraceParams {
            step: 0.05,
            max_steps: 100,
            bidirectional: false,
            ..Default::default()
        };
        let line = trace(&f, Vec3::splat(0.5), &params);
        assert!((line.points[0].x - 0.5).abs() < 1e-12, "starts at the seed");
        assert!(line.points.last().unwrap().x > 0.85);
    }

    #[test]
    fn circular_field_closes_on_itself() {
        let f = circular();
        let params = TraceParams {
            step: 0.01,
            max_steps: 2000,
            bidirectional: false,
            ..Default::default()
        };
        let seed = Vec3::new(0.5, 0.0, 0.0);
        let line = trace(&f, seed, &params);
        // RK4 on a circle: radius is conserved to high accuracy.
        for p in line.points.iter().step_by(50) {
            let r = (p.x * p.x + p.y * p.y).sqrt();
            assert!((r - 0.5).abs() < 0.01, "radius drifted to {r}");
        }
        // The trace should complete at least one full revolution
        // (circumference π at radius 0.5, 2000 × 0.01 = 20 units).
        assert!(line.arc_length() > 2.0 * std::f64::consts::PI * 0.5);
    }

    #[test]
    fn magnitudes_are_recorded() {
        let f = circular(); // |F| = r
        let params = TraceParams {
            step: 0.01,
            max_steps: 50,
            bidirectional: false,
            ..Default::default()
        };
        let line = trace(&f, Vec3::new(0.5, 0.0, 0.0), &params);
        for (p, &m) in line.points.iter().zip(&line.magnitudes) {
            let r = (p.x * p.x + p.y * p.y).sqrt();
            assert!((m - r).abs() < 0.05, "magnitude {m} vs radius {r}");
        }
    }

    #[test]
    fn zero_field_seed_yields_empty_line() {
        let bounds = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let f = FieldSampler::from_vectors([4, 4, 4], bounds, vec![Vec3::ZERO; 64]);
        let line = trace(&f, Vec3::splat(0.5), &TraceParams::default());
        assert!(line.is_empty());
    }

    #[test]
    fn trace_stops_at_domain_boundary() {
        let f = uniform_x();
        let params = TraceParams {
            step: 0.05,
            max_steps: 10_000,
            ..Default::default()
        };
        let line = trace(&f, Vec3::splat(0.5), &params);
        for p in &line.points {
            assert!(f.bounds().contains(*p));
        }
        assert!(line.len() < 100, "must terminate well before max_steps");
    }

    #[test]
    #[should_panic]
    fn nonpositive_step_panics() {
        let f = uniform_x();
        let params = TraceParams {
            step: 0.0,
            ..Default::default()
        };
        let _ = trace(&f, Vec3::splat(0.5), &params);
    }
}
