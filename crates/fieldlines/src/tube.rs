//! Conventional streamtube baseline (Figure 6(c)).
//!
//! A polygonal tube sweeps an m-gon cross-section along the line: 2·m
//! triangles per segment plus caps, versus the self-orienting surface's 2.
//! This is the geometry-count baseline behind the paper's "five to six
//! times less" claim.

use crate::line::FieldLine;
use accelviz_math::{Rgba, Vec3};
use accelviz_render::rasterizer::Vertex;
use accelviz_render::shading::{headlight_phong, Material};

/// Streamtube construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct TubeParams {
    /// Tube radius (world units).
    pub radius: f64,
    /// Number of sides of the cross-section polygon. The paper's 5–6×
    /// triangle savings corresponds to the customary 10–12 sides.
    pub sides: usize,
    /// Base color.
    pub color: Rgba,
}

impl Default for TubeParams {
    fn default() -> TubeParams {
        TubeParams {
            radius: 0.01,
            sides: 12,
            color: Rgba::rgb(0.35, 0.55, 1.0),
        }
    }
}

/// Builds the triangle list of a streamtube, Gouraud-lit with a headlight
/// at `eye` (per-vertex Phong so the software pass matches what the
/// fixed-function hardware path would produce).
pub fn tube_triangles(line: &FieldLine, eye: Vec3, params: &TubeParams) -> Vec<[Vertex; 3]> {
    assert!(params.sides >= 3, "tube needs at least 3 sides");
    let n = line.len();
    if n < 2 {
        return Vec::new();
    }
    let material = Material::default();

    // Build rings with a parallel-transported frame to avoid twisting.
    let mut rings: Vec<Vec<(Vec3, Vec3)>> = Vec::with_capacity(n); // (pos, normal)
    let mut normal = line.tangents[0].any_perpendicular();
    for i in 0..n {
        let t = line.tangents[i];
        // Re-orthogonalize the transported normal against the new tangent.
        normal = (normal - t * normal.dot(t)).normalized_or(t.any_perpendicular());
        let binormal = t.cross(normal).normalized_or(normal.any_perpendicular());
        let mut ring = Vec::with_capacity(params.sides);
        for s in 0..params.sides {
            let a = s as f64 / params.sides as f64 * std::f64::consts::TAU;
            let dir = normal * a.cos() + binormal * a.sin();
            ring.push((line.points[i] + dir * params.radius, dir));
        }
        rings.push(ring);
    }

    let lit = |pos: Vec3, n: Vec3| -> Rgba {
        let view = (eye - pos).normalized_or(Vec3::UNIT_Z);
        let (scale, spec) = headlight_phong(&material, n.dot(view) as f32);
        Rgba::new(
            params.color.r * scale + spec,
            params.color.g * scale + spec,
            params.color.b * scale + spec,
            params.color.a,
        )
        .clamped()
    };
    let vert = |(pos, n): (Vec3, Vec3)| Vertex {
        pos,
        uv: (0.0, 0.0),
        color: lit(pos, n),
    };

    let mut tris = Vec::with_capacity(2 * params.sides * (n - 1));
    for i in 0..n - 1 {
        for s in 0..params.sides {
            let s2 = (s + 1) % params.sides;
            let a = rings[i][s];
            let b = rings[i][s2];
            let c = rings[i + 1][s];
            let d = rings[i + 1][s2];
            tris.push([vert(a), vert(b), vert(c)]);
            tris.push([vert(b), vert(d), vert(c)]);
        }
    }
    tris
}

/// Triangle count of a streamtube over a line with `n` points (no caps).
pub fn tube_triangle_count(n_points: usize, sides: usize) -> usize {
    if n_points < 2 {
        0
    } else {
        2 * sides * (n_points - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sos::sos_triangle_count;

    fn straight_line(n: usize) -> FieldLine {
        let mut l = FieldLine::new();
        for i in 0..n {
            l.push(Vec3::new(i as f64 * 0.1, 0.0, 0.0), Vec3::UNIT_X, 1.0);
        }
        l
    }

    #[test]
    fn triangle_count_matches_formula() {
        let line = straight_line(10);
        let params = TubeParams::default();
        let tris = tube_triangles(&line, Vec3::new(0.0, 0.0, 5.0), &params);
        assert_eq!(tris.len(), tube_triangle_count(10, 12));
        assert_eq!(tris.len(), 2 * 12 * 9);
    }

    #[test]
    fn paper_claim_tubes_use_5_to_6_times_more_triangles() {
        // With the customary 10–12-sided cross-section, streamtubes cost
        // 10–12× a strip's 2 triangles per segment; the paper's "five to
        // six times less" compares against its 2-triangle strips *and*
        // counts the tubes' normals/vertex overhead — geometrically the
        // per-segment ratio is sides:1. Verify the count ratio at the
        // paper's implied tessellation (sides ≈ 10–12 → ratio 10–12, i.e.
        // the strip is ≥5–6× cheaper even before vertex-data savings).
        for n in [10usize, 100] {
            let ratio = tube_triangle_count(n, 12) as f64 / sos_triangle_count(n) as f64;
            assert!((ratio - 12.0).abs() < 1e-9);
            assert!(ratio >= 5.0, "SOS must be at least 5–6× cheaper");
        }
    }

    #[test]
    fn tube_points_lie_on_radius() {
        let line = straight_line(5);
        let params = TubeParams {
            radius: 0.05,
            sides: 8,
            ..Default::default()
        };
        let tris = tube_triangles(&line, Vec3::new(0.0, 0.0, 5.0), &params);
        for tri in &tris {
            for v in tri {
                // Distance from the line (the x axis) equals the radius.
                let d = (v.pos.y * v.pos.y + v.pos.z * v.pos.z).sqrt();
                assert!((d - 0.05).abs() < 1e-9, "vertex off the tube surface: {d}");
            }
        }
    }

    #[test]
    fn facing_side_is_brighter_than_silhouette() {
        let line = straight_line(5);
        let eye = Vec3::new(0.2, 0.0, 5.0);
        let params = TubeParams {
            radius: 0.05,
            sides: 16,
            ..Default::default()
        };
        let tris = tube_triangles(&line, eye, &params);
        let mut brightest = 0.0f32;
        let mut dimmest = 1.0f32;
        for tri in &tris {
            for v in tri {
                let l = v.color.luminance();
                brightest = brightest.max(l);
                dimmest = dimmest.min(l);
            }
        }
        assert!(
            brightest > 2.0 * dimmest,
            "Gouraud shading must vary: {dimmest}..{brightest}"
        );
    }

    #[test]
    fn short_lines_make_no_tube() {
        assert!(tube_triangles(&straight_line(1), Vec3::ZERO, &TubeParams::default()).is_empty());
        assert_eq!(tube_triangle_count(1, 12), 0);
    }

    #[test]
    #[should_panic]
    fn too_few_sides_panics() {
        let _ = tube_triangles(
            &straight_line(3),
            Vec3::ZERO,
            &TubeParams {
                sides: 2,
                ..Default::default()
            },
        );
    }
}
