//! Property-tested hardening of the `accelviz-store` codecs, mirroring
//! the wire layer's contract in `crates/serve/tests/wire_codec.rs`: any
//! value stream — random bits, smooth ramps, constants, alternating
//! pairs, count grids, or IEEE special values — survives encode → decode
//! bit-identically through *every* codec, and any damaged block produces
//! a structured [`CodecError`], never a panic or a silent wrong answer
//! at a different length.

use accelviz_store::codec::{
    decode_f32s, decode_f64s, encode_f32s, encode_f32s_as, encode_f64s, encode_f64s_as, CodecError,
    CODEC_BITPACK, CODEC_DELTA_VARINT, CODEC_RAW,
};
use proptest::prelude::*;

/// Bit-exact equality, so `NaN != NaN` and `-0.0 == 0.0` cannot hide
/// codec defects the way float comparison would.
fn same_bits_f32(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn same_bits_f64(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// SplitMix64 — the same generator the vendored proptest shim uses, so
/// streams are reproducible from the drawn `(shape, seed, n)` triple.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The f32 shapes that exercise each codec's distinct paths: raw bit
/// patterns (NaNs/infinities included → raw fallback), quantized counts
/// and mostly-zero grids (the INT sub-mode's home turf), constants,
/// alternating pairs, and smooth ramps.
fn f32_stream(shape: u8, seed: u64, n: usize) -> Vec<f32> {
    let mut s = seed;
    match shape % 6 {
        0 => (0..n).map(|_| f32::from_bits(mix(&mut s) as u32)).collect(),
        1 => (0..n).map(|_| (mix(&mut s) % 5_000) as f32).collect(),
        2 => (0..n)
            .map(|_| {
                let r = mix(&mut s);
                if r.is_multiple_of(10) {
                    (1 + (r >> 8) % 100) as f32
                } else {
                    0.0
                }
            })
            .collect(),
        3 => vec![f32::from_bits(mix(&mut s) as u32); n],
        4 => {
            let (a, b) = (
                f32::from_bits(mix(&mut s) as u32),
                f32::from_bits(mix(&mut s) as u32),
            );
            (0..n).map(|i| if i % 2 == 0 { a } else { b }).collect()
        }
        _ => {
            let start = (mix(&mut s) % 2_000) as f32 - 1_000.0;
            let step = (mix(&mut s) % 97) as f32 * 0.125 + 0.25;
            (0..n).map(|i| start + step * i as f32).collect()
        }
    }
}

/// The f64 shapes: raw bit patterns, constants, alternating pairs, and
/// sorted smooth data — the bitpack codec's best case.
fn f64_stream(shape: u8, seed: u64, n: usize) -> Vec<f64> {
    let mut s = seed;
    match shape % 4 {
        0 => (0..n).map(|_| f64::from_bits(mix(&mut s))).collect(),
        1 => vec![f64::from_bits(mix(&mut s)); n],
        2 => {
            let (a, b) = (f64::from_bits(mix(&mut s)), f64::from_bits(mix(&mut s)));
            (0..n).map(|i| if i % 2 == 0 { a } else { b }).collect()
        }
        _ => {
            let mut v: Vec<f64> = (0..n)
                .map(|_| (mix(&mut s) % 2_000_000) as f64 - 1e6)
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn f32_streams_roundtrip_through_every_codec(
        shape in 0u8..6, seed in 0u64..=u64::MAX, n in 0usize..300,
    ) {
        let values = f32_stream(shape, seed, n);

        // The auto-selecting encoder, which must consume exactly its
        // own bytes.
        let auto = encode_f32s(&values);
        let mut pos = 0;
        let back = decode_f32s(&auto, &mut pos, values.len()).unwrap();
        prop_assert_eq!(pos, auto.len());
        prop_assert!(same_bits_f32(&back, &values));

        // Each codec forced explicitly.
        for codec in [CODEC_RAW, CODEC_DELTA_VARINT] {
            let buf = encode_f32s_as(codec, &values).unwrap();
            let mut pos = 0;
            let back = decode_f32s(&buf, &mut pos, values.len()).unwrap();
            prop_assert_eq!(pos, buf.len());
            prop_assert!(same_bits_f32(&back, &values), "codec {} broke bits", codec);
        }
    }

    #[test]
    fn f64_streams_roundtrip_through_every_codec(
        shape in 0u8..4, seed in 0u64..=u64::MAX, n in 0usize..300,
    ) {
        let values = f64_stream(shape, seed, n);

        let auto = encode_f64s(&values);
        let mut pos = 0;
        let back = decode_f64s(&auto, &mut pos, values.len()).unwrap();
        prop_assert_eq!(pos, auto.len());
        prop_assert!(same_bits_f64(&back, &values));

        for codec in [CODEC_RAW, CODEC_BITPACK] {
            let buf = encode_f64s_as(codec, &values).unwrap();
            let mut pos = 0;
            let back = decode_f64s(&buf, &mut pos, values.len()).unwrap();
            prop_assert_eq!(pos, buf.len());
            prop_assert!(same_bits_f64(&back, &values), "codec {} broke bits", codec);
        }
    }

    #[test]
    fn blocks_decode_identically_from_a_longer_stream(
        shape in 0u8..4, seed in 0u64..=u64::MAX, n in 0usize..300,
        trailer in prop::collection::vec(0u8..=255, 0..64),
    ) {
        // Blocks are consumed mid-payload in AVWF v2 frames: trailing
        // bytes after a block belong to the *next* field and must be
        // left unread, not rejected.
        let values = f64_stream(shape, seed, n);
        let mut buf = encode_f64s(&values);
        let block_len = buf.len();
        buf.extend_from_slice(&trailer);
        let mut pos = 0;
        let back = decode_f64s(&buf, &mut pos, values.len()).unwrap();
        prop_assert_eq!(pos, block_len);
        prop_assert!(same_bits_f64(&back, &values));
    }

    #[test]
    fn truncation_anywhere_is_a_structured_error(
        shape in 0u8..6, seed in 0u64..=u64::MAX, n in 0usize..300,
        cut in 0.0..1.0f64,
    ) {
        let values = f32_stream(shape, seed, n);
        let buf = encode_f32s(&values);
        if buf.is_empty() {
            return Ok(());
        }
        let keep = ((buf.len() - 1) as f64 * cut) as usize;
        let mut pos = 0;
        match decode_f32s(&buf[..keep], &mut pos, values.len()) {
            Err(CodecError::Truncated { .. }) | Err(CodecError::Corrupt(_)) => {}
            Ok(_) => return Err(TestCaseError::fail(format!(
                "cut at {keep}/{} decoded silently", buf.len()
            ))),
        }
    }

    #[test]
    fn bitflips_never_change_the_decoded_length(
        shape in 0u8..4, seed in 0u64..=u64::MAX, n in 0usize..300,
        at in 0.0..1.0f64, bit in 0u8..8,
    ) {
        // The codec layer's own guarantee is weaker than the wire's (no
        // per-block checksum): a flipped byte may decode to different
        // values, but it must yield either a structured error or exactly
        // `expect` values — never a panic, never a short or long vector.
        // The consumers' decoded-payload checksums catch the value-level
        // damage; `one_corrupt_frame_fails_alone` in the run store and
        // `v2_bitflips_are_caught_by_the_decoded_checksum` in the wire
        // tests hold them to it.
        let values = f64_stream(shape, seed, n);
        let buf = encode_f64s(&values);
        if buf.is_empty() {
            return Ok(());
        }
        let mut bad = buf.clone();
        let idx = ((buf.len() - 1) as f64 * at) as usize;
        bad[idx] ^= 1 << bit;
        let mut pos = 0;
        match decode_f64s(&bad, &mut pos, values.len()) {
            Err(_) => {}
            Ok(decoded) => prop_assert_eq!(decoded.len(), values.len()),
        }
    }

    #[test]
    fn count_mismatches_are_rejected(
        shape in 0u8..6, seed in 0u64..=u64::MAX, n in 0usize..300,
        off_by in 1usize..10,
    ) {
        let values = f32_stream(shape, seed, n);
        let buf = encode_f32s(&values);
        let mut pos = 0;
        prop_assert!(decode_f32s(&buf, &mut pos, values.len() + off_by).is_err());
        if values.len() >= off_by {
            let mut pos = 0;
            prop_assert!(decode_f32s(&buf, &mut pos, values.len() - off_by).is_err());
        }
    }
}

#[test]
fn compression_wins_where_the_design_says_it_must() {
    // A mostly-zero count grid — the shape real binned densities take —
    // must compress hard, and sorted density arrays must undercut raw.
    let mut grid = vec![0.0f32; 4096];
    for (i, c) in grid.iter_mut().enumerate().step_by(31) {
        *c = (i % 90) as f32;
    }
    let encoded = encode_f32s(&grid);
    assert!(
        encoded.len() * 3 < grid.len() * 4,
        "count grid compressed to {} B of {} raw — less than 3x",
        encoded.len(),
        grid.len() * 4
    );

    // A slowly varying stream within one binade: consecutive values
    // share sign, exponent, and the high mantissa bits, so the XOR
    // residuals stay narrow — the bitpack codec's design target.
    let densities: Vec<f64> = (0..4096).map(|i| 1.0 + i as f64 * 1e-9).collect();
    let encoded = encode_f64s(&densities);
    assert!(
        encoded.len() * 2 < densities.len() * 8,
        "smooth densities compressed to {} B of {} raw — less than 2x",
        encoded.len(),
        densities.len() * 8
    );
}
