//! Property-tested hardening of the progressive record framing: any
//! record survives encode → decode bit-identically, any truncation or
//! bit flip is a structured [`CodecError`], and the [`RecordAssembler`]
//! accepts exactly the in-order grammar — every shuffled, duplicated, or
//! gapped delivery of an otherwise-valid stream is rejected at the first
//! out-of-place record.

use accelviz_store::codec::CodecError;
use accelviz_store::progressive::{
    decode_record, encode_record, Record, RecordAssembler, RECORD_COARSE, RECORD_DELTA,
    RECORD_FINAL,
};
use proptest::prelude::*;

/// SplitMix64 — the same generator the vendored proptest shim uses.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A grammar-correct stream of `total` records with pseudorandom
/// payloads derived from `seed`.
fn stream(total: u32, seed: u64) -> Vec<Record> {
    let mut s = seed;
    (0..total)
        .map(|seq| {
            let len = (mix(&mut s) % 200) as usize;
            Record {
                kind: if seq == 0 {
                    RECORD_COARSE
                } else if seq == total - 1 {
                    RECORD_FINAL
                } else {
                    RECORD_DELTA
                },
                seq,
                total,
                payload: (0..len).map(|_| mix(&mut s) as u8).collect(),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn records_roundtrip_bit_identically(
        total in 2u32..10, seed in 0u64..=u64::MAX, pick in 0.0..1.0f64,
    ) {
        let recs = stream(total, seed);
        let rec = &recs[((total - 1) as f64 * pick) as usize];
        let bytes = encode_record(rec);
        prop_assert_eq!(&decode_record(&bytes).unwrap(), rec);
    }

    #[test]
    fn truncation_anywhere_is_structured(
        total in 2u32..6, seed in 0u64..=u64::MAX, cut in 0.0..1.0f64,
    ) {
        let bytes = encode_record(&stream(total, seed)[0]);
        let keep = ((bytes.len() - 1) as f64 * cut) as usize;
        match decode_record(&bytes[..keep]) {
            Err(CodecError::Truncated { .. }) | Err(CodecError::Corrupt(_)) => {}
            Ok(_) => return Err(TestCaseError::fail(format!(
                "cut at {keep}/{} decoded silently", bytes.len()
            ))),
        }
    }

    #[test]
    fn any_bitflip_is_rejected(
        total in 2u32..6, seed in 0u64..=u64::MAX,
        at in 0.0..1.0f64, bit in 0u8..8,
    ) {
        // Unlike the block codecs, records carry their own checksum over
        // header + payload: a single flipped bit anywhere — including a
        // forged seq or kind — must never decode.
        let bytes = encode_record(&stream(total, seed)[1]);
        let mut bad = bytes.clone();
        let idx = ((bytes.len() - 1) as f64 * at) as usize;
        bad[idx] ^= 1 << bit;
        prop_assert!(decode_record(&bad).is_err(), "flip at {} decoded", idx);
    }

    #[test]
    fn in_order_delivery_always_assembles(
        total in 2u32..12, seed in 0u64..=u64::MAX,
    ) {
        let mut asm = RecordAssembler::new();
        let recs = stream(total, seed);
        for (i, rec) in recs.iter().enumerate() {
            // Through the wire bytes, as a receiver sees them.
            let rec = decode_record(&encode_record(rec)).unwrap();
            let done = asm.accept(&rec).unwrap();
            prop_assert_eq!(done, i as u32 == total - 1);
        }
        prop_assert!(asm.is_complete());
        prop_assert_eq!(asm.next_seq(), total);
    }

    #[test]
    fn any_out_of_order_delivery_is_rejected(
        total in 2u32..8, seed in 0u64..=u64::MAX, swap in 0usize..64,
    ) {
        // Deliver the stream with one adjacent pair swapped (position
        // drawn from `swap`): the assembler must fail at or before the
        // swapped pair, never complete.
        let recs = stream(total, seed);
        let i = swap % (total as usize - 1);
        let mut order: Vec<usize> = (0..total as usize).collect();
        order.swap(i, i + 1);
        let mut asm = RecordAssembler::new();
        let mut failed = false;
        for &j in &order {
            if asm.accept(&recs[j]).is_err() {
                failed = true;
                break;
            }
        }
        prop_assert!(failed, "swapped delivery assembled");
        prop_assert!(!asm.is_complete());
    }

    #[test]
    fn duplicates_are_rejected_at_every_position(
        total in 2u32..8, seed in 0u64..=u64::MAX, dup in 0usize..64,
    ) {
        let recs = stream(total, seed);
        let d = dup % total as usize;
        let mut asm = RecordAssembler::new();
        for rec in &recs[..=d] {
            asm.accept(rec).unwrap();
        }
        prop_assert!(asm.accept(&recs[d]).is_err(), "duplicate {} accepted", d);
    }

    #[test]
    fn replay_skips_below_the_high_water_mark(
        total in 3u32..10, seed in 0u64..=u64::MAX, drop_at in 0usize..64,
    ) {
        // The client replay discipline: a transport failure mid-stream
        // restarts the sender from seq 0; the receiver discards records
        // below `next_seq()` and applies the rest. The assembler must
        // complete over that delivery pattern.
        let recs = stream(total, seed);
        let cut = 1 + drop_at % (total as usize - 1);
        let mut asm = RecordAssembler::new();
        for rec in &recs[..cut] {
            asm.accept(rec).unwrap();
        }
        // Replay from 0: skip what is already applied, accept the rest.
        for rec in &recs {
            if rec.seq < asm.next_seq() {
                continue;
            }
            asm.accept(rec).unwrap();
        }
        prop_assert!(asm.is_complete());
    }
}
