//! Residency management over an on-disk run: which frames are in memory.
//!
//! A [`ResidentRun`] keeps every frame's octree resident (node blobs are
//! tiny — 88 bytes per node — and reading them eagerly doubles as a
//! fail-fast checksum pass over all directory metadata) while particle
//! arrays, the bulk of a run, page in on demand and page out under an
//! explicit byte budget. Recency is tracked by the same
//! [`LruOrder`] the serve layer's caches use, so
//! the whole pipeline shares one eviction policy.
//!
//! Loads happen under the residency lock: a simplification that trades
//! concurrent cold loads for the guarantee that a frame is never fetched
//! twice in a race. The serve layer already bounds concurrent extraction
//! work above this layer, so the serialization is not the bottleneck.

use crate::lru::LruOrder;
use crate::run::RunStore;
use accelviz_octree::node::Octree;
use accelviz_octree::plots::PlotType;
use accelviz_octree::sorted_store::PartitionedData;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// A run file plus an in-memory residency window over its frames.
pub struct ResidentRun {
    store: RunStore,
    /// Every frame's octree and plot type, always resident.
    trees: Vec<(Octree, PlotType)>,
    budget_bytes: u64,
    state: Mutex<Residency>,
}

struct Residency {
    lru: LruOrder<u32>,
    resident: HashMap<u32, Arc<PartitionedData>>,
    resident_bytes: u64,
    cold_loads: u64,
    warm_hits: u64,
    evictions: u64,
}

/// Result of fetching one frame's partitioned data.
pub struct Fetch {
    /// The frame, shared with whatever else holds it resident.
    pub data: Arc<PartitionedData>,
    /// Whether the frame was already resident (no disk I/O).
    pub warm: bool,
    /// Bytes read from disk for this fetch (0 when warm).
    pub bytes_loaded: u64,
}

/// Snapshot of a [`ResidentRun`]'s residency counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResidentStats {
    /// Frames currently resident.
    pub resident_frames: usize,
    /// Particle bytes currently resident.
    pub resident_bytes: u64,
    /// The configured residency budget.
    pub budget_bytes: u64,
    /// Fetches that had to read from disk.
    pub cold_loads: u64,
    /// Fetches satisfied from memory.
    pub warm_hits: u64,
    /// Frames evicted to stay under budget.
    pub evictions: u64,
    /// Checksum-verified chunks read from disk so far.
    pub chunks_read: u64,
    /// Bytes read from disk so far.
    pub bytes_read: u64,
}

impl ResidentRun {
    /// Opens a run file with a particle-residency budget of
    /// `budget_bytes`. All octrees are loaded (and checksum-verified)
    /// eagerly; particle data stays on disk until fetched.
    pub fn open(path: &Path, budget_bytes: u64) -> io::Result<ResidentRun> {
        let store = RunStore::open(path)?;
        let mut trees = Vec::with_capacity(store.frame_count());
        for i in 0..store.frame_count() {
            trees.push(store.read_tree(i)?);
        }
        Ok(ResidentRun {
            store,
            trees,
            budget_bytes,
            state: Mutex::new(Residency {
                lru: LruOrder::new(),
                resident: HashMap::new(),
                resident_bytes: 0,
                cold_loads: 0,
                warm_hits: 0,
                evictions: 0,
            }),
        })
    }

    /// Number of frames in the run.
    pub fn frame_count(&self) -> usize {
        self.trees.len()
    }

    /// Frame `i`'s always-resident octree and plot type.
    pub fn tree(&self, i: usize) -> &(Octree, PlotType) {
        &self.trees[i]
    }

    /// Particle count of frame `i` (directory metadata, no fetch).
    pub fn particle_count(&self, i: usize) -> u64 {
        self.store.particle_count(i)
    }

    /// Total particle bytes across the run — compare against
    /// [`ResidentStats::budget_bytes`] to see how out-of-core a run is.
    pub fn total_particle_bytes(&self) -> u64 {
        (0..self.frame_count())
            .map(|i| self.store.frame_bytes(i))
            .sum()
    }

    /// Whether the underlying file is served through a memory map.
    pub fn is_mapped(&self) -> bool {
        self.store.is_mapped()
    }

    /// Fetches frame `i`, reading and checksum-verifying its chunks if it
    /// is not resident, then evicting least-recently-used frames until
    /// the residency budget holds again. The just-fetched frame is never
    /// evicted, so a single frame larger than the whole budget still
    /// serves (the budget is then transiently exceeded).
    pub fn fetch(&self, i: usize) -> io::Result<Fetch> {
        let key = u32::try_from(i)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame index out of range"))?;
        let mut g = self.state.lock();
        if let Some(data) = g.resident.get(&key) {
            let data = Arc::clone(data);
            g.lru.touch(key);
            g.warm_hits += 1;
            return Ok(Fetch {
                data,
                warm: true,
                bytes_loaded: 0,
            });
        }

        let particles = self.store.load_particles(i)?;
        let (tree, plot) = &self.trees[i];
        let data = PartitionedData::from_sorted_parts(tree.clone(), particles, *plot)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let data = Arc::new(data);
        let bytes = self.store.frame_bytes(i);
        g.resident.insert(key, Arc::clone(&data));
        g.lru.touch(key);
        g.resident_bytes += bytes;
        g.cold_loads += 1;
        while g.resident_bytes > self.budget_bytes && g.resident.len() > 1 {
            // The most-recently-touched key is the frame just loaded, so
            // pop_oldest can never pick it while anything else remains.
            let victim = g.lru.pop_oldest().expect("resident set is non-empty");
            if let Some(evicted) = g.resident.remove(&victim) {
                g.resident_bytes -= evicted.particle_file_bytes();
                g.evictions += 1;
            }
        }
        Ok(Fetch {
            data,
            warm: false,
            bytes_loaded: bytes,
        })
    }

    /// Current residency counters.
    pub fn stats(&self) -> ResidentStats {
        let g = self.state.lock();
        let (chunks_read, bytes_read) = self.store.io_stats();
        ResidentStats {
            resident_frames: g.resident.len(),
            resident_bytes: g.resident_bytes,
            budget_bytes: self.budget_bytes,
            cold_loads: g.cold_loads,
            warm_hits: g.warm_hits,
            evictions: g.evictions,
            chunks_read,
            bytes_read,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::write_run_file;
    use accelviz_beam::distribution::Distribution;
    use accelviz_octree::builder::{partition, BuildParams};

    fn run_file(name: &str, n_frames: usize, particles_each: usize) -> std::path::PathBuf {
        let frames: Vec<PartitionedData> = (0..n_frames)
            .map(|i| {
                let ps = Distribution::default_beam().sample(particles_each, i as u64 + 1);
                partition(&ps, PlotType::X_PX_Y, BuildParams::default())
            })
            .collect();
        let path =
            std::env::temp_dir().join(format!("accelviz-resident-{name}-{}", std::process::id()));
        write_run_file(&path, &frames, 4_096).unwrap();
        path
    }

    #[test]
    fn fetches_match_direct_reads_and_warm_up() {
        let path = run_file("warm", 3, 800);
        // Budget fits everything: no eviction.
        let run = ResidentRun::open(&path, u64::MAX).unwrap();
        assert_eq!(run.frame_count(), 3);
        let first = run.fetch(1).unwrap();
        assert!(!first.warm);
        assert_eq!(first.bytes_loaded, 800 * 48);
        let again = run.fetch(1).unwrap();
        assert!(again.warm);
        assert_eq!(again.bytes_loaded, 0);
        assert!(Arc::ptr_eq(&first.data, &again.data));
        first.data.validate().unwrap();
        let s = run.stats();
        assert_eq!((s.cold_loads, s.warm_hits, s.evictions), (1, 1, 0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn budget_smaller_than_the_run_forces_eviction() {
        let path = run_file("evict", 4, 600);
        let frame_bytes = 600 * 48u64;
        // Room for two frames.
        let run = ResidentRun::open(&path, 2 * frame_bytes).unwrap();
        assert!(run.total_particle_bytes() > 2 * frame_bytes);
        for i in 0..4 {
            run.fetch(i).unwrap();
        }
        let s = run.stats();
        assert_eq!(s.cold_loads, 4);
        assert_eq!(s.evictions, 2);
        assert_eq!(s.resident_frames, 2);
        assert!(s.resident_bytes <= s.budget_bytes);
        // Frames 2 and 3 are resident; 0 is the coldest possible fetch.
        assert!(run.fetch(3).unwrap().warm);
        assert!(!run.fetch(0).unwrap().warm);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_frame_bigger_than_the_budget_still_serves() {
        let path = run_file("oversize", 2, 500);
        let run = ResidentRun::open(&path, 1).unwrap();
        let f = run.fetch(0).unwrap();
        assert!(!f.warm);
        assert_eq!(f.data.particles().len(), 500);
        // The oversize frame stays (never evict the just-loaded frame)…
        assert_eq!(run.stats().resident_frames, 1);
        // …until the next fetch displaces it.
        run.fetch(1).unwrap();
        let s = run.stats();
        assert_eq!(s.resident_frames, 1);
        assert_eq!(s.evictions, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn eviction_follows_recency_not_insertion() {
        let path = run_file("recency", 3, 400);
        let run = ResidentRun::open(&path, 2 * 400 * 48).unwrap();
        run.fetch(0).unwrap();
        run.fetch(1).unwrap();
        run.fetch(0).unwrap(); // touch 0: now 1 is the eviction victim
        run.fetch(2).unwrap();
        assert!(
            run.fetch(0).unwrap().warm,
            "recently touched frame survives"
        );
        assert!(!run.fetch(1).unwrap().warm, "LRU frame was evicted");
        let _ = std::fs::remove_file(&path);
    }
}
