//! The chunked, checksummed on-disk run format (`AVRUNST1`).
//!
//! A *run* is a whole time series in one file, extending the two-part
//! layout of `accelviz_octree::store_io` to many frames: per frame, the
//! node file becomes an embedded *node blob* (byte-identical to
//! [`write_node_file`] output) and the density-sorted particle array is
//! split into fixed-size *chunks* of raw 48-byte records. Every blob and
//! every chunk carries an FNV-1a-64 checksum that is verified on each
//! read, so a flipped bit anywhere in the data region surfaces as a
//! structured I/O error, never as silently wrong particles.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "AVRUNST1" | u32 version | u32 frame_count | u64 chunk_bytes
//! frame directory: frame_count × { node_off, node_len, node_fnv,
//!                                  first_chunk, n_chunks, particle_count }
//! u64 chunk_count
//! chunk table: chunk_count × { off, len, fnv }
//! data region: node blobs and particle chunks
//! ```
//!
//! The split layout exists for out-of-core serving: directories and node
//! blobs are small and read eagerly; particle chunks — the bulk — are
//! fetched on demand through a [`ChunkSource`] (memory map or positioned
//! reads), so a run much larger than RAM never has to be resident at
//! once. Chunk size is always a multiple of the 48-byte particle record
//! so a record never straddles chunks.

use crate::mmap::ChunkSource;
use accelviz_beam::io::BYTES_PER_PARTICLE;
use accelviz_beam::particle::Particle;
use accelviz_octree::node::Octree;
use accelviz_octree::plots::PlotType;
use accelviz_octree::sorted_store::PartitionedData;
use accelviz_octree::store_io::{read_node_file, write_node_file};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic bytes of a run file.
pub const RUN_MAGIC: [u8; 8] = *b"AVRUNST1";
/// Format version written by this build.
pub const RUN_VERSION: u32 = 1;
/// Default chunk size: 64 KiB rounded to whole particle records.
pub const DEFAULT_CHUNK_BYTES: u64 = 65_520;

const HEADER_BYTES: u64 = 24;
const FRAME_DIR_BYTES: u64 = 48;
const CHUNK_DIR_BYTES: u64 = 24;
/// Upper bound on plausible frame/chunk counts (header-corruption guard).
const MAX_TABLE_ENTRIES: u64 = 1 << 28;

/// FNV-1a over 64 bits — the same checksum the wire envelope uses, so
/// bit-identity arguments compose across the store and serve layers.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Rounds a requested chunk size up to a positive multiple of the
/// 48-byte particle record.
pub fn round_chunk_bytes(requested: u64) -> u64 {
    let c = requested.max(BYTES_PER_PARTICLE);
    c.div_ceil(BYTES_PER_PARTICLE) * BYTES_PER_PARTICLE
}

#[derive(Clone, Copy, Debug)]
struct FrameDir {
    node_off: u64,
    node_len: u64,
    node_fnv: u64,
    first_chunk: u64,
    n_chunks: u64,
    particle_count: u64,
}

#[derive(Clone, Copy, Debug)]
struct ChunkDir {
    off: u64,
    len: u64,
    fnv: u64,
}

fn particle_bytes(particles: &[Particle]) -> Vec<u8> {
    let mut out = Vec::with_capacity(particles.len() * BYTES_PER_PARTICLE as usize);
    for p in particles {
        for c in p.to_array() {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }
    out
}

/// Writes `frames` as one run file. Returns the total bytes written.
/// `chunk_bytes` is rounded up to a whole number of particle records.
pub fn write_run<W: Write>(
    w: &mut W,
    frames: &[PartitionedData],
    chunk_bytes: u64,
) -> io::Result<u64> {
    let chunk_bytes = round_chunk_bytes(chunk_bytes);

    // Serialize every frame's node blob and particle bytes up front so
    // all offsets are known before the first header byte goes out —
    // this keeps the writer a plain `Write` sink (no Seek required).
    let mut node_blobs = Vec::with_capacity(frames.len());
    let mut payloads = Vec::with_capacity(frames.len());
    for data in frames {
        let mut blob = Vec::new();
        write_node_file(data, &mut blob)?;
        node_blobs.push(blob);
        payloads.push(particle_bytes(data.particles()));
    }

    let total_chunks: u64 = payloads
        .iter()
        .map(|p| (p.len() as u64).div_ceil(chunk_bytes))
        .sum();
    let mut off =
        HEADER_BYTES + frames.len() as u64 * FRAME_DIR_BYTES + 8 + total_chunks * CHUNK_DIR_BYTES;

    let mut frame_dirs = Vec::with_capacity(frames.len());
    let mut chunk_dirs = Vec::with_capacity(total_chunks as usize);
    for (data, blob) in frames.iter().zip(&node_blobs) {
        let payload = &payloads[frame_dirs.len()];
        let node_off = off;
        off += blob.len() as u64;
        let first_chunk = chunk_dirs.len() as u64;
        for chunk in payload.chunks(chunk_bytes as usize) {
            chunk_dirs.push(ChunkDir {
                off,
                len: chunk.len() as u64,
                fnv: fnv1a64(chunk),
            });
            off += chunk.len() as u64;
        }
        frame_dirs.push(FrameDir {
            node_off,
            node_len: blob.len() as u64,
            node_fnv: fnv1a64(blob),
            first_chunk,
            n_chunks: chunk_dirs.len() as u64 - first_chunk,
            particle_count: data.particles().len() as u64,
        });
    }

    w.write_all(&RUN_MAGIC)?;
    w.write_all(&RUN_VERSION.to_le_bytes())?;
    w.write_all(&(frames.len() as u32).to_le_bytes())?;
    w.write_all(&chunk_bytes.to_le_bytes())?;
    for d in &frame_dirs {
        for v in [
            d.node_off,
            d.node_len,
            d.node_fnv,
            d.first_chunk,
            d.n_chunks,
            d.particle_count,
        ] {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.write_all(&total_chunks.to_le_bytes())?;
    for c in &chunk_dirs {
        for v in [c.off, c.len, c.fnv] {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    for (blob, payload) in node_blobs.iter().zip(&payloads) {
        w.write_all(blob)?;
        w.write_all(payload)?;
    }
    Ok(off)
}

/// Writes `frames` to a run file at `path` (create/truncate).
pub fn write_run_file(
    path: &Path,
    frames: &[PartitionedData],
    chunk_bytes: u64,
) -> io::Result<u64> {
    let mut f = std::fs::File::create(path)?;
    let n = write_run(&mut f, frames, chunk_bytes)?;
    f.flush()?;
    Ok(n)
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn u64_at(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
}

/// An open run file: parsed directories plus on-demand chunk access.
/// Directory and chunk checksums are verified on every read; I/O volume
/// is tracked in atomic counters for the bench and serve stats.
pub struct RunStore {
    src: ChunkSource,
    chunk_bytes: u64,
    frames: Vec<FrameDir>,
    chunks: Vec<ChunkDir>,
    chunks_read: AtomicU64,
    bytes_read: AtomicU64,
}

impl RunStore {
    /// Opens and validates a run file. The directories are read eagerly;
    /// the data region stays on disk behind a [`ChunkSource`].
    pub fn open(path: &Path) -> io::Result<RunStore> {
        let src = ChunkSource::open(path)?;
        let file_len = src.len();
        let header = src.read_at(0, HEADER_BYTES as usize)?;
        if header[..8] != RUN_MAGIC {
            return Err(bad("bad run-file magic"));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != RUN_VERSION {
            return Err(bad(format!("unsupported run-format version {version}")));
        }
        let frame_count = u64::from(u32::from_le_bytes(header[12..16].try_into().unwrap()));
        let chunk_bytes = u64_at(&header, 16);
        if chunk_bytes == 0 || !chunk_bytes.is_multiple_of(BYTES_PER_PARTICLE) {
            return Err(bad(format!(
                "chunk size {chunk_bytes} is not a record multiple"
            )));
        }
        if frame_count > MAX_TABLE_ENTRIES {
            return Err(bad(format!("implausible frame count {frame_count}")));
        }

        let dir_bytes = frame_count * FRAME_DIR_BYTES;
        let dir = src.read_at(HEADER_BYTES, dir_bytes as usize)?;
        let mut frames = Vec::with_capacity(frame_count as usize);
        for i in 0..frame_count as usize {
            let b = i * FRAME_DIR_BYTES as usize;
            frames.push(FrameDir {
                node_off: u64_at(&dir, b),
                node_len: u64_at(&dir, b + 8),
                node_fnv: u64_at(&dir, b + 16),
                first_chunk: u64_at(&dir, b + 24),
                n_chunks: u64_at(&dir, b + 32),
                particle_count: u64_at(&dir, b + 40),
            });
        }

        let count_off = HEADER_BYTES + dir_bytes;
        let chunk_count = u64_at(&src.read_at(count_off, 8)?, 0);
        if chunk_count > MAX_TABLE_ENTRIES {
            return Err(bad(format!("implausible chunk count {chunk_count}")));
        }
        let table = src.read_at(count_off + 8, (chunk_count * CHUNK_DIR_BYTES) as usize)?;
        let mut chunks = Vec::with_capacity(chunk_count as usize);
        for i in 0..chunk_count as usize {
            let b = i * CHUNK_DIR_BYTES as usize;
            let c = ChunkDir {
                off: u64_at(&table, b),
                len: u64_at(&table, b + 8),
                fnv: u64_at(&table, b + 16),
            };
            if c.len > chunk_bytes || !c.len.is_multiple_of(BYTES_PER_PARTICLE) {
                return Err(bad(format!("chunk {i} has invalid length {}", c.len)));
            }
            if c.off.checked_add(c.len).is_none_or(|e| e > file_len) {
                return Err(bad(format!("chunk {i} runs past end of file")));
            }
            chunks.push(c);
        }

        for (i, f) in frames.iter().enumerate() {
            if f.node_off
                .checked_add(f.node_len)
                .is_none_or(|e| e > file_len)
            {
                return Err(bad(format!("frame {i} node blob runs past end of file")));
            }
            let last = f
                .first_chunk
                .checked_add(f.n_chunks)
                .ok_or_else(|| bad(format!("frame {i} chunk range overflows")))?;
            if last > chunk_count {
                return Err(bad(format!("frame {i} references missing chunks")));
            }
            let covered: u64 = chunks[f.first_chunk as usize..last as usize]
                .iter()
                .map(|c| c.len)
                .sum();
            if covered != f.particle_count * BYTES_PER_PARTICLE {
                return Err(bad(format!(
                    "frame {i} chunks cover {covered} bytes for {} particles",
                    f.particle_count
                )));
            }
        }

        Ok(RunStore {
            src,
            chunk_bytes,
            frames,
            chunks,
            chunks_read: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
        })
    }

    /// Number of frames in the run.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Chunk size of the data region.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_bytes
    }

    /// Particle count of frame `i` (directory lookup, no data read).
    pub fn particle_count(&self, i: usize) -> u64 {
        self.frames[i].particle_count
    }

    /// Particle bytes of frame `i` — what residency accounting charges.
    pub fn frame_bytes(&self, i: usize) -> u64 {
        self.frames[i].particle_count * BYTES_PER_PARTICLE
    }

    /// Whether the data region is served through a memory map.
    pub fn is_mapped(&self) -> bool {
        self.src.is_mapped()
    }

    /// `(chunks_read, bytes_read)` so far, including directory reads.
    pub fn io_stats(&self) -> (u64, u64) {
        (
            self.chunks_read.load(Ordering::Relaxed),
            self.bytes_read.load(Ordering::Relaxed),
        )
    }

    /// Reads and checksum-verifies frame `i`'s node blob, parsing it into
    /// the octree and plot type.
    pub fn read_tree(&self, i: usize) -> io::Result<(Octree, PlotType)> {
        let d = &self.frames[i];
        let blob = self.src.read_at(d.node_off, d.node_len as usize)?;
        self.bytes_read
            .fetch_add(blob.len() as u64, Ordering::Relaxed);
        if fnv1a64(&blob) != d.node_fnv {
            return Err(bad(format!("frame {i} node blob failed checksum")));
        }
        read_node_file(&mut blob.as_slice())
    }

    /// Reads and checksum-verifies all particle chunks of frame `i`.
    pub fn load_particles(&self, i: usize) -> io::Result<Vec<Particle>> {
        let d = &self.frames[i];
        let mut particles = Vec::with_capacity(d.particle_count as usize);
        for ci in d.first_chunk..d.first_chunk + d.n_chunks {
            let c = &self.chunks[ci as usize];
            let bytes = self.src.read_at(c.off, c.len as usize)?;
            self.chunks_read.fetch_add(1, Ordering::Relaxed);
            self.bytes_read
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            if fnv1a64(&bytes) != c.fnv {
                return Err(bad(format!("chunk {ci} of frame {i} failed checksum")));
            }
            for rec in bytes.chunks_exact(BYTES_PER_PARTICLE as usize) {
                let mut a = [0.0f64; 6];
                for (k, v) in a.iter_mut().enumerate() {
                    *v = f64::from_le_bytes(rec[k * 8..(k + 1) * 8].try_into().unwrap());
                }
                particles.push(Particle::from_array(a));
            }
        }
        Ok(particles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_beam::distribution::Distribution;
    use accelviz_octree::builder::{partition, BuildParams};

    fn build_frames(n_frames: usize, particles_each: usize) -> Vec<PartitionedData> {
        (0..n_frames)
            .map(|i| {
                let ps = Distribution::default_beam().sample(particles_each, i as u64 + 1);
                partition(&ps, PlotType::X_PX_Y, BuildParams::default())
            })
            .collect()
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("accelviz-run-{name}-{}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_trees_and_particles() {
        let frames = build_frames(3, 1_200);
        let path = scratch("roundtrip");
        let written = write_run_file(&path, &frames, 4_096).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());

        let store = RunStore::open(&path).unwrap();
        assert_eq!(store.frame_count(), 3);
        // 4096 rounds up to the next record multiple.
        assert_eq!(store.chunk_bytes() % BYTES_PER_PARTICLE, 0);
        for (i, data) in frames.iter().enumerate() {
            assert_eq!(store.particle_count(i) as usize, data.particles().len());
            let (tree, plot) = store.read_tree(i).unwrap();
            assert_eq!(plot, data.plot());
            assert_eq!(tree.nodes.len(), data.tree().nodes.len());
            let particles = store.load_particles(i).unwrap();
            assert_eq!(particles, data.particles());
        }
        let (chunks, bytes) = store.io_stats();
        assert!(
            chunks > 3,
            "1200 particles at ~4KiB chunks span many chunks"
        );
        assert!(bytes > 3 * 1_200 * 48);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn data_region_bitflip_fails_the_chunk_checksum() {
        let frames = build_frames(1, 500);
        let path = scratch("bitflip");
        let total = write_run_file(&path, &frames, 1_024).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len() as u64, total);
        // Flip one bit near the end of the data region (inside the last
        // particle chunk).
        let n = bytes.len();
        bytes[n - 7] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let store = RunStore::open(&path).unwrap();
        let err = store.load_particles(0).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_file_is_rejected_at_open() {
        let frames = build_frames(1, 300);
        let path = scratch("trunc");
        write_run_file(&path, &frames, 2_048).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 100]).unwrap();
        assert!(RunStore::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let frames = build_frames(1, 100);
        let path = scratch("header");
        write_run_file(&path, &frames, 2_048).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(RunStore::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_run_and_empty_frames_are_legal() {
        let path = scratch("empty");
        write_run_file(&path, &[], 1_024).unwrap();
        let store = RunStore::open(&path).unwrap();
        assert_eq!(store.frame_count(), 0);

        let empty = partition(&[], PlotType::XYZ, BuildParams::default());
        write_run_file(&path, &[empty], 1_024).unwrap();
        let store = RunStore::open(&path).unwrap();
        assert_eq!(store.frame_count(), 1);
        assert_eq!(store.particle_count(0), 0);
        assert!(store.load_particles(0).unwrap().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn chunk_rounding_is_record_aligned() {
        assert_eq!(round_chunk_bytes(0), 48);
        assert_eq!(round_chunk_bytes(1), 48);
        assert_eq!(round_chunk_bytes(48), 48);
        assert_eq!(round_chunk_bytes(49), 96);
        assert_eq!(round_chunk_bytes(65_536), 65_568);
        assert_eq!(DEFAULT_CHUNK_BYTES % 48, 0);
    }

    #[test]
    fn fnv_matches_the_wire_reference_vectors() {
        // Same constants as the serve wire layer: checksums compose.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
