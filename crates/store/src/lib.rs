//! Compressed frame codecs and an out-of-core, memory-mapped run store.
//!
//! The paper's terascale premise is that the data does not fit: a single
//! time step of the primary simulation is 5 GB raw, and the visualization
//! pipeline lives or dies by how little of it must move or be resident.
//! This crate supplies the two halves of that discipline downstream of
//! partitioning:
//!
//! - [`codec`] — pure, zero-dependency compression for the hybrid frame's
//!   payloads: delta+zigzag+varint for quantized density grids, XOR
//!   bitpacking for halo point columns, raw passthrough as the safety
//!   net. The serve layer's AVWF v2 frame encoding is built from these
//!   blocks.
//! - [`run`] / [`mmap`] / [`resident`] / [`source`] — the on-disk run
//!   format (chunked, checksummed, one file per time series), a
//!   hand-rolled memory map with a pread fallback, an LRU-budgeted
//!   residency layer, and a `FrameSource` adapter so a viewer or frame
//!   server can serve a run larger than RAM.
//! - [`progressive`] — the chunk/delta record framing under progressive
//!   (coarse-to-fine) frame streaming: checksummed records and the
//!   strict in-order [`progressive::RecordAssembler`] grammar.
//! - [`lru`] — the recency-order structure shared by this crate's
//!   residency layer and the serve layer's caches (re-exported there).

#![deny(missing_docs)]

pub mod codec;
pub mod lru;
pub mod mmap;
pub mod progressive;
pub mod resident;
pub mod run;
pub mod source;

pub use lru::LruOrder;
pub use resident::{Fetch, ResidentRun, ResidentStats};
pub use run::{RunStore, DEFAULT_CHUNK_BYTES};
pub use source::StoredRunSource;
