//! Chunk and delta record framing for progressive frame streaming.
//!
//! A progressive reply is a short sequence of *records*, each travelling
//! in its own wire envelope. This module owns the record container and
//! the strict ordering discipline; what the payloads *mean* (coarse
//! frame, point-range delta, final grid + trailer) belongs to the serve
//! layer's `lod` module, which builds them from the block codecs in
//! [`crate::codec`].
//!
//! ```text
//! offset size  field
//! 0      1    record kind (RECORD_COARSE / RECORD_DELTA / RECORD_FINAL)
//! 1      4    seq, little-endian u32 (0-based position in the stream)
//! 5      4    total, little-endian u32 (records in the whole stream)
//! 9      8    payload length, little-endian u64
//! 17     n    payload
//! 17+n   8    FNV-1a 64 over bytes [0, 17+n), little-endian
//! ```
//!
//! The trailing checksum covers the header *and* payload, so a record
//! re-framed with a forged `seq` fails verification even when the wire
//! envelope around it is rebuilt. A stream always holds at least two
//! records — the coarse head and the final trailer — and
//! [`RecordAssembler`] enforces the grammar: seq 0 is `RECORD_COARSE`,
//! seq `total-1` is `RECORD_FINAL`, everything between is
//! `RECORD_DELTA`, accepted strictly in order with duplicates and
//! reordering rejected. Replay after a transport failure re-sends from
//! seq 0; the assembler's [`RecordAssembler::next_seq`] high-water mark
//! is what lets a client skip records it already applied.

use crate::codec::{CodecError, Result};

/// Record kind: the stream head — frame header, coarse volume, and the
/// first point slice. Always seq 0.
pub const RECORD_COARSE: u8 = 1;
/// Record kind: a refinement delta — one contiguous point range that
/// splices onto the resident partial frame.
pub const RECORD_DELTA: u8 = 2;
/// Record kind: the stream tail — the full-resolution volume and the
/// whole-frame verification trailer. Always seq `total - 1`.
pub const RECORD_FINAL: u8 = 3;

/// Record header size in bytes (kind + seq + total + payload length).
pub const RECORD_HEADER_BYTES: usize = 17;
/// Record checksum trailer size in bytes.
pub const RECORD_CHECKSUM_BYTES: usize = 8;

/// FNV-1a 64-bit hash — the same function the AVWF envelope uses, so a
/// record checksum and an envelope checksum disagree only on scope,
/// never on algorithm.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One record of a progressive stream: its kind, position, the stream
/// length it claims, and the still-encoded payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// One of [`RECORD_COARSE`], [`RECORD_DELTA`], [`RECORD_FINAL`].
    pub kind: u8,
    /// 0-based position in the stream.
    pub seq: u32,
    /// Number of records in the whole stream (every record repeats it,
    /// so a receiver knows the shape from the first record it sees).
    pub total: u32,
    /// The record payload, still encoded.
    pub payload: Vec<u8>,
}

/// Encodes one record: header, payload, FNV-1a 64 trailer.
pub fn encode_record(rec: &Record) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(RECORD_HEADER_BYTES + rec.payload.len() + RECORD_CHECKSUM_BYTES);
    out.push(rec.kind);
    out.extend_from_slice(&rec.seq.to_le_bytes());
    out.extend_from_slice(&rec.total.to_le_bytes());
    out.extend_from_slice(&(rec.payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&rec.payload);
    let fnv = fnv1a64(&out);
    out.extend_from_slice(&fnv.to_le_bytes());
    out
}

/// Decodes one record from `buf`, which must hold exactly the record —
/// trailing bytes, truncation, a length that disagrees with the buffer,
/// an unknown kind, or a checksum mismatch are all structured errors.
pub fn decode_record(buf: &[u8]) -> Result<Record> {
    if buf.len() < RECORD_HEADER_BYTES + RECORD_CHECKSUM_BYTES {
        return Err(CodecError::Truncated {
            needed: RECORD_HEADER_BYTES + RECORD_CHECKSUM_BYTES - buf.len(),
            at: buf.len(),
        });
    }
    let kind = buf[0];
    if !matches!(kind, RECORD_COARSE | RECORD_DELTA | RECORD_FINAL) {
        return Err(CodecError::Corrupt(format!("unknown record kind {kind}")));
    }
    let seq = u32::from_le_bytes(buf[1..5].try_into().unwrap());
    let total = u32::from_le_bytes(buf[5..9].try_into().unwrap());
    let len = u64::from_le_bytes(buf[9..17].try_into().unwrap());
    let body_end = RECORD_HEADER_BYTES
        .checked_add(len as usize)
        .ok_or_else(|| CodecError::Corrupt("record length overflows".into()))?;
    let want = body_end + RECORD_CHECKSUM_BYTES;
    if buf.len() < want {
        return Err(CodecError::Truncated {
            needed: want - buf.len(),
            at: buf.len(),
        });
    }
    if buf.len() != want {
        return Err(CodecError::Corrupt(format!(
            "{} trailing bytes after record",
            buf.len() - want
        )));
    }
    let expected = u64::from_le_bytes(buf[body_end..want].try_into().unwrap());
    let actual = fnv1a64(&buf[..body_end]);
    if actual != expected {
        return Err(CodecError::Corrupt(format!(
            "record checksum mismatch: computed {actual:#018x}, trailer says {expected:#018x}"
        )));
    }
    Ok(Record {
        kind,
        seq,
        total,
        payload: buf[RECORD_HEADER_BYTES..body_end].to_vec(),
    })
}

/// Enforces the stream grammar over a sequence of [`Record`]s: strictly
/// ascending seq from 0, a consistent `total` of at least 2, kind
/// `RECORD_COARSE` exactly at seq 0, `RECORD_FINAL` exactly at the last
/// seq, `RECORD_DELTA` everywhere between. Duplicates, gaps, reordering,
/// records after completion, and mid-stream `total` changes are all
/// rejected.
#[derive(Debug, Default)]
pub struct RecordAssembler {
    next: u32,
    total: Option<u32>,
    done: bool,
}

impl RecordAssembler {
    /// An assembler expecting seq 0 next.
    pub fn new() -> RecordAssembler {
        RecordAssembler::default()
    }

    /// The seq this assembler will accept next — the replay high-water
    /// mark: after a reconnect the sender restarts from 0 and the
    /// receiver discards (without applying) every record below this.
    pub fn next_seq(&self) -> u32 {
        self.next
    }

    /// Whether the final record has been accepted.
    pub fn is_complete(&self) -> bool {
        self.done
    }

    /// Validates `rec` against the grammar and advances. Returns `true`
    /// when `rec` completed the stream.
    pub fn accept(&mut self, rec: &Record) -> Result<bool> {
        if self.done {
            return Err(CodecError::Corrupt(
                "record after the stream completed".into(),
            ));
        }
        if rec.total < 2 {
            return Err(CodecError::Corrupt(format!(
                "stream of {} records (minimum is coarse + final)",
                rec.total
            )));
        }
        match self.total {
            None => self.total = Some(rec.total),
            Some(t) if t != rec.total => {
                return Err(CodecError::Corrupt(format!(
                    "stream length changed mid-stream: {t} then {}",
                    rec.total
                )))
            }
            Some(_) => {}
        }
        if rec.seq != self.next {
            return Err(CodecError::Corrupt(format!(
                "record {} out of order (expected {})",
                rec.seq, self.next
            )));
        }
        let total = self.total.unwrap();
        let expected_kind = if rec.seq == 0 {
            RECORD_COARSE
        } else if rec.seq == total - 1 {
            RECORD_FINAL
        } else {
            RECORD_DELTA
        };
        if rec.kind != expected_kind {
            return Err(CodecError::Corrupt(format!(
                "record {} of {} has kind {}, grammar requires {}",
                rec.seq, total, rec.kind, expected_kind
            )));
        }
        self.next += 1;
        self.done = self.next == total;
        Ok(self.done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(total: u32) -> Vec<Record> {
        (0..total)
            .map(|seq| Record {
                kind: if seq == 0 {
                    RECORD_COARSE
                } else if seq == total - 1 {
                    RECORD_FINAL
                } else {
                    RECORD_DELTA
                },
                seq,
                total,
                payload: vec![seq as u8; 3 + seq as usize],
            })
            .collect()
    }

    #[test]
    fn records_roundtrip() {
        for rec in stream(4) {
            let bytes = encode_record(&rec);
            assert_eq!(decode_record(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn every_truncation_is_structured() {
        let bytes = encode_record(&stream(2)[0]);
        for cut in 0..bytes.len() {
            assert!(
                decode_record(&bytes[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn bitflips_and_forged_headers_are_caught() {
        let bytes = encode_record(&stream(3)[1]);
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x04;
            assert!(decode_record(&bad).is_err(), "flip at {at} decoded");
        }
    }

    #[test]
    fn assembler_accepts_in_order_and_completes() {
        let mut asm = RecordAssembler::new();
        let recs = stream(5);
        for (i, rec) in recs.iter().enumerate() {
            let done = asm.accept(rec).unwrap();
            assert_eq!(done, i == recs.len() - 1);
            assert_eq!(asm.next_seq(), i as u32 + 1);
        }
        assert!(asm.is_complete());
        assert!(asm.accept(&recs[0]).is_err(), "records after completion");
    }

    #[test]
    fn reorder_duplicate_and_gap_are_rejected() {
        let recs = stream(4);
        // Duplicate seq 0.
        let mut asm = RecordAssembler::new();
        asm.accept(&recs[0]).unwrap();
        assert!(asm.accept(&recs[0]).is_err());
        // Gap: 0 then 2.
        let mut asm = RecordAssembler::new();
        asm.accept(&recs[0]).unwrap();
        assert!(asm.accept(&recs[2]).is_err());
        // Starting mid-stream.
        let mut asm = RecordAssembler::new();
        assert!(asm.accept(&recs[1]).is_err());
    }

    #[test]
    fn grammar_violations_are_rejected() {
        let recs = stream(3);
        // Wrong kind at seq 0.
        let mut asm = RecordAssembler::new();
        let mut bad = recs[0].clone();
        bad.kind = RECORD_DELTA;
        assert!(asm.accept(&bad).is_err());
        // total changing mid-stream.
        let mut asm = RecordAssembler::new();
        asm.accept(&recs[0]).unwrap();
        let mut bad = recs[1].clone();
        bad.total = 4;
        assert!(asm.accept(&bad).is_err());
        // A one-record stream can never satisfy coarse + final.
        let mut asm = RecordAssembler::new();
        let lone = Record {
            kind: RECORD_COARSE,
            seq: 0,
            total: 1,
            payload: vec![],
        };
        assert!(asm.accept(&lone).is_err());
    }
}
