//! A small recency-order structure shared by every LRU in the pipeline.
//!
//! The serve layer's extraction cache and remote resident set, and this
//! crate's [`crate::resident::ResidentRun`] residency policy, all need
//! the same three operations — touch a key to the front, find the oldest
//! key, evict it — and early versions did them with
//! `Vec::iter().position()` scans plus `remove(0)` shifts: O(n) per hit
//! and per eviction. This structure keeps a monotonic *tick* per key in
//! a `HashMap` and the mirror `tick → key` order in a `BTreeMap`, making
//! every operation O(log n). It lives in `accelviz-store` (the lowest
//! crate that needs it); `accelviz-serve` re-exports it unchanged.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Recency order over a set of keys: the lowest tick is the
/// least-recently-used key, the highest the most-recently-used.
#[derive(Clone, Debug, Default)]
pub struct LruOrder<K> {
    tick: u64,
    by_key: HashMap<K, u64>,
    by_tick: BTreeMap<u64, K>,
}

impl<K: Clone + Eq + Hash> LruOrder<K> {
    /// An empty order.
    pub fn new() -> LruOrder<K> {
        LruOrder {
            tick: 0,
            by_key: HashMap::new(),
            by_tick: BTreeMap::new(),
        }
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Whether no key is tracked.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Whether `key` is tracked.
    pub fn contains(&self, key: &K) -> bool {
        self.by_key.contains_key(key)
    }

    /// Marks `key` most-recently-used, inserting it if absent.
    pub fn touch(&mut self, key: K) {
        self.tick += 1;
        if let Some(old) = self.by_key.insert(key.clone(), self.tick) {
            self.by_tick.remove(&old);
        }
        self.by_tick.insert(self.tick, key);
    }

    /// Removes `key`; returns whether it was tracked.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.by_key.remove(key) {
            Some(tick) => {
                self.by_tick.remove(&tick);
                true
            }
            None => false,
        }
    }

    /// The least-recently-used key, if any.
    pub fn oldest(&self) -> Option<&K> {
        self.by_tick.values().next()
    }

    /// The most-recently-used key, if any.
    pub fn newest(&self) -> Option<&K> {
        self.by_tick.values().next_back()
    }

    /// Removes and returns the least-recently-used key.
    pub fn pop_oldest(&mut self) -> Option<K> {
        let (&tick, _) = self.by_tick.iter().next()?;
        let key = self.by_tick.remove(&tick)?;
        self.by_key.remove(&key);
        Some(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_order_decides_eviction() {
        let mut lru = LruOrder::new();
        for k in [1u32, 2, 3] {
            lru.touch(k);
        }
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.oldest(), Some(&1));
        assert_eq!(lru.newest(), Some(&3));
        lru.touch(1); // 2 becomes oldest
        assert_eq!(lru.pop_oldest(), Some(2));
        assert_eq!(lru.pop_oldest(), Some(3));
        assert_eq!(lru.pop_oldest(), Some(1));
        assert_eq!(lru.pop_oldest(), None);
        assert!(lru.is_empty());
    }

    #[test]
    fn re_touching_does_not_duplicate() {
        let mut lru = LruOrder::new();
        lru.touch("a");
        lru.touch("a");
        lru.touch("a");
        assert_eq!(lru.len(), 1);
        assert!(lru.contains(&"a"));
        assert_eq!(lru.pop_oldest(), Some("a"));
        assert!(lru.is_empty());
    }

    #[test]
    fn remove_is_exact() {
        let mut lru = LruOrder::new();
        lru.touch(7u32);
        lru.touch(8);
        assert!(lru.remove(&7));
        assert!(!lru.remove(&7));
        assert_eq!(lru.oldest(), Some(&8));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn matches_a_reference_vec_model() {
        // Drive both the structure and the old Vec bookkeeping with the
        // same operation stream; eviction order must be identical.
        let mut lru = LruOrder::new();
        let mut model: Vec<u32> = Vec::new();
        let mut x = 0x9E37_79B9u64;
        for _ in 0..2_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = ((x >> 33) % 12) as u32;
            lru.touch(key);
            if let Some(p) = model.iter().position(|&k| k == key) {
                model.remove(p);
            }
            model.push(key);
            if model.len() > 8 {
                let victim = model.remove(0);
                assert_eq!(lru.pop_oldest(), Some(victim));
            }
            assert_eq!(lru.len(), model.len());
            assert_eq!(lru.oldest(), model.first());
            assert_eq!(lru.newest(), model.last());
        }
    }
}
