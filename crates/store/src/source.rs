//! A [`FrameSource`] backed by an on-disk run: the desktop viewer (and
//! the frame server) reading a dataset bigger than RAM.
//!
//! [`StoredRunSource`] closes the loop the paper's §2.5 opens: the
//! viewer steps through frames, warm frames display instantaneously, and
//! cold frames stream from disk — except here the disk path is real
//! (checksum-verified chunk reads through a memory map or pread), not a
//! latency model. Residency is delegated to [`ResidentRun`]; this
//! adapter only converts fetches into hybrid frames and load reports.

use crate::resident::ResidentRun;
use accelviz_core::hybrid::HybridFrame;
use accelviz_core::viewer::{FrameLoad, FrameSource};
use accelviz_octree::extraction::threshold_for_budget;
use std::io;
use std::sync::Arc;
use std::time::Instant;

/// Serves hybrid frames straight out of a run file, paging particle data
/// in and out under [`ResidentRun`]'s byte budget.
pub struct StoredRunSource {
    run: Arc<ResidentRun>,
    point_budget: usize,
    volume_dims: [usize; 3],
}

impl StoredRunSource {
    /// A source over `run`, extracting at the threshold that keeps about
    /// `point_budget` halo points and binning density into a
    /// `volume_dims` grid.
    pub fn new(
        run: Arc<ResidentRun>,
        point_budget: usize,
        volume_dims: [usize; 3],
    ) -> StoredRunSource {
        StoredRunSource {
            run,
            point_budget,
            volume_dims,
        }
    }

    /// The shared residency layer (counters, budget, tree access).
    pub fn run(&self) -> &Arc<ResidentRun> {
        &self.run
    }
}

impl FrameSource for StoredRunSource {
    fn frame_count(&self) -> usize {
        self.run.frame_count()
    }

    fn load(&mut self, index: usize) -> io::Result<(Arc<HybridFrame>, FrameLoad)> {
        let started = Instant::now();
        let fetch = self.run.fetch(index)?;
        let threshold = threshold_for_budget(&fetch.data, self.point_budget);
        let frame = HybridFrame::from_partition(&fetch.data, index, threshold, self.volume_dims);
        Ok((
            Arc::new(frame),
            FrameLoad {
                cache_hit: fetch.warm,
                bytes_loaded: fetch.bytes_loaded,
                seconds: started.elapsed().as_secs_f64(),
                texture_resident: fetch.warm,
                degraded: false,
                partial: false,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::write_run_file;
    use accelviz_beam::distribution::Distribution;
    use accelviz_octree::builder::{partition, BuildParams};
    use accelviz_octree::plots::PlotType;
    use accelviz_octree::sorted_store::PartitionedData;

    fn build(i: u64, n: usize) -> PartitionedData {
        let ps = Distribution::default_beam().sample(n, i + 1);
        partition(&ps, PlotType::X_PX_Y, BuildParams::default())
    }

    #[test]
    fn stored_frames_match_in_memory_frames_bit_for_bit() {
        let frames: Vec<PartitionedData> = (0..3).map(|i| build(i, 700)).collect();
        let path =
            std::env::temp_dir().join(format!("accelviz-source-match-{}", std::process::id()));
        write_run_file(&path, &frames, 4_096).unwrap();

        // Budget of one frame: every forward step is a cold load.
        let run = Arc::new(ResidentRun::open(&path, 700 * 48).unwrap());
        let mut source = StoredRunSource::new(run, 200, [8, 8, 8]);
        assert_eq!(source.frame_count(), 3);
        for (i, data) in frames.iter().enumerate() {
            let (frame, load) = source.load(i).unwrap();
            let threshold = threshold_for_budget(data, 200);
            let expected = HybridFrame::from_partition(data, i, threshold, [8, 8, 8]);
            assert_eq!(*frame, expected, "frame {i} must be bit-identical");
            assert!(!load.cache_hit);
            assert_eq!(load.bytes_loaded, 700 * 48);
        }
        // Revisiting the last frame is warm.
        let (_, load) = source.load(2).unwrap();
        assert!(load.cache_hit);
        assert_eq!(load.bytes_loaded, 0);
        let _ = std::fs::remove_file(&path);
    }
}
