//! Pure, zero-dependency compression codecs for frame payloads.
//!
//! Three codecs, every encoding self-describing (a one-byte codec id, the
//! element count, and the encoded length travel with the payload):
//!
//! - [`CODEC_RAW`] — passthrough little-endian bytes. The guard against
//!   pathological inputs: the auto-selecting encoders fall back to it
//!   whenever a "compressed" form would be larger than raw.
//! - [`CODEC_DELTA_VARINT`] — for `f32` density grids: consecutive-cell
//!   deltas, zigzag-mapped, LEB128-varint coded. Grids are quantized
//!   particle counts, so an `INT` sub-mode deltas the integer values
//!   directly (a zero cell costs one byte); anything non-integral — or
//!   non-finite — uses the `BITS` sub-mode, which deltas the raw IEEE
//!   bit patterns. No float arithmetic ever touches the values, so
//!   NaN payloads and ±Inf round-trip bit-exactly instead of poisoning
//!   the deltas.
//! - [`CODEC_BITPACK`] — for `f64` streams (halo point coordinates and
//!   the sorted per-point densities): XOR against the previous value's
//!   bit pattern, then blocks of 64 residuals packed at the block's
//!   maximum significant width. Sorted density arrays are long runs of
//!   repeats — all-zero residual blocks cost one byte per 64 values —
//!   and spatially clustered coordinates share sign/exponent/high
//!   mantissa bits, trimming every value.
//!
//! Corruption handling mirrors the wire layer's contract: truncated or
//! inconsistent blocks are a structured [`CodecError`], never a panic.
//! A bit flip *inside* a block may decode to different values — block
//! containers carry no checksum of their own; the consumer (AVWF v2
//! frames, the run store's chunks) checksums the **decoded** payload,
//! which catches every silent alteration end to end.

use std::fmt;

/// Codec id: passthrough little-endian bytes.
pub const CODEC_RAW: u8 = 0;
/// Codec id: delta + zigzag + varint over `f32` cells.
pub const CODEC_DELTA_VARINT: u8 = 1;
/// Codec id: XOR-delta + 64-value block bitpacking over `f64` bit
/// patterns.
pub const CODEC_BITPACK: u8 = 2;

/// Delta-varint sub-mode: values are exact small non-negative integers,
/// deltas run over the integers themselves.
const MODE_INT: u8 = 0;
/// Delta-varint sub-mode: deltas run over raw IEEE-754 bit patterns
/// (the non-finite-safe path).
const MODE_BITS: u8 = 1;

/// Largest integer the `INT` sub-mode stores: beyond 2^24 an `f32` can
/// no longer represent every integer exactly.
const INT_MODE_MAX: f32 = 16_777_216.0;

/// What went wrong decoding a codec block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the block did.
    Truncated {
        /// Bytes the decoder still needed.
        needed: usize,
        /// Offset it had reached.
        at: usize,
    },
    /// The block framed correctly but its contents are inconsistent.
    Corrupt(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, at } => {
                write!(
                    f,
                    "truncated block: needed {needed} more bytes at offset {at}"
                )
            }
            CodecError::Corrupt(why) => write!(f, "corrupt block: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Codec-layer result alias.
pub type Result<T> = std::result::Result<T, CodecError>;

// ---------------------------------------------------------------------
// Primitives: varint, zigzag, bit packing.
// ---------------------------------------------------------------------

/// Appends `v` as an LEB128 varint (1–10 bytes).
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Reads an LEB128 varint at `*pos`, advancing it.
pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos).ok_or(CodecError::Truncated {
            needed: 1,
            at: *pos,
        })?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return Err(CodecError::Corrupt("varint overflows u64".into()));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::Corrupt("varint longer than 10 bytes".into()));
        }
    }
}

/// Maps a signed delta to an unsigned varint-friendly value
/// (0, -1, 1, -2 → 0, 1, 2, 3).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// LSB-first bit accumulator for the bitpack codec.
struct BitWriter {
    buf: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    fn new() -> BitWriter {
        BitWriter {
            buf: Vec::new(),
            acc: 0,
            nbits: 0,
        }
    }

    /// Appends the low `width` bits of `v`.
    fn push(&mut self, v: u64, width: u32) {
        debug_assert!(width <= 64);
        let mut v = if width == 64 {
            v
        } else {
            v & ((1u64 << width) - 1)
        };
        let mut width = width;
        while width > 0 {
            let take = (64 - self.nbits).min(width);
            self.acc |= (v & ones(take)) << self.nbits;
            self.nbits += take;
            v = if take == 64 { 0 } else { v >> take };
            width -= take;
            if self.nbits == 64 {
                self.buf.extend_from_slice(&self.acc.to_le_bytes());
                self.acc = 0;
                self.nbits = 0;
            }
        }
    }

    /// Flushes the partial accumulator to a byte boundary.
    fn align(&mut self) {
        if self.nbits > 0 {
            let bytes = self.nbits.div_ceil(8) as usize;
            self.buf.extend_from_slice(&self.acc.to_le_bytes()[..bytes]);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    fn into_bytes(mut self) -> Vec<u8> {
        self.align();
        self.buf
    }
}

fn ones(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// LSB-first bit cursor over a byte slice.
struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(buf: &'a [u8], pos: usize) -> BitReader<'a> {
        BitReader {
            buf,
            pos,
            acc: 0,
            nbits: 0,
        }
    }

    /// Reads `width` bits, LSB-first.
    fn pull(&mut self, width: u32) -> Result<u64> {
        debug_assert!(width <= 64);
        let mut v: u64 = 0;
        let mut got = 0u32;
        while got < width {
            if self.nbits == 0 {
                let b = *self.buf.get(self.pos).ok_or(CodecError::Truncated {
                    needed: 1,
                    at: self.pos,
                })?;
                self.pos += 1;
                self.acc = u64::from(b);
                self.nbits = 8;
            }
            let take = self.nbits.min(width - got);
            v |= (self.acc & ones(take)) << got;
            self.acc >>= take;
            self.nbits -= take;
            got += take;
        }
        Ok(v)
    }

    /// Discards buffered bits so the cursor sits on a byte boundary.
    fn align(&mut self) {
        self.acc = 0;
        self.nbits = 0;
    }

    fn byte_pos(&self) -> usize {
        self.pos
    }
}

// ---------------------------------------------------------------------
// Block container: `u8 codec | uvarint count | uvarint len | payload`.
// ---------------------------------------------------------------------

fn put_block(out: &mut Vec<u8>, codec: u8, count: usize, payload: &[u8]) {
    out.push(codec);
    put_uvarint(out, count as u64);
    put_uvarint(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

/// Parses a block header at `*pos`: returns `(codec, count, payload)`
/// and advances `*pos` past the whole block. `expect` is the element
/// count the caller knows from context; a mismatched count is rejected
/// before anything is allocated.
fn get_block<'a>(buf: &'a [u8], pos: &mut usize, expect: usize) -> Result<(u8, &'a [u8])> {
    let codec = *buf.get(*pos).ok_or(CodecError::Truncated {
        needed: 1,
        at: *pos,
    })?;
    *pos += 1;
    let count = get_uvarint(buf, pos)?;
    if count != expect as u64 {
        return Err(CodecError::Corrupt(format!(
            "block holds {count} elements, expected {expect}"
        )));
    }
    let len = get_uvarint(buf, pos)? as usize;
    let remaining = buf.len() - *pos;
    if len > remaining {
        return Err(CodecError::Truncated {
            needed: len - remaining,
            at: *pos,
        });
    }
    let payload = &buf[*pos..*pos + len];
    *pos += len;
    Ok((codec, payload))
}

// ---------------------------------------------------------------------
// f32 streams (density grids): delta + zigzag + varint.
// ---------------------------------------------------------------------

fn delta_varint_encode_f32(values: &[f32]) -> Vec<u8> {
    // The INT sub-mode applies only when every value is an exact small
    // non-negative integer — the natural state of a count grid. One NaN,
    // Inf, negative, or fractional cell drops the whole stream to BITS,
    // where deltas run over bit patterns and nothing is ever rounded.
    let int_ok = values
        .iter()
        .all(|&v| v.is_finite() && (0.0..=INT_MODE_MAX).contains(&v) && v.fract() == 0.0);
    let mut out = Vec::with_capacity(values.len() / 2 + 1);
    if int_ok {
        out.push(MODE_INT);
        let mut prev: i64 = 0;
        for &v in values {
            let iv = v as i64;
            put_uvarint(&mut out, zigzag(iv - prev));
            prev = iv;
        }
    } else {
        out.push(MODE_BITS);
        let mut prev: i64 = 0;
        for &v in values {
            let iv = i64::from(v.to_bits());
            put_uvarint(&mut out, zigzag(iv - prev));
            prev = iv;
        }
    }
    out
}

fn delta_varint_decode_f32(payload: &[u8], count: usize) -> Result<Vec<f32>> {
    let mut pos = 0usize;
    let mode = *payload
        .first()
        .ok_or(CodecError::Truncated { needed: 1, at: 0 })?;
    pos += 1;
    let mut values = Vec::with_capacity(count);
    let mut prev: i64 = 0;
    for _ in 0..count {
        let iv = prev
            .checked_add(unzigzag(get_uvarint(payload, &mut pos)?))
            .ok_or_else(|| CodecError::Corrupt("delta chain overflows".into()))?;
        prev = iv;
        match mode {
            MODE_INT => {
                if iv < 0 || iv > INT_MODE_MAX as i64 {
                    return Err(CodecError::Corrupt(format!(
                        "INT-mode value {iv} out of range"
                    )));
                }
                values.push(iv as f32);
            }
            MODE_BITS => {
                if iv < 0 || iv > i64::from(u32::MAX) {
                    return Err(CodecError::Corrupt(format!(
                        "BITS-mode pattern {iv} exceeds u32"
                    )));
                }
                values.push(f32::from_bits(iv as u32));
            }
            other => {
                return Err(CodecError::Corrupt(format!(
                    "unknown delta-varint sub-mode {other}"
                )))
            }
        }
    }
    if pos != payload.len() {
        return Err(CodecError::Corrupt(format!(
            "{} trailing bytes after delta stream",
            payload.len() - pos
        )));
    }
    Ok(values)
}

/// Encodes an `f32` stream with an explicit codec (tests force each path;
/// production uses the auto-selecting [`encode_f32s`]).
pub fn encode_f32s_as(codec: u8, values: &[f32]) -> Result<Vec<u8>> {
    let payload = match codec {
        CODEC_RAW => {
            let mut raw = Vec::with_capacity(values.len() * 4);
            for &v in values {
                raw.extend_from_slice(&v.to_le_bytes());
            }
            raw
        }
        CODEC_DELTA_VARINT => delta_varint_encode_f32(values),
        other => {
            return Err(CodecError::Corrupt(format!(
                "codec {other} cannot carry f32 streams"
            )))
        }
    };
    let mut out = Vec::with_capacity(payload.len() + 12);
    put_block(&mut out, codec, values.len(), &payload);
    Ok(out)
}

/// Encodes an `f32` stream (a density grid), choosing delta-varint when
/// it wins and raw passthrough when it does not.
pub fn encode_f32s(values: &[f32]) -> Vec<u8> {
    let delta = encode_f32s_as(CODEC_DELTA_VARINT, values).expect("delta-varint carries f32");
    if delta.len() < values.len() * 4 + 12 {
        delta
    } else {
        encode_f32s_as(CODEC_RAW, values).expect("raw carries anything")
    }
}

/// Decodes an `f32` block at `buf[*pos..]`, advancing `*pos` past it.
/// `expect` is the element count known from context (grid dims); the
/// block is rejected if it disagrees.
pub fn decode_f32s(buf: &[u8], pos: &mut usize, expect: usize) -> Result<Vec<f32>> {
    let (codec, payload) = get_block(buf, pos, expect)?;
    match codec {
        CODEC_RAW => {
            if payload.len() != expect * 4 {
                return Err(CodecError::Corrupt(format!(
                    "raw f32 block of {} bytes cannot hold {expect} values",
                    payload.len()
                )));
            }
            Ok(payload
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect())
        }
        CODEC_DELTA_VARINT => delta_varint_decode_f32(payload, expect),
        other => Err(CodecError::Corrupt(format!("unknown f32 codec {other}"))),
    }
}

// ---------------------------------------------------------------------
// f64 streams (point columns, densities): XOR-delta + block bitpacking.
// ---------------------------------------------------------------------

/// Values per bitpack block: one width byte amortized over 64 residuals.
const PACK_BLOCK: usize = 64;

fn bitpack_encode_f64(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    // The first value is stored raw: XOR-ing it against zero would set a
    // ~60-bit width for its whole block and sink constant streams.
    let Some((&first, rest)) = values.split_first() else {
        return out;
    };
    out.extend_from_slice(&first.to_le_bytes());
    let mut prev: u64 = first.to_bits();
    let mut residuals = [0u64; PACK_BLOCK];
    for chunk in rest.chunks(PACK_BLOCK) {
        let mut width = 0u32;
        for (i, &v) in chunk.iter().enumerate() {
            let bits = v.to_bits();
            let x = bits ^ prev;
            prev = bits;
            residuals[i] = x;
            width = width.max(64 - x.leading_zeros());
        }
        out.push(width as u8);
        if width > 0 {
            let mut bw = BitWriter::new();
            for &x in &residuals[..chunk.len()] {
                bw.push(x, width);
            }
            out.extend_from_slice(&bw.into_bytes());
        }
    }
    out
}

fn bitpack_decode_f64(payload: &[u8], count: usize) -> Result<Vec<f64>> {
    let mut values = Vec::with_capacity(count);
    let mut pos = 0usize;
    if count == 0 {
        if !payload.is_empty() {
            return Err(CodecError::Corrupt(
                "bytes in an empty packed stream".into(),
            ));
        }
        return Ok(values);
    }
    let first_bytes = payload.get(..8).ok_or(CodecError::Truncated {
        needed: 8usize.saturating_sub(payload.len()),
        at: 0,
    })?;
    let first = f64::from_le_bytes(first_bytes.try_into().unwrap());
    pos += 8;
    values.push(first);
    let mut prev: u64 = first.to_bits();
    let mut remaining = count - 1;
    while remaining > 0 {
        let width = u32::from(
            *payload
                .get(pos)
                .ok_or(CodecError::Truncated { needed: 1, at: pos })?,
        );
        pos += 1;
        if width > 64 {
            return Err(CodecError::Corrupt(format!("pack width {width} > 64")));
        }
        let in_block = remaining.min(PACK_BLOCK);
        if width == 0 {
            for _ in 0..in_block {
                values.push(f64::from_bits(prev));
            }
        } else {
            let mut br = BitReader::new(payload, pos);
            for _ in 0..in_block {
                let x = br.pull(width)?;
                let bits = x ^ prev;
                prev = bits;
                values.push(f64::from_bits(bits));
            }
            br.align();
            pos = br.byte_pos();
        }
        remaining -= in_block;
    }
    if pos != payload.len() {
        return Err(CodecError::Corrupt(format!(
            "{} trailing bytes after packed stream",
            payload.len() - pos
        )));
    }
    Ok(values)
}

/// Encodes an `f64` stream with an explicit codec (tests force each path;
/// production uses the auto-selecting [`encode_f64s`]).
pub fn encode_f64s_as(codec: u8, values: &[f64]) -> Result<Vec<u8>> {
    let payload = match codec {
        CODEC_RAW => {
            let mut raw = Vec::with_capacity(values.len() * 8);
            for &v in values {
                raw.extend_from_slice(&v.to_le_bytes());
            }
            raw
        }
        CODEC_BITPACK => bitpack_encode_f64(values),
        other => {
            return Err(CodecError::Corrupt(format!(
                "codec {other} cannot carry f64 streams"
            )))
        }
    };
    let mut out = Vec::with_capacity(payload.len() + 12);
    put_block(&mut out, codec, values.len(), &payload);
    Ok(out)
}

/// Encodes an `f64` stream (a point-coordinate column or the sorted
/// per-point densities), choosing XOR-bitpack when it wins and raw
/// passthrough when it does not.
pub fn encode_f64s(values: &[f64]) -> Vec<u8> {
    let packed = encode_f64s_as(CODEC_BITPACK, values).expect("bitpack carries f64");
    if packed.len() < values.len() * 8 + 12 {
        packed
    } else {
        encode_f64s_as(CODEC_RAW, values).expect("raw carries anything")
    }
}

/// Decodes an `f64` block at `buf[*pos..]`, advancing `*pos` past it.
/// `expect` is the element count known from context.
pub fn decode_f64s(buf: &[u8], pos: &mut usize, expect: usize) -> Result<Vec<f64>> {
    let (codec, payload) = get_block(buf, pos, expect)?;
    match codec {
        CODEC_RAW => {
            if payload.len() != expect * 8 {
                return Err(CodecError::Corrupt(format!(
                    "raw f64 block of {} bytes cannot hold {expect} values",
                    payload.len()
                )));
            }
            Ok(payload
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect())
        }
        CODEC_BITPACK => bitpack_decode_f64(payload, expect),
        other => Err(CodecError::Corrupt(format!("unknown f64 codec {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_f32(values: &[f32]) -> Vec<f32> {
        let enc = encode_f32s(values);
        let mut pos = 0;
        let back = decode_f32s(&enc, &mut pos, values.len()).unwrap();
        assert_eq!(pos, enc.len(), "decode must consume the whole block");
        back
    }

    fn roundtrip_f64(values: &[f64]) -> Vec<f64> {
        let enc = encode_f64s(values);
        let mut pos = 0;
        let back = decode_f64s(&enc, &mut pos, values.len()).unwrap();
        assert_eq!(pos, enc.len());
        back
    }

    fn bits32(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn bits64(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn varint_roundtrips_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_uvarint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_is_a_bijection_on_extremes() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123_456_789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn count_grid_compresses_hard_and_roundtrips() {
        // A 64³-style mostly-zero count grid: the fig-1 shape.
        let mut grid = vec![0.0f32; 4096];
        for i in 0..200 {
            grid[i * 7 % 4096] = (i % 9) as f32;
        }
        let enc = encode_f32s(&grid);
        assert!(enc.len() * 3 < grid.len() * 4, "counts must compress ≥3x");
        assert_eq!(bits32(&roundtrip_f32(&grid)), bits32(&grid));
    }

    #[test]
    fn non_finite_cells_roundtrip_bit_exactly() {
        // The satellite bugfix: NaN payloads (including non-canonical
        // ones) and ±Inf must survive delta coding untouched.
        let weird = [
            f32::NAN,
            f32::from_bits(0x7fc0_0001), // NaN with a payload
            f32::from_bits(0xffc0_0002), // negative NaN
            f32::INFINITY,
            f32::NEG_INFINITY,
            -0.0,
            1.5,
            3.0,
        ];
        assert_eq!(bits32(&roundtrip_f32(&weird)), bits32(&weird));
        // Forced through the delta codec (not raw fallback) as well.
        let enc = encode_f32s_as(CODEC_DELTA_VARINT, &weird).unwrap();
        let mut pos = 0;
        let back = decode_f32s(&enc, &mut pos, weird.len()).unwrap();
        assert_eq!(bits32(&back), bits32(&weird));
    }

    #[test]
    fn one_nan_demotes_the_whole_stream_to_bits_mode() {
        let mut grid = vec![1.0f32; 100];
        grid[50] = f32::NAN;
        let back = roundtrip_f32(&grid);
        assert_eq!(bits32(&back), bits32(&grid));
        assert!(back[50].is_nan());
    }

    #[test]
    fn constant_f64_stream_costs_about_a_byte_per_block() {
        let values = vec![0.125f64; 1000];
        let enc = encode_f64s(&values);
        assert!(enc.len() < 64, "constant run must collapse: {}", enc.len());
        assert_eq!(bits64(&roundtrip_f64(&values)), bits64(&values));
    }

    #[test]
    fn f64_specials_roundtrip() {
        let weird = [
            f64::NAN,
            f64::from_bits(0x7ff8_0000_0000_0001),
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            f64::MIN_POSITIVE,
            f64::MAX,
        ];
        assert_eq!(bits64(&roundtrip_f64(&weird)), bits64(&weird));
    }

    #[test]
    fn raw_fallback_bounds_expansion() {
        // Adversarial noise: full-range bit patterns defeat both
        // transforms; the auto-encoder must fall back to raw + header.
        let mut x = 0x2545F4914F6CDD1Du64;
        let noisy64: Vec<f64> = (0..256)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                f64::from_bits(x)
            })
            .collect();
        let enc = encode_f64s(&noisy64);
        assert!(enc.len() <= noisy64.len() * 8 + 12);
        assert_eq!(bits64(&roundtrip_f64(&noisy64)), bits64(&noisy64));
    }

    #[test]
    fn empty_streams_roundtrip() {
        assert!(roundtrip_f32(&[]).is_empty());
        assert!(roundtrip_f64(&[]).is_empty());
    }

    #[test]
    fn truncation_is_structured() {
        let enc = encode_f32s(&[1.0, 2.0, 3.0, f32::NAN]);
        for cut in 0..enc.len() {
            let mut pos = 0;
            match decode_f32s(&enc[..cut], &mut pos, 4) {
                Err(_) => {}
                Ok(_) => panic!("cut at {cut}/{} decoded", enc.len()),
            }
        }
    }

    #[test]
    fn count_mismatch_is_rejected_before_allocation() {
        let enc = encode_f64s(&[1.0, 2.0]);
        let mut pos = 0;
        assert!(matches!(
            decode_f64s(&enc, &mut pos, 3),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_codec_id_is_rejected() {
        let mut enc = encode_f32s(&[1.0]);
        enc[0] = 9;
        let mut pos = 0;
        assert!(matches!(
            decode_f32s(&enc, &mut pos, 1),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn forced_raw_is_bytes_plus_header() {
        let vals = [1.0f32, 2.0, 3.0];
        let enc = encode_f32s_as(CODEC_RAW, &vals).unwrap();
        // id + varint(3) + varint(12) + 12 payload bytes.
        assert_eq!(enc.len(), 3 + 12);
    }
}
