//! A hand-rolled read-only memory map with a portable pread fallback.
//!
//! The run store's data region can exceed RAM; mapping the file lets the
//! OS page cache decide which chunks are physically resident while the
//! store addresses them as one flat slice. The FFI surface is three
//! symbols (`mmap`, `munmap`, and their constants) provided by the
//! vendored `libc` shim.
//!
//! Mapping is an optimization, never a requirement: on non-unix targets,
//! when the kernel refuses the mapping, or when
//! `ACCELVIZ_STORE_NO_MMAP=1` is set (CI forces this to keep the
//! fallback honest), [`ChunkSource`] degrades to positioned reads with
//! identical semantics.

use std::fs::File;
use std::io;
use std::path::Path;

/// Environment variable that forces the pread fallback when set to a
/// non-empty value other than `0`.
pub const NO_MMAP_ENV: &str = "ACCELVIZ_STORE_NO_MMAP";

/// A read-only, private mapping of an entire file.
pub struct Mmap {
    ptr: *mut u8,
    len: usize,
}

// The mapping is read-only for its whole lifetime, so shared references
// from any thread are fine, and ownership can move freely.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` read-only. `len` must be the file's current size;
    /// reading through the map past a later truncation is undefined, so
    /// callers must own the file for the mapping's lifetime.
    #[cfg(unix)]
    pub fn map(file: &File, len: usize) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            // POSIX rejects zero-length mappings with EINVAL; an empty
            // file needs no pages, just an empty slice.
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        let ptr = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ,
                libc::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == libc::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr as *mut u8,
            len,
        })
    }

    /// On non-unix targets mapping always fails; [`ChunkSource`] falls
    /// back to positioned reads.
    #[cfg(not(unix))]
    pub fn map(_file: &File, _len: usize) -> io::Result<Mmap> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "mmap unavailable on this platform",
        ))
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // Safety: ptr/len came from a successful mmap that lives until
        // Drop, and the mapping is never written through.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len > 0 {
            // Safety: exactly the region returned by mmap in map().
            unsafe {
                libc::munmap(self.ptr as *mut libc::c_void, self.len);
            }
        }
    }
}

/// Random-access bytes of a run file: a memory map when available, a
/// positioned-read fallback otherwise. Both paths return owned copies so
/// chunk checksumming and particle decoding never borrow the map.
pub enum ChunkSource {
    /// The whole file is mapped; reads are slice copies.
    Mapped(Mmap),
    /// Positioned reads against the open file.
    Pread {
        /// The open run file.
        file: File,
        /// Its size at open time.
        len: u64,
    },
}

fn mmap_disabled() -> bool {
    match std::env::var(NO_MMAP_ENV) {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

impl ChunkSource {
    /// Opens `path`, mapping it unless mapping is disabled or fails.
    pub fn open(path: &Path) -> io::Result<ChunkSource> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if !mmap_disabled() && usize::try_from(len).is_ok() {
            if let Ok(map) = Mmap::map(&file, len as usize) {
                return Ok(ChunkSource::Mapped(map));
            }
        }
        Ok(ChunkSource::Pread { file, len })
    }

    /// Total bytes addressable.
    pub fn len(&self) -> u64 {
        match self {
            ChunkSource::Mapped(m) => m.as_slice().len() as u64,
            ChunkSource::Pread { len, .. } => *len,
        }
    }

    /// Whether the source holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the memory-mapped path is active (diagnostics and tests).
    pub fn is_mapped(&self) -> bool {
        matches!(self, ChunkSource::Mapped(_))
    }

    /// Reads exactly `len` bytes at byte offset `off`.
    pub fn read_at(&self, off: u64, len: usize) -> io::Result<Vec<u8>> {
        let end = off
            .checked_add(len as u64)
            .filter(|&e| e <= self.len())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!(
                        "read of {len} bytes at {off} runs past end ({})",
                        self.len()
                    ),
                )
            })?;
        let _ = end;
        match self {
            ChunkSource::Mapped(m) => {
                let off = off as usize;
                Ok(m.as_slice()[off..off + len].to_vec())
            }
            ChunkSource::Pread { file, .. } => {
                let mut buf = vec![0u8; len];
                read_exact_at(file, &mut buf, off)?;
                Ok(buf)
            }
        }
    }
}

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], off: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, off)
}

#[cfg(not(unix))]
fn read_exact_at(file: &File, buf: &mut [u8], off: u64) -> io::Result<()> {
    // No positioned-read primitive: fall back to seek + read on a
    // duplicated handle so `&self` reads stay possible.
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(off))?;
    f.read_exact(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn scratch(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("accelviz-mmap-{name}-{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn mapped_and_pread_agree() {
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 255) as u8).collect();
        let path = scratch("agree", &payload);
        let src = ChunkSource::open(&path).unwrap();
        let pread = ChunkSource::Pread {
            file: File::open(&path).unwrap(),
            len: payload.len() as u64,
        };
        for (off, len) in [(0u64, 16usize), (9_984, 16), (123, 4_096), (0, 10_000)] {
            assert_eq!(
                src.read_at(off, len).unwrap(),
                pread.read_at(off, len).unwrap()
            );
            assert_eq!(
                src.read_at(off, len).unwrap(),
                payload[off as usize..off as usize + len]
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn out_of_range_reads_are_errors_not_panics() {
        let path = scratch("oob", &[1, 2, 3, 4]);
        let src = ChunkSource::open(&path).unwrap();
        assert!(src.read_at(0, 5).is_err());
        assert!(src.read_at(4, 1).is_err());
        assert!(src.read_at(u64::MAX, 1).is_err());
        assert_eq!(src.read_at(4, 0).unwrap(), Vec::<u8>::new());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_files_are_servable() {
        let path = scratch("empty", &[]);
        let src = ChunkSource::open(&path).unwrap();
        assert!(src.is_empty());
        assert_eq!(src.read_at(0, 0).unwrap(), Vec::<u8>::new());
        assert!(src.read_at(0, 1).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
