//! Beam diagnostics: rms moments, emittances, halo measures, and the
//! four-fold-symmetry metric visible in the paper's Figure 5.

use crate::particle::Particle;
use accelviz_math::OnlineStats;

/// Aggregate second-moment and halo diagnostics of a particle bunch.
#[derive(Clone, Copy, Debug, Default)]
pub struct BeamDiagnostics {
    /// Number of particles.
    pub count: usize,
    /// Centroid ⟨x⟩, ⟨y⟩, ⟨z⟩.
    pub mean_x: f64,
    /// Centroid ⟨y⟩.
    pub mean_y: f64,
    /// Centroid ⟨z⟩.
    pub mean_z: f64,
    /// RMS beam size in x (about the centroid).
    pub rms_x: f64,
    /// RMS beam size in y.
    pub rms_y: f64,
    /// RMS beam size in z.
    pub rms_z: f64,
    /// RMS transverse emittance εx = √(⟨x²⟩⟨px²⟩ − ⟨x·px⟩²).
    pub emittance_x: f64,
    /// RMS transverse emittance εy.
    pub emittance_y: f64,
    /// Fraction of particles with transverse radius > 4 × rms radius —
    /// the operational definition of "halo" used across the workspace.
    pub halo_fraction: f64,
    /// Maximum transverse radius over the bunch divided by the rms radius
    /// (Wangler's simplest halo extent indicator).
    pub max_radius_ratio: f64,
    /// Spatial-profile parameter h = ⟨r⁴⟩/⟨r²⟩² − 2; 0 for a Gaussian-like
    /// core, grows as a halo shoulder develops.
    pub profile_parameter: f64,
}

impl BeamDiagnostics {
    /// Computes diagnostics for a bunch. Returns all-zero diagnostics for
    /// an empty slice.
    pub fn of(particles: &[Particle]) -> BeamDiagnostics {
        if particles.is_empty() {
            return BeamDiagnostics::default();
        }
        let n = particles.len() as f64;

        let mut sx = OnlineStats::new();
        let mut sy = OnlineStats::new();
        let mut sz = OnlineStats::new();
        for p in particles {
            sx.push(p.position.x);
            sy.push(p.position.y);
            sz.push(p.position.z);
        }
        let (mx, my, mz) = (sx.mean(), sy.mean(), sz.mean());

        // Centered second moments for emittance.
        let mut xx = 0.0;
        let mut xpxp = 0.0;
        let mut xxp = 0.0;
        let mut yy = 0.0;
        let mut ypyp = 0.0;
        let mut yyp = 0.0;
        let mut mpx = 0.0;
        let mut mpy = 0.0;
        for p in particles {
            mpx += p.momentum.x;
            mpy += p.momentum.y;
        }
        mpx /= n;
        mpy /= n;
        let mut r2_sum = 0.0;
        let mut r4_sum = 0.0;
        let mut r2_max = 0.0f64;
        for p in particles {
            let x = p.position.x - mx;
            let y = p.position.y - my;
            let px = p.momentum.x - mpx;
            let py = p.momentum.y - mpy;
            xx += x * x;
            xpxp += px * px;
            xxp += x * px;
            yy += y * y;
            ypyp += py * py;
            yyp += y * py;
            let r2 = x * x + y * y;
            r2_sum += r2;
            r4_sum += r2 * r2;
            r2_max = r2_max.max(r2);
        }
        xx /= n;
        xpxp /= n;
        xxp /= n;
        yy /= n;
        ypyp /= n;
        yyp /= n;
        let r2_mean = r2_sum / n;
        let r4_mean = r4_sum / n;

        let emittance_x = (xx * xpxp - xxp * xxp).max(0.0).sqrt();
        let emittance_y = (yy * ypyp - yyp * yyp).max(0.0).sqrt();

        let rms_r = r2_mean.sqrt();
        let halo_cut = 4.0 * rms_r;
        let halo_count = particles
            .iter()
            .filter(|p| {
                let x = p.position.x - mx;
                let y = p.position.y - my;
                (x * x + y * y).sqrt() > halo_cut
            })
            .count();

        BeamDiagnostics {
            count: particles.len(),
            mean_x: mx,
            mean_y: my,
            mean_z: mz,
            rms_x: sx.std_dev(),
            rms_y: sy.std_dev(),
            rms_z: sz.std_dev(),
            emittance_x,
            emittance_y,
            halo_fraction: halo_count as f64 / n,
            max_radius_ratio: if rms_r > 0.0 {
                r2_max.sqrt() / rms_r
            } else {
                0.0
            },
            profile_parameter: if r2_mean > 0.0 {
                r4_mean / (r2_mean * r2_mean) - 2.0
            } else {
                0.0
            },
        }
    }
}

/// Fraction of particles whose transverse radius (about the origin)
/// exceeds `radius`. Used to measure halo growth against a *fixed*
/// reference radius (e.g. the initial rms radius), which is the honest
/// metric when the whole beam is growing.
pub fn halo_fraction_beyond(particles: &[Particle], radius: f64) -> f64 {
    if particles.is_empty() {
        return 0.0;
    }
    particles
        .iter()
        .filter(|p| p.transverse_radius() > radius)
        .count() as f64
        / particles.len() as f64
}

/// Measures the four-fold (quadrant) symmetry of the transverse
/// distribution: 1 means the four quadrant populations are identical, 0
/// means all particles sit in one quadrant.
///
/// The paper's Figure 5 notes that the alternating-gradient focusing
/// produces "the four-fold symmetry seen in the figure"; this is the
/// quantitative check the FIG5 experiment reports.
pub fn four_fold_symmetry(particles: &[Particle]) -> f64 {
    if particles.is_empty() {
        return 1.0;
    }
    let mut quadrants = [0usize; 4];
    let mut counted = 0usize;
    for p in particles {
        // Skip particles exactly on an axis; they belong to no quadrant.
        if p.position.x == 0.0 || p.position.y == 0.0 {
            continue;
        }
        let q = usize::from(p.position.x > 0.0) | (usize::from(p.position.y > 0.0) << 1);
        quadrants[q] += 1;
        counted += 1;
    }
    if counted == 0 {
        return 1.0;
    }
    let expected = counted as f64 / 4.0;
    // Normalized total absolute deviation from equal occupancy; the worst
    // case (everything in one quadrant) has deviation 2·(3/4)·counted.
    let dev: f64 = quadrants.iter().map(|&c| (c as f64 - expected).abs()).sum();
    (1.0 - dev / (1.5 * counted as f64)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::Distribution;
    use accelviz_math::Vec3;

    #[test]
    fn empty_bunch_is_all_zero() {
        let d = BeamDiagnostics::of(&[]);
        assert_eq!(d.count, 0);
        assert_eq!(d.rms_x, 0.0);
        assert_eq!(d.emittance_x, 0.0);
    }

    #[test]
    fn rms_of_known_bunch() {
        // Four particles at ±1 in x: rms_x = 1, centered.
        let ps = vec![
            Particle::at_rest(Vec3::new(1.0, 0.0, 0.0)),
            Particle::at_rest(Vec3::new(-1.0, 0.0, 0.0)),
            Particle::at_rest(Vec3::new(1.0, 0.0, 0.0)),
            Particle::at_rest(Vec3::new(-1.0, 0.0, 0.0)),
        ];
        let d = BeamDiagnostics::of(&ps);
        assert!((d.rms_x - 1.0).abs() < 1e-12);
        assert_eq!(d.mean_x, 0.0);
        // Cold beam: zero emittance.
        assert_eq!(d.emittance_x, 0.0);
    }

    #[test]
    fn emittance_of_uncorrelated_beam() {
        // x = ±a, px = ±b uncorrelated (all four sign combinations):
        // ε = √(a²·b²) = a·b.
        let mut ps = Vec::new();
        for &sx in &[1.0, -1.0] {
            for &sp in &[1.0, -1.0] {
                ps.push(Particle::new(
                    Vec3::new(2.0 * sx, 0.0, 0.0),
                    Vec3::new(0.5 * sp, 0.0, 0.0),
                ));
            }
        }
        let d = BeamDiagnostics::of(&ps);
        assert!((d.emittance_x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_correlated_beam_has_zero_emittance() {
        // px exactly proportional to x ⇒ zero phase-space area.
        let ps: Vec<Particle> = (0..10)
            .map(|i| {
                let x = (i as f64 - 4.5) * 0.1;
                Particle::new(Vec3::new(x, 0.0, 0.0), Vec3::new(2.0 * x, 0.0, 0.0))
            })
            .collect();
        let d = BeamDiagnostics::of(&ps);
        assert!(d.emittance_x < 1e-12);
    }

    #[test]
    fn gaussian_beam_has_tiny_halo_fraction() {
        let ps = Distribution::default_beam().sample(20_000, 3);
        let d = BeamDiagnostics::of(&ps);
        // 4× rms radius on a (truncated) 2-D Gaussian: essentially nothing.
        assert!(d.halo_fraction < 5e-3, "halo {}", d.halo_fraction);
        assert!(d.max_radius_ratio < 6.0);
        // Profile parameter near 0 for a Gaussian transverse profile.
        assert!(
            d.profile_parameter.abs() < 0.3,
            "h = {}",
            d.profile_parameter
        );
    }

    #[test]
    fn halo_fraction_detects_planted_halo() {
        let mut ps = Distribution::default_beam().sample(5_000, 3);
        let rms = BeamDiagnostics::of(&ps).rms_x;
        for i in 0..100 {
            let angle = i as f64;
            ps.push(Particle::at_rest(Vec3::new(
                30.0 * rms * angle.cos(),
                30.0 * rms * angle.sin(),
                0.0,
            )));
        }
        let d = BeamDiagnostics::of(&ps);
        assert!(d.halo_fraction > 0.015, "halo {}", d.halo_fraction);
        assert!(d.max_radius_ratio > 5.0, "ratio {}", d.max_radius_ratio);
        assert!(d.profile_parameter > 1.0, "h = {}", d.profile_parameter);
    }

    #[test]
    fn four_fold_symmetry_of_symmetric_and_lopsided_bunches() {
        let sym: Vec<Particle> = [(1.0, 1.0), (-1.0, 1.0), (1.0, -1.0), (-1.0, -1.0)]
            .iter()
            .map(|&(x, y)| Particle::at_rest(Vec3::new(x, y, 0.0)))
            .collect();
        assert!((four_fold_symmetry(&sym) - 1.0).abs() < 1e-12);

        let lop: Vec<Particle> = (0..100)
            .map(|_| Particle::at_rest(Vec3::new(1.0, 1.0, 0.0)))
            .collect();
        assert!(four_fold_symmetry(&lop) < 0.01);
    }

    #[test]
    fn four_fold_symmetry_of_sampled_beam_is_high() {
        let ps = Distribution::default_beam().sample(20_000, 5);
        assert!(four_fold_symmetry(&ps) > 0.95);
    }

    #[test]
    fn axis_particles_are_ignored() {
        let ps = vec![Particle::at_rest(Vec3::new(0.0, 1.0, 0.0))];
        assert_eq!(four_fold_symmetry(&ps), 1.0);
        assert_eq!(four_fold_symmetry(&[]), 1.0);
    }

    #[test]
    fn centroid_offsets_are_reported() {
        let ps = vec![
            Particle::at_rest(Vec3::new(2.0, 3.0, 4.0)),
            Particle::at_rest(Vec3::new(4.0, 5.0, 6.0)),
        ];
        let d = BeamDiagnostics::of(&ps);
        assert_eq!((d.mean_x, d.mean_y, d.mean_z), (3.0, 4.0, 5.0));
    }
}
