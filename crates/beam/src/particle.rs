//! The 6-D phase-space particle and coordinate selectors.

use accelviz_math::Vec3;

/// One of the six phase-space coordinates stored per particle.
///
/// The paper's simulations store "spatial coordinates (x, y, z) and momenta
/// (px, py, pz) in double-precision" per particle; its Figure 2 plots four
/// different 3-D projections of these six coordinates, so plot types are
/// named by triples of `PhaseCoord`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PhaseCoord {
    /// Horizontal position.
    X,
    /// Horizontal momentum (slope) pₓ.
    Px,
    /// Vertical position.
    Y,
    /// Vertical momentum p_y.
    Py,
    /// Longitudinal position.
    Z,
    /// Longitudinal momentum p_z.
    Pz,
}

impl PhaseCoord {
    /// All six coordinates in storage order.
    pub const ALL: [PhaseCoord; 6] = [
        PhaseCoord::X,
        PhaseCoord::Px,
        PhaseCoord::Y,
        PhaseCoord::Py,
        PhaseCoord::Z,
        PhaseCoord::Pz,
    ];

    /// Short name used in experiment output ("x", "px", ...).
    pub fn name(self) -> &'static str {
        match self {
            PhaseCoord::X => "x",
            PhaseCoord::Px => "px",
            PhaseCoord::Y => "y",
            PhaseCoord::Py => "py",
            PhaseCoord::Z => "z",
            PhaseCoord::Pz => "pz",
        }
    }

    /// `true` for the momentum coordinates.
    pub fn is_momentum(self) -> bool {
        matches!(self, PhaseCoord::Px | PhaseCoord::Py | PhaseCoord::Pz)
    }
}

/// A single macro-particle in 6-D phase space.
///
/// Positions are in meters and momenta are dimensionless transverse slopes
/// (x′ = dx/ds), the conventional trace-space units of beam dynamics codes.
/// The struct is exactly six `f64`s (48 bytes), matching the paper's
/// storage accounting (100 M particles ⇒ ~5 GB per time step).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Particle {
    /// Spatial position (x, y, z).
    pub position: Vec3,
    /// Momentum / slope (px, py, pz).
    pub momentum: Vec3,
}

impl Particle {
    /// Particle from position and momentum.
    #[inline]
    pub fn new(position: Vec3, momentum: Vec3) -> Particle {
        Particle { position, momentum }
    }

    /// Particle at rest at a point.
    #[inline]
    pub fn at_rest(position: Vec3) -> Particle {
        Particle {
            position,
            momentum: Vec3::ZERO,
        }
    }

    /// Value of one phase-space coordinate.
    #[inline]
    pub fn coord(&self, c: PhaseCoord) -> f64 {
        match c {
            PhaseCoord::X => self.position.x,
            PhaseCoord::Px => self.momentum.x,
            PhaseCoord::Y => self.position.y,
            PhaseCoord::Py => self.momentum.y,
            PhaseCoord::Z => self.position.z,
            PhaseCoord::Pz => self.momentum.z,
        }
    }

    /// Mutable access to one phase-space coordinate.
    #[inline]
    pub fn coord_mut(&mut self, c: PhaseCoord) -> &mut f64 {
        match c {
            PhaseCoord::X => &mut self.position.x,
            PhaseCoord::Px => &mut self.momentum.x,
            PhaseCoord::Y => &mut self.position.y,
            PhaseCoord::Py => &mut self.momentum.y,
            PhaseCoord::Z => &mut self.position.z,
            PhaseCoord::Pz => &mut self.momentum.z,
        }
    }

    /// Transverse radius √(x² + y²).
    #[inline]
    pub fn transverse_radius(&self) -> f64 {
        (self.position.x * self.position.x + self.position.y * self.position.y).sqrt()
    }

    /// The six coordinates in storage order `[x, px, y, py, z, pz]`.
    #[inline]
    pub fn to_array(&self) -> [f64; 6] {
        [
            self.position.x,
            self.momentum.x,
            self.position.y,
            self.momentum.y,
            self.position.z,
            self.momentum.z,
        ]
    }

    /// Particle from the storage-order array.
    #[inline]
    pub fn from_array(a: [f64; 6]) -> Particle {
        Particle {
            position: Vec3::new(a[0], a[2], a[4]),
            momentum: Vec3::new(a[1], a[3], a[5]),
        }
    }

    /// `true` when every coordinate is finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.position.is_finite() && self.momentum.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn struct_is_six_doubles() {
        // The paper's storage math (5 GB per 100 M-particle step) relies on
        // 48-byte particles; keep the layout honest.
        assert_eq!(std::mem::size_of::<Particle>(), 48);
    }

    #[test]
    fn coord_accessors_cover_all_six() {
        let p = Particle::from_array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let vals: Vec<f64> = PhaseCoord::ALL.iter().map(|&c| p.coord(c)).collect();
        assert_eq!(vals, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn coord_mut_roundtrip() {
        let mut p = Particle::default();
        for (i, &c) in PhaseCoord::ALL.iter().enumerate() {
            *p.coord_mut(c) = i as f64 * 10.0;
        }
        assert_eq!(p.to_array(), [0.0, 10.0, 20.0, 30.0, 40.0, 50.0]);
    }

    #[test]
    fn array_roundtrip() {
        let a = [0.1, -0.2, 0.3, -0.4, 0.5, -0.6];
        assert_eq!(Particle::from_array(a).to_array(), a);
    }

    #[test]
    fn transverse_radius_ignores_z() {
        let p = Particle::at_rest(Vec3::new(3.0, 4.0, 100.0));
        assert_eq!(p.transverse_radius(), 5.0);
    }

    #[test]
    fn names_and_momentum_flags() {
        assert_eq!(PhaseCoord::Px.name(), "px");
        assert!(PhaseCoord::Pz.is_momentum());
        assert!(!PhaseCoord::Z.is_momentum());
        assert_eq!(PhaseCoord::ALL.len(), 6);
    }

    #[test]
    fn finite_detection() {
        let mut p = Particle::default();
        assert!(p.is_finite());
        p.momentum.y = f64::NAN;
        assert!(!p.is_finite());
    }
}
