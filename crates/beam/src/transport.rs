//! Symplectic linear transport maps through lattice elements.
//!
//! Single-particle motion in a quadrupole channel is governed by Hill's
//! equation `u'' + k(s) u = 0` per transverse plane. Each element therefore
//! has an exact 2×2 transfer matrix per plane; products of these matrices
//! transport particles and stay symplectic (det = 1) to machine precision,
//! which is what keeps emittance conserved in the zero-current limit — one
//! of the physics checks the test suite leans on.

use crate::lattice::{Element, Lattice};
use crate::particle::Particle;

/// A 2×2 transfer matrix acting on one `(u, u')` phase plane.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Map2 {
    /// Matrix entries `[[m11, m12], [m21, m22]]` (row major).
    pub m: [[f64; 2]; 2],
}

impl Map2 {
    /// Identity map.
    pub const IDENTITY: Map2 = Map2 {
        m: [[1.0, 0.0], [0.0, 1.0]],
    };

    /// Drift of length `l`.
    pub fn drift(l: f64) -> Map2 {
        Map2 {
            m: [[1.0, l], [0.0, 1.0]],
        }
    }

    /// Thick focusing lens: `u'' = -k u` with `k > 0`, length `l`.
    pub fn focus(k: f64, l: f64) -> Map2 {
        assert!(k > 0.0);
        let w = k.sqrt();
        let (s, c) = (w * l).sin_cos();
        Map2 {
            m: [[c, s / w], [-w * s, c]],
        }
    }

    /// Thick defocusing lens: `u'' = +k u` with `k > 0`, length `l`.
    pub fn defocus(k: f64, l: f64) -> Map2 {
        assert!(k > 0.0);
        let w = k.sqrt();
        let (s, c) = ((w * l).sinh(), (w * l).cosh());
        Map2 {
            m: [[c, s / w], [w * s, c]],
        }
    }

    /// Map for motion `u'' + k u = 0` over length `l`, any sign of `k`.
    pub fn hill(k: f64, l: f64) -> Map2 {
        if k > 1e-12 {
            Map2::focus(k, l)
        } else if k < -1e-12 {
            Map2::defocus(-k, l)
        } else {
            Map2::drift(l)
        }
    }

    /// Applies the map to a phase-plane pair.
    #[inline]
    pub fn apply(&self, u: f64, up: f64) -> (f64, f64) {
        (
            self.m[0][0] * u + self.m[0][1] * up,
            self.m[1][0] * u + self.m[1][1] * up,
        )
    }

    /// Matrix product `self ∘ other` (other applied first).
    pub fn compose(&self, other: &Map2) -> Map2 {
        let a = &self.m;
        let b = &other.m;
        Map2 {
            m: [
                [
                    a[0][0] * b[0][0] + a[0][1] * b[1][0],
                    a[0][0] * b[0][1] + a[0][1] * b[1][1],
                ],
                [
                    a[1][0] * b[0][0] + a[1][1] * b[1][0],
                    a[1][0] * b[0][1] + a[1][1] * b[1][1],
                ],
            ],
        }
    }

    /// Determinant; exactly 1 for symplectic maps.
    pub fn det(&self) -> f64 {
        self.m[0][0] * self.m[1][1] - self.m[0][1] * self.m[1][0]
    }

    /// Trace, which controls single-particle stability of a periodic cell:
    /// |trace| < 2 ⇔ bounded motion.
    pub fn trace(&self) -> f64 {
        self.m[0][0] + self.m[1][1]
    }

    /// Phase advance per period (radians) for a stable periodic map, or
    /// `None` when unstable (|trace| ≥ 2).
    pub fn phase_advance(&self) -> Option<f64> {
        let half_trace = self.trace() / 2.0;
        if half_trace.abs() >= 1.0 {
            None
        } else {
            Some(half_trace.acos())
        }
    }
}

/// The pair of transverse maps (x plane, y plane) of a lattice element.
/// Longitudinally, elements act as drifts (`z += l * pz`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ElementMap {
    /// Horizontal-plane map.
    pub x: Map2,
    /// Vertical-plane map.
    pub y: Map2,
    /// Longitudinal drift length.
    pub length: f64,
}

impl ElementMap {
    /// Exact map of a lattice element (or a slice of one, via `length`).
    pub fn of(element: &Element, length: f64) -> ElementMap {
        match *element {
            Element::Drift { .. } => ElementMap {
                x: Map2::drift(length),
                y: Map2::drift(length),
                length,
            },
            Element::Quad { k, .. } => ElementMap {
                x: Map2::hill(k, length),
                y: Map2::hill(-k, length),
                length,
            },
        }
    }

    /// Transports one particle through this map.
    #[inline]
    pub fn transport(&self, p: &mut Particle) {
        let (x, px) = self.x.apply(p.position.x, p.momentum.x);
        let (y, py) = self.y.apply(p.position.y, p.momentum.y);
        p.position.x = x;
        p.momentum.x = px;
        p.position.y = y;
        p.momentum.y = py;
        p.position.z += self.length * p.momentum.z;
    }
}

/// The one-cell transfer maps of a periodic lattice, used for stability
/// analysis and matched-beam computation.
pub fn cell_maps(lattice: &Lattice) -> ElementMap {
    let mut x = Map2::IDENTITY;
    let mut y = Map2::IDENTITY;
    let mut length = 0.0;
    for e in lattice.elements() {
        let m = ElementMap::of(e, e.length());
        x = m.x.compose(&x);
        y = m.y.compose(&y);
        length += e.length();
    }
    ElementMap { x, y, length }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_math::approx_eq;

    #[test]
    fn drift_moves_position_only() {
        let m = Map2::drift(2.0);
        let (u, up) = m.apply(1.0, 0.5);
        assert_eq!((u, up), (2.0, 0.5));
        assert_eq!(m.det(), 1.0);
    }

    #[test]
    fn all_element_maps_are_symplectic() {
        for map in [
            Map2::drift(0.37),
            Map2::focus(8.0, 0.2),
            Map2::defocus(8.0, 0.2),
            Map2::hill(-3.0, 1.1),
            Map2::hill(0.0, 1.1),
        ] {
            assert!(approx_eq(map.det(), 1.0, 1e-14), "det = {}", map.det());
        }
    }

    #[test]
    fn composition_is_symplectic_and_associative() {
        let a = Map2::focus(8.0, 0.2);
        let b = Map2::drift(0.3);
        let c = Map2::defocus(8.0, 0.2);
        let ab_c = c.compose(&b.compose(&a));
        let a_bc = c.compose(&b).compose(&a);
        for r in 0..2 {
            for col in 0..2 {
                assert!(approx_eq(ab_c.m[r][col], a_bc.m[r][col], 1e-14));
            }
        }
        assert!(approx_eq(ab_c.det(), 1.0, 1e-12));
    }

    #[test]
    fn thin_focus_limit_matches_thin_lens() {
        // As l → 0 with kl fixed, the thick map approaches the thin lens
        // [[1, 0], [-kl, 1]].
        let kl = 2.0;
        let l = 1e-6;
        let m = Map2::focus(kl / l, l);
        assert!(approx_eq(m.m[0][0], 1.0, 1e-5));
        assert!(approx_eq(m.m[1][0], -kl, 1e-5));
    }

    #[test]
    fn default_fodo_cell_is_stable_in_both_planes() {
        let lattice = Lattice::default_fodo();
        let cell = cell_maps(&lattice);
        let mux = cell.x.phase_advance().expect("x plane must be stable");
        let muy = cell.y.phase_advance().expect("y plane must be stable");
        // Below the 90°-per-cell envelope-instability limit.
        assert!(mux.to_degrees() < 90.0, "σ0x = {}", mux.to_degrees());
        assert!(muy.to_degrees() < 90.0, "σ0y = {}", muy.to_degrees());
        // x and y see mirror-symmetric cells ⇒ equal phase advance.
        assert!(approx_eq(mux, muy, 1e-9));
    }

    #[test]
    fn overly_strong_fodo_is_unstable() {
        let lattice = Lattice::fodo_cell(0.2, 0.3, 200.0);
        let cell = cell_maps(&lattice);
        assert!(cell.x.phase_advance().is_none() || cell.y.phase_advance().is_none());
    }

    #[test]
    fn element_transport_longitudinal_drift() {
        let e = Element::Drift { length: 2.0 };
        let m = ElementMap::of(&e, 2.0);
        let mut p = Particle::from_array([0.0, 0.0, 0.0, 0.0, 1.0, 0.25]);
        m.transport(&mut p);
        assert_eq!(p.position.z, 1.5);
        assert_eq!(p.momentum.z, 0.25);
    }

    #[test]
    fn quad_focuses_one_plane_defocuses_other() {
        let e = Element::Quad {
            length: 0.5,
            k: 4.0,
        };
        let m = ElementMap::of(&e, 0.5);
        // Particle offset in x with no slope: focusing quad bends it inward
        // (px < 0); same offset in y is bent outward (py > 0).
        let mut p = Particle::from_array([1e-3, 0.0, 1e-3, 0.0, 0.0, 0.0]);
        m.transport(&mut p);
        assert!(p.momentum.x < 0.0, "x plane must focus");
        assert!(p.momentum.y > 0.0, "y plane must defocus");
    }

    #[test]
    fn single_particle_motion_is_bounded_over_many_cells() {
        let lattice = Lattice::default_fodo();
        let mut p = Particle::from_array([1e-3, 0.0, -0.5e-3, 0.3e-3, 0.0, 0.0]);
        let mut max_amp: f64 = 0.0;
        for _ in 0..500 {
            for e in lattice.elements() {
                ElementMap::of(e, e.length()).transport(&mut p);
            }
            max_amp = max_amp.max(p.transverse_radius());
        }
        // Stable motion: amplitude stays within a small multiple of the
        // initial offset (Courant–Snyder beating, no growth).
        assert!(max_amp < 10e-3, "unbounded motion: {max_amp}");
    }
}
