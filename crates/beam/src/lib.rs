//! Particle beam dynamics simulator — the substrate standing in for the
//! IMPACT parallel particle-in-cell code whose output the paper visualizes
//! (§2, refs [10, 11]).
//!
//! The paper's beam data comes from simulations of "an intense beam
//! propagating in a magnetic quadrupole channel", with focusing alternating
//! in the transverse x/y planes (a FODO lattice) and a tenuous *beam halo*
//! thousands of times less dense than the core — the region the hybrid
//! rendering technique exists to preserve. This crate reproduces that data
//! generator at laptop scale:
//!
//! - [`particle`] — 6-D phase-space particles `(x, px, y, py, z, pz)` in
//!   double precision, exactly the layout the paper stores (48 bytes each).
//! - [`distribution`] — initial particle distributions (Gaussian, KV,
//!   waterbag, semi-Gaussian) with explicit seeds.
//! - [`lattice`] — drift/quadrupole elements and FODO channel builders.
//! - [`transport`] — symplectic linear maps through lattice elements.
//! - [`spacecharge`] — the particle-core model of Qiang & Ryne (the paper's
//!   ref \[10\]): a breathing uniform-density core whose mismatch oscillations
//!   resonantly drive particles into a halo.
//! - [`simulation`] — the time-stepping loop (Rayon-parallel particle
//!   pushes) producing per-step snapshots.
//! - [`diagnostics`] — rms sizes, emittances, halo metrics, and the
//!   four-fold-symmetry measure visible in the paper's Figure 5.
//! - [`io`] — the fixed binary snapshot format whose byte counts back the
//!   paper's storage arithmetic (100 M particles ⇒ ~5 GB per step).

pub mod diagnostics;
pub mod distribution;
pub mod io;
pub mod lattice;
pub mod particle;
pub mod simulation;
pub mod spacecharge;
pub mod transport;
pub mod twiss;

pub use diagnostics::BeamDiagnostics;
pub use distribution::{Distribution, DistributionKind};
pub use io::{read_snapshot, snapshot_bytes, write_snapshot, BYTES_PER_PARTICLE};
pub use lattice::{Element, Lattice};
pub use particle::{Particle, PhaseCoord};
pub use simulation::{BeamConfig, BeamSimulation, Snapshot};
pub use spacecharge::{CoreEnvelope, SpaceChargeModel};
pub use twiss::{periodic_twiss, Twiss};
