//! The particle-core space-charge model (Qiang & Ryne, *Phys. Rev. ST
//! Accel. Beams* 3, 064201 — the paper's reference \[10\]).
//!
//! High-intensity beams develop a *halo*: a tenuous population thousands of
//! times less dense than the core, driven out by the parametric resonance
//! between single-particle motion and the breathing oscillation of a
//! mismatched beam core. The halo is precisely the low-density structure
//! the paper's hybrid renderer preserves (§2.2: "the most detailed and
//! important area to visualize is the very low-density beam halo").
//!
//! The model: the beam core is a uniform-density ellipse whose semi-axes
//! `(a, b)` obey the KV envelope equations
//!
//! ```text
//! a'' + k(s)·a − 2K/(a+b) − εx²/a³ = 0
//! b'' − k(s)·b − 2K/(a+b) − εy²/b³ = 0
//! ```
//!
//! and test particles feel the quadrupole force plus the core's
//! space-charge field: linear inside the ellipse, falling off as 1/r
//! outside (line-charge approximation).

use crate::lattice::Lattice;
use crate::particle::Particle;

/// Space-charge model parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpaceChargeModel {
    /// Generalized beam perveance K (dimensionless measure of beam
    /// intensity; 0 switches space charge off).
    pub perveance: f64,
    /// Unnormalized rms emittance of the x plane times 4 (the "total"
    /// emittance of the equivalent KV beam), in m·rad.
    pub emittance_x: f64,
    /// Same for the y plane.
    pub emittance_y: f64,
}

impl SpaceChargeModel {
    /// A model scaled for the default FODO channel: intense enough that a
    /// mismatched core pumps a visible halo within ~100 cells.
    pub fn default_intense() -> SpaceChargeModel {
        SpaceChargeModel {
            perveance: 8.0e-6,
            emittance_x: 4.0e-6,
            emittance_y: 4.0e-6,
        }
    }

    /// Transverse space-charge kick `(Δpx, Δpy)` per unit path length felt
    /// by a particle at `(x, y)` from a uniform elliptical core with
    /// semi-axes `(a, b)`.
    pub fn field(&self, x: f64, y: f64, a: f64, b: f64) -> (f64, f64) {
        let k = self.perveance;
        if k == 0.0 {
            return (0.0, 0.0);
        }
        let inside = (x / a) * (x / a) + (y / b) * (y / b) <= 1.0;
        if inside {
            // Interior field of a uniform elliptical charge distribution.
            let s = a + b;
            (2.0 * k * x / (a * s), 2.0 * k * y / (b * s))
        } else {
            // Exterior: line-charge (1/r) approximation. For a round core
            // (a = b) the interior field at the boundary is K/a, and so is
            // this exterior form — continuous in the round limit.
            let r2 = x * x + y * y;
            if r2 <= 1e-300 {
                (0.0, 0.0)
            } else {
                (k * x / r2, k * y / r2)
            }
        }
    }
}

/// The breathing beam-core envelope state `(a, a', b, b')`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoreEnvelope {
    /// Horizontal semi-axis (m).
    pub a: f64,
    /// d a / d s.
    pub ap: f64,
    /// Vertical semi-axis (m).
    pub b: f64,
    /// d b / d s.
    pub bp: f64,
}

impl CoreEnvelope {
    /// Envelope starting from semi-axes with zero slope.
    pub fn stationary(a: f64, b: f64) -> CoreEnvelope {
        assert!(a > 0.0 && b > 0.0, "core semi-axes must be positive");
        CoreEnvelope {
            a,
            ap: 0.0,
            b,
            bp: 0.0,
        }
    }

    /// Envelope derivative at path position `s`.
    fn derivative(&self, lattice: &Lattice, model: &SpaceChargeModel, s: f64) -> [f64; 4] {
        let k = lattice.k_at(s);
        let sum = self.a + self.b;
        let sc = if sum > 1e-12 {
            2.0 * model.perveance / sum
        } else {
            0.0
        };
        let ex2 = model.emittance_x * model.emittance_x;
        let ey2 = model.emittance_y * model.emittance_y;
        [
            self.ap,
            -k * self.a + sc + ex2 / (self.a * self.a * self.a),
            self.bp,
            k * self.b + sc + ey2 / (self.b * self.b * self.b),
        ]
    }

    /// Advances the envelope by `ds` with classical RK4, sampling `k(s)`
    /// at the sub-stage positions.
    pub fn step(&mut self, lattice: &Lattice, model: &SpaceChargeModel, s: f64, ds: f64) {
        let y0 = [self.a, self.ap, self.b, self.bp];
        let add = |y: &[f64; 4], k: &[f64; 4], h: f64| -> CoreEnvelope {
            CoreEnvelope {
                a: (y[0] + k[0] * h).max(1e-9),
                ap: y[1] + k[1] * h,
                b: (y[2] + k[2] * h).max(1e-9),
                bp: y[3] + k[3] * h,
            }
        };
        let k1 = self.derivative(lattice, model, s);
        let k2 = add(&y0, &k1, ds / 2.0).derivative(lattice, model, s + ds / 2.0);
        let k3 = add(&y0, &k2, ds / 2.0).derivative(lattice, model, s + ds / 2.0);
        let k4 = add(&y0, &k3, ds).derivative(lattice, model, s + ds);
        for i in 0..4 {
            let dy = (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]) / 6.0 * ds;
            match i {
                0 => self.a = (self.a + dy).max(1e-9),
                1 => self.ap += dy,
                2 => self.b = (self.b + dy).max(1e-9),
                _ => self.bp += dy,
            }
        }
    }

    /// Mean core radius √(a·b).
    pub fn mean_radius(&self) -> f64 {
        (self.a * self.b).sqrt()
    }

    /// Applies the core's space-charge kick to a particle over path `ds`.
    #[inline]
    pub fn kick(&self, model: &SpaceChargeModel, p: &mut Particle, ds: f64) {
        let (fx, fy) = model.field(p.position.x, p.position.y, self.a, self.b);
        p.momentum.x += fx * ds;
        p.momentum.y += fy * ds;
    }
}

/// Finds an approximately matched (periodic) envelope for a lattice by
/// damped relaxation: repeatedly integrates one cell and averages the
/// start/end states until the cell map is (nearly) periodic.
///
/// Returns the matched envelope and the residual |Δa| + |Δb| over one cell.
pub fn match_envelope(
    lattice: &Lattice,
    model: &SpaceChargeModel,
    initial_radius: f64,
    iterations: usize,
    steps_per_cell: usize,
) -> (CoreEnvelope, f64) {
    assert!(steps_per_cell > 0);
    let cell = lattice.cell_length();
    let ds = cell / steps_per_cell as f64;
    let mut env = CoreEnvelope::stationary(initial_radius, initial_radius);
    let mut residual = f64::INFINITY;
    for _ in 0..iterations {
        let start = env;
        let mut s = 0.0;
        let mut e = env;
        for _ in 0..steps_per_cell {
            e.step(lattice, model, s, ds);
            s += ds;
        }
        residual = (e.a - start.a).abs()
            + (e.b - start.b).abs()
            + (e.ap - start.ap).abs()
            + (e.bp - start.bp).abs();
        // Damped average of start and end state pulls toward the periodic
        // fixed point.
        env = CoreEnvelope {
            a: 0.5 * (start.a + e.a),
            ap: 0.5 * (start.ap + e.ap),
            b: 0.5 * (start.b + e.b),
            bp: 0.5 * (start.bp + e.bp),
        };
    }
    (env, residual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_math::Vec3;

    fn model() -> SpaceChargeModel {
        SpaceChargeModel::default_intense()
    }

    #[test]
    fn field_is_linear_inside_core() {
        let m = model();
        let (a, b) = (1.0e-3, 1.0e-3);
        let (fx1, _) = m.field(0.2e-3, 0.0, a, b);
        let (fx2, _) = m.field(0.4e-3, 0.0, a, b);
        assert!(
            (fx2 / fx1 - 2.0).abs() < 1e-9,
            "interior field must be linear"
        );
    }

    #[test]
    fn field_decays_outside_core() {
        let m = model();
        let (a, b) = (1.0e-3, 1.0e-3);
        let (f1, _) = m.field(2.0e-3, 0.0, a, b);
        let (f2, _) = m.field(4.0e-3, 0.0, a, b);
        assert!(
            (f1 / f2 - 2.0).abs() < 1e-9,
            "exterior field must fall as 1/r"
        );
    }

    #[test]
    fn field_is_continuous_at_round_boundary() {
        let m = model();
        let (a, b) = (1.0e-3, 1.0e-3);
        let eps = 1e-9;
        let (fin, _) = m.field(a - eps, 0.0, a, b);
        let (fout, _) = m.field(a + eps, 0.0, a, b);
        assert!((fin - fout).abs() / fin.abs() < 1e-3);
    }

    #[test]
    fn field_is_defocusing_and_odd() {
        let m = model();
        let (fx, fy) = m.field(0.5e-3, -0.3e-3, 1.0e-3, 1.0e-3);
        assert!(fx > 0.0, "space charge pushes outward in x");
        assert!(fy < 0.0, "space charge pushes outward in y");
        let (fx2, fy2) = m.field(-0.5e-3, 0.3e-3, 1.0e-3, 1.0e-3);
        assert!((fx + fx2).abs() < 1e-18 && (fy + fy2).abs() < 1e-18);
    }

    #[test]
    fn zero_perveance_means_no_kick() {
        let m = SpaceChargeModel {
            perveance: 0.0,
            emittance_x: 1e-6,
            emittance_y: 1e-6,
        };
        assert_eq!(m.field(1.0, 1.0, 1e-3, 1e-3), (0.0, 0.0));
    }

    #[test]
    fn envelope_stays_bounded_in_stable_channel() {
        let lattice = crate::lattice::Lattice::default_fodo();
        let m = model();
        let (env, _) = match_envelope(&lattice, &m, 1.2e-3, 200, 64);
        let mut e = env;
        let ds = lattice.cell_length() / 64.0;
        let mut s = 0.0;
        let mut max_a: f64 = 0.0;
        for _ in 0..64 * 100 {
            e.step(&lattice, &m, s, ds);
            s += ds;
            max_a = max_a.max(e.a.max(e.b));
            assert!(e.a.is_finite() && e.b.is_finite());
        }
        assert!(max_a < 20.0e-3, "envelope blew up: {max_a}");
        assert!(e.a > 1e-6, "envelope collapsed: {}", e.a);
    }

    #[test]
    fn matched_envelope_has_small_residual() {
        let lattice = crate::lattice::Lattice::default_fodo();
        let m = model();
        let (env, residual) = match_envelope(&lattice, &m, 1.2e-3, 400, 64);
        assert!(
            residual < 0.05 * env.a,
            "matching failed: residual {residual}, a {}",
            env.a
        );
    }

    #[test]
    fn mismatched_envelope_breathes_without_damping() {
        // The halo mechanism needs a *persistent* core oscillation: the
        // envelope equation has no dissipation, so a mismatched envelope
        // must keep breathing with undiminished amplitude.
        let lattice = crate::lattice::Lattice::default_fodo();
        let m = model();
        let (matched, _) = match_envelope(&lattice, &m, 1.2e-3, 300, 64);
        let mut env = CoreEnvelope {
            a: matched.a * 1.5,
            ap: matched.ap,
            b: matched.b * 1.5,
            bp: matched.bp,
        };
        let ds = lattice.cell_length() / 64.0;
        let mut s = 0.0;
        // Record cell-averaged radius (averaging removes the fast FODO
        // flutter and leaves the slow breathing mode).
        let mut cell_means = Vec::new();
        for _ in 0..200 {
            let mut acc = 0.0;
            for _ in 0..64 {
                env.step(&lattice, &m, s, ds);
                s += ds;
                acc += env.mean_radius();
            }
            cell_means.push(acc / 64.0);
        }
        let (first, last) = cell_means.split_at(cell_means.len() / 2);
        let osc = |w: &[f64]| -> f64 {
            let mean = w.iter().sum::<f64>() / w.len() as f64;
            w.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max)
        };
        let a_first = osc(first);
        let a_last = osc(last);
        assert!(
            a_first > 0.05 * matched.a,
            "mismatch must excite breathing: {a_first}"
        );
        assert!(
            a_last > 0.4 * a_first,
            "breathing must persist: {a_first} → {a_last}"
        );
        // And a matched envelope barely breathes in comparison.
        let mut menv = matched;
        let mut s = 0.0;
        let mut matched_means = Vec::new();
        for _ in 0..100 {
            let mut acc = 0.0;
            for _ in 0..64 {
                menv.step(&lattice, &m, s, ds);
                s += ds;
                acc += menv.mean_radius();
            }
            matched_means.push(acc / 64.0);
        }
        assert!(
            osc(&matched_means) < 0.5 * a_first,
            "matched envelope should breathe far less: {} vs {a_first}",
            osc(&matched_means)
        );
    }

    #[test]
    fn kick_changes_momentum_not_position() {
        let env = CoreEnvelope::stationary(1.0e-3, 1.0e-3);
        let m = model();
        let mut p = Particle::new(Vec3::new(0.5e-3, 0.0, 0.0), Vec3::ZERO);
        let before = p.position;
        env.kick(&m, &mut p, 0.01);
        assert_eq!(p.position, before);
        assert!(p.momentum.x > 0.0);
        assert_eq!(p.momentum.y, 0.0);
    }

    #[test]
    fn mean_radius() {
        let env = CoreEnvelope::stationary(4.0e-3, 1.0e-3);
        assert!((env.mean_radius() - 2.0e-3).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn nonpositive_core_panics() {
        let _ = CoreEnvelope::stationary(0.0, 1.0e-3);
    }
}
