//! The beam simulation driver: split-operator stepping of the whole bunch
//! through the lattice, with optional particle-core space charge, producing
//! the per-step snapshots the visualization pipeline consumes.
//!
//! The paper's primary data set is "a simulation over 350 time steps"
//! through a quadrupole channel; [`BeamSimulation::run`] reproduces exactly
//! that shape of output (one [`Snapshot`] per recorded step).

use crate::distribution::Distribution;
use crate::lattice::Lattice;
use crate::particle::Particle;
use crate::spacecharge::{match_envelope, CoreEnvelope, SpaceChargeModel};
use crate::transport::ElementMap;
use rayon::prelude::*;

/// Configuration of a beam dynamics run.
#[derive(Clone, Debug)]
pub struct BeamConfig {
    /// Number of macro-particles.
    pub n_particles: usize,
    /// Initial distribution.
    pub distribution: Distribution,
    /// The periodic channel to propagate through.
    pub lattice: Lattice,
    /// Integration steps per lattice cell (split-operator slices).
    pub steps_per_cell: usize,
    /// Space-charge model; `None` runs the zero-current (pure linear)
    /// limit.
    pub space_charge: Option<SpaceChargeModel>,
    /// Core mismatch factor: the initial core envelope is the matched one
    /// scaled by this factor. Values away from 1 excite the breathing mode
    /// that drives halo formation. Ignored without space charge.
    pub mismatch: f64,
    /// RNG seed for the initial distribution.
    pub seed: u64,
}

impl BeamConfig {
    /// The configuration used throughout examples and benches: a Gaussian
    /// bunch in the default FODO channel with an intense, 50% mismatched
    /// core — the halo-producing regime of the paper's beam data.
    ///
    /// The bunch is sized self-consistently: the rms beam size is set to
    /// half the matched core radius (the uniform-equivalent relation), and
    /// the momentum spread follows from the model emittance, so the
    /// particles actually populate the nonlinear edge of the core where
    /// the mismatch resonance pumps the halo.
    pub fn halo_study(n_particles: usize, seed: u64) -> BeamConfig {
        let lattice = Lattice::default_fodo();
        let model = SpaceChargeModel::default_intense();
        let (env, _res) = match_envelope(&lattice, &model, 2.0e-3, 300, 64);
        let mut distribution = Distribution::default_beam();
        distribution.sigma_pos.x = env.a / 2.0;
        distribution.sigma_pos.y = env.b / 2.0;
        distribution.sigma_mom.x = model.emittance_x / (2.0 * env.a);
        distribution.sigma_mom.y = model.emittance_y / (2.0 * env.b);
        BeamConfig {
            n_particles,
            distribution,
            lattice,
            steps_per_cell: 32,
            space_charge: Some(model),
            mismatch: 1.5,
            seed,
        }
    }

    /// Zero-current configuration (linear transport only).
    pub fn zero_current(n_particles: usize, seed: u64) -> BeamConfig {
        BeamConfig {
            n_particles,
            distribution: Distribution::default_beam(),
            lattice: Lattice::default_fodo(),
            steps_per_cell: 32,
            space_charge: None,
            mismatch: 1.0,
            seed,
        }
    }
}

/// One recorded time step of the simulation.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Index of the recorded step (0 = initial distribution).
    pub step: usize,
    /// Path position s (meters) at which the snapshot was taken.
    pub s: f64,
    /// The full particle array at this step.
    pub particles: Vec<Particle>,
}

/// A running beam simulation.
#[derive(Clone, Debug)]
pub struct BeamSimulation {
    config: BeamConfig,
    particles: Vec<Particle>,
    envelope: Option<CoreEnvelope>,
    s: f64,
    steps_taken: usize,
}

impl BeamSimulation {
    /// Creates a simulation: samples the initial bunch and, when space
    /// charge is enabled, computes the matched core envelope and applies
    /// the mismatch factor.
    pub fn new(config: BeamConfig) -> BeamSimulation {
        assert!(config.steps_per_cell > 0, "steps_per_cell must be positive");
        assert!(!config.lattice.is_empty(), "lattice must not be empty");
        let particles = config.distribution.sample(config.n_particles, config.seed);
        let envelope = config.space_charge.as_ref().map(|model| {
            let r0 = config.distribution.sigma_pos.x.max(1e-6) * 2.0;
            let (matched, _res) = match_envelope(&config.lattice, model, r0, 300, 64);
            CoreEnvelope {
                a: matched.a * config.mismatch,
                ap: matched.ap,
                b: matched.b * config.mismatch,
                bp: matched.bp,
            }
        });
        BeamSimulation {
            config,
            particles,
            envelope,
            s: 0.0,
            steps_taken: 0,
        }
    }

    /// The particle array at the current step.
    pub fn particles(&self) -> &[Particle] {
        &self.particles
    }

    /// Current path position (meters).
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Number of integration steps taken so far.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// The core envelope (when space charge is enabled).
    pub fn envelope(&self) -> Option<&CoreEnvelope> {
        self.envelope.as_ref()
    }

    /// Step size ds (meters).
    pub fn ds(&self) -> f64 {
        self.config.lattice.cell_length() / self.config.steps_per_cell as f64
    }

    /// Decomposes the interval `[s, s + ds]` into element slices, honoring
    /// element boundaries, and returns the exact map of each slice.
    fn slice_maps(&self, s: f64, ds: f64) -> Vec<ElementMap> {
        let lattice = &self.config.lattice;
        let mut maps = Vec::with_capacity(2);
        let mut pos = s;
        let mut remaining = ds;
        while remaining > 1e-12 {
            let (element, offset) = lattice
                .element_at(pos)
                .expect("non-empty lattice always yields an element");
            let left_in_element = (element.length() - offset).max(1e-12);
            let h = remaining.min(left_in_element);
            maps.push(ElementMap::of(&element, h));
            pos += h;
            remaining -= h;
        }
        maps
    }

    /// Advances the whole bunch by one integration step `ds` using the
    /// kick–drift split: linear transport over ds, then the space-charge
    /// impulse accumulated over ds (standard split-operator ordering for
    /// particle-core studies).
    pub fn step(&mut self) {
        let ds = self.ds();
        let maps = self.slice_maps(self.s, ds);

        // Linear transport (exact per-element maps), Rayon-parallel.
        self.particles.par_iter_mut().for_each(|p| {
            for m in &maps {
                m.transport(p);
            }
        });

        // Space-charge kick from the core at the *new* position, and
        // envelope advance over the same interval.
        if let (Some(model), Some(env)) = (self.config.space_charge, self.envelope.as_mut()) {
            env.step(&self.config.lattice, &model, self.s, ds);
            let env_now = *env;
            self.particles.par_iter_mut().for_each(|p| {
                env_now.kick(&model, p, ds);
            });
        }

        self.s += ds;
        self.steps_taken += 1;
    }

    /// Takes a snapshot of the current state.
    pub fn snapshot(&self, step: usize) -> Snapshot {
        Snapshot {
            step,
            s: self.s,
            particles: self.particles.clone(),
        }
    }

    /// Runs the simulation for `n_steps` *recorded* steps, taking
    /// `substeps_per_record` integration steps between recordings, and
    /// returns the snapshots (including the initial state as step 0).
    ///
    /// `run(350, k)` reproduces the shape of the paper's 350-step data set.
    pub fn run(&mut self, n_steps: usize, substeps_per_record: usize) -> Vec<Snapshot> {
        assert!(substeps_per_record > 0);
        let mut out = Vec::with_capacity(n_steps + 1);
        out.push(self.snapshot(0));
        for step in 1..=n_steps {
            for _ in 0..substeps_per_record {
                self.step();
            }
            out.push(self.snapshot(step));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::BeamDiagnostics;

    #[test]
    fn initial_state_matches_distribution() {
        let sim = BeamSimulation::new(BeamConfig::zero_current(500, 1));
        assert_eq!(sim.particles().len(), 500);
        assert_eq!(sim.s(), 0.0);
        let again = BeamSimulation::new(BeamConfig::zero_current(500, 1));
        assert_eq!(sim.particles(), again.particles());
    }

    #[test]
    fn stepping_advances_s_by_ds() {
        let mut sim = BeamSimulation::new(BeamConfig::zero_current(10, 2));
        let ds = sim.ds();
        sim.step();
        assert!((sim.s() - ds).abs() < 1e-12);
        sim.step();
        assert!((sim.s() - 2.0 * ds).abs() < 1e-12);
        assert_eq!(sim.steps_taken(), 2);
    }

    #[test]
    fn zero_current_beam_stays_bounded_and_emittance_is_conserved() {
        let mut sim = BeamSimulation::new(BeamConfig::zero_current(2_000, 3));
        let d0 = BeamDiagnostics::of(sim.particles());
        for _ in 0..32 * 20 {
            sim.step();
        }
        let d1 = BeamDiagnostics::of(sim.particles());
        // Linear symplectic transport preserves rms emittance exactly.
        assert!(
            (d1.emittance_x / d0.emittance_x - 1.0).abs() < 1e-9,
            "εx drifted: {} → {}",
            d0.emittance_x,
            d1.emittance_x
        );
        assert!(
            (d1.emittance_y / d0.emittance_y - 1.0).abs() < 1e-9,
            "εy drifted"
        );
        assert!(d1.rms_x < 10.0 * d0.rms_x, "beam blew up");
    }

    #[test]
    fn run_records_requested_snapshots() {
        let mut sim = BeamSimulation::new(BeamConfig::zero_current(50, 5));
        let snaps = sim.run(10, 2);
        assert_eq!(snaps.len(), 11);
        assert_eq!(snaps[0].step, 0);
        assert_eq!(snaps[10].step, 10);
        assert_eq!(sim.steps_taken(), 20);
        // s increases monotonically across snapshots.
        for w in snaps.windows(2) {
            assert!(w[1].s > w[0].s);
        }
    }

    #[test]
    fn mismatched_intense_beam_grows_a_halo() {
        // The core physics claim behind the paper's §2 data: a mismatched
        // high-intensity beam drives particles far beyond the initial beam
        // radius (the halo), which a zero-current beam in the same channel
        // does not. Halo is measured against the *initial* rms radius —
        // against the evolved rms the growth is partly self-similar.
        use crate::diagnostics::halo_fraction_beyond;
        let halo_cfg = BeamConfig::halo_study(4_000, 7);
        let mut quiet_cfg = BeamConfig::zero_current(4_000, 7);
        quiet_cfg.distribution = halo_cfg.distribution;
        let mut halo_sim = BeamSimulation::new(halo_cfg);
        let mut quiet_sim = BeamSimulation::new(quiet_cfg);
        let d0 = BeamDiagnostics::of(halo_sim.particles());
        let r0 = (d0.rms_x * d0.rms_x + d0.rms_y * d0.rms_y).sqrt();
        for _ in 0..32 * 60 {
            halo_sim.step();
            quiet_sim.step();
        }
        let halo = halo_fraction_beyond(halo_sim.particles(), 4.0 * r0);
        let quiet = halo_fraction_beyond(quiet_sim.particles(), 4.0 * r0);
        assert!(
            halo > 10.0 * quiet.max(1e-4) || (halo > 1e-3 && quiet == 0.0),
            "mismatched intense beam should grow halo ({halo} vs {quiet})"
        );
        assert!(halo > 1e-3, "halo fraction suspiciously small: {halo}");
        // All particles stay finite.
        assert!(halo_sim.particles().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn envelope_present_only_with_space_charge() {
        let with = BeamSimulation::new(BeamConfig::halo_study(10, 1));
        let without = BeamSimulation::new(BeamConfig::zero_current(10, 1));
        assert!(with.envelope().is_some());
        assert!(without.envelope().is_none());
    }

    #[test]
    #[should_panic]
    fn zero_steps_per_cell_panics() {
        let mut cfg = BeamConfig::zero_current(10, 1);
        cfg.steps_per_cell = 0;
        let _ = BeamSimulation::new(cfg);
    }
}
