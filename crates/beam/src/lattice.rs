//! Beamline lattices: drifts, quadrupoles, and the alternating-gradient
//! (FODO) channel of the paper's primary simulation.
//!
//! The paper (§2.1, Fig. 5): "The simulation corresponds to an intense beam
//! propagating in a magnetic quadrupole channel. ... The quadrupole magnets
//! are alternately focusing and defocusing in the x and y directions,
//! resulting in the four-fold symmetry seen in the figure."

/// A single beamline element.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Element {
    /// Field-free drift of the given length (meters).
    Drift {
        /// Element length in meters.
        length: f64,
    },
    /// Magnetic quadrupole of the given length and focusing strength
    /// `k` (m⁻²). `k > 0` focuses in x and defocuses in y; `k < 0` the
    /// reverse.
    Quad {
        /// Element length in meters.
        length: f64,
        /// Focusing strength k = (g q)/(p) in m⁻²; sign selects the plane.
        k: f64,
    },
}

impl Element {
    /// Length of the element in meters.
    pub fn length(&self) -> f64 {
        match *self {
            Element::Drift { length } => length,
            Element::Quad { length, .. } => length,
        }
    }
}

/// An ordered sequence of elements, traversed periodically.
#[derive(Clone, Debug, Default)]
pub struct Lattice {
    elements: Vec<Element>,
}

impl Lattice {
    /// Lattice from an element list.
    pub fn new(elements: Vec<Element>) -> Lattice {
        Lattice { elements }
    }

    /// The classic FODO cell used throughout the reproduction:
    /// `QF(L_q, +k) — O(L_d) — QD(L_q, −k) — O(L_d)`.
    ///
    /// * `quad_len` — quadrupole length (m)
    /// * `drift_len` — drift length (m)
    /// * `k` — focusing strength (m⁻²)
    pub fn fodo_cell(quad_len: f64, drift_len: f64, k: f64) -> Lattice {
        assert!(
            quad_len > 0.0 && drift_len > 0.0,
            "element lengths must be positive"
        );
        Lattice::new(vec![
            Element::Quad {
                length: quad_len,
                k,
            },
            Element::Drift { length: drift_len },
            Element::Quad {
                length: quad_len,
                k: -k,
            },
            Element::Drift { length: drift_len },
        ])
    }

    /// The default channel used by examples/benches: a FODO cell whose
    /// phase advance is comfortably below the 90°/cell envelope-instability
    /// limit, so a matched beam stays bounded for hundreds of cells.
    pub fn default_fodo() -> Lattice {
        // 0.2 m quads, 0.3 m drifts, k = 8 m⁻² → σ0 ≈ 46°/cell.
        Lattice::fodo_cell(0.2, 0.3, 8.0)
    }

    /// The elements in order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Total cell length (meters).
    pub fn cell_length(&self) -> f64 {
        self.elements.iter().map(|e| e.length()).sum()
    }

    /// Number of elements per cell.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// `true` for an empty lattice.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The element containing path position `s` (periodic in the cell
    /// length), together with the offset into that element. Returns `None`
    /// for an empty lattice.
    pub fn element_at(&self, s: f64) -> Option<(Element, f64)> {
        if self.elements.is_empty() {
            return None;
        }
        let cell = self.cell_length();
        if cell <= 0.0 {
            return None;
        }
        let mut local = s.rem_euclid(cell);
        for e in &self.elements {
            if local < e.length() {
                return Some((*e, local));
            }
            local -= e.length();
        }
        // Floating-point edge: s landed exactly on the cell end.
        let last = *self.elements.last().unwrap();
        let off = last.length();
        Some((last, off))
    }

    /// Quadrupole strength k(s) at path position `s` (0 inside drifts).
    /// This is the `k` entering both the particle equations of motion and
    /// the core envelope equation.
    pub fn k_at(&self, s: f64) -> f64 {
        match self.element_at(s) {
            Some((Element::Quad { k, .. }, _)) => k,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fodo_cell_structure() {
        let l = Lattice::fodo_cell(0.2, 0.3, 8.0);
        assert_eq!(l.len(), 4);
        assert_eq!(l.cell_length(), 1.0);
        match l.elements()[0] {
            Element::Quad { length, k } => {
                assert_eq!(length, 0.2);
                assert_eq!(k, 8.0);
            }
            _ => panic!("expected leading quad"),
        }
        match l.elements()[2] {
            Element::Quad { k, .. } => assert_eq!(k, -8.0),
            _ => panic!("expected defocusing quad"),
        }
    }

    #[test]
    fn element_at_walks_the_cell() {
        let l = Lattice::fodo_cell(0.2, 0.3, 8.0);
        // Inside focusing quad.
        assert_eq!(l.k_at(0.1), 8.0);
        // Inside first drift.
        assert_eq!(l.k_at(0.3), 0.0);
        // Inside defocusing quad.
        assert_eq!(l.k_at(0.6), -8.0);
        // Inside final drift.
        assert_eq!(l.k_at(0.9), 0.0);
    }

    #[test]
    fn element_at_is_periodic() {
        let l = Lattice::fodo_cell(0.2, 0.3, 8.0);
        for s in [0.1, 0.45, 0.85] {
            assert_eq!(l.k_at(s), l.k_at(s + 1.0));
            assert_eq!(l.k_at(s), l.k_at(s + 17.0));
            assert_eq!(l.k_at(s), l.k_at(s - 3.0));
        }
    }

    #[test]
    fn empty_lattice() {
        let l = Lattice::default();
        assert!(l.is_empty());
        assert!(l.element_at(0.5).is_none());
        assert_eq!(l.k_at(0.5), 0.0);
    }

    #[test]
    fn element_offsets() {
        let l = Lattice::fodo_cell(0.2, 0.3, 8.0);
        let (e, off) = l.element_at(0.25).unwrap();
        assert_eq!(e, Element::Drift { length: 0.3 });
        assert!((off - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_length_fodo_panics() {
        let _ = Lattice::fodo_cell(0.0, 0.3, 8.0);
    }
}
