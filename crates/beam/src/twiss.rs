//! Courant–Snyder (Twiss) analysis of periodic lattices.
//!
//! The lattice-periodic β, α, γ functions determine the matched beam: a
//! bunch whose second moments are σ_u² = ε·β(s) is *stationary* under the
//! cell map — its rms sizes repeat every cell. This is the principled
//! version of "matched" used by beam-dynamics codes (the paper's IMPACT)
//! when preparing the initial distributions whose mismatch drives halos.

use crate::lattice::Lattice;
use crate::transport::{cell_maps, ElementMap, Map2};

/// The Courant–Snyder parameters of one transverse plane at a lattice
/// position.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Twiss {
    /// The betatron function β (m).
    pub beta: f64,
    /// α = −β′/2.
    pub alpha: f64,
    /// Phase advance per cell μ (radians).
    pub mu: f64,
}

impl Twiss {
    /// γ = (1 + α²)/β.
    pub fn gamma(&self) -> f64 {
        (1.0 + self.alpha * self.alpha) / self.beta
    }

    /// The periodic Twiss parameters of a one-cell transfer map, or
    /// `None` when the motion is unstable (|tr M| ≥ 2).
    pub fn from_cell_map(m: &Map2) -> Option<Twiss> {
        let cos_mu = m.trace() / 2.0;
        if cos_mu.abs() >= 1.0 {
            return None;
        }
        // Sign of sin μ chosen so that β = m12/sin μ > 0.
        let mut sin_mu = (1.0 - cos_mu * cos_mu).sqrt();
        if m.m[0][1] < 0.0 {
            sin_mu = -sin_mu;
        }
        let beta = m.m[0][1] / sin_mu;
        let alpha = (m.m[0][0] - m.m[1][1]) / (2.0 * sin_mu);
        Some(Twiss {
            beta,
            alpha,
            mu: sin_mu.atan2(cos_mu).abs(),
        })
    }

    /// Propagates the Twiss parameters through an element map:
    /// the standard (β, α, γ) transport.
    pub fn propagate(&self, m: &Map2) -> Twiss {
        let (m11, m12) = (m.m[0][0], m.m[0][1]);
        let (m21, m22) = (m.m[1][0], m.m[1][1]);
        let beta = m11 * m11 * self.beta - 2.0 * m11 * m12 * self.alpha + m12 * m12 * self.gamma();
        let alpha = -m11 * m21 * self.beta + (m11 * m22 + m12 * m21) * self.alpha
            - m12 * m22 * self.gamma();
        Twiss {
            beta,
            alpha,
            mu: self.mu,
        }
    }

    /// The matched rms beam size for an rms emittance ε: σ = √(εβ).
    pub fn matched_sigma(&self, emittance: f64) -> f64 {
        (emittance * self.beta).sqrt()
    }

    /// The matched rms divergence: σ′ = √(εγ).
    pub fn matched_sigma_prime(&self, emittance: f64) -> f64 {
        (emittance * self.gamma()).sqrt()
    }
}

/// Periodic Twiss parameters of both planes at the cell entrance, or
/// `None` if either plane is unstable.
pub fn periodic_twiss(lattice: &Lattice) -> Option<(Twiss, Twiss)> {
    let cell = cell_maps(lattice);
    Some((
        Twiss::from_cell_map(&cell.x)?,
        Twiss::from_cell_map(&cell.y)?,
    ))
}

/// β(s) sampled at `n` points through one cell (x plane, y plane).
/// Used to verify periodicity and find the β extrema (where matched beams
/// are widest/narrowest).
pub fn beta_functions(lattice: &Lattice, n: usize) -> Option<Vec<(f64, f64, f64)>> {
    assert!(n >= 2);
    let (mut tx, mut ty) = periodic_twiss(lattice)?;
    let cell_len = lattice.cell_length();
    let ds = cell_len / (n - 1) as f64;
    let mut out = Vec::with_capacity(n);
    let mut s = 0.0;
    out.push((0.0, tx.beta, ty.beta));
    for _ in 1..n {
        // Exact per-slice maps, honoring element boundaries.
        let mut remaining = ds;
        let mut pos = s;
        while remaining > 1e-12 {
            let (element, offset) = lattice.element_at(pos)?;
            let left = (element.length() - offset).max(1e-12);
            let h = remaining.min(left);
            let m = ElementMap::of(&element, h);
            tx = tx.propagate(&m.x);
            ty = ty.propagate(&m.y);
            pos += h;
            remaining -= h;
        }
        s += ds;
        out.push((s, tx.beta, ty.beta));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_math::approx_eq;

    fn fodo() -> Lattice {
        Lattice::default_fodo()
    }

    #[test]
    fn periodic_twiss_exists_for_stable_cell() {
        let (tx, ty) = periodic_twiss(&fodo()).expect("default FODO is stable");
        assert!(tx.beta > 0.0 && ty.beta > 0.0);
        // Mirror-symmetric cell: the x-plane phase advance equals y's.
        assert!(approx_eq(tx.mu, ty.mu, 1e-9));
        // γβ − α² = 1 (the Courant–Snyder identity).
        assert!(approx_eq(
            tx.gamma() * tx.beta - tx.alpha * tx.alpha,
            1.0,
            1e-12
        ));
    }

    #[test]
    fn unstable_cell_has_no_twiss() {
        let l = Lattice::fodo_cell(0.2, 0.3, 200.0);
        assert!(periodic_twiss(&l).is_none());
    }

    #[test]
    fn beta_function_is_periodic_over_the_cell() {
        let betas = beta_functions(&fodo(), 65).unwrap();
        let (_, bx0, by0) = betas[0];
        let (_, bx1, by1) = *betas.last().unwrap();
        assert!(approx_eq(bx0, bx1, 1e-9), "βx must close: {bx0} vs {bx1}");
        assert!(approx_eq(by0, by1, 1e-9), "βy must close: {by0} vs {by1}");
        // β stays positive everywhere.
        assert!(betas.iter().all(|&(_, bx, by)| bx > 0.0 && by > 0.0));
    }

    #[test]
    fn beta_peaks_in_the_focusing_quad_of_its_plane() {
        // In a FODO cell starting with the x-focusing quad, βx is maximal
        // near that quad (the beam is widest where it is being focused)
        // and βy is maximal near the defocusing quad (which focuses y).
        let betas = beta_functions(&fodo(), 101).unwrap();
        let (sx_max, _, _) = betas
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(s, bx, _)| (s, bx, 0.0))
            .unwrap();
        let (sy_max, _, _) = betas
            .iter()
            .copied()
            .max_by(|a, b| a.2.total_cmp(&b.2))
            .map(|(s, _, by)| (s, by, 0.0))
            .unwrap();
        // QF occupies [0, 0.2], QD occupies [0.5, 0.7].
        assert!(!(0.3..=0.9).contains(&sx_max), "βx max at {sx_max}");
        assert!((0.4..0.8).contains(&sy_max), "βy max at {sy_max}");
    }

    #[test]
    fn matched_beam_rms_is_stationary_cell_to_cell() {
        // Build a beam from the periodic Twiss parameters and transport
        // it: the rms size at the cell entrance must repeat.
        use crate::diagnostics::BeamDiagnostics;
        use crate::particle::Particle;
        use accelviz_math::Vec3;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let lattice = fodo();
        let (tx, ty) = periodic_twiss(&lattice).unwrap();
        let emit = 1e-6;
        // Sample the matched Gaussian: u = √(εβ)·g1, u′ = √(ε/β)·(g2 − α·g1).
        let mut rng = StdRng::seed_from_u64(5);
        let normal = move |rng: &mut StdRng| -> f64 {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            (-2.0 * u1.ln()).sqrt() * u2.cos()
        };
        let mut particles: Vec<Particle> = (0..20_000)
            .map(|_| {
                let (g1, g2, g3, g4) = (
                    normal(&mut rng),
                    normal(&mut rng),
                    normal(&mut rng),
                    normal(&mut rng),
                );
                let x = (emit * tx.beta).sqrt() * g1;
                let xp = (emit / tx.beta).sqrt() * (g2 - tx.alpha * g1);
                let y = (emit * ty.beta).sqrt() * g3;
                let yp = (emit / ty.beta).sqrt() * (g4 - ty.alpha * g3);
                Particle::new(Vec3::new(x, y, 0.0), Vec3::new(xp, yp, 0.0))
            })
            .collect();
        let rms0 = BeamDiagnostics::of(&particles).rms_x;
        // Transport through 5 full cells.
        for _ in 0..5 {
            for e in lattice.elements() {
                let m = ElementMap::of(e, e.length());
                for p in &mut particles {
                    m.transport(p);
                }
            }
        }
        let rms5 = BeamDiagnostics::of(&particles).rms_x;
        assert!(
            (rms5 / rms0 - 1.0).abs() < 0.03,
            "matched beam must be stationary: {rms0} → {rms5}"
        );
        // A deliberately mismatched beam (β halved) is NOT stationary at
        // arbitrary intra-cell positions; its rms at the entrance still
        // returns each cell, so compare mid-cell instead.
        let mut mismatched: Vec<Particle> = (0..20_000)
            .map(|_| {
                let (g1, g2) = (normal(&mut rng), normal(&mut rng));
                let x = (emit * tx.beta * 0.25).sqrt() * g1;
                let xp = (emit / (tx.beta * 0.25)).sqrt() * g2;
                Particle::new(Vec3::new(x, 0.0, 0.0), Vec3::new(xp, 0.0, 0.0))
            })
            .collect();
        // Sample its rms at successive cell *boundaries* (same lattice
        // phase): the mismatch beat makes these oscillate, unlike the
        // matched beam's stationary values.
        let mut boundary_rms = vec![BeamDiagnostics::of(&mismatched).rms_x];
        for _ in 0..6 {
            for e in lattice.elements() {
                let m = ElementMap::of(e, e.length());
                for p in &mut mismatched {
                    m.transport(p);
                }
            }
            boundary_rms.push(BeamDiagnostics::of(&mismatched).rms_x);
        }
        let max = boundary_rms.iter().cloned().fold(0.0, f64::max);
        let min = boundary_rms.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min > 1.2,
            "mismatched beam must beat across cells: {boundary_rms:?}"
        );
    }

    #[test]
    fn matched_sigma_helpers() {
        let t = Twiss {
            beta: 4.0,
            alpha: 0.0,
            mu: 1.0,
        };
        assert!(approx_eq(t.matched_sigma(1e-6), 2e-3, 1e-12));
        assert!(approx_eq(t.matched_sigma_prime(1e-6), 0.5e-3, 1e-12));
    }
}
