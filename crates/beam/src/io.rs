//! Binary snapshot format for particle data.
//!
//! The paper's storage arithmetic rests on the raw layout: six
//! double-precision coordinates per particle, so "the primary simulation,
//! consisting of 100 million particles, requires 5 GB of storage per time
//! step" and "the initial time step of a billion point simulation requires
//! 48 GB". This module implements that exact layout (48 bytes per particle
//! plus a 24-byte header) so the SIZE experiment can measure real bytes.

use crate::particle::Particle;
use std::io::{self, Read, Write};

/// Magic bytes identifying a snapshot stream.
pub const MAGIC: [u8; 8] = *b"AVIZSNAP";

/// Bytes per particle in the on-disk layout (six `f64`s).
pub const BYTES_PER_PARTICLE: u64 = 48;

/// Header size: magic + u64 step index + u64 particle count.
pub const HEADER_BYTES: u64 = 24;

/// Exact serialized size of a snapshot with `n` particles.
pub fn snapshot_bytes(n: u64) -> u64 {
    HEADER_BYTES + n * BYTES_PER_PARTICLE
}

/// Particles moved per I/O call by the chunked read/write paths:
/// 16 Ki records ≈ 768 KiB, large enough that syscall overhead is noise,
/// small enough that streaming never allocates the whole payload.
pub const IO_CHUNK_PARTICLES: usize = 16_384;

/// Writes a snapshot in the fixed binary format. Particle records are
/// staged through a [`IO_CHUNK_PARTICLES`]-record buffer, so the writer
/// issues large writes instead of one 48-byte write per particle.
pub fn write_snapshot<W: Write>(w: &mut W, step: u64, particles: &[Particle]) -> io::Result<()> {
    let mut header = [0u8; HEADER_BYTES as usize];
    header[..8].copy_from_slice(&MAGIC);
    header[8..16].copy_from_slice(&step.to_le_bytes());
    header[16..24].copy_from_slice(&(particles.len() as u64).to_le_bytes());
    w.write_all(&header)?;
    let mut buf =
        Vec::with_capacity(particles.len().min(IO_CHUNK_PARTICLES) * BYTES_PER_PARTICLE as usize);
    for chunk in particles.chunks(IO_CHUNK_PARTICLES) {
        buf.clear();
        for p in chunk {
            for c in p.to_array() {
                buf.extend_from_slice(&c.to_le_bytes());
            }
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

/// Reads a snapshot written by [`write_snapshot`]. Returns
/// `(step, particles)`.
///
/// Reads are sized: one 24-byte header read, then bulk reads of up to
/// [`IO_CHUNK_PARTICLES`] records — never one syscall per particle, and
/// never a byte past the declared count (callers stream snapshots out of
/// larger files and rely on exact consumption).
pub fn read_snapshot<R: Read>(r: &mut R) -> io::Result<(u64, Vec<Particle>)> {
    let mut header = [0u8; HEADER_BYTES as usize];
    r.read_exact(&mut header)?;
    if header[..8] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad snapshot magic",
        ));
    }
    let step = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let count = u64::from_le_bytes(header[16..24].try_into().unwrap());
    // Guard against absurd counts from corrupt headers before allocating.
    const MAX_REASONABLE: u64 = 1 << 33;
    if count > MAX_REASONABLE {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible particle count {count}"),
        ));
    }
    let mut particles = Vec::with_capacity(count as usize);
    let mut buf = vec![0u8; (count as usize).min(IO_CHUNK_PARTICLES) * BYTES_PER_PARTICLE as usize];
    let mut remaining = count as usize;
    while remaining > 0 {
        let n = remaining.min(IO_CHUNK_PARTICLES);
        let bytes = &mut buf[..n * BYTES_PER_PARTICLE as usize];
        r.read_exact(bytes)?;
        for rec in bytes.chunks_exact(BYTES_PER_PARTICLE as usize) {
            let mut a = [0.0f64; 6];
            for (i, c) in a.iter_mut().enumerate() {
                *c = f64::from_le_bytes(rec[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            particles.push(Particle::from_array(a));
        }
        remaining -= n;
    }
    Ok((step, particles))
}

/// Serializes a snapshot to a byte vector (convenience for size accounting
/// and in-memory transfer modeling).
pub fn snapshot_to_vec(step: u64, particles: &[Particle]) -> Vec<u8> {
    let mut v = Vec::with_capacity(snapshot_bytes(particles.len() as u64) as usize);
    write_snapshot(&mut v, step, particles).expect("writing to Vec cannot fail");
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::Distribution;

    #[test]
    fn roundtrip_preserves_everything() {
        let ps = Distribution::default_beam().sample(257, 9);
        let bytes = snapshot_to_vec(42, &ps);
        assert_eq!(bytes.len() as u64, snapshot_bytes(257));
        let (step, back) = read_snapshot(&mut bytes.as_slice()).unwrap();
        assert_eq!(step, 42);
        assert_eq!(back, ps);
    }

    #[test]
    fn empty_snapshot() {
        let bytes = snapshot_to_vec(0, &[]);
        assert_eq!(bytes.len() as u64, HEADER_BYTES);
        let (step, ps) = read_snapshot(&mut bytes.as_slice()).unwrap();
        assert_eq!(step, 0);
        assert!(ps.is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = snapshot_to_vec(1, &Distribution::default_beam().sample(3, 1));
        bytes[0] ^= 0xFF;
        assert!(read_snapshot(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let bytes = snapshot_to_vec(1, &Distribution::default_beam().sample(10, 1));
        let cut = &bytes[..bytes.len() - 5];
        assert!(read_snapshot(&mut &cut[..]).is_err());
    }

    #[test]
    fn implausible_count_is_rejected_without_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_snapshot(&mut bytes.as_slice()).is_err());
    }

    /// Counts the `read`/`write` calls reaching the underlying stream —
    /// each one is what a syscall would be against a real fd.
    struct CountingIo<T> {
        inner: T,
        calls: u64,
    }

    impl<R: Read> Read for CountingIo<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.calls += 1;
            self.inner.read(buf)
        }
    }

    impl<W: Write> Write for CountingIo<W> {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.calls += 1;
            self.inner.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            self.inner.flush()
        }
    }

    #[test]
    fn snapshot_io_is_chunked_not_per_particle() {
        let ps = Distribution::default_beam().sample(10_000, 3);
        let mut sink = CountingIo {
            inner: Vec::new(),
            calls: 0,
        };
        write_snapshot(&mut sink, 5, &ps).unwrap();
        // Header + one buffered write per 16 Ki records — not 10_000.
        assert!(sink.calls <= 3, "write used {} calls", sink.calls);

        let mut src = CountingIo {
            inner: sink.inner.as_slice(),
            calls: 0,
        };
        let (_, back) = read_snapshot(&mut src).unwrap();
        assert_eq!(back, ps);
        assert!(src.calls <= 3, "read used {} calls", src.calls);
    }

    #[test]
    fn paper_storage_arithmetic() {
        // 100 M particles → ~4.8 GB ("5 GB" in the paper); 1 B → ~48 GB.
        let hundred_million = snapshot_bytes(100_000_000);
        assert_eq!(hundred_million, 24 + 100_000_000 * 48);
        let gib = hundred_million as f64 / 1e9;
        assert!(
            (gib - 4.8).abs() < 0.01,
            "≈5 GB per 100 M-particle step: {gib}"
        );
        let billion = snapshot_bytes(1_000_000_000) as f64 / 1e9;
        assert!(
            (billion - 48.0).abs() < 0.1,
            "≈48 GB per 1 B-particle step: {billion}"
        );
    }
}
