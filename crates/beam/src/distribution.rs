//! Initial particle distributions.
//!
//! Beam dynamics codes seed their bunches from a small family of standard
//! distributions; the halo studies the paper visualizes start from slightly
//! mismatched versions of these. All sampling is deterministic given a
//! `u64` seed.

use crate::particle::Particle;
use accelviz_math::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The supported analytic beam distributions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistributionKind {
    /// Truncated Gaussian in every coordinate (cut at 4σ to keep the octree
    /// root bounded, as production codes do).
    Gaussian,
    /// Kapchinskij–Vladimirskij: uniform on the surface of the 4-D
    /// transverse phase-space ellipsoid — uniform *projected* density, the
    /// classic choice for space-charge studies.
    KV,
    /// Waterbag: uniform inside the 6-D phase-space ellipsoid.
    Waterbag,
    /// Semi-Gaussian: uniform in space, Gaussian in momentum.
    SemiGaussian,
    /// Uniform ball in (x, y, z), cold (zero momentum). Produces the
    /// "sphere-like (x, y, z) distribution" of the paper's Figure 4.
    UniformSphere,
}

/// A distribution specification: kind + rms sizes + rms momentum spreads.
#[derive(Clone, Copy, Debug)]
pub struct Distribution {
    /// Which analytic family to sample.
    pub kind: DistributionKind,
    /// RMS spatial size per axis (meters).
    pub sigma_pos: Vec3,
    /// RMS momentum spread per axis (radians / dimensionless slope).
    pub sigma_mom: Vec3,
}

impl Distribution {
    /// A distribution with uniform transverse/longitudinal sizes.
    pub fn new(kind: DistributionKind, sigma_pos: Vec3, sigma_mom: Vec3) -> Distribution {
        Distribution {
            kind,
            sigma_pos,
            sigma_mom,
        }
    }

    /// The matched-beam default used across examples and benches: a round
    /// Gaussian bunch, 1 mm transverse, 5 mm long, 1 mrad momentum spread.
    pub fn default_beam() -> Distribution {
        Distribution {
            kind: DistributionKind::Gaussian,
            sigma_pos: Vec3::new(1.0e-3, 1.0e-3, 5.0e-3),
            sigma_mom: Vec3::new(1.0e-3, 1.0e-3, 0.5e-3),
        }
    }

    /// Samples `n` particles deterministically from `seed`.
    pub fn sample(&self, n: usize, seed: u64) -> Vec<Particle> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            out.push(self.sample_one(&mut rng));
        }
        out
    }

    /// Samples a single particle.
    pub fn sample_one(&self, rng: &mut StdRng) -> Particle {
        match self.kind {
            DistributionKind::Gaussian => {
                let pos = Vec3::new(
                    truncated_normal(rng, 4.0) * self.sigma_pos.x,
                    truncated_normal(rng, 4.0) * self.sigma_pos.y,
                    truncated_normal(rng, 4.0) * self.sigma_pos.z,
                );
                let mom = Vec3::new(
                    truncated_normal(rng, 4.0) * self.sigma_mom.x,
                    truncated_normal(rng, 4.0) * self.sigma_mom.y,
                    truncated_normal(rng, 4.0) * self.sigma_mom.z,
                );
                Particle::new(pos, mom)
            }
            DistributionKind::KV => {
                // Uniform on the 3-sphere in normalized (x, px, y, py); the
                // rms of each coordinate on the unit 3-sphere is 1/2, so
                // scale by 2σ to get the requested rms.
                let s = sample_unit_sphere_4d(rng);
                let pos = Vec3::new(
                    2.0 * s[0] * self.sigma_pos.x,
                    2.0 * s[2] * self.sigma_pos.y,
                    truncated_normal(rng, 4.0) * self.sigma_pos.z,
                );
                let mom = Vec3::new(
                    2.0 * s[1] * self.sigma_mom.x,
                    2.0 * s[3] * self.sigma_mom.y,
                    truncated_normal(rng, 4.0) * self.sigma_mom.z,
                );
                Particle::new(pos, mom)
            }
            DistributionKind::Waterbag => {
                // Uniform inside the unit 6-ball; rms of each coordinate is
                // 1/√8, so scale by √8 σ.
                let s = sample_unit_ball_6d(rng);
                let k = 8.0f64.sqrt();
                let pos = Vec3::new(
                    k * s[0] * self.sigma_pos.x,
                    k * s[2] * self.sigma_pos.y,
                    k * s[4] * self.sigma_pos.z,
                );
                let mom = Vec3::new(
                    k * s[1] * self.sigma_mom.x,
                    k * s[3] * self.sigma_mom.y,
                    k * s[5] * self.sigma_mom.z,
                );
                Particle::new(pos, mom)
            }
            DistributionKind::SemiGaussian => {
                // Uniform in the spatial ellipsoid (rms of a coordinate in
                // the unit 3-ball is 1/√5), Gaussian in momentum.
                let s = sample_unit_ball_3d(rng);
                let k = 5.0f64.sqrt();
                let pos = Vec3::new(
                    k * s.x * self.sigma_pos.x,
                    k * s.y * self.sigma_pos.y,
                    k * s.z * self.sigma_pos.z,
                );
                let mom = Vec3::new(
                    truncated_normal(rng, 4.0) * self.sigma_mom.x,
                    truncated_normal(rng, 4.0) * self.sigma_mom.y,
                    truncated_normal(rng, 4.0) * self.sigma_mom.z,
                );
                Particle::new(pos, mom)
            }
            DistributionKind::UniformSphere => {
                let s = sample_unit_ball_3d(rng);
                let k = 5.0f64.sqrt();
                Particle::new(
                    Vec3::new(
                        k * s.x * self.sigma_pos.x,
                        k * s.y * self.sigma_pos.y,
                        k * s.z * self.sigma_pos.z,
                    ),
                    Vec3::ZERO,
                )
            }
        }
    }
}

/// Standard normal via Box–Muller, rejected beyond `cut` sigma.
fn truncated_normal(rng: &mut StdRng, cut: f64) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
        if z.abs() <= cut {
            return z;
        }
    }
}

/// Uniform point on the unit 3-sphere in R⁴ (Marsaglia via normals).
fn sample_unit_sphere_4d(rng: &mut StdRng) -> [f64; 4] {
    loop {
        let v = [
            truncated_normal(rng, 6.0),
            truncated_normal(rng, 6.0),
            truncated_normal(rng, 6.0),
            truncated_normal(rng, 6.0),
        ];
        let n = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if n > 1e-12 {
            return [v[0] / n, v[1] / n, v[2] / n, v[3] / n];
        }
    }
}

/// Uniform point in the unit 6-ball (normalize a 6-D normal, scale by
/// U^(1/6)).
fn sample_unit_ball_6d(rng: &mut StdRng) -> [f64; 6] {
    loop {
        let v: Vec<f64> = (0..6).map(|_| truncated_normal(rng, 6.0)).collect();
        let n = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if n <= 1e-12 {
            continue;
        }
        let r: f64 = rng.gen_range(0.0f64..1.0).powf(1.0 / 6.0);
        let mut out = [0.0; 6];
        for i in 0..6 {
            out[i] = v[i] / n * r;
        }
        return out;
    }
}

/// Uniform point in the unit 3-ball (rejection sampling).
fn sample_unit_ball_3d(rng: &mut StdRng) -> Vec3 {
    loop {
        let v = Vec3::new(
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        );
        if v.length_squared() <= 1.0 {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_math::OnlineStats;

    fn rms_of(particles: &[Particle], f: impl Fn(&Particle) -> f64) -> f64 {
        let mut s = OnlineStats::new();
        for p in particles {
            s.push(f(p));
        }
        (s.variance() + s.mean() * s.mean()).sqrt()
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = Distribution::default_beam();
        let a = d.sample(100, 42);
        let b = d.sample(100, 42);
        assert_eq!(a, b);
        let c = d.sample(100, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_rms_matches_request() {
        let d = Distribution::default_beam();
        let ps = d.sample(20_000, 7);
        let rx = rms_of(&ps, |p| p.position.x);
        let rz = rms_of(&ps, |p| p.position.z);
        let rpx = rms_of(&ps, |p| p.momentum.x);
        assert!((rx / 1.0e-3 - 1.0).abs() < 0.05, "x rms {rx}");
        assert!((rz / 5.0e-3 - 1.0).abs() < 0.05, "z rms {rz}");
        assert!((rpx / 1.0e-3 - 1.0).abs() < 0.05, "px rms {rpx}");
    }

    #[test]
    fn gaussian_is_truncated_at_four_sigma() {
        let d = Distribution::default_beam();
        for p in d.sample(20_000, 11) {
            assert!(p.position.x.abs() <= 4.0 * 1.0e-3 + 1e-12);
            assert!(p.momentum.y.abs() <= 4.0 * 1.0e-3 + 1e-12);
        }
    }

    #[test]
    fn kv_transverse_amplitude_is_constant() {
        // The KV invariant: x²/a² + px²/apx² + y²/b² + py²/bpy² = 1 exactly
        // for every particle (a = 2σ).
        let d = Distribution::new(
            DistributionKind::KV,
            Vec3::new(1.0e-3, 1.0e-3, 5.0e-3),
            Vec3::new(1.0e-3, 1.0e-3, 0.5e-3),
        );
        for p in d.sample(2_000, 3) {
            let a = 2.0e-3;
            let inv = (p.position.x / a).powi(2)
                + (p.momentum.x / a).powi(2)
                + (p.position.y / a).powi(2)
                + (p.momentum.y / a).powi(2);
            assert!((inv - 1.0).abs() < 1e-9, "KV invariant violated: {inv}");
        }
    }

    #[test]
    fn kv_rms_matches_request() {
        let d = Distribution::new(
            DistributionKind::KV,
            Vec3::new(1.0e-3, 1.0e-3, 5.0e-3),
            Vec3::new(1.0e-3, 1.0e-3, 0.5e-3),
        );
        let ps = d.sample(40_000, 5);
        let rx = rms_of(&ps, |p| p.position.x);
        assert!((rx / 1.0e-3 - 1.0).abs() < 0.05, "KV x rms {rx}");
    }

    #[test]
    fn waterbag_is_bounded_and_has_right_rms() {
        let d = Distribution::new(
            DistributionKind::Waterbag,
            Vec3::splat(1.0e-3),
            Vec3::splat(1.0e-3),
        );
        let ps = d.sample(40_000, 9);
        let k = 8.0f64.sqrt() * 1.0e-3;
        for p in &ps {
            let r2: f64 = p.to_array().iter().map(|c| (c / k) * (c / k)).sum();
            assert!(r2 <= 1.0 + 1e-9, "waterbag point outside ellipsoid: {r2}");
        }
        let rx = rms_of(&ps, |p| p.position.x);
        assert!((rx / 1.0e-3 - 1.0).abs() < 0.05, "waterbag x rms {rx}");
    }

    #[test]
    fn semi_gaussian_space_is_bounded_momentum_is_not_uniform() {
        let d = Distribution::new(
            DistributionKind::SemiGaussian,
            Vec3::splat(1.0e-3),
            Vec3::splat(1.0e-3),
        );
        let ps = d.sample(20_000, 13);
        let k = 5.0f64.sqrt() * 1.0e-3;
        for p in &ps {
            let r2 = (p.position / k).length_squared();
            assert!(r2 <= 1.0 + 1e-9);
        }
        let rx = rms_of(&ps, |p| p.position.x);
        assert!((rx / 1.0e-3 - 1.0).abs() < 0.05, "semi-gaussian x rms {rx}");
    }

    #[test]
    fn uniform_sphere_is_cold() {
        let d = Distribution::new(
            DistributionKind::UniformSphere,
            Vec3::splat(1.0e-3),
            Vec3::ZERO,
        );
        for p in d.sample(1_000, 17) {
            assert_eq!(p.momentum, Vec3::ZERO);
        }
    }

    #[test]
    fn sample_count() {
        let d = Distribution::default_beam();
        assert_eq!(d.sample(0, 1).len(), 0);
        assert_eq!(d.sample(123, 1).len(), 123);
    }
}
