//! Plain-text summary reports.
//!
//! Where [`crate::chrome`] targets a tracing UI, this module renders the
//! same registry for a terminal: counters and gauges as aligned tables,
//! histograms as labeled bucket rows, and spans aggregated by name
//! (count / total / mean / max) followed by an indented tree of the
//! logical span hierarchy — explicit cross-thread parents included, which
//! is exactly what the Chrome view cannot show.

use crate::hist::{LogHistogram, LATENCY_BUCKETS};
use crate::registry::{Registry, SpanRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders the whole registry as a human-readable report.
pub fn summary(reg: &Registry) -> String {
    let mut out = String::new();

    let counters = reg.counters();
    if !counters.is_empty() {
        out.push_str("counters:\n");
        let width = counters.keys().map(String::len).max().unwrap_or(0);
        for (name, value) in &counters {
            let _ = writeln!(out, "  {name:<width$}  {value}");
        }
    }

    let gauges = reg.gauges();
    if !gauges.is_empty() {
        out.push_str("gauges:\n");
        let width = gauges.keys().map(String::len).max().unwrap_or(0);
        for (name, value) in &gauges {
            let _ = writeln!(out, "  {name:<width$}  {value}");
        }
    }

    let histograms = reg.histograms();
    for (name, hist) in &histograms {
        let _ = writeln!(out, "histogram {name} ({} samples):", hist.total());
        for i in 0..LATENCY_BUCKETS {
            if hist.counts[i] > 0 {
                let _ = writeln!(out, "  {:<8}  {}", LogHistogram::label(i), hist.counts[i]);
            }
        }
    }

    let spans = reg.spans();
    if !spans.is_empty() {
        out.push_str(&span_aggregates(&spans));
        out.push_str(&span_tree(&spans));
    }

    if out.is_empty() {
        out.push_str("(registry is empty)\n");
    }
    out
}

fn span_aggregates(spans: &[SpanRecord]) -> String {
    struct Agg {
        count: u64,
        total_ns: u64,
        max_ns: u64,
    }
    let mut by_name: BTreeMap<&str, Agg> = BTreeMap::new();
    for span in spans {
        let agg = by_name.entry(span.name.as_ref()).or_insert(Agg {
            count: 0,
            total_ns: 0,
            max_ns: 0,
        });
        agg.count += 1;
        agg.total_ns += span.dur_ns;
        agg.max_ns = agg.max_ns.max(span.dur_ns);
    }
    let width = by_name.keys().map(|n| n.len()).max().unwrap_or(0).max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "spans by name:\n  {:<width$}  {:>6}  {:>10}  {:>10}  {:>10}",
        "name", "count", "total", "mean", "max"
    );
    for (name, agg) in &by_name {
        let _ = writeln!(
            out,
            "  {name:<width$}  {:>6}  {:>10}  {:>10}  {:>10}",
            agg.count,
            fmt_ns(agg.total_ns),
            fmt_ns(agg.total_ns / agg.count),
            fmt_ns(agg.max_ns),
        );
    }
    out
}

fn span_tree(spans: &[SpanRecord]) -> String {
    // Rebuild the logical hierarchy from parent ids (the explicit
    // cross-thread links included), children in start order.
    let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    let known: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
    for span in spans {
        // A parent that was never recorded (still open at export, or from
        // a cleared buffer) degrades to a root rather than vanishing.
        let parent = if known.contains(&span.parent) {
            span.parent
        } else {
            0
        };
        children.entry(parent).or_default().push(span);
    }
    for list in children.values_mut() {
        list.sort_by_key(|s| s.start_ns);
    }

    let mut out = String::from("span tree:\n");
    fn emit(out: &mut String, children: &BTreeMap<u64, Vec<&SpanRecord>>, id: u64, depth: usize) {
        let Some(kids) = children.get(&id) else {
            return;
        };
        for span in kids {
            let indent = "  ".repeat(depth + 1);
            let _ = write!(out, "{indent}{} [{}]", span.name, fmt_ns(span.dur_ns));
            for (key, value) in &span.args {
                let _ = write!(out, " {key}={value}");
            }
            out.push('\n');
            emit(out, children, span.id, depth + 1);
        }
    }
    emit(&mut out, &children, 0, 0);
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_reports_as_empty() {
        let reg = Registry::new();
        assert_eq!(summary(&reg), "(registry is empty)\n");
    }

    #[test]
    fn report_covers_all_four_sections() {
        let reg = Registry::with_spans();
        reg.add("serve.requests", 3);
        reg.set_gauge("render.texture_bytes", 4096.0);
        reg.record_seconds("serve.request_latency", 0.002);
        {
            let outer = reg.span("octree.partition");
            let mut child = reg.span_child("octree.octant", outer.id());
            child.arg("octant", 5.0);
        }
        let text = summary(&reg);
        assert!(text.contains("counters:"));
        assert!(text.contains("serve.requests"));
        assert!(text.contains("gauges:"));
        assert!(text.contains("histogram serve.request_latency (1 samples):"));
        assert!(text.contains("spans by name:"));
        assert!(text.contains("span tree:"));
        // The child nests under its explicit parent in the tree.
        let tree_at = text.find("span tree:").unwrap();
        let tree = &text[tree_at..];
        let outer_at = tree.find("octree.partition").unwrap();
        let child_at = tree.find("octree.octant").unwrap();
        assert!(child_at > outer_at);
        assert!(tree.contains("octant=5"));
    }

    #[test]
    fn orphaned_parents_degrade_to_roots() {
        let reg = Registry::with_spans();
        // Parent id 999 was never recorded.
        drop(reg.span_child("stray", crate::registry::SpanId(999)));
        let text = summary(&reg);
        assert!(text.contains("stray"), "orphan still appears: {text}");
    }
}
