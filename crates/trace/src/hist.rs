//! Fixed-bucket log-scale histograms.
//!
//! The bucket shape is the one `accelviz-serve` has carried on the wire
//! since its first release (six microsecond-scale edges plus an overflow
//! bucket); it lives here so every pipeline stage can record latencies
//! into the same distribution and the serve crate's `Stats` reply keeps
//! its exact wire layout.

/// Upper edges of the log-spaced buckets, in microseconds. A sample falls
/// in the first bucket whose edge it does not exceed; slower samples land
/// in the final overflow bucket.
pub const LATENCY_EDGES_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Number of histogram buckets (the edges plus one overflow bucket).
pub const LATENCY_BUCKETS: usize = LATENCY_EDGES_US.len() + 1;

/// A fixed-bucket log-scale histogram of durations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LogHistogram {
    /// Sample counts per bucket.
    pub counts: [u64; LATENCY_BUCKETS],
}

impl LogHistogram {
    /// Records one sample that took `seconds`.
    pub fn record(&mut self, seconds: f64) {
        let us = (seconds.max(0.0) * 1e6) as u64;
        let bucket = LATENCY_EDGES_US
            .iter()
            .position(|&edge| us <= edge)
            .unwrap_or(LATENCY_EDGES_US.len());
        self.counts[bucket] += 1;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Human label for bucket `i`, e.g. `"<=1ms"` or `">10s"`.
    pub fn label(i: usize) -> String {
        fn us_text(us: u64) -> String {
            if us >= 1_000_000 {
                format!("{}s", us / 1_000_000)
            } else if us >= 1_000 {
                format!("{}ms", us / 1_000)
            } else {
                format!("{us}us")
            }
        }
        if i < LATENCY_EDGES_US.len() {
            format!("<={}", us_text(LATENCY_EDGES_US[i]))
        } else {
            format!(">{}", us_text(*LATENCY_EDGES_US.last().unwrap()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_spaced() {
        let mut h = LogHistogram::default();
        h.record(50e-6); // 50 µs -> bucket 0
        h.record(0.5e-3); // 0.5 ms -> bucket 1
        h.record(5e-3); // 5 ms -> bucket 2
        h.record(2.0); // 2 s -> bucket 5
        h.record(60.0); // 60 s -> overflow
        assert_eq!(h.counts, [1, 1, 1, 0, 0, 1, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn labels_read_naturally() {
        assert_eq!(LogHistogram::label(0), "<=100us");
        assert_eq!(LogHistogram::label(1), "<=1ms");
        assert_eq!(LogHistogram::label(5), "<=10s");
        assert_eq!(LogHistogram::label(6), ">10s");
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        a.record(50e-6);
        b.record(50e-6);
        b.record(2.0);
        a.merge(&b);
        assert_eq!(a.counts[0], 2);
        assert_eq!(a.counts[5], 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn negative_durations_clamp_to_the_first_bucket() {
        let mut h = LogHistogram::default();
        h.record(-1.0);
        assert_eq!(h.counts[0], 1);
    }
}
