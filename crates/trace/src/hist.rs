//! Fixed-bucket log-scale histograms.
//!
//! The bucket shape is the one `accelviz-serve` has carried on the wire
//! since its first release (six microsecond-scale edges plus an overflow
//! bucket); it lives here so every pipeline stage can record latencies
//! into the same distribution and the serve crate's `Stats` reply keeps
//! its exact wire layout.

/// Upper edges of the log-spaced buckets, in microseconds. A sample falls
/// in the first bucket whose edge it does not exceed; slower samples land
/// in the final overflow bucket.
pub const LATENCY_EDGES_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Number of histogram buckets (the edges plus one overflow bucket).
pub const LATENCY_BUCKETS: usize = LATENCY_EDGES_US.len() + 1;

/// A fixed-bucket log-scale histogram of durations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LogHistogram {
    /// Sample counts per bucket.
    pub counts: [u64; LATENCY_BUCKETS],
}

impl LogHistogram {
    /// Records one sample that took `seconds`.
    pub fn record(&mut self, seconds: f64) {
        let us = (seconds.max(0.0) * 1e6) as u64;
        let bucket = LATENCY_EDGES_US
            .iter()
            .position(|&edge| us <= edge)
            .unwrap_or(LATENCY_EDGES_US.len());
        self.counts[bucket] += 1;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// An upper bound, in seconds, on the `q`-quantile of the recorded
    /// samples: the upper edge of the bucket the quantile falls in.
    /// Coarse by construction (the buckets are decades), but exactly the
    /// right shape for deriving a hedge delay — "no slower than the
    /// bucket p95 landed in". Returns `None` when the histogram is empty
    /// or the quantile lands in the unbounded overflow bucket, so
    /// callers fall back to their own ceiling. `q` is clamped to
    /// `[0, 1]`.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        // The rank of the quantile sample, 1-based, so q = 1.0 asks for
        // the last sample and q = 0.0 for the first.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return LATENCY_EDGES_US
                    .get(bucket)
                    .map(|&edge_us| edge_us as f64 / 1e6);
            }
        }
        None
    }

    /// Human label for bucket `i`, e.g. `"<=1ms"` or `">10s"`.
    pub fn label(i: usize) -> String {
        fn us_text(us: u64) -> String {
            if us >= 1_000_000 {
                format!("{}s", us / 1_000_000)
            } else if us >= 1_000 {
                format!("{}ms", us / 1_000)
            } else {
                format!("{us}us")
            }
        }
        if i < LATENCY_EDGES_US.len() {
            format!("<={}", us_text(LATENCY_EDGES_US[i]))
        } else {
            format!(">{}", us_text(*LATENCY_EDGES_US.last().unwrap()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_spaced() {
        let mut h = LogHistogram::default();
        h.record(50e-6); // 50 µs -> bucket 0
        h.record(0.5e-3); // 0.5 ms -> bucket 1
        h.record(5e-3); // 5 ms -> bucket 2
        h.record(2.0); // 2 s -> bucket 5
        h.record(60.0); // 60 s -> overflow
        assert_eq!(h.counts, [1, 1, 1, 0, 0, 1, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn labels_read_naturally() {
        assert_eq!(LogHistogram::label(0), "<=100us");
        assert_eq!(LogHistogram::label(1), "<=1ms");
        assert_eq!(LogHistogram::label(5), "<=10s");
        assert_eq!(LogHistogram::label(6), ">10s");
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        a.record(50e-6);
        b.record(50e-6);
        b.record(2.0);
        a.merge(&b);
        assert_eq!(a.counts[0], 2);
        assert_eq!(a.counts[5], 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn negative_durations_clamp_to_the_first_bucket() {
        let mut h = LogHistogram::default();
        h.record(-1.0);
        assert_eq!(h.counts[0], 1);
    }

    #[test]
    fn quantile_upper_bound_walks_the_buckets() {
        let mut h = LogHistogram::default();
        assert_eq!(h.quantile_upper_bound(0.95), None, "empty histogram");
        // 90 fast samples (<=100us), 9 medium (<=10ms), 1 slow (<=1s).
        for _ in 0..90 {
            h.record(50e-6);
        }
        for _ in 0..9 {
            h.record(5e-3);
        }
        h.record(0.5);
        assert_eq!(h.quantile_upper_bound(0.5), Some(100e-6));
        assert_eq!(h.quantile_upper_bound(0.9), Some(100e-6));
        assert_eq!(h.quantile_upper_bound(0.95), Some(10e-3));
        assert_eq!(h.quantile_upper_bound(1.0), Some(1.0));
        // Out-of-range q clamps rather than panicking.
        assert_eq!(h.quantile_upper_bound(7.0), Some(1.0));
        assert_eq!(h.quantile_upper_bound(-1.0), Some(100e-6));
    }

    #[test]
    fn quantile_in_the_overflow_bucket_is_unbounded() {
        let mut h = LogHistogram::default();
        h.record(60.0);
        assert_eq!(h.quantile_upper_bound(0.5), None);
    }
}
