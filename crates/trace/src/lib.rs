//! End-to-end pipeline observability for the `accelviz` workspace.
//!
//! The paper's whole argument is a latency/size budget — partition on the
//! supercomputer (§2.3), extract a compact hybrid representation (§2.3),
//! ship it to a desktop (§2.1), render interactively (§2.4–2.5) — and a
//! budget you cannot measure is a budget you cannot keep. This crate is
//! the measuring instrument: a thread-safe registry of **counters**,
//! **gauges**, and **log-bucket histograms**, plus nestable **spans** with
//! monotonic timing, exportable as a `chrome://tracing`-compatible JSON
//! trace ([`chrome`]) or a plain-text summary ([`report`]).
//!
//! It depends on nothing but `std`, so every crate in the workspace can
//! use it without dependency cycles or vendored shims.
//!
//! # Two kinds of registry
//!
//! - The **global registry** ([`global`]) is the process-wide trace sink.
//!   Spans recorded through the free functions [`span`] and [`span_child`]
//!   land here. Span recording is **off by default** and enabled by the
//!   `ACCELVIZ_TRACE=path.json` environment switch (or explicitly via
//!   [`registry::Registry::set_spans_enabled`]); a disabled span is a
//!   single atomic load and no clock read, so instrumentation left in hot
//!   paths costs nothing measurable when tracing is off.
//! - **Private registries** ([`registry::Registry::new`]) isolate one
//!   subsystem's metrics — `accelviz-serve` gives each server its own, so
//!   two servers in one process never mix request counters.
//!
//! # Spans across the thread pool
//!
//! Within one thread, spans nest implicitly: a span opened while another
//! is live becomes its child. Across the rayon pool that rule breaks —
//! a worker (or a cooperatively-stealing waiter) runs jobs on an OS
//! thread with no relation to the logical computation — so fan-out sites
//! pass the logical parent explicitly with [`span_child`]. See
//! `DESIGN.md` §9 for the full argument.
//!
//! # Example
//!
//! ```
//! use accelviz_trace::registry::Registry;
//!
//! let reg = Registry::with_spans();
//! {
//!     let mut outer = reg.span("octree.partition");
//!     outer.arg("particles", 50_000.0);
//!     let _inner = reg.span("octree.project"); // implicit child of outer
//! }
//! reg.add("frames_served", 1);
//! reg.record_seconds("request_latency", 0.004);
//!
//! let spans = reg.spans();
//! assert_eq!(spans.len(), 2);
//! let json = accelviz_trace::chrome::trace_json(&reg);
//! assert!(json.contains("octree.partition"));
//! println!("{}", accelviz_trace::report::summary(&reg));
//! ```

#![deny(missing_docs)]

pub mod chrome;
pub mod hist;
pub mod registry;
pub mod report;

use registry::{Registry, Span, SpanId};
use std::borrow::Cow;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// The process-wide registry that the free-function span API records
/// into. Span recording is enabled iff `ACCELVIZ_TRACE` was set when the
/// registry was first touched (or [`registry::Registry::set_spans_enabled`]
/// was called on it); counters and histograms always work.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let reg = Registry::new();
        if trace_path().is_some() {
            reg.set_spans_enabled(true);
        }
        reg
    })
}

/// The trace artifact path from the `ACCELVIZ_TRACE` environment
/// variable, read once per process. `None` when unset or empty —
/// tracing stays off and [`flush`] is a no-op.
pub fn trace_path() -> Option<&'static Path> {
    static PATH: OnceLock<Option<PathBuf>> = OnceLock::new();
    PATH.get_or_init(|| {
        std::env::var_os("ACCELVIZ_TRACE")
            .filter(|v| !v.is_empty())
            .map(PathBuf::from)
    })
    .as_deref()
}

/// Opens a span on the [`global`] registry, implicitly parented to the
/// current thread's innermost live span. Inert (no clock read, nothing
/// recorded) unless tracing is enabled.
pub fn span(name: impl Into<Cow<'static, str>>) -> Span<'static> {
    global().span(name)
}

/// Opens a span on the [`global`] registry with an **explicit** parent —
/// the cross-thread form used at parallel fan-out sites, where the OS
/// thread's implicit span stack does not reflect the logical computation.
pub fn span_child(name: impl Into<Cow<'static, str>>, parent: SpanId) -> Span<'static> {
    global().span_child(name, parent)
}

/// Writes the global registry's Chrome trace to the `ACCELVIZ_TRACE`
/// path, returning the path written, or `Ok(None)` when the variable is
/// unset. Call this at the end of an example or benchmark run; the
/// artifact opens directly in `chrome://tracing` / Perfetto.
pub fn flush() -> io::Result<Option<PathBuf>> {
    match trace_path() {
        Some(path) => {
            chrome::write_trace(path, global())?;
            Ok(Some(path.to_path_buf()))
        }
        None => Ok(None),
    }
}

/// The plain-text summary of the global registry — counters, gauges,
/// histograms, and per-name span aggregates.
pub fn summary() -> String {
    report::summary(global())
}
