//! The thread-safe metrics registry and the span guard.
//!
//! A [`Registry`] owns named counters, gauges, and log-bucket histograms
//! plus a buffer of finished [`SpanRecord`]s. Counters and histograms are
//! always live (they are the substance of `accelviz-serve`'s statistics);
//! span recording is gated by a per-registry atomic so instrumentation in
//! hot paths costs one relaxed load when tracing is off.
//!
//! Timing is monotonic: all timestamps are nanoseconds since a
//! process-wide anchor captured on first use ([`now_ns`]), so spans from
//! different threads land on one consistent timeline.

use crate::hist::LogHistogram;
use std::borrow::Cow;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Nanoseconds since the process-wide monotonic anchor (captured the
/// first time any trace timestamp is taken).
pub fn now_ns() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

static NEXT_TRACK: AtomicU64 = AtomicU64::new(1);

fn track_names() -> &'static Mutex<Vec<(u64, String)>> {
    static NAMES: OnceLock<Mutex<Vec<(u64, String)>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static TRACK: Cell<u64> = const { Cell::new(0) };
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

/// The calling thread's track id — a small process-unique integer
/// assigned on first use, used as the `tid` of Chrome trace events. One
/// OS thread keeps one track for the life of the process.
pub fn track_id() -> u64 {
    TRACK.with(|t| {
        let existing = t.get();
        if existing != 0 {
            return existing;
        }
        let id = NEXT_TRACK.fetch_add(1, Ordering::Relaxed);
        t.set(id);
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{id}"));
        track_names()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((id, name));
        id
    })
}

/// Snapshot of `(track id, thread name)` pairs seen so far, for the
/// exporter's thread-name metadata events.
pub fn track_names_snapshot() -> Vec<(u64, String)> {
    track_names()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// Identity of a recorded span, used to parent spans across threads.
/// `SpanId::NONE` (`0`) means "no parent".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent parent.
    pub const NONE: SpanId = SpanId(0);
}

/// One finished span: what ran, where, for how long, under whom.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Process-unique span id (ids start at 1).
    pub id: u64,
    /// Parent span id, `0` for a root span.
    pub parent: u64,
    /// Span name, e.g. `"octree.partition"`.
    pub name: Cow<'static, str>,
    /// Track (OS thread) the span ran on — see [`track_id`].
    pub track: u64,
    /// Start time, nanoseconds since the process anchor.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Numeric annotations attached via [`Span::arg`].
    pub args: Vec<(&'static str, f64)>,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogHistogram>,
    spans: Vec<SpanRecord>,
}

/// A thread-safe registry of counters, gauges, histograms, and spans.
///
/// Create one per subsystem whose metrics must stay isolated (each
/// `accelviz-serve` server owns one), or use the process-wide
/// [`crate::global`] registry for trace export.
pub struct Registry {
    spans_enabled: AtomicBool,
    next_span_id: AtomicU64,
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// A registry with span recording **off** (counters, gauges, and
    /// histograms still work — they are cheap and always wanted).
    pub fn new() -> Registry {
        Registry {
            spans_enabled: AtomicBool::new(false),
            next_span_id: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// A registry with span recording **on** — the test/tooling
    /// convenience.
    pub fn with_spans() -> Registry {
        let reg = Registry::new();
        reg.set_spans_enabled(true);
        reg
    }

    /// Turns span recording on or off. Counters are unaffected.
    pub fn set_spans_enabled(&self, enabled: bool) {
        self.spans_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether spans opened on this registry are currently recorded.
    pub fn spans_enabled(&self) -> bool {
        self.spans_enabled.load(Ordering::Relaxed)
    }

    /// Adds `delta` to counter `name` (creating it at zero), returning
    /// the new value.
    pub fn add(&self, name: &str, delta: u64) -> u64 {
        let mut g = self.lock();
        match g.counters.get_mut(name) {
            Some(v) => {
                *v += delta;
                *v
            }
            None => {
                g.counters.insert(name.to_string(), delta);
                delta
            }
        }
    }

    /// Current value of counter `name` (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.lock().counters.clone()
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut g = self.lock();
        match g.gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                g.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Current value of gauge `name`, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Snapshot of all gauges.
    pub fn gauges(&self) -> BTreeMap<String, f64> {
        self.lock().gauges.clone()
    }

    /// Records a duration sample into histogram `name` (creating it).
    pub fn record_seconds(&self, name: &str, seconds: f64) {
        let mut g = self.lock();
        match g.histograms.get_mut(name) {
            Some(h) => h.record(seconds),
            None => {
                let mut h = LogHistogram::default();
                h.record(seconds);
                g.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Snapshot of histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<LogHistogram> {
        self.lock().histograms.get(name).copied()
    }

    /// Snapshot of all histograms.
    pub fn histograms(&self) -> BTreeMap<String, LogHistogram> {
        self.lock().histograms.clone()
    }

    /// Opens a span named `name`, implicitly parented to the calling
    /// thread's innermost live span. When span recording is off this is
    /// one atomic load and the returned guard does nothing.
    ///
    /// The guard must be dropped on the thread that opened it (the
    /// ordinary RAII pattern); the span is recorded at drop.
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> Span<'_> {
        self.open_span(name.into(), None)
    }

    /// Opens a span with an explicit parent — for code running on pool
    /// worker threads, where the OS thread's implicit span stack does not
    /// reflect the logical computation (see `DESIGN.md` §9).
    pub fn span_child(&self, name: impl Into<Cow<'static, str>>, parent: SpanId) -> Span<'_> {
        self.open_span(name.into(), Some(parent.0))
    }

    fn open_span(&self, name: Cow<'static, str>, parent: Option<u64>) -> Span<'_> {
        if !self.spans_enabled() {
            return Span { state: None };
        }
        let id = self.next_span_id.fetch_add(1, Ordering::Relaxed) + 1;
        let parent = parent.unwrap_or_else(|| CURRENT_SPAN.with(Cell::get));
        let prev_current = CURRENT_SPAN.with(|c| c.replace(id));
        Span {
            state: Some(SpanState {
                reg: self,
                id,
                parent,
                prev_current,
                name,
                start_ns: now_ns(),
                args: Vec::new(),
            }),
        }
    }

    /// All finished spans, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().spans.clone()
    }

    /// Number of finished spans.
    pub fn span_count(&self) -> usize {
        self.lock().spans.len()
    }

    /// Drops every recorded metric and span (the buffers, not the
    /// enabled flag).
    pub fn clear(&self) {
        let mut g = self.lock();
        g.counters.clear();
        g.gauges.clear();
        g.histograms.clear();
        g.spans.clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Metrics must survive a panicking recorder (the serve cache
        // intentionally panics through instrumented paths in tests), so
        // poisoning is ignored like parking_lot would.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn finish(&self, record: SpanRecord) {
        self.lock().spans.push(record);
    }
}

struct SpanState<'r> {
    reg: &'r Registry,
    id: u64,
    parent: u64,
    prev_current: u64,
    name: Cow<'static, str>,
    start_ns: u64,
    args: Vec<(&'static str, f64)>,
}

/// An open span. Records itself into its registry when dropped; inert
/// (and free) when the registry had span recording off at open time.
pub struct Span<'r> {
    state: Option<SpanState<'r>>,
}

impl Span<'_> {
    /// This span's id, for explicit cross-thread parenting —
    /// [`SpanId::NONE`] when the span is inert.
    pub fn id(&self) -> SpanId {
        SpanId(self.state.as_ref().map_or(0, |s| s.id))
    }

    /// Whether this span will be recorded.
    pub fn is_active(&self) -> bool {
        self.state.is_some()
    }

    /// Attaches a numeric annotation (dropped silently on an inert
    /// span). Non-finite values export as quoted strings in JSON.
    pub fn arg(&mut self, key: &'static str, value: f64) {
        if let Some(s) = self.state.as_mut() {
            s.args.push((key, value));
        }
    }

    /// Seconds since the span opened (0 for an inert span) — handy for
    /// derived args like particles/second.
    pub fn elapsed_seconds(&self) -> f64 {
        self.state
            .as_ref()
            .map_or(0.0, |s| (now_ns().saturating_sub(s.start_ns)) as f64 / 1e9)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        CURRENT_SPAN.with(|c| c.set(state.prev_current));
        let end = now_ns();
        state.reg.finish(SpanRecord {
            id: state.id,
            parent: state.parent,
            name: state.name,
            track: track_id(),
            start_ns: state.start_ns,
            dur_ns: end.saturating_sub(state.start_ns),
            args: state.args,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let reg = Registry::new();
        assert_eq!(reg.counter("x"), 0);
        assert_eq!(reg.add("x", 3), 3);
        assert_eq!(reg.add("x", 4), 7);
        assert_eq!(reg.counter("x"), 7);
        assert_eq!(reg.counters().get("x"), Some(&7));
    }

    #[test]
    fn concurrent_counter_increments_are_exact() {
        let reg = Arc::new(Registry::new());
        let threads = 8;
        let per_thread = 1_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        reg.add("hits", 1);
                        reg.record_seconds("lat", 1e-5);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("hits"), threads as u64 * per_thread);
        assert_eq!(
            reg.histogram("lat").unwrap().total(),
            threads as u64 * per_thread
        );
    }

    #[test]
    fn gauges_keep_the_last_value() {
        let reg = Registry::new();
        assert_eq!(reg.gauge("mem"), None);
        reg.set_gauge("mem", 10.0);
        reg.set_gauge("mem", 4.0);
        assert_eq!(reg.gauge("mem"), Some(4.0));
    }

    #[test]
    fn spans_nest_implicitly_within_a_thread() {
        let reg = Registry::with_spans();
        {
            let outer = reg.span("outer");
            let outer_id = outer.id().0;
            {
                let inner = reg.span("inner");
                assert_ne!(inner.id().0, outer_id);
            }
            let sibling = reg.span("sibling");
            drop(sibling);
        }
        let spans = reg.spans();
        assert_eq!(spans.len(), 3);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let outer = by_name("outer");
        assert_eq!(outer.parent, 0, "outer is a root span");
        assert_eq!(by_name("inner").parent, outer.id);
        assert_eq!(by_name("sibling").parent, outer.id);
        // Nesting in time: the parent contains its children.
        for child in ["inner", "sibling"].map(by_name) {
            assert!(child.start_ns >= outer.start_ns);
            assert!(child.start_ns + child.dur_ns <= outer.start_ns + outer.dur_ns);
        }
    }

    #[test]
    fn explicit_parenting_crosses_threads() {
        let reg = Arc::new(Registry::with_spans());
        let parent_id = {
            let parent = reg.span("logical-root");
            let pid = parent.id();
            let workers: Vec<_> = (0..4)
                .map(|i| {
                    let reg = Arc::clone(&reg);
                    std::thread::spawn(move || {
                        let mut s = reg.span_child("worker-job", pid);
                        s.arg("index", i as f64);
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            pid.0
        };
        let spans = reg.spans();
        let jobs: Vec<_> = spans.iter().filter(|s| s.name == "worker-job").collect();
        assert_eq!(jobs.len(), 4);
        for job in &jobs {
            assert_eq!(job.parent, parent_id, "explicit parent wins on workers");
        }
        // The jobs ran on other OS threads, so their tracks differ from
        // the root's.
        let root = spans.iter().find(|s| s.name == "logical-root").unwrap();
        assert!(jobs.iter().all(|j| j.track != root.track));
    }

    #[test]
    fn disabled_spans_record_nothing_and_have_no_id() {
        let reg = Registry::new();
        {
            let mut s = reg.span("ghost");
            assert!(!s.is_active());
            assert_eq!(s.id(), SpanId::NONE);
            s.arg("ignored", 1.0);
            assert_eq!(s.elapsed_seconds(), 0.0);
        }
        assert_eq!(reg.span_count(), 0);
    }

    #[test]
    fn span_args_and_durations_are_recorded() {
        let reg = Registry::with_spans();
        {
            let mut s = reg.span("work");
            s.arg("items", 42.0);
            std::thread::sleep(std::time::Duration::from_millis(2));
            assert!(s.elapsed_seconds() > 0.0);
        }
        let spans = reg.spans();
        assert_eq!(spans[0].args, vec![("items", 42.0)]);
        assert!(spans[0].dur_ns >= 1_000_000, "slept ≥1ms");
    }

    #[test]
    fn clear_resets_buffers_but_not_the_switch() {
        let reg = Registry::with_spans();
        reg.add("c", 1);
        drop(reg.span("s"));
        reg.clear();
        assert_eq!(reg.counter("c"), 0);
        assert_eq!(reg.span_count(), 0);
        assert!(reg.spans_enabled());
    }

    #[test]
    fn now_ns_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
