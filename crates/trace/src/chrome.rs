//! Chrome trace-event JSON export.
//!
//! Produces the `{"traceEvents":[...]}` object format understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one
//! complete (`"ph":"X"`) event per finished span, thread-name metadata
//! (`"ph":"M"`) events for every track seen, and counter (`"ph":"C"`)
//! events snapshotting the registry's counters and gauges. Timestamps and
//! durations are microseconds with sub-microsecond decimals, measured
//! from the process-wide monotonic anchor.
//!
//! The module also carries a deliberately small JSON reader ([`parse_json`])
//! — just enough to round-trip our own exports in golden tests without
//! pulling a serde stack into a zero-dependency crate.

use crate::registry::{track_names_snapshot, Registry, SpanRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders the registry as a Chrome trace-event JSON document.
pub fn trace_json(reg: &Registry) -> String {
    let spans = reg.spans();
    let mut out = String::with_capacity(256 + spans.len() * 160);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, event: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&event);
    };

    for (track, name) in track_names_snapshot() {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{track},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                json_string(&name)
            ),
        );
    }

    for span in &spans {
        push(&mut out, span_event(span));
    }

    // Counters and gauges are point-in-time snapshots; stamp them at the
    // export moment (the end of the latest span keeps them on-screen).
    let stamp_ns = spans
        .iter()
        .map(|s| s.start_ns + s.dur_ns)
        .max()
        .unwrap_or(0);
    for (name, value) in reg.counters() {
        push(&mut out, counter_event(&name, value as f64, stamp_ns));
    }
    for (name, value) in reg.gauges() {
        push(&mut out, counter_event(&name, value, stamp_ns));
    }

    out.push_str("\n]}\n");
    out
}

/// Writes [`trace_json`] to `path`.
pub fn write_trace(path: &Path, reg: &Registry) -> io::Result<()> {
    std::fs::write(path, trace_json(reg))
}

fn span_event(span: &SpanRecord) -> String {
    let mut ev = format!(
        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":{},\"cat\":\"accelviz\",\
         \"ts\":{},\"dur\":{}",
        span.track,
        json_string(&span.name),
        micros(span.start_ns),
        micros(span.dur_ns),
    );
    // Parent identity rides in args: Chrome nests "X" events by time and
    // track on its own, and the explicit ids let the summary reporter
    // (and a human) reconstruct logical nesting across pool threads.
    let _ = write!(ev, ",\"args\":{{\"span_id\":{}", span.id);
    if span.parent != 0 {
        let _ = write!(ev, ",\"parent_id\":{}", span.parent);
    }
    for (key, value) in &span.args {
        let _ = write!(ev, ",{}:{}", json_string(key), json_number(*value));
    }
    ev.push_str("}}");
    ev
}

fn counter_event(name: &str, value: f64, stamp_ns: u64) -> String {
    format!(
        "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":{},\"ts\":{},\
         \"args\":{{\"value\":{}}}}}",
        json_string(name),
        micros(stamp_ns),
        json_number(value)
    )
}

fn micros(ns: u64) -> String {
    // Microseconds with nanosecond precision kept as three decimals.
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    // JSON has no Infinity/NaN; the extraction threshold is legitimately
    // +inf ("voxelize everything"), so non-finite values become strings.
    if v.is_finite() {
        format!("{v}")
    } else {
        json_string(&format!("{v}"))
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — for golden tests over our own output.
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are `f64`; object keys keep source order
/// irrelevant (a [`BTreeMap`]).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string literal.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The number if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::String),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected `{word}` at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Number)
        .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // past `[`
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            other => return Err(format!("expected `,` or `]`, got {other:?}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // past `{`
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            other => return Err(format!("expected `,` or `}}`, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_scalars_arrays_objects() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":"x\"y","c":null,"d":true}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
    }

    #[test]
    fn parser_rejects_trailing_garbage() {
        assert!(parse_json("{} junk").is_err());
        assert!(parse_json("[1,]").is_err());
    }

    #[test]
    fn exported_trace_round_trips_through_the_parser() {
        let reg = Registry::with_spans();
        {
            let mut s = reg.span("stage.one");
            s.arg("items", 10.0);
            let _inner = reg.span("stage.two");
        }
        reg.add("frames", 2);
        reg.set_gauge("bytes", 1024.0);
        let doc = parse_json(&trace_json(&reg)).expect("export parses");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let phases: Vec<_> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap().to_string())
            .collect();
        assert!(phases.contains(&"X".to_string()), "span events present");
        assert!(phases.contains(&"C".to_string()), "counter events present");
        assert!(phases.contains(&"M".to_string()), "thread metadata present");
    }

    #[test]
    fn span_events_carry_parent_ids_and_args() {
        let reg = Registry::with_spans();
        {
            let outer = reg.span("outer");
            let mut child = reg.span_child("child", outer.id());
            child.arg("threshold", f64::INFINITY);
        }
        let doc = parse_json(&trace_json(&reg)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let child = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("child"))
            .unwrap();
        let args = child.get("args").unwrap();
        assert!(args.get("parent_id").unwrap().as_f64().unwrap() >= 1.0);
        // Non-finite numbers must export as strings — JSON has no inf.
        assert_eq!(args.get("threshold").unwrap().as_str(), Some("inf"));
    }

    #[test]
    fn timestamps_are_monotone_nonnegative_micros() {
        let reg = Registry::with_spans();
        for i in 0..5 {
            let mut s = reg.span("tick");
            s.arg("i", i as f64);
        }
        let doc = parse_json(&trace_json(&reg)).unwrap();
        let mut last = -1.0;
        for e in doc.get("traceEvents").unwrap().as_array().unwrap() {
            if e.get("ph").and_then(Json::as_str) != Some("X") {
                continue;
            }
            let ts = e.get("ts").unwrap().as_f64().unwrap();
            let dur = e.get("dur").unwrap().as_f64().unwrap();
            assert!(ts >= 0.0 && dur >= 0.0);
            assert!(
                ts >= last,
                "spans recorded in completion order stay monotone"
            );
            last = ts;
        }
    }
}
