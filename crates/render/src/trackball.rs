//! Trackball camera control: the mouse-driven orbiting of the paper's
//! interactive viewers ("interactivity is the key to insightful
//! visualization", §3).

use crate::camera::Camera;
use accelviz_math::Vec3;

/// An orbit-style trackball: azimuth/elevation/distance driven by mouse
/// drags and scroll zoom.
#[derive(Clone, Copy, Debug)]
pub struct Trackball {
    /// Orbit center.
    pub center: Vec3,
    /// Azimuth (radians around +y).
    pub theta: f64,
    /// Elevation (radians; clamped short of the poles).
    pub phi: f64,
    /// Distance from the center.
    pub distance: f64,
    /// Radians per pixel of drag.
    pub sensitivity: f64,
}

impl Trackball {
    /// A trackball framing a bounding sphere of radius `r` at `center`.
    pub fn framing(center: Vec3, r: f64) -> Trackball {
        Trackball {
            center,
            theta: 0.5,
            phi: 0.35,
            distance: (r * 2.4).max(1e-6),
            sensitivity: 0.01,
        }
    }

    /// Applies a mouse drag of (dx, dy) pixels.
    pub fn drag(&mut self, dx: f64, dy: f64) {
        self.theta += dx * self.sensitivity;
        self.phi = (self.phi + dy * self.sensitivity).clamp(-1.45, 1.45);
    }

    /// Zooms by a multiplicative factor (> 1 moves away).
    pub fn zoom(&mut self, factor: f64) {
        assert!(factor > 0.0);
        self.distance = (self.distance * factor).max(1e-9);
    }

    /// The camera for the current pose.
    pub fn camera(&self, aspect: f64) -> Camera {
        Camera::orbit(self.center, self.distance, self.theta, self.phi, aspect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drag_orbits_while_keeping_distance() {
        let mut tb = Trackball::framing(Vec3::ZERO, 1.0);
        let before = tb.camera(1.0).eye;
        tb.drag(120.0, -40.0);
        let after = tb.camera(1.0).eye;
        assert!(before.distance(after) > 1e-3, "the eye must move");
        assert!(
            (after.length() - before.length()).abs() < 1e-9,
            "orbiting must keep the distance"
        );
        assert_eq!(tb.camera(1.0).target, Vec3::ZERO);
    }

    #[test]
    fn elevation_clamps_at_the_poles() {
        let mut tb = Trackball::framing(Vec3::ZERO, 1.0);
        tb.drag(0.0, 100_000.0);
        assert!(tb.phi <= 1.45);
        tb.drag(0.0, -200_000.0);
        assert!(tb.phi >= -1.45);
        // Even at the clamp the camera is usable (up vector not parallel
        // to the view direction).
        let c = tb.camera(1.0);
        assert!(c.forward().cross(c.up).length() > 1e-3);
    }

    #[test]
    fn zoom_scales_distance() {
        let mut tb = Trackball::framing(Vec3::new(1.0, 2.0, 3.0), 2.0);
        let d0 = tb.distance;
        tb.zoom(0.5);
        assert!((tb.distance - d0 * 0.5).abs() < 1e-12);
        tb.zoom(4.0);
        assert!((tb.distance - d0 * 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn nonpositive_zoom_panics() {
        let mut tb = Trackball::framing(Vec3::ZERO, 1.0);
        tb.zoom(0.0);
    }
}
