//! Display lists — compiled, replayable geometry (§2.5).
//!
//! "If a frame is already in memory, it can be displayed instantaneously:
//! the volume texture and *display lists* are already loaded into video
//! memory." A display list freezes a frame's strip/point geometry into
//! one object with a known video-memory footprint, so the viewer's
//! residency model can account for geometry as well as textures, and
//! replaying costs no geometry rebuild.

use crate::camera::Camera;
use crate::framebuffer::Framebuffer;
use crate::rasterizer::{draw_triangle_strip, FragmentShader, RasterOptions, Vertex};
use accelviz_math::{Rgba, Vec3};

/// A compiled display list: triangle strips plus point sprites.
#[derive(Clone, Debug, Default)]
pub struct DisplayList {
    strips: Vec<Vec<Vertex>>,
    points: Vec<(Vec3, Rgba)>,
}

impl DisplayList {
    /// An empty list.
    pub fn new() -> DisplayList {
        DisplayList::default()
    }

    /// Appends a triangle strip.
    pub fn push_strip(&mut self, verts: Vec<Vertex>) {
        if verts.len() >= 3 {
            self.strips.push(verts);
        }
    }

    /// Appends a point sprite.
    pub fn push_point(&mut self, pos: Vec3, color: Rgba) {
        self.points.push((pos, color));
    }

    /// Number of strips.
    pub fn strip_count(&self) -> usize {
        self.strips.len()
    }

    /// Total triangles across all strips.
    pub fn triangle_count(&self) -> usize {
        self.strips.iter().map(|s| s.len() - 2).sum()
    }

    /// Number of point sprites.
    pub fn point_count(&self) -> usize {
        self.points.len()
    }

    /// Video-memory footprint of the compiled list, using the era's
    /// interleaved vertex layout: position (3×f32) + uv (2×f32) + color
    /// (RGBA8) = 24 B per strip vertex; points cost 12 B position +
    /// 4 B color.
    pub fn bytes(&self) -> u64 {
        let strip_verts: usize = self.strips.iter().map(Vec::len).sum();
        (strip_verts * 24 + self.points.len() * 16) as u64
    }

    /// Replays the list: rasterizes every strip through `shader` and
    /// splats every point. Returns (triangles, fragments) like the direct
    /// path — replay must produce the identical image.
    pub fn replay(
        &self,
        fb: &mut Framebuffer,
        camera: &Camera,
        shader: FragmentShader<'_>,
        opts: RasterOptions,
        point_size_px: f64,
    ) -> (usize, usize) {
        let mut tris = 0;
        let mut frags = 0;
        for strip in &self.strips {
            let (t, f) = draw_triangle_strip(fb, camera, strip, shader, opts);
            tris += t;
            frags += f;
        }
        let (w, h) = (fb.width(), fb.height());
        for &(pos, color) in &self.points {
            if let Some((px, py, z)) = camera.project_to_pixel(pos, w, h) {
                if !(-1.0..=1.0).contains(&z) {
                    continue;
                }
                let r = point_size_px.max(0.5);
                let x0 = (px - r).floor().max(0.0) as isize;
                let y0 = (py - r).floor().max(0.0) as isize;
                let x1 = ((px + r).ceil() as isize).min(w as isize - 1);
                let y1 = ((py + r).ceil() as isize).min(h as isize - 1);
                for y in y0.max(0)..=y1.max(-1) {
                    for x in x0.max(0)..=x1.max(-1) {
                        let dx = x as f64 + 0.5 - px;
                        let dy = y as f64 + 0.5 - py;
                        if dx * dx + dy * dy <= r * r {
                            fb.blend_fragment(
                                x as usize,
                                y as usize,
                                z as f32,
                                color,
                                opts.write_depth,
                            );
                            frags += 1;
                        }
                    }
                }
            }
        }
        (tris, frags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rasterizer::flat_shader;

    fn cam() -> Camera {
        Camera::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 1.0)
    }

    fn strip() -> Vec<Vertex> {
        (0..6)
            .map(|i| {
                let x = i as f64 * 0.4 - 1.0;
                let y = if i % 2 == 0 { -0.4 } else { 0.4 };
                Vertex::colored(Vec3::new(x, y, 0.0), Rgba::rgb(0.2, 0.9, 0.4))
            })
            .collect()
    }

    #[test]
    fn replay_matches_direct_rendering() {
        let verts = strip();
        let mut direct = Framebuffer::new(64, 64);
        draw_triangle_strip(
            &mut direct,
            &cam(),
            &verts,
            &flat_shader,
            RasterOptions::default(),
        );

        let mut list = DisplayList::new();
        list.push_strip(verts);
        let mut replayed = Framebuffer::new(64, 64);
        let (tris, frags) = list.replay(
            &mut replayed,
            &cam(),
            &flat_shader,
            RasterOptions::default(),
            1.0,
        );
        assert_eq!(tris, 4);
        assert!(frags > 0);
        assert_eq!(direct.mse(&replayed), 0.0, "replay must be bit-identical");
    }

    #[test]
    fn counts_and_bytes() {
        let mut list = DisplayList::new();
        list.push_strip(strip()); // 6 verts, 4 tris
        list.push_point(Vec3::ZERO, Rgba::WHITE);
        list.push_point(Vec3::UNIT_X, Rgba::WHITE);
        assert_eq!(list.strip_count(), 1);
        assert_eq!(list.triangle_count(), 4);
        assert_eq!(list.point_count(), 2);
        assert_eq!(list.bytes(), 6 * 24 + 2 * 16);
        // Degenerate strips are rejected.
        list.push_strip(vec![Vertex::colored(Vec3::ZERO, Rgba::WHITE); 2]);
        assert_eq!(list.strip_count(), 1);
    }

    #[test]
    fn points_replay_visibly() {
        let mut list = DisplayList::new();
        list.push_point(Vec3::ZERO, Rgba::WHITE);
        let mut fb = Framebuffer::new(65, 65);
        let (_, frags) = list.replay(&mut fb, &cam(), &flat_shader, RasterOptions::default(), 2.0);
        assert!(frags > 0);
        assert!(fb.get(32, 32).luminance() > 0.5);
    }
}
