//! Texture-memory budget model.
//!
//! The paper's interactivity argument depends on what fits in video
//! memory: "the size of volumes that can be efficiently visualized in this
//! manner are limited by the amount of available texture memory" (§2), and
//! in the viewer "the volume texture and display lists are already loaded
//! into video memory, or can be quickly swapped in by the display driver"
//! (§2.5). This module models a fixed-capacity texture memory with LRU
//! eviction and an upload-bandwidth cost, which the viewer and the FIG1/
//! FIG5 experiments query.

use std::collections::HashMap;

/// Result of requesting a texture to be resident.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UploadResult {
    /// The texture was already resident (zero-cost bind).
    pub was_resident: bool,
    /// Bytes uploaded by this request (0 when resident).
    pub bytes_uploaded: u64,
    /// Modeled upload time in seconds.
    pub upload_seconds: f64,
    /// Number of textures evicted to make room.
    pub evicted: usize,
}

/// A fixed-capacity texture memory with LRU eviction.
#[derive(Clone, Debug)]
pub struct TextureMemory {
    capacity: u64,
    bandwidth: f64,
    used: u64,
    resident: HashMap<u64, u64>,
    /// LRU order: front = least recently used.
    lru: Vec<u64>,
    uploads: u64,
    hits: u64,
}

impl TextureMemory {
    /// The paper-era card: 64 MB of texture memory, ~1 GB/s upload over
    /// AGP 4×.
    pub fn geforce_class() -> TextureMemory {
        TextureMemory::new(64 << 20, 1.0e9)
    }

    /// Texture memory with `capacity` bytes and `bandwidth` bytes/second
    /// upload speed.
    pub fn new(capacity: u64, bandwidth: f64) -> TextureMemory {
        assert!(capacity > 0 && bandwidth > 0.0);
        TextureMemory {
            capacity,
            bandwidth,
            used: 0,
            resident: HashMap::new(),
            lru: Vec::new(),
            uploads: 0,
            hits: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of resident textures.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// `true` if texture `id` is resident.
    pub fn is_resident(&self, id: u64) -> bool {
        self.resident.contains_key(&id)
    }

    /// Total upload operations performed.
    pub fn upload_count(&self) -> u64 {
        self.uploads
    }

    /// Total requests satisfied without an upload.
    pub fn hit_count(&self) -> u64 {
        self.hits
    }

    /// Requests texture `id` of `bytes` bytes to be resident, uploading
    /// and LRU-evicting as needed. Textures larger than the whole capacity
    /// are rejected with `None` (the caller must downsample — exactly the
    /// constraint that drives the hybrid method's low-res volumes).
    pub fn request(&mut self, id: u64, bytes: u64) -> Option<UploadResult> {
        if bytes > self.capacity {
            return None;
        }
        if let Some(&sz) = self.resident.get(&id) {
            debug_assert_eq!(sz, bytes, "texture {id} resized without eviction");
            self.touch(id);
            self.hits += 1;
            return Some(UploadResult {
                was_resident: true,
                bytes_uploaded: 0,
                upload_seconds: 0.0,
                evicted: 0,
            });
        }
        let mut evicted = 0;
        while self.used + bytes > self.capacity {
            let victim = self.lru.remove(0);
            let sz = self
                .resident
                .remove(&victim)
                .expect("lru entry must be resident");
            self.used -= sz;
            evicted += 1;
        }
        self.resident.insert(id, bytes);
        self.lru.push(id);
        self.used += bytes;
        self.uploads += 1;
        accelviz_trace::global().set_gauge("render.texture_bytes", self.used as f64);
        Some(UploadResult {
            was_resident: false,
            bytes_uploaded: bytes,
            upload_seconds: bytes as f64 / self.bandwidth,
            evicted,
        })
    }

    /// Removes a texture explicitly.
    pub fn evict(&mut self, id: u64) {
        if let Some(sz) = self.resident.remove(&id) {
            self.used -= sz;
            self.lru.retain(|&x| x != id);
            accelviz_trace::global().set_gauge("render.texture_bytes", self.used as f64);
        }
    }

    fn touch(&mut self, id: u64) {
        if let Some(pos) = self.lru.iter().position(|&x| x == id) {
            let v = self.lru.remove(pos);
            self.lru.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_request_uploads_second_hits() {
        let mut tm = TextureMemory::new(1000, 1000.0);
        let r1 = tm.request(1, 400).unwrap();
        assert!(!r1.was_resident);
        assert_eq!(r1.bytes_uploaded, 400);
        assert!((r1.upload_seconds - 0.4).abs() < 1e-12);
        let r2 = tm.request(1, 400).unwrap();
        assert!(r2.was_resident);
        assert_eq!(r2.bytes_uploaded, 0);
        assert_eq!(tm.hit_count(), 1);
        assert_eq!(tm.upload_count(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut tm = TextureMemory::new(1000, 1e9);
        tm.request(1, 400).unwrap();
        tm.request(2, 400).unwrap();
        // Touch 1 so 2 becomes LRU.
        tm.request(1, 400).unwrap();
        let r = tm.request(3, 400).unwrap();
        assert_eq!(r.evicted, 1);
        assert!(tm.is_resident(1));
        assert!(!tm.is_resident(2), "texture 2 was least recently used");
        assert!(tm.is_resident(3));
        assert_eq!(tm.used(), 800);
    }

    #[test]
    fn oversized_textures_are_rejected() {
        let mut tm = TextureMemory::new(1 << 20, 1e9);
        assert!(tm.request(1, 2 << 20).is_none());
        assert_eq!(tm.resident_count(), 0);
    }

    #[test]
    fn paper_scale_volume_textures() {
        // A 256³ paletted volume (16.7 MB) fits a 64 MB card; four do not,
        // while dozens of 64³ volumes (256 KB each) do — the storage logic
        // behind the hybrid method's low-res volume choice.
        let mut tm = TextureMemory::geforce_class();
        let vol256 = 256u64 * 256 * 256;
        let vol64 = 64u64 * 64 * 64;
        let mut evictions = 0;
        for i in 0..5 {
            evictions += tm.request(i, vol256).unwrap().evicted;
        }
        assert!(
            evictions > 0,
            "five 256³ volumes must not fit simultaneously"
        );
        let mut tm2 = TextureMemory::geforce_class();
        let mut evictions2 = 0;
        for i in 0..10 {
            evictions2 += tm2.request(i, vol64).unwrap().evicted;
        }
        assert_eq!(evictions2, 0, "ten 64³ volumes fit comfortably");
        assert_eq!(tm2.resident_count(), 10);
    }

    #[test]
    fn explicit_evict() {
        let mut tm = TextureMemory::new(1000, 1e9);
        tm.request(7, 500).unwrap();
        tm.evict(7);
        assert!(!tm.is_resident(7));
        assert_eq!(tm.used(), 0);
        // Evicting a non-resident id is a no-op.
        tm.evict(42);
    }
}
