//! Image output (binary PPM) for the example binaries.

use crate::framebuffer::Framebuffer;
use accelviz_math::Rgba;
use std::io::{self, Write};
use std::path::Path;

/// Encodes the framebuffer as a binary PPM (P6) image, compositing over
/// the given background color.
pub fn encode_ppm(fb: &Framebuffer, background: Rgba) -> Vec<u8> {
    let mut out = Vec::with_capacity(fb.width() * fb.height() * 3 + 32);
    out.extend_from_slice(format!("P6\n{} {}\n255\n", fb.width(), fb.height()).as_bytes());
    for c in fb.pixels() {
        let composed = c.over(background);
        let [r, g, b, _] = composed.to_srgb8();
        out.push(r);
        out.push(g);
        out.push(b);
    }
    out
}

/// Writes the framebuffer to a PPM file.
pub fn write_ppm(fb: &Framebuffer, background: Rgba, path: &Path) -> io::Result<()> {
    let data = encode_ppm(fb, background);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppm_header_and_size() {
        let mut fb = Framebuffer::new(3, 2);
        fb.clear(Rgba::WHITE);
        let data = encode_ppm(&fb, Rgba::BLACK);
        assert!(data.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(data.len(), b"P6\n3 2\n255\n".len() + 3 * 2 * 3);
        // White pixels encode to 255.
        assert_eq!(data[data.len() - 1], 255);
    }

    #[test]
    fn background_shows_through_transparency() {
        let fb = Framebuffer::new(1, 1); // fully transparent
        let data = encode_ppm(&fb, Rgba::rgb(1.0, 0.0, 0.0));
        let n = data.len();
        assert_eq!(data[n - 3], 255, "red background");
        assert_eq!(data[n - 2], 0);
        assert_eq!(data[n - 1], 0);
    }
}
