//! Z-buffered, perspective-correct triangle rasterization — the
//! fixed-function geometry path of the modeled hardware.

use crate::camera::Camera;
use crate::framebuffer::Framebuffer;
use accelviz_math::{Rgba, Vec3};

/// A vertex: world position, texture coordinates, and vertex color.
#[derive(Clone, Copy, Debug)]
pub struct Vertex {
    /// World-space position.
    pub pos: Vec3,
    /// Texture coordinate (u along the primitive, v across).
    pub uv: (f64, f64),
    /// Vertex color (interpolated across the triangle).
    pub color: Rgba,
}

impl Vertex {
    /// Vertex with color only.
    pub fn colored(pos: Vec3, color: Rgba) -> Vertex {
        Vertex {
            pos,
            uv: (0.0, 0.0),
            color,
        }
    }
}

/// Rasterization options.
#[derive(Clone, Copy, Debug)]
pub struct RasterOptions {
    /// Write the depth buffer (true for opaque geometry).
    pub write_depth: bool,
}

impl Default for RasterOptions {
    fn default() -> RasterOptions {
        RasterOptions { write_depth: true }
    }
}

/// The per-fragment shader: receives perspective-correct (u, v) and the
/// interpolated vertex color; returns the fragment color or `None` to
/// discard (texture-silhouette kill, as the bump-mapped strips do).
pub type FragmentShader<'a> = &'a dyn Fn(f64, f64, Rgba) -> Option<Rgba>;

/// Projected vertex: pixel x/y, NDC depth, 1/w for perspective correction.
#[derive(Clone, Copy)]
struct Projected {
    x: f64,
    y: f64,
    z: f64,
    inv_w: f64,
}

/// A clip-space vertex carried through near-plane clipping.
#[derive(Clone, Copy)]
struct ClipVertex {
    clip: accelviz_math::Vec4,
    uv: (f64, f64),
    color: Rgba,
}

impl ClipVertex {
    fn lerp(&self, o: &ClipVertex, t: f64) -> ClipVertex {
        ClipVertex {
            clip: self.clip + (o.clip - self.clip) * t,
            uv: (
                self.uv.0 + (o.uv.0 - self.uv.0) * t,
                self.uv.1 + (o.uv.1 - self.uv.1) * t,
            ),
            color: self.color.lerp(o.color, t as f32),
        }
    }
}

/// Minimum clip-space w: geometry closer than this is clipped away.
const W_CLIP: f64 = 1e-6;

/// Sutherland–Hodgman clip of a triangle against the plane `w > W_CLIP`.
/// Returns 0, 3, or 4 vertices.
fn clip_near(tri: [ClipVertex; 3]) -> Vec<ClipVertex> {
    let mut out = Vec::with_capacity(4);
    for i in 0..3 {
        let a = tri[i];
        let b = tri[(i + 1) % 3];
        let a_in = a.clip.w > W_CLIP;
        let b_in = b.clip.w > W_CLIP;
        if a_in {
            out.push(a);
        }
        if a_in != b_in {
            // Intersection at w = W_CLIP along the edge.
            let t = (W_CLIP - a.clip.w) / (b.clip.w - a.clip.w);
            out.push(a.lerp(&b, t.clamp(0.0, 1.0)));
        }
    }
    out
}

fn to_screen(v: &ClipVertex, w: usize, h: usize) -> Projected {
    let inv_w = 1.0 / v.clip.w;
    Projected {
        x: (v.clip.x * inv_w * 0.5 + 0.5) * w as f64,
        y: (1.0 - (v.clip.y * inv_w * 0.5 + 0.5)) * h as f64,
        z: v.clip.z * inv_w,
        inv_w,
    }
}

/// Rasterizes one triangle with perspective-correct attribute
/// interpolation and near-plane clipping (triangles straddling the eye
/// plane render their visible part, as the hardware pipeline does).
/// Returns the number of fragments written (the fill-rate accounting used
/// by the benchmarks).
pub fn draw_triangle(
    fb: &mut Framebuffer,
    camera: &Camera,
    verts: &[Vertex; 3],
    shader: FragmentShader<'_>,
    opts: RasterOptions,
) -> usize {
    let vp = camera.view_projection();
    let clip_tri = [
        ClipVertex {
            clip: vp.mul_vec4(accelviz_math::Vec4::from_point(verts[0].pos)),
            uv: verts[0].uv,
            color: verts[0].color,
        },
        ClipVertex {
            clip: vp.mul_vec4(accelviz_math::Vec4::from_point(verts[1].pos)),
            uv: verts[1].uv,
            color: verts[1].color,
        },
        ClipVertex {
            clip: vp.mul_vec4(accelviz_math::Vec4::from_point(verts[2].pos)),
            uv: verts[2].uv,
            color: verts[2].color,
        },
    ];
    let poly = clip_near(clip_tri);
    if poly.len() < 3 {
        return 0;
    }
    let mut written = 0;
    // Fan-triangulate the clipped polygon (3 or 4 vertices).
    for i in 1..poly.len() - 1 {
        written += raster_clipped(fb, [poly[0], poly[i], poly[i + 1]], shader, opts);
    }
    written
}

/// Rasterizes one fully-in-front clip-space triangle.
fn raster_clipped(
    fb: &mut Framebuffer,
    tri: [ClipVertex; 3],
    shader: FragmentShader<'_>,
    opts: RasterOptions,
) -> usize {
    let (w, h) = (fb.width(), fb.height());
    let p: Vec<Projected> = tri.iter().map(|v| to_screen(v, w, h)).collect();
    let verts = &tri;

    // Screen-space edge setup.
    let area = edge(&p[0], &p[1], p[2].x, p[2].y);
    if area.abs() < 1e-12 {
        return 0; // degenerate
    }

    let min_x = p
        .iter()
        .map(|q| q.x)
        .fold(f64::INFINITY, f64::min)
        .floor()
        .max(0.0) as usize;
    let max_x = (p
        .iter()
        .map(|q| q.x)
        .fold(f64::NEG_INFINITY, f64::max)
        .ceil() as isize)
        .min(w as isize - 1);
    let min_y = p
        .iter()
        .map(|q| q.y)
        .fold(f64::INFINITY, f64::min)
        .floor()
        .max(0.0) as usize;
    let max_y = (p
        .iter()
        .map(|q| q.y)
        .fold(f64::NEG_INFINITY, f64::max)
        .ceil() as isize)
        .min(h as isize - 1);
    if max_x < min_x as isize || max_y < min_y as isize {
        return 0;
    }

    let mut written = 0usize;
    for y in min_y..=(max_y as usize) {
        for x in min_x..=(max_x as usize) {
            let (px, py) = (x as f64 + 0.5, y as f64 + 0.5);
            let w0 = edge(&p[1], &p[2], px, py) / area;
            let w1 = edge(&p[2], &p[0], px, py) / area;
            let w2 = 1.0 - w0 - w1;
            if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                continue;
            }
            // Perspective-correct interpolation: attributes divided by w.
            let inv_w = w0 * p[0].inv_w + w1 * p[1].inv_w + w2 * p[2].inv_w;
            if inv_w <= 0.0 {
                continue;
            }
            let persp = |a0: f64, a1: f64, a2: f64| -> f64 {
                (w0 * a0 * p[0].inv_w + w1 * a1 * p[1].inv_w + w2 * a2 * p[2].inv_w) / inv_w
            };
            let u = persp(verts[0].uv.0, verts[1].uv.0, verts[2].uv.0);
            let v = persp(verts[0].uv.1, verts[1].uv.1, verts[2].uv.1);
            let color = Rgba::new(
                persp(
                    verts[0].color.r as f64,
                    verts[1].color.r as f64,
                    verts[2].color.r as f64,
                ) as f32,
                persp(
                    verts[0].color.g as f64,
                    verts[1].color.g as f64,
                    verts[2].color.g as f64,
                ) as f32,
                persp(
                    verts[0].color.b as f64,
                    verts[1].color.b as f64,
                    verts[2].color.b as f64,
                ) as f32,
                persp(
                    verts[0].color.a as f64,
                    verts[1].color.a as f64,
                    verts[2].color.a as f64,
                ) as f32,
            );
            let z = (w0 * p[0].z + w1 * p[1].z + w2 * p[2].z) as f32;
            if let Some(out) = shader(u, v, color) {
                fb.blend_fragment(x, y, z, out, opts.write_depth);
                written += 1;
            }
        }
    }
    written
}

#[inline]
fn edge(a: &Projected, b: &Projected, px: f64, py: f64) -> f64 {
    (b.x - a.x) * (py - a.y) - (b.y - a.y) * (px - a.x)
}

/// Rasterizes a triangle strip (vertices 0-1-2, 1-2-3, …). Returns
/// `(triangles_drawn, fragments_written)`.
pub fn draw_triangle_strip(
    fb: &mut Framebuffer,
    camera: &Camera,
    verts: &[Vertex],
    shader: FragmentShader<'_>,
    opts: RasterOptions,
) -> (usize, usize) {
    if verts.len() < 3 {
        return (0, 0);
    }
    let mut tris = 0;
    let mut frags = 0;
    for i in 0..verts.len() - 2 {
        let tri = [verts[i], verts[i + 1], verts[i + 2]];
        frags += draw_triangle(fb, camera, &tri, shader, opts);
        tris += 1;
    }
    (tris, frags)
}

/// The pass-through shader: vertex color only.
pub fn flat_shader(_u: f64, _v: f64, c: Rgba) -> Option<Rgba> {
    Some(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> Camera {
        Camera::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 1.0)
    }

    fn tri_at(z: f64, color: Rgba) -> [Vertex; 3] {
        [
            Vertex::colored(Vec3::new(-1.0, -1.0, z), color),
            Vertex::colored(Vec3::new(1.0, -1.0, z), color),
            Vertex::colored(Vec3::new(0.0, 1.5, z), color),
        ]
    }

    #[test]
    fn triangle_covers_center_pixel() {
        let mut fb = Framebuffer::new(64, 64);
        let n = draw_triangle(
            &mut fb,
            &cam(),
            &tri_at(0.0, Rgba::rgb(1.0, 0.0, 0.0)),
            &flat_shader,
            RasterOptions::default(),
        );
        assert!(n > 0, "some fragments must be written");
        let c = fb.get(32, 32);
        assert!(c.r > 0.99, "center pixel must be red: {c:?}");
    }

    #[test]
    fn depth_occlusion_between_triangles() {
        let mut fb = Framebuffer::new(64, 64);
        let c = cam();
        // Near red triangle (z = 2, closer to the eye at z = 5).
        draw_triangle(
            &mut fb,
            &c,
            &tri_at(2.0, Rgba::rgb(1.0, 0.0, 0.0)),
            &flat_shader,
            RasterOptions::default(),
        );
        // Far green triangle.
        draw_triangle(
            &mut fb,
            &c,
            &tri_at(-2.0, Rgba::rgb(0.0, 1.0, 0.0)),
            &flat_shader,
            RasterOptions::default(),
        );
        assert!(fb.get(32, 32).r > 0.99, "near triangle must win");
        // Drawn in the other order the result is the same.
        let mut fb2 = Framebuffer::new(64, 64);
        draw_triangle(
            &mut fb2,
            &c,
            &tri_at(-2.0, Rgba::rgb(0.0, 1.0, 0.0)),
            &flat_shader,
            RasterOptions::default(),
        );
        draw_triangle(
            &mut fb2,
            &c,
            &tri_at(2.0, Rgba::rgb(1.0, 0.0, 0.0)),
            &flat_shader,
            RasterOptions::default(),
        );
        assert!(fb2.get(32, 32).r > 0.99);
    }

    #[test]
    fn degenerate_triangle_writes_nothing() {
        let mut fb = Framebuffer::new(32, 32);
        let v = Vertex::colored(Vec3::ZERO, Rgba::WHITE);
        let n = draw_triangle(
            &mut fb,
            &cam(),
            &[v, v, v],
            &flat_shader,
            RasterOptions::default(),
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn behind_camera_triangle_is_culled() {
        let mut fb = Framebuffer::new(32, 32);
        let n = draw_triangle(
            &mut fb,
            &cam(),
            &tri_at(10.0, Rgba::WHITE), // behind the eye at z = 5
            &flat_shader,
            RasterOptions::default(),
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn straddling_triangle_renders_its_visible_part() {
        // One vertex behind the eye (z = 6 > eye z = 5), two well in
        // front: near-plane clipping must keep the in-front portion
        // instead of dropping the whole triangle.
        let mut fb = Framebuffer::new(64, 64);
        let verts = [
            Vertex::colored(Vec3::new(0.0, 0.0, 6.0), Rgba::rgb(1.0, 0.0, 0.0)),
            Vertex::colored(Vec3::new(-1.0, -0.5, 0.0), Rgba::rgb(1.0, 0.0, 0.0)),
            Vertex::colored(Vec3::new(1.0, -0.5, 0.0), Rgba::rgb(1.0, 0.0, 0.0)),
        ];
        let n = draw_triangle(
            &mut fb,
            &cam(),
            &verts,
            &flat_shader,
            RasterOptions::default(),
        );
        assert!(n > 0, "visible part must rasterize");
        // The visible fragment region lies in the lower half (toward the
        // two in-front vertices at y = -0.5).
        let mut lit_lower = 0;
        for y in 33..64 {
            for x in 0..64 {
                if fb.get(x, y).r > 0.5 {
                    lit_lower += 1;
                }
            }
        }
        assert!(lit_lower > 0, "clipped geometry must appear below center");
    }

    #[test]
    fn clipping_does_not_change_fully_visible_triangles() {
        let mut with = Framebuffer::new(64, 64);
        let mut reference = Framebuffer::new(64, 64);
        let tri = tri_at(0.0, Rgba::rgb(0.1, 0.9, 0.4));
        draw_triangle(
            &mut with,
            &cam(),
            &tri,
            &flat_shader,
            RasterOptions::default(),
        );
        // A fully visible triangle never enters the clip path; render
        // twice and compare for determinism of the clipped pipeline.
        draw_triangle(
            &mut reference,
            &cam(),
            &tri,
            &flat_shader,
            RasterOptions::default(),
        );
        assert_eq!(with.mse(&reference), 0.0);
    }

    #[test]
    fn shader_discard_kills_fragments() {
        let mut fb = Framebuffer::new(32, 32);
        let kill = |_u: f64, _v: f64, _c: Rgba| -> Option<Rgba> { None };
        let n = draw_triangle(
            &mut fb,
            &cam(),
            &tri_at(0.0, Rgba::WHITE),
            &kill,
            RasterOptions::default(),
        );
        assert_eq!(n, 0);
        assert_eq!(fb.get(16, 16), Rgba::TRANSPARENT);
    }

    #[test]
    fn uv_interpolation_spans_triangle() {
        let mut fb = Framebuffer::new(64, 64);
        // Color from uv: red = u.
        let uv_shader = |u: f64, _v: f64, _c: Rgba| Some(Rgba::new(u as f32, 0.0, 0.0, 1.0));
        let verts = [
            Vertex {
                pos: Vec3::new(-2.0, -2.0, 0.0),
                uv: (0.0, 0.0),
                color: Rgba::WHITE,
            },
            Vertex {
                pos: Vec3::new(2.0, -2.0, 0.0),
                uv: (1.0, 0.0),
                color: Rgba::WHITE,
            },
            Vertex {
                pos: Vec3::new(0.0, 2.5, 0.0),
                uv: (0.5, 1.0),
                color: Rgba::WHITE,
            },
        ];
        draw_triangle(
            &mut fb,
            &cam(),
            &verts,
            &uv_shader,
            RasterOptions::default(),
        );
        // u increases left → right along the bottom edge.
        let left = fb.get(16, 50).r;
        let right = fb.get(48, 50).r;
        assert!(right > left, "u must grow to the right: {left} vs {right}");
    }

    #[test]
    fn strip_draws_n_minus_2_triangles() {
        let mut fb = Framebuffer::new(64, 64);
        let verts: Vec<Vertex> = (0..6)
            .map(|i| {
                let x = i as f64 * 0.5 - 1.25;
                let y = if i % 2 == 0 { -0.5 } else { 0.5 };
                Vertex::colored(Vec3::new(x, y, 0.0), Rgba::WHITE)
            })
            .collect();
        let (tris, frags) = draw_triangle_strip(
            &mut fb,
            &cam(),
            &verts,
            &flat_shader,
            RasterOptions::default(),
        );
        assert_eq!(tris, 4);
        assert!(frags > 0);
        // Short strips are no-ops.
        let (t0, f0) = draw_triangle_strip(
            &mut fb,
            &cam(),
            &verts[..2],
            &flat_shader,
            RasterOptions::default(),
        );
        assert_eq!((t0, f0), (0, 0));
    }
}
