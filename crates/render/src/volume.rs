//! Ray-cast volume rendering — the software equivalent of the
//! texture-mapping-hardware volume rendering the hybrid method uses for
//! its high-density regions (§2).

use crate::camera::Camera;
use crate::framebuffer::Framebuffer;
use accelviz_math::{Aabb, Ray, Rgba, Vec3};
use rayon::prelude::*;

/// A sampleable scalar field over a bounding box, with samples normalized
/// to [0, 1]. `accelviz-core` adapts the octree crate's `DensityGrid` to
/// this trait.
pub trait ScalarField3: Sync {
    /// Bounds of the field.
    fn bounds(&self) -> Aabb;
    /// Normalized sample in [0, 1]; 0 outside the bounds.
    fn sample(&self, p: Vec3) -> f64;
}

/// Volume rendering parameters.
#[derive(Clone, Copy, Debug)]
pub struct VolumeStyle {
    /// Number of samples along each ray through the volume.
    pub steps: usize,
    /// Early-termination opacity: stop compositing once accumulated alpha
    /// exceeds this.
    pub early_termination: f32,
}

impl Default for VolumeStyle {
    fn default() -> VolumeStyle {
        VolumeStyle {
            steps: 128,
            early_termination: 0.98,
        }
    }
}

/// Renders a scalar field through a transfer function into the
/// framebuffer with front-to-back compositing, parallelized over pixel
/// rows. Returns the total number of field samples taken (the fill-cost
/// measure: proportional to what the texture hardware's fill rate would
/// bound).
pub fn render_volume(
    fb: &mut Framebuffer,
    camera: &Camera,
    field: &dyn ScalarField3,
    transfer: &(dyn Fn(f64) -> Rgba + Sync),
    style: &VolumeStyle,
) -> u64 {
    assert!(style.steps > 0);
    let mut span = accelviz_trace::span("render.volume_pass");
    let (w, h) = (fb.width(), fb.height());
    let bounds = field.bounds();
    let view_proj_inv = match camera.view_projection().inverse() {
        Some(m) => m,
        None => return 0,
    };
    let eye = camera.eye;

    let samples_total: u64 = fb
        .pixels_mut()
        .par_chunks_mut(w)
        .enumerate()
        .map(|(y, row)| {
            let mut row_samples = 0u64;
            for (x, pixel) in row.iter_mut().enumerate() {
                // Unproject the pixel center on the far plane to get the
                // ray direction.
                let ndc = Vec3::new(
                    (x as f64 + 0.5) / w as f64 * 2.0 - 1.0,
                    1.0 - (y as f64 + 0.5) / h as f64 * 2.0,
                    1.0,
                );
                let Some(far_pt) = view_proj_inv.project_point(ndc) else {
                    continue;
                };
                let ray = Ray::new(eye, far_pt - eye);
                let Some((t0, t1)) = bounds.intersect_ray(&ray) else {
                    continue;
                };
                if t1 <= t0 {
                    continue;
                }
                let dt = (t1 - t0) / style.steps as f64;
                // Beer–Lambert step correction: the transfer function's
                // alpha is the opacity accumulated over one reference
                // length (the volume's longest edge), so a step of world
                // length ℓ contributes 1 − (1 − a)^(ℓ/L). This makes the
                // image independent of the step count and longer chords
                // correctly more opaque.
                let ref_len = bounds.longest_edge().max(1e-300);
                let step_world = dt * ray.dir.length();
                let exponent = (step_world / ref_len) as f32;
                let mut acc = Rgba::TRANSPARENT; // premultiplied accumulator
                for s in 0..style.steps {
                    let t = t0 + (s as f64 + 0.5) * dt;
                    let v = field.sample(ray.at(t));
                    row_samples += 1;
                    let c = transfer(v);
                    if c.a <= 0.0 {
                        continue;
                    }
                    let corrected = 1.0 - (1.0 - c.a.clamp(0.0, 1.0)).powf(exponent);
                    acc = Rgba::front_to_back(acc, c.with_alpha(corrected));
                    if acc.a >= style.early_termination {
                        break;
                    }
                }
                if acc.a > 0.0 {
                    *pixel = acc.unpremultiply().over(*pixel);
                }
            }
            row_samples
        })
        .sum();
    if span.is_active() {
        span.arg("samples", samples_total as f64);
        span.arg("pixels", (w * h) as f64);
        span.arg("steps", style.steps as f64);
    }
    samples_total
}

/// A trivial constant-bounds field for tests and calibration: a solid box
/// of uniform normalized density.
#[derive(Clone, Copy, Debug)]
pub struct UniformBox {
    /// Field bounds.
    pub bounds: Aabb,
    /// The constant normalized value inside.
    pub value: f64,
}

impl ScalarField3 for UniformBox {
    fn bounds(&self) -> Aabb {
        self.bounds
    }
    fn sample(&self, p: Vec3) -> f64 {
        if self.bounds.contains(p) {
            self.value
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> Camera {
        Camera::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 1.0)
    }

    fn solid() -> UniformBox {
        UniformBox {
            bounds: Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)),
            value: 1.0,
        }
    }

    #[test]
    fn volume_fills_center_not_corners() {
        let mut fb = Framebuffer::new(64, 64);
        let tf = |v: f64| Rgba::new(1.0, 1.0, 1.0, v as f32);
        let n = render_volume(&mut fb, &cam(), &solid(), &tf, &VolumeStyle::default());
        assert!(n > 0);
        assert!(fb.get(32, 32).a > 0.5, "center must be filled");
        assert_eq!(fb.get(1, 1).a, 0.0, "corner ray misses the box");
    }

    #[test]
    fn transparent_transfer_function_renders_nothing() {
        let mut fb = Framebuffer::new(32, 32);
        let tf = |_v: f64| Rgba::TRANSPARENT;
        render_volume(&mut fb, &cam(), &solid(), &tf, &VolumeStyle::default());
        assert!(fb.pixels().iter().all(|c| c.a == 0.0));
    }

    #[test]
    fn sample_count_scales_with_resolution_and_steps() {
        // The fill-rate proxy: more pixels and more steps cost more
        // samples — this asymmetry is the heart of the Figure 1 claim.
        let tf = |v: f64| Rgba::new(1.0, 1.0, 1.0, (v * 0.05) as f32);
        let mut small = Framebuffer::new(32, 32);
        let mut large = Framebuffer::new(64, 64);
        let n_small = render_volume(
            &mut small,
            &cam(),
            &solid(),
            &tf,
            &VolumeStyle {
                steps: 32,
                early_termination: 1.1,
            },
        );
        let n_large = render_volume(
            &mut large,
            &cam(),
            &solid(),
            &tf,
            &VolumeStyle {
                steps: 128,
                early_termination: 1.1,
            },
        );
        assert!(n_large > n_small * 10, "{n_large} vs {n_small}");
    }

    #[test]
    fn early_termination_cuts_samples() {
        let tf = |v: f64| Rgba::new(1.0, 1.0, 1.0, v as f32); // opaque immediately
        let mut a = Framebuffer::new(32, 32);
        let mut b = Framebuffer::new(32, 32);
        let with = render_volume(
            &mut a,
            &cam(),
            &solid(),
            &tf,
            &VolumeStyle {
                steps: 256,
                early_termination: 0.95,
            },
        );
        let without = render_volume(
            &mut b,
            &cam(),
            &solid(),
            &tf,
            &VolumeStyle {
                steps: 256,
                early_termination: 1.1,
            },
        );
        assert!(with < without / 2, "{with} vs {without}");
    }

    #[test]
    fn deeper_volume_region_is_more_opaque() {
        // A ray through the box center is longer than one near the edge,
        // so the accumulated opacity is higher with a translucent TF.
        let mut fb = Framebuffer::new(128, 128);
        let tf = |v: f64| Rgba::new(1.0, 1.0, 1.0, (v * 0.3) as f32);
        let field = UniformBox {
            bounds: Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)),
            value: 1.0,
        };
        render_volume(
            &mut fb,
            &cam(),
            &field,
            &tf,
            &VolumeStyle {
                steps: 64,
                early_termination: 1.1,
            },
        );
        let center = fb.get(64, 64).a;
        // Pixel at the very edge of the projected box face.
        let edge = fb.get(64, 42).a;
        assert!(center >= edge, "center {center} vs edge {edge}");
        // Center chord spans one full reference length → alpha ≈ the TF's.
        assert!((center - 0.3).abs() < 0.05, "center alpha {center}");
    }

    #[test]
    fn accumulated_opacity_matches_beer_lambert() {
        // Analytic check: compositing N samples of constant per-step
        // alpha α (after the step-length correction) approximates the
        // continuous absorption 1 − (1 − a)^1 for a per-unit-ray alpha a.
        // With the opacity correction in render_volume, the result must
        // be independent of the step count.
        let field = solid();
        let a = 0.6f32;
        let tf = move |v: f64| Rgba::new(1.0, 1.0, 1.0, if v > 0.5 { a } else { 0.0 });
        let mut alphas = Vec::new();
        for steps in [16usize, 64, 256] {
            let mut fb = Framebuffer::new(33, 33);
            render_volume(
                &mut fb,
                &cam(),
                &field,
                &tf,
                &VolumeStyle {
                    steps,
                    early_termination: 1.1,
                },
            );
            alphas.push(fb.get(16, 16).a);
        }
        for w in alphas.windows(2) {
            assert!(
                (w[0] - w[1]).abs() < 0.02,
                "opacity must be step-count invariant: {alphas:?}"
            );
        }
        // And equal to the per-ray alpha itself (the ray crosses exactly
        // one unit of normalized depth).
        assert!(
            (alphas[2] - a).abs() < 0.05,
            "expected ≈{a}, got {}",
            alphas[2]
        );
    }

    #[test]
    fn rendering_is_deterministic() {
        let tf = |v: f64| Rgba::new(0.3, 0.7, 1.0, (v * 0.5) as f32);
        let mut a = Framebuffer::new(48, 48);
        let mut b = Framebuffer::new(48, 48);
        render_volume(&mut a, &cam(), &solid(), &tf, &VolumeStyle::default());
        render_volume(&mut b, &cam(), &solid(), &tf, &VolumeStyle::default());
        assert_eq!(a.mse(&b), 0.0);
    }
}
