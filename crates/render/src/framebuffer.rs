//! RGBA + depth framebuffer and image-difference metrics.

use accelviz_math::Rgba;

/// A software framebuffer: linear RGBA color plus a depth buffer.
///
/// Depth follows the OpenGL convention used by the rest of the pipeline:
/// values in [-1, 1] after projection, *smaller is closer*, initialized to
/// `f32::INFINITY`.
#[derive(Clone, Debug)]
pub struct Framebuffer {
    width: usize,
    height: usize,
    color: Vec<Rgba>,
    depth: Vec<f32>,
}

impl Framebuffer {
    /// A cleared framebuffer of the given size.
    pub fn new(width: usize, height: usize) -> Framebuffer {
        assert!(width > 0 && height > 0, "framebuffer must be non-empty");
        Framebuffer {
            width,
            height,
            color: vec![Rgba::TRANSPARENT; width * height],
            depth: vec![f32::INFINITY; width * height],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Clears color to `c` and depth to infinity.
    pub fn clear(&mut self, c: Rgba) {
        self.color.fill(c);
        self.depth.fill(f32::INFINITY);
    }

    #[inline]
    fn idx(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y * self.width + x
    }

    /// Color at a pixel.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Rgba {
        self.color[self.idx(x, y)]
    }

    /// Depth at a pixel.
    #[inline]
    pub fn get_depth(&self, x: usize, y: usize) -> f32 {
        self.depth[self.idx(x, y)]
    }

    /// Overwrites a pixel (no blending, no depth test).
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, c: Rgba) {
        let i = self.idx(x, y);
        self.color[i] = c;
    }

    /// Writes a fragment with depth test and source-over blending.
    /// `write_depth` false is used for translucent geometry.
    #[inline]
    pub fn blend_fragment(&mut self, x: usize, y: usize, z: f32, c: Rgba, write_depth: bool) {
        let i = self.idx(x, y);
        if z > self.depth[i] {
            return;
        }
        self.color[i] = c.over(self.color[i]);
        if write_depth && c.a > 0.999 {
            self.depth[i] = z;
        } else if write_depth {
            // Partial coverage still occludes in the hardware pipeline when
            // depth writes are on.
            self.depth[i] = z;
        }
    }

    /// Raw color pixels, row-major top row first.
    pub fn pixels(&self) -> &[Rgba] {
        &self.color
    }

    /// Mutable raw pixels (used by the parallel volume renderer, which
    /// owns disjoint rows).
    pub(crate) fn pixels_mut(&mut self) -> &mut [Rgba] {
        &mut self.color
    }

    /// Mean squared error against another framebuffer of the same size
    /// (per channel, including alpha).
    pub fn mse(&self, other: &Framebuffer) -> f64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "framebuffer sizes differ"
        );
        let mut sum = 0.0f64;
        for (a, b) in self.color.iter().zip(&other.color) {
            let dr = (a.r - b.r) as f64;
            let dg = (a.g - b.g) as f64;
            let db = (a.b - b.b) as f64;
            let da = (a.a - b.a) as f64;
            sum += dr * dr + dg * dg + db * db + da * da;
        }
        sum / (4.0 * self.color.len() as f64)
    }

    /// Number of pixels whose luminance exceeds `threshold` — the "how
    /// much structure is visible" metric used by the FIG1 detail
    /// comparison.
    pub fn lit_pixel_count(&self, threshold: f32) -> usize {
        self.color
            .iter()
            .filter(|c| c.luminance() * c.a > threshold)
            .count()
    }

    /// Luminance variance over a pixel rectangle — a contrast/detail proxy
    /// (more resolved stratification ⇒ higher variance). The rectangle is
    /// clamped to the framebuffer.
    pub fn region_luminance_variance(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> f64 {
        let x1 = x1.min(self.width);
        let y1 = y1.min(self.height);
        if x0 >= x1 || y0 >= y1 {
            return 0.0;
        }
        let mut stats = accelviz_math::OnlineStats::new();
        for y in y0..y1 {
            for x in x0..x1 {
                stats.push(self.get(x, y).luminance() as f64);
            }
        }
        stats.variance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_buffer_is_transparent_and_far() {
        let fb = Framebuffer::new(4, 3);
        assert_eq!(fb.width(), 4);
        assert_eq!(fb.height(), 3);
        assert_eq!(fb.get(0, 0), Rgba::TRANSPARENT);
        assert_eq!(fb.get_depth(3, 2), f32::INFINITY);
    }

    #[test]
    fn clear_resets_everything() {
        let mut fb = Framebuffer::new(2, 2);
        fb.blend_fragment(0, 0, 0.5, Rgba::WHITE, true);
        fb.clear(Rgba::BLACK);
        assert_eq!(fb.get(0, 0), Rgba::BLACK);
        assert_eq!(fb.get_depth(0, 0), f32::INFINITY);
    }

    #[test]
    fn depth_test_rejects_farther_fragments() {
        let mut fb = Framebuffer::new(2, 2);
        fb.blend_fragment(0, 0, 0.3, Rgba::rgb(1.0, 0.0, 0.0), true);
        fb.blend_fragment(0, 0, 0.7, Rgba::rgb(0.0, 1.0, 0.0), true);
        // The farther green fragment is rejected.
        assert!((fb.get(0, 0).r - 1.0).abs() < 1e-6);
        assert!((fb.get_depth(0, 0) - 0.3).abs() < 1e-6);
        // A closer fragment replaces it.
        fb.blend_fragment(0, 0, 0.1, Rgba::rgb(0.0, 0.0, 1.0), true);
        assert!((fb.get(0, 0).b - 1.0).abs() < 1e-6);
    }

    #[test]
    fn translucent_fragments_blend_without_depth_write() {
        let mut fb = Framebuffer::new(1, 1);
        fb.blend_fragment(0, 0, 0.5, Rgba::new(1.0, 0.0, 0.0, 0.5), false);
        assert_eq!(fb.get_depth(0, 0), f32::INFINITY);
        let c = fb.get(0, 0);
        assert!(c.a > 0.49 && c.a < 0.51);
    }

    #[test]
    fn mse_of_identical_buffers_is_zero() {
        let mut a = Framebuffer::new(8, 8);
        a.clear(Rgba::grey(0.3));
        let b = a.clone();
        assert_eq!(a.mse(&b), 0.0);
        let mut c = Framebuffer::new(8, 8);
        c.clear(Rgba::grey(0.8));
        assert!(a.mse(&c) > 0.0);
    }

    #[test]
    fn lit_pixel_count() {
        let mut fb = Framebuffer::new(4, 1);
        fb.set(0, 0, Rgba::WHITE);
        fb.set(1, 0, Rgba::grey(0.05));
        assert_eq!(fb.lit_pixel_count(0.1), 1);
        assert_eq!(fb.lit_pixel_count(0.0), 2);
    }

    #[test]
    fn region_variance_detects_structure() {
        let mut flat = Framebuffer::new(8, 8);
        flat.clear(Rgba::grey(0.5));
        assert_eq!(flat.region_luminance_variance(0, 0, 8, 8), 0.0);
        let mut striped = Framebuffer::new(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                striped.set(x, y, if y % 2 == 0 { Rgba::WHITE } else { Rgba::BLACK });
            }
        }
        assert!(striped.region_luminance_variance(0, 0, 8, 8) > 0.2);
        // Degenerate rectangle.
        assert_eq!(striped.region_luminance_variance(5, 5, 5, 9), 0.0);
    }

    #[test]
    #[should_panic]
    fn mse_size_mismatch_panics() {
        let a = Framebuffer::new(2, 2);
        let b = Framebuffer::new(3, 2);
        let _ = a.mse(&b);
    }
}
