//! 2-D textures and the procedural texture generators used by the
//! self-orienting surfaces: the tube bump map (cross-section normals), the
//! halo map (dark rims), and the line-density ribbon textures of the
//! paper's Figure 6(e).

use accelviz_math::Rgba;

/// A 2-D RGBA texture with bilinear sampling and repeat wrapping in u,
/// clamp in v (strips repeat along their length, never across).
#[derive(Clone, Debug)]
pub struct Texture2 {
    width: usize,
    height: usize,
    data: Vec<Rgba>,
}

impl Texture2 {
    /// Texture from raw pixels (row-major, `width * height` entries).
    pub fn new(width: usize, height: usize, data: Vec<Rgba>) -> Texture2 {
        assert!(width > 0 && height > 0, "texture must be non-empty");
        assert_eq!(data.len(), width * height, "pixel count mismatch");
        Texture2 {
            width,
            height,
            data,
        }
    }

    /// Procedural texture from a function of (u, v) ∈ [0,1)².
    pub fn from_fn(width: usize, height: usize, f: impl Fn(f64, f64) -> Rgba) -> Texture2 {
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                let u = (x as f64 + 0.5) / width as f64;
                let v = (y as f64 + 0.5) / height as f64;
                data.push(f(u, v));
            }
        }
        Texture2::new(width, height, data)
    }

    /// Width in texels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in texels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Texture size in bytes (RGBA8 on the modeled hardware).
    pub fn bytes(&self) -> u64 {
        (self.width * self.height * 4) as u64
    }

    #[inline]
    fn texel(&self, x: usize, y: usize) -> Rgba {
        self.data[y.min(self.height - 1) * self.width + x.min(self.width - 1)]
    }

    /// Bilinear sample; u wraps (repeat), v clamps.
    pub fn sample(&self, u: f64, v: f64) -> Rgba {
        let u = u.rem_euclid(1.0);
        let v = v.clamp(0.0, 1.0);
        let fx = (u * self.width as f64 - 0.5).rem_euclid(self.width as f64);
        let fy = (v * self.height as f64 - 0.5).clamp(0.0, (self.height - 1) as f64);
        let x0 = fx.floor() as usize % self.width;
        let x1 = (x0 + 1) % self.width;
        let y0 = fy.floor() as usize;
        let y1 = (y0 + 1).min(self.height - 1);
        let tx = (fx - fx.floor()) as f32;
        let ty = (fy - fy.floor()) as f32;
        let top = self.texel(x0, y0).lerp(self.texel(x1, y0), tx);
        let bot = self.texel(x0, y1).lerp(self.texel(x1, y1), tx);
        top.lerp(bot, ty)
    }
}

/// The tube cross-section *bump map*: encodes, across the strip (v ∈
/// \[0,1\]), the surface normal a polygonal tube would have at that point of
/// its silhouette. Channels: r = n_side (−1..1 mapped to 0..1), g =
/// n_toward_viewer (0..1), b unused, a = coverage (0 outside the circular
/// silhouette).
///
/// This is the texture that lets a flat, view-facing strip "effectively
/// capture the same surface normal vectors that a polygonal tube would
/// have, so for self-orienting surfaces the lighting appears exact"
/// (§3.3.2).
pub fn tube_bump_map(resolution: usize) -> Texture2 {
    Texture2::from_fn(1, resolution.max(2), |_, v| {
        // s spans the cross-section in [-1, 1].
        let s = v * 2.0 - 1.0;
        let s2 = s * s;
        if s2 > 1.0 {
            return Rgba::new(0.5, 0.0, 0.0, 0.0);
        }
        let nz = (1.0 - s2).sqrt();
        Rgba::new(((s + 1.0) / 2.0) as f32, nz as f32, 0.0, 1.0)
    })
}

/// The halo map: opacity profile across the strip that renders an opaque
/// core with dark borders, clarifying "the spatial relationships between
/// overlapping lines" (§3.3.2). `halo_fraction` is the fraction of the
/// half-width occupied by the black rim.
pub fn halo_map(resolution: usize, halo_fraction: f64) -> Texture2 {
    let hf = halo_fraction.clamp(0.0, 0.9);
    Texture2::from_fn(1, resolution.max(2), |_, v| {
        let s = (v * 2.0 - 1.0).abs();
        if s > 1.0 {
            Rgba::TRANSPARENT
        } else if s > 1.0 - hf {
            // The rim: opaque black halo.
            Rgba::new(0.0, 0.0, 0.0, 1.0)
        } else {
            Rgba::new(1.0, 1.0, 1.0, 1.0)
        }
    })
}

/// Line-density ribbon texture (Figure 6(e)): `lines` dark strands across
/// the ribbon width, with spacing modulating perceived field density.
pub fn ribbon_density_map(resolution: usize, lines: usize) -> Texture2 {
    let lines = lines.max(1);
    Texture2::from_fn(1, resolution.max(4), |_, v| {
        let phase = (v * lines as f64).fract();
        if phase < 0.4 {
            Rgba::new(1.0, 1.0, 1.0, 1.0)
        } else {
            Rgba::new(0.0, 0.0, 0.0, 0.0)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_sample_roundtrip() {
        let t = Texture2::from_fn(4, 4, |u, v| Rgba::new(u as f32, v as f32, 0.0, 1.0));
        // Sampling at texel centers reproduces the function.
        let c = t.sample(0.125, 0.125);
        assert!((c.r - 0.125).abs() < 1e-6);
        assert!((c.g - 0.125).abs() < 1e-6);
    }

    #[test]
    fn u_wraps_v_clamps() {
        let t = Texture2::from_fn(4, 4, |u, v| Rgba::new(u as f32, v as f32, 0.0, 1.0));
        let wrapped = t.sample(1.125, 0.5);
        let direct = t.sample(0.125, 0.5);
        assert!((wrapped.r - direct.r).abs() < 1e-6);
        let clamped = t.sample(0.5, 5.0);
        let edge = t.sample(0.5, 1.0);
        assert!((clamped.g - edge.g).abs() < 1e-6);
    }

    #[test]
    fn tube_bump_normals_are_unit_and_cover_silhouette() {
        let t = tube_bump_map(64);
        // Center of the strip: normal points straight at the viewer.
        let c = t.sample(0.0, 0.5);
        assert!(c.g > 0.98, "center normal ≈ (0, 1): {c:?}");
        assert!(c.a > 0.99);
        // Normals decode to (approximately) unit length across the strip.
        for i in 1..16 {
            let v = i as f64 / 16.0;
            let s = t.sample(0.0, v);
            if s.a > 0.5 {
                let nx = s.r as f64 * 2.0 - 1.0;
                let nz = s.g as f64;
                let len = (nx * nx + nz * nz).sqrt();
                assert!((len - 1.0).abs() < 0.1, "v={v}: |n|={len}");
            }
        }
    }

    #[test]
    fn halo_map_is_dark_at_rims_bright_in_core() {
        let t = halo_map(64, 0.3);
        assert!(t.sample(0.0, 0.5).luminance() > 0.9, "core is bright");
        assert!(t.sample(0.0, 0.02).luminance() < 0.1, "rim is dark");
        assert!(t.sample(0.0, 0.98).luminance() < 0.1, "rim is dark");
        // Rim is still opaque (it occludes; that's what a halo does).
        assert!(t.sample(0.0, 0.02).a > 0.9);
    }

    #[test]
    fn ribbon_density_has_requested_strand_count() {
        let t = ribbon_density_map(256, 4);
        // Count bright→dark transitions scanning across v.
        let mut transitions = 0;
        let mut last_bright = t.sample(0.0, 0.0).a > 0.5;
        for i in 1..256 {
            let bright = t.sample(0.0, i as f64 / 256.0).a > 0.5;
            if bright != last_bright {
                transitions += 1;
            }
            last_bright = bright;
        }
        // 4 strands → 8 edges (±1 for the clamped ends).
        assert!(
            (7..=9).contains(&transitions),
            "transitions = {transitions}"
        );
    }

    #[test]
    fn bytes_accounting() {
        assert_eq!(
            Texture2::from_fn(8, 4, |_, _| Rgba::BLACK).bytes(),
            8 * 4 * 4
        );
    }

    #[test]
    #[should_panic]
    fn mismatched_data_panics() {
        let _ = Texture2::new(2, 2, vec![Rgba::BLACK; 3]);
    }
}
