//! Perspective camera and the world → pixel transform pipeline.

use accelviz_math::{Mat4, Vec3};

/// A right-handed perspective camera.
#[derive(Clone, Copy, Debug)]
pub struct Camera {
    /// Eye position.
    pub eye: Vec3,
    /// Look-at target.
    pub target: Vec3,
    /// Approximate up direction.
    pub up: Vec3,
    /// Vertical field of view, radians.
    pub fovy: f64,
    /// Aspect ratio width/height.
    pub aspect: f64,
    /// Near plane distance (> 0).
    pub near: f64,
    /// Far plane distance (> near).
    pub far: f64,
}

impl Camera {
    /// A camera looking at `target` from `eye`.
    pub fn look_at(eye: Vec3, target: Vec3, aspect: f64) -> Camera {
        Camera {
            eye,
            target,
            up: Vec3::UNIT_Y,
            fovy: std::f64::consts::FRAC_PI_3,
            aspect,
            near: 1e-3,
            far: 1e3,
        }
    }

    /// A camera orbiting `center` at `distance`, azimuth `theta` (radians,
    /// around +y) and elevation `phi` — the interactive trackball pose of
    /// the paper's viewer.
    pub fn orbit(center: Vec3, distance: f64, theta: f64, phi: f64, aspect: f64) -> Camera {
        let eye = center
            + Vec3::new(
                distance * phi.cos() * theta.sin(),
                distance * phi.sin(),
                distance * phi.cos() * theta.cos(),
            );
        let mut c = Camera::look_at(eye, center, aspect);
        c.near = distance * 1e-3;
        c.far = distance * 1e3;
        c
    }

    /// The view matrix.
    pub fn view(&self) -> Mat4 {
        Mat4::look_at(self.eye, self.target, self.up)
    }

    /// The projection matrix.
    pub fn projection(&self) -> Mat4 {
        Mat4::perspective(self.fovy, self.aspect, self.near, self.far)
    }

    /// The combined view-projection matrix.
    pub fn view_projection(&self) -> Mat4 {
        self.projection() * self.view()
    }

    /// Unit view direction (eye toward target).
    pub fn forward(&self) -> Vec3 {
        (self.target - self.eye).normalized_or(-Vec3::UNIT_Z)
    }

    /// Projects a world point to pixel coordinates + NDC depth for a
    /// `width`×`height` viewport. Returns `None` for points behind the
    /// near plane or at infinity.
    pub fn project_to_pixel(
        &self,
        p: Vec3,
        width: usize,
        height: usize,
    ) -> Option<(f64, f64, f64)> {
        let clip = self
            .view_projection()
            .mul_vec4(accelviz_math::Vec4::from_point(p));
        if clip.w <= 0.0 {
            return None; // behind the eye
        }
        let ndc = clip.project()?;
        let x = (ndc.x * 0.5 + 0.5) * width as f64;
        let y = (1.0 - (ndc.y * 0.5 + 0.5)) * height as f64;
        Some((x, y, ndc.z))
    }

    /// The approximate projected size in pixels of a world-space length
    /// `world_len` at distance `dist` from the eye — used for perspective
    /// point sizes and strip widths ("perspective widening ... a
    /// significant depth cue", §3.3.2).
    pub fn pixels_per_world_unit(&self, dist: f64, height: usize) -> f64 {
        let view_height = 2.0 * dist.max(self.near) * (self.fovy / 2.0).tan();
        height as f64 / view_height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> Camera {
        Camera::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 1.0)
    }

    #[test]
    fn target_projects_to_viewport_center() {
        let (x, y, z) = cam().project_to_pixel(Vec3::ZERO, 200, 100).unwrap();
        assert!((x - 100.0).abs() < 1e-9);
        assert!((y - 50.0).abs() < 1e-9);
        assert!(z > -1.0 && z < 1.0);
    }

    #[test]
    fn points_behind_eye_are_rejected() {
        assert!(cam()
            .project_to_pixel(Vec3::new(0.0, 0.0, 10.0), 100, 100)
            .is_none());
    }

    #[test]
    fn right_is_right_up_is_up() {
        let c = cam();
        let (xr, _, _) = c
            .project_to_pixel(Vec3::new(1.0, 0.0, 0.0), 100, 100)
            .unwrap();
        let (_, yu, _) = c
            .project_to_pixel(Vec3::new(0.0, 1.0, 0.0), 100, 100)
            .unwrap();
        assert!(xr > 50.0, "world +x must land right of center");
        assert!(yu < 50.0, "world +y must land above center (row 0 is top)");
    }

    #[test]
    fn nearer_points_have_smaller_depth() {
        let c = cam();
        let (_, _, z_near) = c
            .project_to_pixel(Vec3::new(0.0, 0.0, 2.0), 100, 100)
            .unwrap();
        let (_, _, z_far) = c
            .project_to_pixel(Vec3::new(0.0, 0.0, -2.0), 100, 100)
            .unwrap();
        assert!(z_near < z_far);
    }

    #[test]
    fn orbit_looks_at_center() {
        let c = Camera::orbit(Vec3::new(1.0, 2.0, 3.0), 10.0, 0.7, 0.3, 1.5);
        assert!((c.eye.distance(Vec3::new(1.0, 2.0, 3.0)) - 10.0).abs() < 1e-9);
        assert_eq!(c.target, Vec3::new(1.0, 2.0, 3.0));
        let (x, y, _) = c.project_to_pixel(c.target, 100, 100).unwrap();
        assert!((x - 50.0).abs() < 1e-6 && (y - 50.0).abs() < 1e-6);
    }

    #[test]
    fn perspective_widening() {
        let c = cam();
        // Twice as far → half as many pixels per world unit.
        let near = c.pixels_per_world_unit(2.0, 100);
        let far = c.pixels_per_world_unit(4.0, 100);
        assert!((near / far - 2.0).abs() < 1e-9);
    }
}
