//! Back-to-front sorted compositing for translucent geometry (§3.3.3).
//!
//! "Transparency in complex scenes requires back-to-front compositing for
//! a correct image." The paper notes depth sorting is impractical for very
//! large data and that the GeForce 3's order-independent transparency
//! "would require disabling bump mapping and finer tessellation" — so the
//! transparent path here, like the paper's, draws *flat-shaded* (no bump
//! map) triangles sorted by view depth.

use crate::camera::Camera;
use crate::framebuffer::Framebuffer;
use crate::rasterizer::{draw_triangle, RasterOptions, Vertex};

/// A queue of translucent triangles, flushed in back-to-front order.
#[derive(Default)]
pub struct TransparentQueue {
    tris: Vec<(f64, [Vertex; 3])>,
}

impl TransparentQueue {
    /// Empty queue.
    pub fn new() -> TransparentQueue {
        TransparentQueue { tris: Vec::new() }
    }

    /// Number of queued triangles.
    pub fn len(&self) -> usize {
        self.tris.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.tris.is_empty()
    }

    /// Queues a triangle; its sort key is the view-space distance of its
    /// centroid from the camera eye.
    pub fn push(&mut self, camera: &Camera, tri: [Vertex; 3]) {
        let centroid = (tri[0].pos + tri[1].pos + tri[2].pos) / 3.0;
        let depth = centroid.distance(camera.eye);
        self.tris.push((depth, tri));
    }

    /// Queues every triangle of a triangle strip.
    pub fn push_strip(&mut self, camera: &Camera, verts: &[Vertex]) {
        if verts.len() < 3 {
            return;
        }
        for i in 0..verts.len() - 2 {
            self.push(camera, [verts[i], verts[i + 1], verts[i + 2]]);
        }
    }

    /// Sorts back-to-front and draws everything with blending, no depth
    /// writes (opaque geometry drawn earlier still occludes via the depth
    /// test). Returns the number of fragments blended. The queue is left
    /// empty.
    pub fn flush(&mut self, fb: &mut Framebuffer, camera: &Camera) -> usize {
        self.tris
            .sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut frags = 0;
        let opts = RasterOptions { write_depth: false };
        let shader = |_u: f64, _v: f64, c: accelviz_math::Rgba| Some(c);
        for (_, tri) in self.tris.drain(..) {
            frags += draw_triangle(fb, camera, &tri, &shader, opts);
        }
        frags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_math::{Rgba, Vec3};

    fn cam() -> Camera {
        Camera::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 1.0)
    }

    fn tri_at(z: f64, color: Rgba) -> [Vertex; 3] {
        [
            Vertex::colored(Vec3::new(-1.0, -1.0, z), color),
            Vertex::colored(Vec3::new(1.0, -1.0, z), color),
            Vertex::colored(Vec3::new(0.0, 1.5, z), color),
        ]
    }

    #[test]
    fn flush_order_is_independent_of_push_order() {
        let c = cam();
        let near = tri_at(1.0, Rgba::new(1.0, 0.0, 0.0, 0.5));
        let far = tri_at(-1.0, Rgba::new(0.0, 0.0, 1.0, 0.5));

        let mut fb1 = Framebuffer::new(64, 64);
        let mut q = TransparentQueue::new();
        q.push(&c, near);
        q.push(&c, far);
        q.flush(&mut fb1, &c);

        let mut fb2 = Framebuffer::new(64, 64);
        let mut q = TransparentQueue::new();
        q.push(&c, far);
        q.push(&c, near);
        q.flush(&mut fb2, &c);

        assert_eq!(
            fb1.mse(&fb2),
            0.0,
            "sorted compositing must be order independent"
        );
        // And the result is the correct near-over-far blend: red over blue.
        let px = fb1.get(32, 32);
        assert!(px.r > px.b, "near red layer dominates: {px:?}");
    }

    #[test]
    fn flush_empties_the_queue() {
        let c = cam();
        let mut q = TransparentQueue::new();
        q.push(&c, tri_at(0.0, Rgba::new(1.0, 1.0, 1.0, 0.5)));
        assert_eq!(q.len(), 1);
        let mut fb = Framebuffer::new(32, 32);
        let frags = q.flush(&mut fb, &c);
        assert!(frags > 0);
        assert!(q.is_empty());
    }

    #[test]
    fn push_strip_enqueues_n_minus_2() {
        let c = cam();
        let verts: Vec<Vertex> = (0..5)
            .map(|i| Vertex::colored(Vec3::new(i as f64, 0.0, 0.0), Rgba::WHITE))
            .collect();
        let mut q = TransparentQueue::new();
        q.push_strip(&c, &verts);
        assert_eq!(q.len(), 3);
        q.push_strip(&c, &verts[..2]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn transparent_geometry_respects_opaque_depth() {
        let c = cam();
        let mut fb = Framebuffer::new(64, 64);
        // Opaque near triangle writes depth.
        let opaque = tri_at(2.0, Rgba::rgb(0.0, 1.0, 0.0));
        crate::rasterizer::draw_triangle(
            &mut fb,
            &c,
            &opaque,
            &crate::rasterizer::flat_shader,
            RasterOptions::default(),
        );
        // Translucent triangle *behind* it must be fully occluded.
        let mut q = TransparentQueue::new();
        q.push(&c, tri_at(-2.0, Rgba::new(1.0, 0.0, 0.0, 0.8)));
        q.flush(&mut fb, &c);
        let px = fb.get(32, 32);
        assert!(
            px.g > 0.9 && px.r < 0.05,
            "occluded translucent must not bleed: {px:?}"
        );
    }
}
