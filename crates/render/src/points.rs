//! Point splatting — the point-rendering half of the hybrid method (§2.4).
//!
//! The point transfer function "maps density to number of points rendered
//! ... When the transfer function's value is at 0.75 for some density, it
//! means that three out of every four points are drawn for areas of that
//! density." The fraction is honored here by a deterministic per-index
//! hash, so exactly the same subset is drawn every frame (no shimmer).

use crate::camera::Camera;
use crate::framebuffer::Framebuffer;
use accelviz_math::{Rgba, Vec3};

/// Point rendering style.
#[derive(Clone, Copy, Debug)]
pub struct PointStyle {
    /// Base color of the points.
    pub color: Rgba,
    /// Splat radius in pixels at the reference distance (scaled by
    /// perspective when `perspective_size` is set).
    pub size_px: f64,
    /// When set, the splat size follows perspective: this is the
    /// world-space point radius instead of a fixed pixel size.
    pub perspective_size: Option<f64>,
    /// Fraction of points drawn, in [0, 1].
    pub fraction: f64,
    /// Write the depth buffer (points in the paper's viewer are drawn
    /// opaque in Figure 4; translucent points skip depth writes).
    pub write_depth: bool,
}

impl Default for PointStyle {
    fn default() -> PointStyle {
        PointStyle {
            color: Rgba::new(1.0, 0.9, 0.6, 0.8),
            size_px: 1.0,
            perspective_size: None,
            fraction: 1.0,
            write_depth: false,
        }
    }
}

/// Deterministic per-index uniform in [0, 1) (splitmix64 finalizer).
#[inline]
pub fn hash_unit(i: u64) -> f64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// `true` when point `i` is kept at draw fraction `fraction`.
#[inline]
pub fn keep_point(i: u64, fraction: f64) -> bool {
    hash_unit(i) < fraction
}

/// Splats a set of world-space points. Returns the number of points
/// actually drawn (post-subsampling and culling).
pub fn splat_points(
    fb: &mut Framebuffer,
    camera: &Camera,
    points: &[Vec3],
    style: &PointStyle,
) -> usize {
    let (w, h) = (fb.width(), fb.height());
    let mut drawn = 0usize;
    for (i, &p) in points.iter().enumerate() {
        if style.fraction < 1.0 && !keep_point(i as u64, style.fraction) {
            continue;
        }
        let Some((px, py, z)) = camera.project_to_pixel(p, w, h) else {
            continue;
        };
        if !(-1.0..=1.0).contains(&z) {
            continue;
        }
        let radius = match style.perspective_size {
            Some(world_r) => {
                let dist = p.distance(camera.eye);
                (world_r * camera.pixels_per_world_unit(dist, h)).clamp(0.5, 64.0)
            }
            None => style.size_px,
        };
        splat_one(fb, px, py, z as f32, radius, style);
        drawn += 1;
    }
    drawn
}

fn splat_one(fb: &mut Framebuffer, px: f64, py: f64, z: f32, radius: f64, style: &PointStyle) {
    let r = radius.max(0.5);
    let x0 = (px - r).floor().max(0.0) as usize;
    let y0 = (py - r).floor().max(0.0) as usize;
    let x1 = ((px + r).ceil() as isize).min(fb.width() as isize - 1);
    let y1 = ((py + r).ceil() as isize).min(fb.height() as isize - 1);
    if x1 < x0 as isize || y1 < y0 as isize {
        return;
    }
    for y in y0..=(y1 as usize) {
        for x in x0..=(x1 as usize) {
            let dx = x as f64 + 0.5 - px;
            let dy = y as f64 + 0.5 - py;
            let d2 = (dx * dx + dy * dy) / (r * r);
            if d2 > 1.0 {
                continue;
            }
            // Smooth radial falloff keeps single-pixel points visible and
            // larger splats round.
            let falloff = (1.0 - d2).sqrt() as f32;
            let c = style.color.with_alpha(style.color.a * falloff);
            fb.blend_fragment(x, y, z, c, style.write_depth);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> Camera {
        Camera::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 1.0)
    }

    #[test]
    fn single_point_lights_center() {
        let mut fb = Framebuffer::new(65, 65);
        let style = PointStyle {
            color: Rgba::WHITE,
            size_px: 2.0,
            ..Default::default()
        };
        let n = splat_points(&mut fb, &cam(), &[Vec3::ZERO], &style);
        assert_eq!(n, 1);
        assert!(fb.get(32, 32).luminance() > 0.5);
    }

    #[test]
    fn points_behind_camera_are_culled() {
        let mut fb = Framebuffer::new(32, 32);
        let n = splat_points(
            &mut fb,
            &cam(),
            &[Vec3::new(0.0, 0.0, 20.0)],
            &PointStyle::default(),
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn fraction_draws_the_right_share() {
        let mut fb = Framebuffer::new(64, 64);
        let pts: Vec<Vec3> = (0..10_000)
            .map(|i| {
                Vec3::new(
                    (i % 100) as f64 * 0.01 - 0.5,
                    (i / 100) as f64 * 0.01 - 0.5,
                    0.0,
                )
            })
            .collect();
        for fraction in [0.25, 0.5, 0.75] {
            let style = PointStyle {
                fraction,
                ..Default::default()
            };
            let n = splat_points(&mut fb, &cam(), &pts, &style);
            let expect = fraction * pts.len() as f64;
            assert!(
                (n as f64 - expect).abs() < 0.05 * pts.len() as f64,
                "fraction {fraction}: drew {n}, expected ≈{expect}"
            );
        }
    }

    #[test]
    fn subsampling_is_deterministic() {
        let kept: Vec<bool> = (0..1000).map(|i| keep_point(i, 0.5)).collect();
        let again: Vec<bool> = (0..1000).map(|i| keep_point(i, 0.5)).collect();
        assert_eq!(kept, again);
        // Monotone in fraction: a point kept at 0.3 is kept at 0.6.
        for i in 0..1000u64 {
            if keep_point(i, 0.3) {
                assert!(keep_point(i, 0.6));
            }
        }
    }

    #[test]
    fn perspective_size_shrinks_with_distance() {
        let c = cam();
        let mut fb_near = Framebuffer::new(65, 65);
        let mut fb_far = Framebuffer::new(65, 65);
        let style = PointStyle {
            color: Rgba::WHITE,
            perspective_size: Some(0.1),
            write_depth: false,
            ..Default::default()
        };
        splat_points(&mut fb_near, &c, &[Vec3::new(0.0, 0.0, 2.0)], &style);
        splat_points(&mut fb_far, &c, &[Vec3::new(0.0, 0.0, -4.0)], &style);
        let lit_near = fb_near.lit_pixel_count(0.01);
        let lit_far = fb_far.lit_pixel_count(0.01);
        assert!(
            lit_near > lit_far,
            "near splat must cover more pixels ({lit_near} vs {lit_far})"
        );
    }

    #[test]
    fn opaque_points_respect_depth() {
        let mut fb = Framebuffer::new(65, 65);
        let c = cam();
        let mut front = PointStyle {
            color: Rgba::rgb(1.0, 0.0, 0.0),
            size_px: 3.0,
            ..Default::default()
        };
        front.write_depth = true;
        front.color = front.color.with_alpha(1.0);
        splat_points(&mut fb, &c, &[Vec3::new(0.0, 0.0, 1.0)], &front);
        let mut back = front;
        back.color = Rgba::rgb(0.0, 1.0, 0.0).with_alpha(1.0);
        splat_points(&mut fb, &c, &[Vec3::new(0.0, 0.0, -1.0)], &back);
        assert!(
            fb.get(32, 32).r > 0.9,
            "front point must occlude back point"
        );
    }

    #[test]
    fn hash_unit_is_uniform_ish() {
        let mean: f64 = (0..10_000).map(hash_unit).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
