//! Deterministic software renderer — the stand-in for the "new generation
//! of commodity graphics cards like the nVidia GeForce series" the paper
//! exploits.
//!
//! Every hardware feature the paper relies on has a software equivalent
//! here, so both sides of each comparison (volume vs hybrid, streamtubes
//! vs self-orienting surfaces) run on the same substrate and their cost
//! *ratios* are meaningful:
//!
//! - [`framebuffer`] — RGBA + depth buffers, image-difference metrics.
//! - [`camera`] — perspective camera and the world → pixel pipeline.
//! - [`rasterizer`] — z-buffered, perspective-correct triangle and
//!   triangle-strip rasterization (the fixed-function geometry path).
//! - [`volume`] — ray-cast volume rendering through a scalar field with a
//!   transfer function (the 3-D-texture volume rendering path).
//! - [`points`] — point splatting with transfer-function-driven
//!   subsampling (the point-rendering path of the hybrid method).
//! - [`texture`] — 2-D textures incl. the tube bump-map and halo maps of
//!   the self-orienting surfaces.
//! - [`shading`] — Phong/headlight shading and the bump-mapped tube
//!   cross-section model.
//! - [`transparency`] — back-to-front sorted compositing for translucent
//!   geometry (§3.3.3).
//! - [`texmem`] — a texture-memory budget model (resident textures,
//!   upload costs) backing the viewer's "already in video memory" path.
//! - [`image`] — PPM output for the examples.

pub mod camera;
pub mod displaylist;
pub mod framebuffer;
pub mod image;
pub mod points;
pub mod rasterizer;
pub mod shading;
pub mod texmem;
pub mod texture;
pub mod trackball;
pub mod transparency;
pub mod volume;

pub use camera::Camera;
pub use displaylist::DisplayList;
pub use framebuffer::Framebuffer;
pub use points::{splat_points, PointStyle};
pub use rasterizer::{draw_triangle, draw_triangle_strip, Vertex};
pub use texmem::TextureMemory;
pub use texture::Texture2;
pub use trackball::Trackball;
pub use transparency::TransparentQueue;
pub use volume::{render_volume, ScalarField3, VolumeStyle};
