//! Phong/headlight shading and the bump-mapped tube cross-section model.
//!
//! The paper's §3.3.2 analysis: with a headlight (light at the eye), a
//! tube's cross-section shows diffuse + specular peaks in the middle —
//! "because that is where surface normal, viewing, and light vectors all
//! align" — and darkness at the silhouette edges "because the surface
//! normal is orthogonal to the viewing and lighting vectors". The bump map
//! gives a flat strip exactly this profile.

use crate::texture::Texture2;
use accelviz_math::Rgba;

/// Phong material parameters.
#[derive(Clone, Copy, Debug)]
pub struct Material {
    /// Ambient reflectance.
    pub ambient: f32,
    /// Diffuse reflectance.
    pub diffuse: f32,
    /// Specular reflectance.
    pub specular: f32,
    /// Specular exponent.
    pub shininess: f32,
}

impl Default for Material {
    fn default() -> Material {
        Material {
            ambient: 0.08,
            diffuse: 0.8,
            specular: 0.35,
            shininess: 24.0,
        }
    }
}

/// Headlight Phong shading given `cos θ` between the surface normal and
/// the view/light direction (they coincide for a headlight). Returns the
/// scalar intensity multiplying the base color, plus the additive specular
/// term as the second component.
pub fn headlight_phong(material: &Material, cos_theta: f32) -> (f32, f32) {
    let c = cos_theta.max(0.0);
    // For a headlight, the half-vector equals the view vector, so the
    // specular lobe is cᵏ.
    let spec = material.specular * c.powf(material.shininess);
    (material.ambient + material.diffuse * c, spec)
}

/// Shades one fragment of a self-orienting surface: fetches the tube
/// normal from the bump map at cross-strip coordinate `v`, applies
/// headlight Phong, and multiplies by the base color. Returns `None` for
/// fragments outside the tube silhouette (zero coverage).
pub fn shade_tube_fragment(
    bump: &Texture2,
    material: &Material,
    base: Rgba,
    v: f64,
) -> Option<Rgba> {
    let s = bump.sample(0.0, v);
    if s.a < 0.5 {
        return None;
    }
    // The green channel stores n·view for the headlight setup.
    let cos_theta = s.g;
    let (scale, spec) = headlight_phong(material, cos_theta);
    Some(
        Rgba::new(
            base.r * scale + spec,
            base.g * scale + spec,
            base.b * scale + spec,
            base.a,
        )
        .clamped(),
    )
}

/// The "enhanced lighting" variant (§3.3.1, Figure 6(f)): adds a second,
/// offset virtual light so thin strips vary across their width even at
/// grazing angles, improving the interpretation of "similarly oriented
/// adjacent or overlapping lines". The enhancement is a pure function of
/// the same bump normal, so — as the paper notes — it "carries no
/// significant performance penalty over a single light source".
pub fn shade_tube_fragment_enhanced(
    bump: &Texture2,
    material: &Material,
    base: Rgba,
    v: f64,
) -> Option<Rgba> {
    let s = bump.sample(0.0, v);
    if s.a < 0.5 {
        return None;
    }
    let nx = s.r * 2.0 - 1.0;
    let nz = s.g;
    // Headlight term.
    let (scale, spec) = headlight_phong(material, nz);
    // Offset light at ~45° to the side: direction (sin45, cos45) in the
    // cross-section plane.
    let side = ((nx + nz) * std::f32::consts::FRAC_1_SQRT_2).max(0.0);
    let side_diffuse = 0.35 * material.diffuse * side;
    Some(
        Rgba::new(
            base.r * (scale + side_diffuse) + spec,
            base.g * (scale + side_diffuse) + spec,
            base.b * (scale + side_diffuse) + spec,
            base.a,
        )
        .clamped(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::texture::tube_bump_map;

    #[test]
    fn phong_peaks_head_on_dark_at_grazing() {
        let m = Material::default();
        let (head, spec_head) = headlight_phong(&m, 1.0);
        let (graze, spec_graze) = headlight_phong(&m, 0.0);
        assert!(head > graze);
        assert!(spec_head > spec_graze);
        assert!(
            (graze - m.ambient).abs() < 1e-6,
            "grazing leaves only ambient"
        );
        // Negative cosines clamp to ambient.
        let (back, _) = headlight_phong(&m, -0.5);
        assert!((back - m.ambient).abs() < 1e-6);
    }

    #[test]
    fn tube_fragment_is_brightest_at_center() {
        let bump = tube_bump_map(128);
        let m = Material::default();
        let base = Rgba::rgb(0.2, 0.4, 1.0);
        let center = shade_tube_fragment(&bump, &m, base, 0.5).unwrap();
        let near_edge = shade_tube_fragment(&bump, &m, base, 0.06).unwrap();
        assert!(
            center.luminance() > near_edge.luminance(),
            "center {} vs edge {}",
            center.luminance(),
            near_edge.luminance()
        );
    }

    #[test]
    fn fragments_outside_silhouette_are_discarded() {
        let m = Material::default();
        // v slightly outside [0,1] clamps to the rim, which still has
        // coverage; the bump map's alpha==0 region is only produced for
        // s² > 1, which from_fn never hits at texel centers — so emulate
        // with a custom map.
        let custom = Texture2::from_fn(1, 8, |_, v| {
            if v < 0.5 {
                Rgba::new(0.5, 1.0, 0.0, 0.0)
            } else {
                Rgba::new(0.5, 1.0, 0.0, 1.0)
            }
        });
        assert!(shade_tube_fragment(&custom, &m, Rgba::WHITE, 0.1).is_none());
        assert!(shade_tube_fragment(&custom, &m, Rgba::WHITE, 0.9).is_some());
    }

    #[test]
    fn enhanced_lighting_breaks_left_right_symmetry() {
        let bump = tube_bump_map(128);
        let m = Material::default();
        let base = Rgba::rgb(0.5, 0.5, 0.5);
        let left = shade_tube_fragment_enhanced(&bump, &m, base, 0.25).unwrap();
        let right = shade_tube_fragment_enhanced(&bump, &m, base, 0.75).unwrap();
        // The plain headlight is symmetric; the enhancement is not.
        let pl = shade_tube_fragment(&bump, &m, base, 0.25).unwrap();
        let pr = shade_tube_fragment(&bump, &m, base, 0.75).unwrap();
        assert!((pl.luminance() - pr.luminance()).abs() < 1e-3);
        assert!((left.luminance() - right.luminance()).abs() > 1e-3);
    }

    #[test]
    fn shading_preserves_alpha() {
        let bump = tube_bump_map(64);
        let m = Material::default();
        let out = shade_tube_fragment(&bump, &m, Rgba::new(1.0, 0.0, 0.0, 0.4), 0.5).unwrap();
        assert!((out.a - 0.4).abs() < 1e-6);
    }
}
