//! Octree node storage.

use accelviz_math::Aabb;

/// Sentinel meaning "no children".
const NO_CHILD: u32 = u32::MAX;

/// One octree node. Interior nodes have children; leaf nodes own a
/// contiguous group of particles in the density-sorted particle store
/// (`offset`, `len`) and carry the group's density.
#[derive(Clone, Copy, Debug)]
pub struct Node {
    /// Spatial bounds of the node in plot space.
    pub bounds: Aabb,
    /// Depth below the root (root = 0).
    pub depth: u32,
    /// Index of the first child in [`Octree::nodes`], or `u32::MAX` for a
    /// leaf. Children are stored as 8 consecutive nodes.
    first_child: u32,
    /// Total number of particles in the subtree.
    pub count: u64,
    /// Leaf only: offset of the node's particle group in the sorted store.
    pub offset: u64,
    /// Leaf only: number of particles in the group.
    pub len: u64,
    /// Leaf only: particle density of the node (particles per unit plot
    /// volume).
    pub density: f64,
}

impl Node {
    /// A fresh leaf covering `bounds` at `depth`.
    pub fn leaf(bounds: Aabb, depth: u32) -> Node {
        Node {
            bounds,
            depth,
            first_child: NO_CHILD,
            count: 0,
            offset: 0,
            len: 0,
            density: 0.0,
        }
    }

    /// `true` when the node has no children.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.first_child == NO_CHILD
    }

    /// Index of child `i` (0–7), if the node is interior.
    #[inline]
    pub fn child(&self, i: usize) -> Option<u32> {
        debug_assert!(i < 8);
        if self.is_leaf() {
            None
        } else {
            Some(self.first_child + i as u32)
        }
    }

    /// Marks this node as interior with children at `first_child..first_child+8`.
    pub(crate) fn set_children(&mut self, first_child: u32) {
        self.first_child = first_child;
    }
}

/// A fully built octree over projected particle positions. Node 0 is the
/// root; children of an interior node occupy 8 consecutive slots.
#[derive(Clone, Debug)]
pub struct Octree {
    /// Flat node array, root first.
    pub nodes: Vec<Node>,
    /// Root bounds.
    pub bounds: Aabb,
    /// The maximal subdivision level used during the build.
    pub max_depth: u32,
}

impl Octree {
    /// The root node.
    pub fn root(&self) -> &Node {
        &self.nodes[0]
    }

    /// Iterates over the indices of all leaf nodes.
    pub fn leaf_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_leaf())
            .map(|(i, _)| i)
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Maximum depth actually present in the tree.
    pub fn deepest_level(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// On-disk size of the node file: each node stores bounds (6×f64),
    /// depth + child pointer (2×u32), count/offset/len (3×u64) and density
    /// (f64) — 88 bytes. This is the "octree nodes" part of the paper's
    /// two-part layout.
    pub fn node_file_bytes(&self) -> u64 {
        self.nodes.len() as u64 * 88
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_math::Vec3;

    #[test]
    fn leaf_roundtrip() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let mut n = Node::leaf(b, 3);
        assert!(n.is_leaf());
        assert_eq!(n.child(0), None);
        n.set_children(17);
        assert!(!n.is_leaf());
        assert_eq!(n.child(0), Some(17));
        assert_eq!(n.child(7), Some(24));
    }

    #[test]
    fn node_file_accounting() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let t = Octree {
            nodes: vec![Node::leaf(b, 0); 9],
            bounds: b,
            max_depth: 1,
        };
        assert_eq!(t.node_file_bytes(), 9 * 88);
        assert_eq!(t.leaf_count(), 9);
    }
}
