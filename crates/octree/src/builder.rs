//! Octree construction: the paper's *partitioning* program (§2.3).
//!
//! "The partitioning program organizes the unstructured point data into an
//! octree. It is provided a time-step number, a plot type ... and a maximal
//! subdivision level. It then reads in all the points and inserts them into
//! an octree."

use crate::node::{Node, Octree};
use crate::plots::PlotType;
use crate::sorted_store::PartitionedData;
use accelviz_beam::particle::Particle;
use accelviz_math::{Aabb, Vec3};

/// Gradient-driven extra refinement (§2.5).
///
/// "One important effect that occurs in larger simulations is that the
/// octree must be subdivided more finely where there is a high gradient.
/// ... If a higher level of subdivision is not used, the outline of the
/// lowest level octree nodes will be visible at the boundary of the halo
/// region. For low gradients, a shallower depth of octree subdivision can
/// be used without introducing significant artifacts, saving valuable
/// space."
#[derive(Clone, Copy, Debug)]
pub struct GradientRefinement {
    /// How many levels past `max_depth` a high-gradient node may subdivide.
    pub extra_depth: u32,
    /// Occupancy contrast between a node's fullest and emptiest octants
    /// (max/(min+1)) above which the node counts as high-gradient.
    pub contrast_threshold: f64,
}

impl Default for GradientRefinement {
    fn default() -> GradientRefinement {
        GradientRefinement {
            extra_depth: 2,
            contrast_threshold: 8.0,
        }
    }
}

/// Parameters of the octree build.
#[derive(Clone, Copy, Debug)]
pub struct BuildParams {
    /// Maximal subdivision level. Deeper nodes are never created (except
    /// by gradient refinement) — the paper's guard that "prevents the
    /// octree from becoming impractically large".
    pub max_depth: u32,
    /// A node with at most this many particles is kept as a leaf even if
    /// the depth limit would allow further subdivision.
    pub leaf_capacity: usize,
    /// Optional gradient-driven refinement beyond `max_depth`.
    pub gradient_refinement: Option<GradientRefinement>,
}

impl Default for BuildParams {
    fn default() -> BuildParams {
        BuildParams {
            max_depth: 6,
            leaf_capacity: 256,
            gradient_refinement: None,
        }
    }
}

/// Partitions a particle dump into a density-sorted octree representation
/// for the given plot type. This is the expensive one-time step of the
/// paper's pipeline; see [`crate::extraction`] for the fast repeatable
/// step.
pub fn partition(particles: &[Particle], plot: PlotType, params: BuildParams) -> PartitionedData {
    let mut span = accelviz_trace::span("octree.partition");
    span.arg("particles", particles.len() as f64);
    let data = partition_impl(particles, plot, params);
    let secs = span.elapsed_seconds();
    if secs > 0.0 {
        span.arg("particles_per_sec", particles.len() as f64 / secs);
    }
    data
}

fn partition_impl(particles: &[Particle], plot: PlotType, params: BuildParams) -> PartitionedData {
    // Production dumps occasionally contain non-finite particles (lost
    // particles written as NaN/Inf by some codes); they would poison the
    // bounds and octant assignment, so they are dropped here.
    if particles.iter().all(|p| p.is_finite()) {
        let points: Vec<Vec3> = particles.iter().map(|p| plot.project(p)).collect();
        partition_projected(particles, points, plot, params)
    } else {
        let finite: Vec<Particle> = particles
            .iter()
            .copied()
            .filter(|p| p.is_finite())
            .collect();
        let points: Vec<Vec3> = finite.iter().map(|p| plot.project(p)).collect();
        partition_projected(&finite, points, plot, params)
    }
}

/// Partitioning core, reused by the parallel (domain-decomposed) build:
/// takes pre-projected points.
pub(crate) fn partition_projected(
    particles: &[Particle],
    points: Vec<Vec3>,
    plot: PlotType,
    params: BuildParams,
) -> PartitionedData {
    let bounds = padded_bounds(&points);
    let all: Vec<u32> = (0..points.len() as u32).collect();
    let sub = grow_subtree(&points, bounds, 0, all, &params);
    let (leaf_slots, leaf_items): (Vec<u32>, Vec<Vec<u32>>) = sub.leaves.into_iter().unzip();
    let tree = Octree {
        nodes: sub.nodes,
        bounds,
        max_depth: params.max_depth,
    };
    PartitionedData::from_build(tree, leaf_slots, leaf_items, particles, plot)
}

/// One grown subtree: nodes indexed locally (root at 0) plus the live
/// leaves as `(local node index, particle indices)`.
pub(crate) struct Subtree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) leaves: Vec<(u32, Vec<u32>)>,
}

/// Grows one subtree breadth-first from a root at `root_depth` holding
/// `items`. This single routine serves both the serial build (root depth
/// 0, all particles) and the parallel domain-decomposed build (one call
/// per root octant at depth 1), so the two paths cannot diverge on
/// splitting or gradient-refinement decisions.
pub(crate) fn grow_subtree(
    points: &[Vec3],
    bounds: Aabb,
    root_depth: u32,
    items: Vec<u32>,
    params: &BuildParams,
) -> Subtree {
    let mut nodes = vec![Node::leaf(bounds, root_depth)];
    nodes[0].count = items.len() as u64;

    // Per-leaf particle index lists; `leaf_items[i]` belongs to `nodes`
    // entry `leaf_slots[i]`.
    let mut leaf_items: Vec<Vec<u32>> = vec![items];
    let mut leaf_slots: Vec<u32> = vec![0];

    // Breadth-first subdivision.
    let hard_cap = params.max_depth + params.gradient_refinement.map_or(0, |g| g.extra_depth);
    let mut cursor = 0;
    while cursor < leaf_slots.len() {
        let node_idx = leaf_slots[cursor] as usize;
        let (depth, node_bounds, count) = {
            let n = &nodes[node_idx];
            (n.depth, n.bounds, n.count as usize)
        };
        if depth >= hard_cap || count <= params.leaf_capacity {
            cursor += 1;
            continue;
        }

        // Bucket first; past max_depth the split only happens when the
        // octant occupancy contrast marks this as a high-gradient node.
        let items = std::mem::take(&mut leaf_items[cursor]);
        let mut buckets: [Vec<u32>; 8] = Default::default();
        for &idx in &items {
            let o = node_bounds.octant_index(points[idx as usize]);
            buckets[o].push(idx);
        }
        if depth >= params.max_depth {
            let refinement = params
                .gradient_refinement
                .expect("past max_depth only reachable with refinement enabled");
            let max_occ = buckets.iter().map(Vec::len).max().unwrap_or(0) as f64;
            let min_occ = buckets.iter().map(Vec::len).min().unwrap_or(0) as f64;
            if max_occ / (min_occ + 1.0) < refinement.contrast_threshold {
                // Low gradient: stay a leaf, restore the items.
                leaf_items[cursor] = items;
                cursor += 1;
                continue;
            }
        }

        // Split this leaf into 8 children.
        let first_child = nodes.len() as u32;
        for i in 0..8 {
            let mut child = Node::leaf(node_bounds.octant(i), depth + 1);
            child.count = 0;
            nodes.push(child);
        }
        nodes[node_idx].set_children(first_child);
        for (i, bucket) in buckets.into_iter().enumerate() {
            let child_idx = first_child as usize + i;
            nodes[child_idx].count = bucket.len() as u64;
            leaf_slots.push(first_child + i as u32);
            leaf_items.push(bucket);
        }
        cursor += 1;
    }

    let leaves = leaf_slots
        .into_iter()
        .zip(leaf_items)
        .filter(|(slot, _)| nodes[*slot as usize].is_leaf())
        .collect();
    Subtree { nodes, leaves }
}

/// Smallest box around the points, padded so that points on the max faces
/// satisfy the half-open octant convention; degenerate/empty inputs get a
/// unit box.
fn padded_bounds(points: &[Vec3]) -> Aabb {
    let raw = Aabb::from_points(points.iter().copied());
    if raw.is_empty() {
        return Aabb::new(Vec3::ZERO, Vec3::ONE);
    }
    let size = raw.size();
    let pad = Vec3::new(
        (size.x * 1e-9).max(1e-12),
        (size.y * 1e-9).max(1e-12),
        (size.z * 1e-9).max(1e-12),
    );
    Aabb::new(raw.min, raw.max + pad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_beam::distribution::Distribution;

    fn sample(n: usize) -> Vec<Particle> {
        Distribution::default_beam().sample(n, 42)
    }

    #[test]
    fn every_particle_lands_in_exactly_one_leaf() {
        let ps = sample(3_000);
        let data = partition(&ps, PlotType::XYZ, BuildParams::default());
        let total: u64 = data
            .tree()
            .leaf_indices()
            .map(|i| data.tree().nodes[i].len)
            .sum();
        assert_eq!(total, ps.len() as u64);
        assert_eq!(data.particles().len(), ps.len());
    }

    #[test]
    fn leaves_respect_depth_limit() {
        let ps = sample(5_000);
        let params = BuildParams {
            max_depth: 3,
            leaf_capacity: 1,
            gradient_refinement: None,
        };
        let data = partition(&ps, PlotType::XYZ, params);
        assert!(data.tree().deepest_level() <= 3);
    }

    #[test]
    fn gradient_refinement_subdivides_only_high_contrast_nodes() {
        // A focused beam: octants near the core have sharply differing
        // occupancy (high gradient), the tails are smooth. Refinement
        // should deepen the tree but far less than raising max_depth
        // globally would.
        let ps = sample(20_000);
        let base = BuildParams {
            max_depth: 3,
            leaf_capacity: 32,
            gradient_refinement: None,
        };
        let refined = BuildParams {
            gradient_refinement: Some(GradientRefinement {
                extra_depth: 2,
                contrast_threshold: 6.0,
            }),
            ..base
        };
        let global = BuildParams {
            max_depth: 5,
            leaf_capacity: 32,
            gradient_refinement: None,
        };
        let d_base = partition(&ps, PlotType::XYZ, base);
        let d_ref = partition(&ps, PlotType::XYZ, refined);
        let d_glob = partition(&ps, PlotType::XYZ, global);
        assert!(d_ref.tree().deepest_level() > d_base.tree().deepest_level());
        assert!(d_ref.tree().deepest_level() <= 5);
        // "Saving valuable space": selective refinement costs fewer nodes
        // than globally deepening to the same level.
        assert!(
            d_ref.tree().nodes.len() < d_glob.tree().nodes.len(),
            "selective {} vs global {}",
            d_ref.tree().nodes.len(),
            d_glob.tree().nodes.len()
        );
        d_ref.validate().unwrap();
        // All particles still covered.
        let total: u64 = d_ref
            .tree()
            .leaf_indices()
            .map(|i| d_ref.tree().nodes[i].len)
            .sum();
        assert_eq!(total, ps.len() as u64);
    }

    #[test]
    fn refinement_reduces_halo_boundary_blockiness() {
        // The artifact the paper describes: without refinement, "the
        // outline of the lowest level octree nodes will be visible at the
        // boundary of the halo region". Metric: mean edge length of the
        // leaves straddling a fixed extraction threshold.
        use crate::extraction::threshold_for_budget;
        let ps = sample(20_000);
        let coarse = partition(
            &ps,
            PlotType::XYZ,
            BuildParams {
                max_depth: 3,
                leaf_capacity: 32,
                gradient_refinement: None,
            },
        );
        let refined = partition(
            &ps,
            PlotType::XYZ,
            BuildParams {
                max_depth: 3,
                leaf_capacity: 32,
                gradient_refinement: Some(GradientRefinement {
                    extra_depth: 3,
                    contrast_threshold: 4.0,
                }),
            },
        );
        let blockiness = |d: &PartitionedData| -> f64 {
            let t = threshold_for_budget(d, ps.len() / 10);
            // Leaves just below and just above the cutoff: the visible
            // halo boundary.
            let leaves = d.sorted_leaves();
            let cut = leaves.partition_point(|&li| d.tree().nodes[li as usize].density < t);
            let window = 8.min(leaves.len() / 2);
            let lo = cut.saturating_sub(window);
            let hi = (cut + window).min(leaves.len());
            let mut sum = 0.0;
            let mut n = 0;
            for &li in &leaves[lo..hi] {
                sum += d.tree().nodes[li as usize].bounds.longest_edge();
                n += 1;
            }
            sum / n.max(1) as f64
        };
        let b_coarse = blockiness(&coarse);
        let b_refined = blockiness(&refined);
        assert!(
            b_refined < b_coarse,
            "refined boundary leaves must be smaller: {b_refined} vs {b_coarse}"
        );
    }

    #[test]
    fn small_inputs_stay_single_leaf() {
        let ps = sample(10);
        let data = partition(&ps, PlotType::XYZ, BuildParams::default());
        assert_eq!(data.tree().leaf_count(), 1);
        assert_eq!(data.tree().nodes.len(), 1);
    }

    #[test]
    fn non_finite_particles_are_dropped_not_fatal() {
        let mut ps = sample(500);
        ps[10].position.x = f64::NAN;
        ps[20].momentum.z = f64::INFINITY;
        ps[30].position = accelviz_math::Vec3::splat(f64::NEG_INFINITY);
        let data = partition(&ps, PlotType::XYZ, BuildParams::default());
        data.validate().unwrap();
        assert_eq!(data.particles().len(), 497);
        assert!(data.particles().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn empty_input_builds_empty_tree() {
        let data = partition(&[], PlotType::XYZ, BuildParams::default());
        assert_eq!(data.particles().len(), 0);
        assert_eq!(data.tree().root().count, 0);
    }

    #[test]
    fn particles_lie_within_their_leaf_bounds() {
        let ps = sample(2_000);
        let params = BuildParams {
            max_depth: 4,
            leaf_capacity: 32,
            gradient_refinement: None,
        };
        let data = partition(&ps, PlotType::X_PX_Y, params);
        let tree = data.tree();
        for li in tree.leaf_indices() {
            let n = &tree.nodes[li];
            for p in data.leaf_particles(li) {
                let q = PlotType::X_PX_Y.project(p);
                assert!(
                    n.bounds.contains(q),
                    "particle {q} escaped leaf bounds {:?}",
                    n.bounds
                );
            }
        }
    }

    #[test]
    fn subtree_counts_are_consistent() {
        let ps = sample(2_000);
        let data = partition(
            &ps,
            PlotType::XYZ,
            BuildParams {
                max_depth: 4,
                leaf_capacity: 64,
                gradient_refinement: None,
            },
        );
        let tree = data.tree();
        for (i, n) in tree.nodes.iter().enumerate() {
            if !n.is_leaf() {
                let child_sum: u64 = (0..8)
                    .map(|c| tree.nodes[n.child(c).unwrap() as usize].count)
                    .sum();
                assert_eq!(child_sum, n.count, "node {i} count mismatch");
            }
        }
    }

    #[test]
    fn children_tile_parent_bounds() {
        let ps = sample(2_000);
        let data = partition(
            &ps,
            PlotType::XYZ,
            BuildParams {
                max_depth: 3,
                leaf_capacity: 64,
                gradient_refinement: None,
            },
        );
        let tree = data.tree();
        for n in &tree.nodes {
            if !n.is_leaf() {
                let vol: f64 = (0..8)
                    .map(|c| tree.nodes[n.child(c).unwrap() as usize].bounds.volume())
                    .sum();
                assert!((vol - n.bounds.volume()).abs() < 1e-9 * n.bounds.volume().max(1e-30));
            }
        }
    }
}
