//! On-disk serialization of the two-part partitioned layout (§2.3).
//!
//! "This octree is written out to disk in two parts: one part contains
//! all the particles of the simulation, the other contains the octree
//! nodes themselves." The particle file reuses the raw snapshot layout
//! (partitioning reorders, never grows, the data); the node file stores
//! 88 bytes per node. [`extract_from_files`] demonstrates the headline
//! property with real reads: it consumes the node file plus exactly the
//! kept prefix of the particle file — "discarded particles are never read
//! from disk".

use crate::node::{Node, Octree};
use crate::plots::PlotType;
use crate::sorted_store::PartitionedData;
use accelviz_beam::io::{read_snapshot, write_snapshot, BYTES_PER_PARTICLE, HEADER_BYTES};
use accelviz_beam::particle::{Particle, PhaseCoord};
use accelviz_math::{Aabb, Vec3};
use std::io::{self, Read, Write};

/// Magic bytes of the node file.
pub const NODE_MAGIC: [u8; 8] = *b"AVIZNODE";

/// Node-file header size: magic + count + depth + plot + root bounds.
const NODE_HEADER_BYTES: usize = 72;
/// Serialized size of one node record.
const NODE_RECORD_BYTES: usize = 88;
/// Nodes moved per I/O call by the chunked paths (≈ 90 KiB per call).
const IO_CHUNK_NODES: usize = 1_024;

/// Writes the node file. Records are staged through a bounded buffer so
/// the sink sees a few large writes, not a dozen tiny ones per node.
pub fn write_node_file<W: Write>(data: &PartitionedData, w: &mut W) -> io::Result<()> {
    let tree = data.tree();
    let mut buf = Vec::with_capacity(
        NODE_HEADER_BYTES + tree.nodes.len().min(IO_CHUNK_NODES) * NODE_RECORD_BYTES,
    );
    buf.extend_from_slice(&NODE_MAGIC);
    buf.extend_from_slice(&(tree.nodes.len() as u64).to_le_bytes());
    buf.extend_from_slice(&tree.max_depth.to_le_bytes());
    // Plot type as three coordinate indices.
    for c in data.plot().coords {
        buf.push(coord_code(c));
    }
    buf.push(0u8); // padding
    for v in [tree.bounds.min, tree.bounds.max] {
        for x in v.to_array() {
            buf.extend_from_slice(&x.to_le_bytes());
        }
    }
    for n in &tree.nodes {
        for v in [n.bounds.min, n.bounds.max] {
            for x in v.to_array() {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        buf.extend_from_slice(&n.depth.to_le_bytes());
        buf.extend_from_slice(&n.child(0).unwrap_or(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&n.count.to_le_bytes());
        buf.extend_from_slice(&n.offset.to_le_bytes());
        buf.extend_from_slice(&n.len.to_le_bytes());
        buf.extend_from_slice(&n.density.to_le_bytes());
        if buf.len() >= IO_CHUNK_NODES * NODE_RECORD_BYTES {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    if !buf.is_empty() {
        w.write_all(&buf)?;
    }
    Ok(())
}

/// Writes the particle file (the density-sorted particle array in the raw
/// snapshot layout).
pub fn write_particle_file<W: Write>(data: &PartitionedData, w: &mut W) -> io::Result<()> {
    write_snapshot(w, 0, data.particles())
}

/// Reads both files back into a [`PartitionedData`].
pub fn read_partitioned<R1: Read, R2: Read>(
    node_r: &mut R1,
    particle_r: &mut R2,
) -> io::Result<PartitionedData> {
    let (tree, plot) = read_node_file(node_r)?;
    let (_, particles) = read_snapshot(particle_r)?;
    PartitionedData::from_disk(tree, particles, plot)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Reads the node file: the octree plus the plot type.
///
/// Consumption is exact (header + `n_nodes` records, nothing more) and
/// reads are sized: one header read, then bulk reads of up to
/// `IO_CHUNK_NODES` records. A plain `BufReader` would be wrong here —
/// it over-reads past the node records, and callers stream node files
/// out of larger containers (the run store) where trailing bytes belong
/// to someone else.
pub fn read_node_file<R: Read>(r: &mut R) -> io::Result<(Octree, PlotType)> {
    let mut header = [0u8; NODE_HEADER_BYTES];
    r.read_exact(&mut header)?;
    if header[..8] != NODE_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad node-file magic",
        ));
    }
    let n_nodes = u64::from_le_bytes(header[8..16].try_into().unwrap());
    if n_nodes > (1 << 32) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "implausible node count",
        ));
    }
    let max_depth = u32::from_le_bytes(header[16..20].try_into().unwrap());
    let plot = PlotType {
        coords: [
            coord_from_code(header[20])?,
            coord_from_code(header[21])?,
            coord_from_code(header[22])?,
        ],
    };
    let bounds = aabb_from_bytes(&header[24..72])?;
    let mut nodes = Vec::with_capacity(n_nodes as usize);
    let mut buf = vec![0u8; (n_nodes as usize).min(IO_CHUNK_NODES) * NODE_RECORD_BYTES];
    let mut remaining = n_nodes as usize;
    while remaining > 0 {
        let n = remaining.min(IO_CHUNK_NODES);
        let bytes = &mut buf[..n * NODE_RECORD_BYTES];
        r.read_exact(bytes)?;
        for rec in bytes.chunks_exact(NODE_RECORD_BYTES) {
            let nb = aabb_from_bytes(&rec[..48])?;
            let depth = u32::from_le_bytes(rec[48..52].try_into().unwrap());
            let first_child = u32::from_le_bytes(rec[52..56].try_into().unwrap());
            let mut node = Node::leaf(nb, depth);
            node.count = u64::from_le_bytes(rec[56..64].try_into().unwrap());
            node.offset = u64::from_le_bytes(rec[64..72].try_into().unwrap());
            node.len = u64::from_le_bytes(rec[72..80].try_into().unwrap());
            node.density = f64::from_bits(u64::from_le_bytes(rec[80..88].try_into().unwrap()));
            if first_child != u32::MAX {
                if first_child as u64 + 7 >= n_nodes {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "child pointer out of range",
                    ));
                }
                node.set_children(first_child);
            }
            nodes.push(node);
        }
        remaining -= n;
    }
    Ok((
        Octree {
            nodes,
            bounds,
            max_depth,
        },
        plot,
    ))
}

/// Result of a disk-model extraction.
#[derive(Clone, Debug)]
pub struct DiskExtract {
    /// The kept particles (the low-density prefix).
    pub particles: Vec<Particle>,
    /// Bytes read from the particle file (header + prefix only).
    pub particle_bytes_read: u64,
    /// Particles that were *not* read.
    pub skipped: u64,
}

/// Extraction straight from the two files: parses the node file, finds the
/// threshold prefix, and reads exactly that many particles from the
/// particle file — the paper's "discarded particles are never read from
/// disk", executed literally.
pub fn extract_from_files<R1: Read, R2: Read>(
    node_r: &mut R1,
    particle_r: &mut R2,
    threshold: f64,
) -> io::Result<DiskExtract> {
    let (tree, _plot) = read_node_file(node_r)?;
    // Leaves sorted by offset are the density order (the store invariant).
    let mut leaves: Vec<&Node> = tree.nodes.iter().filter(|n| n.is_leaf()).collect();
    leaves.sort_by_key(|n| n.offset);
    let mut prefix = 0u64;
    for n in &leaves {
        if n.density < threshold {
            prefix = prefix.max(n.offset + n.len);
        } else {
            break;
        }
    }
    // Read header + exactly `prefix` particles. The reads are chunked
    // (up to ~760 KiB each) but never sized past the prefix boundary:
    // the headline claim is that discarded particles are *never read*,
    // so a buffered reader that over-reads would falsify it.
    let mut header = [0u8; HEADER_BYTES as usize];
    particle_r.read_exact(&mut header)?;
    let total = u64::from_le_bytes(header[16..24].try_into().unwrap());
    if prefix > total {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "prefix exceeds file",
        ));
    }
    const CHUNK: u64 = 16_384;
    let mut particles = Vec::with_capacity(prefix as usize);
    let mut buf = vec![0u8; (prefix.min(CHUNK) * BYTES_PER_PARTICLE) as usize];
    let mut remaining = prefix;
    while remaining > 0 {
        let n = remaining.min(CHUNK);
        let bytes = &mut buf[..(n * BYTES_PER_PARTICLE) as usize];
        particle_r.read_exact(bytes)?;
        for rec in bytes.chunks_exact(BYTES_PER_PARTICLE as usize) {
            let mut a = [0.0f64; 6];
            for (i, c) in a.iter_mut().enumerate() {
                *c = f64::from_le_bytes(rec[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            particles.push(Particle::from_array(a));
        }
        remaining -= n;
    }
    Ok(DiskExtract {
        particles,
        particle_bytes_read: HEADER_BYTES + prefix * BYTES_PER_PARTICLE,
        skipped: total - prefix,
    })
}

fn coord_code(c: PhaseCoord) -> u8 {
    match c {
        PhaseCoord::X => 0,
        PhaseCoord::Px => 1,
        PhaseCoord::Y => 2,
        PhaseCoord::Py => 3,
        PhaseCoord::Z => 4,
        PhaseCoord::Pz => 5,
    }
}

fn coord_from_code(b: u8) -> io::Result<PhaseCoord> {
    Ok(match b {
        0 => PhaseCoord::X,
        1 => PhaseCoord::Px,
        2 => PhaseCoord::Y,
        3 => PhaseCoord::Py,
        4 => PhaseCoord::Z,
        5 => PhaseCoord::Pz,
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad coord code")),
    })
}

fn aabb_from_bytes(b: &[u8]) -> io::Result<Aabb> {
    debug_assert_eq!(b.len(), 48);
    let mut v = [0.0f64; 6];
    for (i, x) in v.iter_mut().enumerate() {
        *x = f64::from_le_bytes(b[i * 8..(i + 1) * 8].try_into().unwrap());
    }
    if v[0] > v[3] || v[1] > v[4] || v[2] > v[5] || v.iter().any(|x| !x.is_finite()) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "corrupt bounds"));
    }
    Ok(Aabb::new(
        Vec3::new(v[0], v[1], v[2]),
        Vec3::new(v[3], v[4], v[5]),
    ))
}

/// A reader wrapper counting consumed bytes and read calls (used by
/// tests to prove the prefix-only read and that reads are chunked, not
/// per-record — each call here is what a syscall would be on a real fd).
pub struct CountingReader<R> {
    inner: R,
    /// Bytes read so far.
    pub bytes: u64,
    /// Number of `read` calls that reached the underlying reader.
    pub reads: u64,
}

impl<R: Read> CountingReader<R> {
    /// Wraps a reader.
    pub fn new(inner: R) -> CountingReader<R> {
        CountingReader {
            inner,
            bytes: 0,
            reads: 0,
        }
    }
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes += n as u64;
        self.reads += 1;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{partition, BuildParams};
    use crate::extraction::{extract, threshold_for_budget};
    use accelviz_beam::distribution::Distribution;

    fn build(n: usize) -> PartitionedData {
        let ps = Distribution::default_beam().sample(n, 11);
        partition(&ps, PlotType::X_PX_Y, BuildParams::default())
    }

    #[test]
    fn two_part_roundtrip() {
        let data = build(3_000);
        let mut node_file = Vec::new();
        let mut particle_file = Vec::new();
        write_node_file(&data, &mut node_file).unwrap();
        write_particle_file(&data, &mut particle_file).unwrap();
        let back =
            read_partitioned(&mut node_file.as_slice(), &mut particle_file.as_slice()).unwrap();
        back.validate().unwrap();
        assert_eq!(back.particles(), data.particles());
        assert_eq!(back.plot(), data.plot());
        assert_eq!(back.tree().nodes.len(), data.tree().nodes.len());
        // Extraction from the roundtripped store matches.
        let t = threshold_for_budget(&data, 500);
        assert_eq!(
            extract(&back, t).particles.len(),
            extract(&data, t).particles.len()
        );
    }

    #[test]
    fn node_file_size_matches_accounting() {
        let data = build(1_000);
        let mut node_file = Vec::new();
        write_node_file(&data, &mut node_file).unwrap();
        // Header: 8 magic + 8 count + 4 depth + 4 plot + 48 bounds = 72.
        assert_eq!(node_file.len() as u64, 72 + data.node_file_bytes());
    }

    #[test]
    fn disk_extraction_reads_only_the_prefix() {
        let data = build(5_000);
        let mut node_file = Vec::new();
        let mut particle_file = Vec::new();
        write_node_file(&data, &mut node_file).unwrap();
        write_particle_file(&data, &mut particle_file).unwrap();

        let t = threshold_for_budget(&data, 700);
        let expected = extract(&data, t);

        let mut counting = CountingReader::new(particle_file.as_slice());
        let result = extract_from_files(&mut node_file.as_slice(), &mut counting, t).unwrap();
        assert_eq!(result.particles.as_slice(), expected.particles);
        assert_eq!(result.skipped, expected.discarded);
        // The headline claim, verified on real reads: bytes consumed =
        // header + prefix, nothing else.
        assert_eq!(
            counting.bytes,
            HEADER_BYTES + expected.particles.len() as u64 * BYTES_PER_PARTICLE
        );
        assert!(
            counting.bytes < particle_file.len() as u64 / 2,
            "most of the particle file must remain unread"
        );
        // …and in a handful of sized reads, not one syscall per particle:
        // header + at most one chunked read per 16 Ki records.
        assert!(
            counting.reads <= 3,
            "prefix read used {} calls for {} particles",
            counting.reads,
            expected.particles.len()
        );
    }

    #[test]
    fn node_file_reads_are_chunked_and_exact() {
        let data = build(5_000);
        let mut node_file = Vec::new();
        write_node_file(&data, &mut node_file).unwrap();
        // Trailing bytes that belong to "someone else" in a container.
        node_file.extend_from_slice(b"TRAILERDATA");
        let mut counting = CountingReader::new(node_file.as_slice());
        let (tree, _) = read_node_file(&mut counting).unwrap();
        assert_eq!(tree.nodes.len(), data.tree().nodes.len());
        // Exact consumption: the trailer is untouched.
        assert_eq!(counting.bytes, node_file.len() as u64 - 11);
        // Sized reads: header + one bulk read per 1 Ki nodes.
        let expected_reads = 1 + (tree.nodes.len() as u64).div_ceil(1_024);
        assert!(
            counting.reads <= expected_reads,
            "node read used {} calls for {} nodes",
            counting.reads,
            tree.nodes.len()
        );
        assert!(counting.reads >= 2);
    }

    #[test]
    fn node_file_writes_are_chunked_not_per_field() {
        struct CountingWriter {
            buf: Vec<u8>,
            writes: u64,
        }
        impl Write for CountingWriter {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                self.writes += 1;
                self.buf.extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let data = build(5_000);
        let mut plain = Vec::new();
        write_node_file(&data, &mut plain).unwrap();
        let mut counting = CountingWriter {
            buf: Vec::new(),
            writes: 0,
        };
        write_node_file(&data, &mut counting).unwrap();
        assert_eq!(counting.buf, plain, "chunking must not change the bytes");
        let nodes = data.tree().nodes.len() as u64;
        assert!(
            counting.writes <= nodes.div_ceil(1_024) + 1,
            "node write used {} calls for {nodes} nodes",
            counting.writes
        );
    }

    #[test]
    fn corrupt_node_file_is_rejected() {
        let data = build(500);
        let mut node_file = Vec::new();
        write_node_file(&data, &mut node_file).unwrap();
        // Bad magic.
        let mut bad = node_file.clone();
        bad[0] ^= 0xFF;
        assert!(read_node_file(&mut bad.as_slice()).is_err());
        // Truncated.
        let cut = &node_file[..node_file.len() - 10];
        assert!(read_node_file(&mut &cut[..]).is_err());
        // Corrupt bounds (min > max).
        let mut swapped = node_file.clone();
        // Root bounds start at offset 24; swap min.x with max.x.
        for i in 0..8 {
            swapped.swap(24 + i, 24 + 24 + i);
        }
        assert!(read_node_file(&mut swapped.as_slice()).is_err());
    }

    #[test]
    fn mismatched_particle_count_is_rejected() {
        let data = build(500);
        let mut node_file = Vec::new();
        write_node_file(&data, &mut node_file).unwrap();
        // Particle file with too few particles.
        let mut particle_file = Vec::new();
        write_snapshot(&mut particle_file, 0, &data.particles()[..100]).unwrap();
        assert!(
            read_partitioned(&mut node_file.as_slice(), &mut particle_file.as_slice()).is_err()
        );
    }
}
