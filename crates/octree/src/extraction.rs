//! Threshold extraction: the paper's fast second preprocessing step
//! (§2.3).
//!
//! "The extraction program converts the partitioned data into the hybrid
//! representation. It is given a partitioned frame and a threshold density.
//! Particles in octree nodes below the threshold density are stored in the
//! hybrid representation. All other points ... are discarded. ... Since the
//! particle file is sorted in order of increasing density, all particles
//! required for any hybrid representation are in a contiguous block at the
//! beginning of the file. This portion of the particle data is just copied
//! to the output; no computation is necessary for the particles, and
//! discarded particles are never read from disk."

use crate::node::{Node, Octree};
use crate::sorted_store::PartitionedData;
use accelviz_beam::io::BYTES_PER_PARTICLE;
use accelviz_beam::particle::Particle;

/// The result of extracting a hybrid representation at a threshold
/// density: a borrowed prefix of the particle file (the point-rendered
/// halo) plus bookkeeping for the paper's size/accuracy trade-off.
#[derive(Clone, Copy, Debug)]
pub struct HybridExtract<'a> {
    /// The kept particles — exactly the contiguous prefix of the sorted
    /// particle file whose leaf densities are below the threshold.
    pub particles: &'a [Particle],
    /// The threshold density that was applied.
    pub threshold: f64,
    /// Number of leaves whose groups were kept.
    pub leaves_kept: usize,
    /// Number of particles discarded (never read in the on-disk model).
    pub discarded: u64,
}

impl<'a> HybridExtract<'a> {
    /// Size of the extracted point data in bytes.
    pub fn point_bytes(&self) -> u64 {
        self.particles.len() as u64 * BYTES_PER_PARTICLE
    }

    /// Fraction of the original particles kept.
    pub fn kept_fraction(&self) -> f64 {
        let total = self.particles.len() as u64 + self.discarded;
        if total == 0 {
            0.0
        } else {
            self.particles.len() as f64 / total as f64
        }
    }
}

/// Extracts the hybrid point set at `threshold` density from a partitioned
/// frame.
///
/// Runs in O(log L) in the number of leaves (binary search over the sorted
/// leaf densities) — the extraction itself is a zero-copy prefix borrow,
/// faithfully modeling "no computation is necessary for the particles".
pub fn extract(data: &PartitionedData, threshold: f64) -> HybridExtract<'_> {
    let mut span = accelviz_trace::span("octree.extract");
    let leaves = data.sorted_leaves();
    // partition_point: first leaf whose density is >= threshold. The
    // comparator count is the real number of node visits the binary
    // search performed — the instrumented evidence for the O(log L)
    // claim above.
    let visits = std::cell::Cell::new(0u64);
    let cut = leaves.partition_point(|&li| {
        visits.set(visits.get() + 1);
        data.tree().nodes[li as usize].density < threshold
    });
    let prefix_len = if cut == 0 {
        0
    } else {
        let last = &data.tree().nodes[leaves[cut - 1] as usize];
        (last.offset + last.len) as usize
    };
    let result = HybridExtract {
        particles: &data.particles()[..prefix_len],
        threshold,
        leaves_kept: cut,
        discarded: (data.particles().len() - prefix_len) as u64,
    };
    if span.is_active() {
        span.arg("threshold", threshold);
        span.arg("node_visits", visits.get() as f64);
        span.arg("leaves_kept", result.leaves_kept as f64);
        span.arg("kept", result.particles.len() as f64);
        span.arg("discarded", result.discarded as f64);
    }
    result
}

/// Finds the threshold density that keeps (approximately, rounding up to a
/// whole leaf group) the requested number of particles. Supports the
/// paper's workflow of tuning output size: "the threshold density
/// parameter ... allows the user to balance file size and visual
/// accuracy".
pub fn threshold_for_budget(data: &PartitionedData, max_particles: usize) -> f64 {
    let leaves = data.sorted_leaves();
    let mut kept = 0u64;
    for &li in leaves {
        let n = &data.tree().nodes[li as usize];
        if kept + n.len > max_particles as u64 {
            return n.density;
        }
        kept += n.len;
    }
    f64::INFINITY
}

/// Plans a coarse-to-fine refinement schedule over a density-sorted
/// point prefix.
///
/// `run_lengths` are the sizes of consecutive equal-density groups (the
/// octree leaf groups, in the sorted store's ascending-density order) and
/// `chunk_points` is the per-cut point budget. Returns ascending,
/// group-aligned cumulative point counts: a progressive stream sends
/// points `[0, cuts[0])` first, then the deltas `[cuts[i-1], cuts[i])`.
/// Cuts never split a group — a partial frame therefore always holds
/// *complete* leaf groups, so its point set is exactly what a lower
/// extraction threshold would have produced (the prefix property of the
/// sorted store). The last cut is always the full prefix length, and at
/// least one cut is returned even for an empty prefix.
pub fn align_cuts(run_lengths: &[usize], chunk_points: usize) -> Vec<usize> {
    let chunk = chunk_points.max(1);
    let mut cuts = Vec::new();
    let mut total = 0usize;
    let mut since_cut = 0usize;
    for &len in run_lengths {
        total += len;
        since_cut += len;
        if since_cut >= chunk {
            cuts.push(total);
            since_cut = 0;
        }
    }
    if cuts.last() != Some(&total) {
        cuts.push(total);
    }
    cuts
}

/// The progressive cut schedule for an extraction at `threshold`:
/// [`align_cuts`] over the kept leaf groups. Because the particle file
/// is density-sorted, every cut is a contiguous prefix — "no computation
/// is necessary for the particles" holds for each refinement slice just
/// as it does for the full extraction.
pub fn progressive_cuts(data: &PartitionedData, threshold: f64, chunk_points: usize) -> Vec<usize> {
    let ex = extract(data, threshold);
    let runs: Vec<usize> = data
        .sorted_leaves()
        .iter()
        .take(ex.leaves_kept)
        .map(|&li| data.tree().nodes[li as usize].len as usize)
        .collect();
    let cuts = align_cuts(&runs, chunk_points);
    debug_assert_eq!(cuts.last().copied(), Some(ex.particles.len()));
    cuts
}

/// [`threshold_for_budget`] from the octree alone, without the particle
/// array. The density order is recovered from the leaf offsets (the
/// store invariant: groups appear in ascending density), exactly as the
/// disk-read path does — so an out-of-core server can answer "what
/// threshold fits this budget?" for a frame whose particles are not
/// resident, reading only the node file.
pub fn threshold_for_budget_tree(tree: &Octree, max_particles: usize) -> f64 {
    let mut leaves: Vec<&Node> = tree.nodes.iter().filter(|n| n.is_leaf()).collect();
    // Empty groups share offset 0 with the first real group; order them
    // first, matching `PartitionedData::from_disk`.
    leaves.sort_by_key(|a| (a.offset, a.len > 0));
    let mut kept = 0u64;
    for n in leaves {
        if kept + n.len > max_particles as u64 {
            return n.density;
        }
        kept += n.len;
    }
    f64::INFINITY
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{partition, BuildParams};
    use crate::plots::PlotType;
    use accelviz_beam::distribution::Distribution;

    fn build(n: usize) -> PartitionedData {
        let ps = Distribution::default_beam().sample(n, 21);
        partition(
            &ps,
            PlotType::XYZ,
            BuildParams {
                max_depth: 4,
                leaf_capacity: 64,
                gradient_refinement: None,
            },
        )
    }

    #[test]
    fn extraction_equals_filter_by_threshold() {
        let data = build(5_000);
        for threshold in [0.0, 1e3, 1e6, 1e9, f64::INFINITY] {
            let ex = extract(&data, threshold);
            // Reference: brute-force filter over leaves.
            let expected: u64 = data
                .sorted_leaves()
                .iter()
                .map(|&li| &data.tree().nodes[li as usize])
                .filter(|n| n.density < threshold)
                .map(|n| n.len)
                .sum();
            assert_eq!(ex.particles.len() as u64, expected, "threshold {threshold}");
            assert_eq!(ex.discarded, data.particles().len() as u64 - expected);
        }
    }

    #[test]
    fn zero_threshold_keeps_nothing_infinite_keeps_everything() {
        let data = build(2_000);
        assert_eq!(extract(&data, 0.0).particles.len(), 0);
        let all = extract(&data, f64::INFINITY);
        assert_eq!(all.particles.len(), 2_000);
        assert_eq!(all.discarded, 0);
        assert!((all.kept_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extracted_particles_really_come_from_low_density_leaves() {
        let data = build(5_000);
        let leaves = data.sorted_leaves();
        let mid = data.tree().nodes[leaves[leaves.len() / 2] as usize].density;
        let ex = extract(&data, mid);
        // Every kept particle must belong to a leaf with density < mid.
        let mut covered = 0usize;
        for &li in leaves {
            let n = &data.tree().nodes[li as usize];
            if n.density < mid {
                covered += n.len as usize;
            }
        }
        assert_eq!(ex.particles.len(), covered);
    }

    #[test]
    fn higher_threshold_keeps_superset() {
        let data = build(5_000);
        let low = extract(&data, 1e5);
        let high = extract(&data, 1e8);
        assert!(high.particles.len() >= low.particles.len());
        // Prefix property: the low extraction is literally a prefix of the
        // high one.
        assert_eq!(&high.particles[..low.particles.len()], low.particles);
    }

    #[test]
    fn point_bytes_accounting() {
        let data = build(1_000);
        let ex = extract(&data, f64::INFINITY);
        assert_eq!(ex.point_bytes(), 48_000);
    }

    #[test]
    fn budget_threshold_respects_budget() {
        let data = build(5_000);
        for budget in [0usize, 10, 500, 2_500, 5_000, 10_000] {
            let t = threshold_for_budget(&data, budget);
            let ex = extract(&data, t);
            assert!(
                ex.particles.len() <= budget.max(ex.particles.len().min(budget)),
                "budget {budget} exceeded: kept {}",
                ex.particles.len()
            );
            assert!(ex.particles.len() <= budget || budget == 0);
        }
        // An over-generous budget keeps everything.
        let t = threshold_for_budget(&data, usize::MAX);
        assert_eq!(extract(&data, t).particles.len(), 5_000);
    }

    #[test]
    fn tree_only_budget_threshold_agrees_with_the_full_store() {
        let data = build(5_000);
        for budget in [0usize, 1, 99, 500, 2_500, 5_000, usize::MAX] {
            assert_eq!(
                threshold_for_budget_tree(data.tree(), budget).to_bits(),
                threshold_for_budget(&data, budget).to_bits(),
                "budget {budget}"
            );
        }
    }

    #[test]
    fn align_cuts_is_group_aligned_ascending_and_complete() {
        let runs = [3usize, 5, 1, 0, 7, 2, 2];
        let total: usize = runs.iter().sum();
        for chunk in [1usize, 2, 4, 6, 100] {
            let cuts = align_cuts(&runs, chunk);
            assert_eq!(cuts.last().copied(), Some(total), "chunk {chunk}");
            // Strictly gaining ground (no empty refinement slices) and
            // every cut lies on a group boundary.
            let mut boundaries = vec![];
            let mut acc = 0;
            for &r in &runs {
                acc += r;
                boundaries.push(acc);
            }
            let mut prev = 0;
            for &c in &cuts {
                assert!(c >= prev, "cuts must ascend");
                assert!(boundaries.contains(&c) || c == 0, "cut {c} splits a group");
                prev = c;
            }
        }
        // Degenerate inputs still yield a terminal cut.
        assert_eq!(align_cuts(&[], 8), vec![0]);
        assert_eq!(align_cuts(&[0, 0], 8), vec![0]);
    }

    #[test]
    fn progressive_cuts_end_at_the_extraction_length() {
        let data = build(5_000);
        let mid = {
            let leaves = data.sorted_leaves();
            data.tree().nodes[leaves[leaves.len() / 2] as usize].density
        };
        for threshold in [0.0, mid, f64::INFINITY] {
            let ex = extract(&data, threshold);
            for chunk in [1usize, 64, 1_000, 100_000] {
                let cuts = progressive_cuts(&data, threshold, chunk);
                assert_eq!(cuts.last().copied(), Some(ex.particles.len()));
                // Each cut is itself a valid extraction prefix: the points
                // below it are exactly the first `cut` sorted particles.
                for &c in &cuts {
                    assert_eq!(
                        &ex.particles[..c.min(ex.particles.len())],
                        &data.particles()[..c]
                    );
                }
            }
        }
    }

    #[test]
    fn empty_partition_extracts_empty() {
        let data = partition(&[], PlotType::XYZ, BuildParams::default());
        let ex = extract(&data, 1.0);
        assert_eq!(ex.particles.len(), 0);
        assert_eq!(ex.kept_fraction(), 0.0);
    }
}
