//! Plot-type projections: choosing 3 of the 6 phase-space coordinates.
//!
//! "Since there are six parameters per point, there are a variety of 3-D
//! plots that can be generated" (§2.3). The paper's Figure 2 shows four:
//! (x, y, z), (x, px, y), (x, px, z), and (px, py, pz). The partitioning
//! program takes the plot type as an input, so each plot type gets its own
//! octree.

use accelviz_beam::particle::{Particle, PhaseCoord};
use accelviz_math::Vec3;

/// A 3-D plot projection of 6-D phase space: which coordinate is mapped to
/// each spatial axis of the visualization.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlotType {
    /// The phase coordinates mapped to the (x, y, z) axes of the plot.
    pub coords: [PhaseCoord; 3],
}

impl PlotType {
    /// Configuration space (x, y, z) — Figures 4 and 5.
    pub const XYZ: PlotType = PlotType {
        coords: [PhaseCoord::X, PhaseCoord::Y, PhaseCoord::Z],
    };
    /// Phase plot (x, pₓ, y) — Figures 1 and 2.
    pub const X_PX_Y: PlotType = PlotType {
        coords: [PhaseCoord::X, PhaseCoord::Px, PhaseCoord::Y],
    };
    /// Phase plot (x, pₓ, z) — Figure 2.
    pub const X_PX_Z: PlotType = PlotType {
        coords: [PhaseCoord::X, PhaseCoord::Px, PhaseCoord::Z],
    };
    /// Momentum space (pₓ, p_y, p_z) — Figure 2.
    pub const MOMENTUM: PlotType = PlotType {
        coords: [PhaseCoord::Px, PhaseCoord::Py, PhaseCoord::Pz],
    };

    /// The four distributions shown in the paper's Figure 2, in figure
    /// order.
    pub const FIGURE2: [PlotType; 4] = [
        PlotType::XYZ,
        PlotType::X_PX_Y,
        PlotType::X_PX_Z,
        PlotType::MOMENTUM,
    ];

    /// Projects a particle into plot space.
    #[inline]
    pub fn project(&self, p: &Particle) -> Vec3 {
        Vec3::new(
            p.coord(self.coords[0]),
            p.coord(self.coords[1]),
            p.coord(self.coords[2]),
        )
    }

    /// Human-readable name like `"x-px-y"`.
    pub fn name(&self) -> String {
        format!(
            "{}-{}-{}",
            self.coords[0].name(),
            self.coords[1].name(),
            self.coords[2].name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projections_pick_the_right_coords() {
        let p = Particle::from_array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(PlotType::XYZ.project(&p), Vec3::new(1.0, 3.0, 5.0));
        assert_eq!(PlotType::X_PX_Y.project(&p), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(PlotType::X_PX_Z.project(&p), Vec3::new(1.0, 2.0, 5.0));
        assert_eq!(PlotType::MOMENTUM.project(&p), Vec3::new(2.0, 4.0, 6.0));
    }

    #[test]
    fn names() {
        assert_eq!(PlotType::XYZ.name(), "x-y-z");
        assert_eq!(PlotType::X_PX_Y.name(), "x-px-y");
        assert_eq!(PlotType::MOMENTUM.name(), "px-py-pz");
    }

    #[test]
    fn figure2_has_four_distinct_plots() {
        let f = PlotType::FIGURE2;
        assert_eq!(f.len(), 4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(f[i], f[j]);
            }
        }
    }
}
