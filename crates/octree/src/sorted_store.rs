//! The density-sorted two-part storage layout of the paper (§2.3):
//!
//! "This octree is written out to disk in two parts: one part contains all
//! the particles of the simulation, the other contains the octree nodes
//! themselves. In the particle files, particles in the same octree node are
//! grouped together, and the groups are sorted in order of increasing
//! density. Each node in the octree then contains an offset into the
//! particle file and the number of particles in its group."

use crate::node::Octree;
use crate::plots::PlotType;
use accelviz_beam::io::BYTES_PER_PARTICLE;
use accelviz_beam::particle::Particle;

/// A partitioned time step: the octree (node file) plus the density-sorted
/// particle array (particle file). All of the original data is present, so
/// — as the paper notes — the raw dump could be discarded.
#[derive(Clone, Debug)]
pub struct PartitionedData {
    tree: Octree,
    /// Particles reordered so that each leaf's group is contiguous and the
    /// groups appear in order of increasing density.
    particles: Vec<Particle>,
    /// Leaf node indices in the order their groups appear in `particles`
    /// (i.e. ascending density).
    sorted_leaves: Vec<u32>,
    plot: PlotType,
}

impl PartitionedData {
    /// Assembles the sorted store from the builder's raw output.
    pub(crate) fn from_build(
        mut tree: Octree,
        leaf_slots: Vec<u32>,
        leaf_items: Vec<Vec<u32>>,
        particles: &[Particle],
        plot: PlotType,
    ) -> PartitionedData {
        // Compute per-leaf density = group size / node volume.
        let mut order: Vec<usize> = Vec::new();
        for (slot_pos, &node_idx) in leaf_slots.iter().enumerate() {
            let n = &mut tree.nodes[node_idx as usize];
            if !n.is_leaf() {
                continue;
            }
            let vol = n.bounds.volume().max(1e-300);
            n.len = leaf_items[slot_pos].len() as u64;
            n.density = n.len as f64 / vol;
            order.push(slot_pos);
        }
        // Sort leaf groups by increasing density. Ties are broken by leaf
        // geometry (min corner, then depth) rather than node index: node
        // layout differs between the serial and the grafted parallel
        // build, and this keeps their stores bit-identical. Distinct
        // leaves always have distinct min corners — two octree boxes
        // sharing a corner are nested, and nested nodes cannot both be
        // leaves.
        order.sort_by(|&a, &b| {
            let na = &tree.nodes[leaf_slots[a] as usize];
            let nb = &tree.nodes[leaf_slots[b] as usize];
            na.density
                .partial_cmp(&nb.density)
                .unwrap()
                .then_with(|| na.bounds.min.x.partial_cmp(&nb.bounds.min.x).unwrap())
                .then_with(|| na.bounds.min.y.partial_cmp(&nb.bounds.min.y).unwrap())
                .then_with(|| na.bounds.min.z.partial_cmp(&nb.bounds.min.z).unwrap())
                .then_with(|| na.depth.cmp(&nb.depth))
        });

        let mut sorted = Vec::with_capacity(particles.len());
        let mut sorted_leaves = Vec::with_capacity(order.len());
        for &slot_pos in &order {
            let node_idx = leaf_slots[slot_pos] as usize;
            let offset = sorted.len() as u64;
            for &pi in &leaf_items[slot_pos] {
                sorted.push(particles[pi as usize]);
            }
            let n = &mut tree.nodes[node_idx];
            n.offset = offset;
            sorted_leaves.push(node_idx as u32);
        }
        PartitionedData {
            tree,
            particles: sorted,
            sorted_leaves,
            plot,
        }
    }

    /// Reassembles a store from deserialized parts (the disk-read path):
    /// the sorted-leaf order is recovered from the leaf offsets, and the
    /// store invariants are checked before anything is returned.
    pub(crate) fn from_disk(
        tree: Octree,
        particles: Vec<Particle>,
        plot: PlotType,
    ) -> Result<PartitionedData, String> {
        let mut sorted_leaves: Vec<u32> = tree
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_leaf())
            .map(|(i, _)| i as u32)
            .collect();
        // Empty groups share offset 0 with the first real group: order
        // them first (they "occupy" zero bytes there), then by offset.
        sorted_leaves.sort_by_key(|&li| {
            let n = &tree.nodes[li as usize];
            (n.offset, n.len > 0, li)
        });
        let data = PartitionedData {
            tree,
            particles,
            sorted_leaves,
            plot,
        };
        data.validate()?;
        Ok(data)
    }

    /// Reassembles a store from parts that are *already* in the sorted
    /// layout — a deserialized octree plus its density-ordered particle
    /// array. This is the public entry point for external storage
    /// formats (the run store in `accelviz-store` decodes particle
    /// chunks and rebuilds frames through it); the store invariants are
    /// validated before anything is returned, so corrupt inputs fail
    /// here rather than during extraction.
    pub fn from_sorted_parts(
        tree: Octree,
        particles: Vec<Particle>,
        plot: PlotType,
    ) -> Result<PartitionedData, String> {
        PartitionedData::from_disk(tree, particles, plot)
    }

    /// The octree ("node file").
    pub fn tree(&self) -> &Octree {
        &self.tree
    }

    /// The density-sorted particle array ("particle file").
    pub fn particles(&self) -> &[Particle] {
        &self.particles
    }

    /// The plot type this partitioning was built for.
    pub fn plot(&self) -> PlotType {
        self.plot
    }

    /// Leaf node indices in ascending-density order.
    pub fn sorted_leaves(&self) -> &[u32] {
        &self.sorted_leaves
    }

    /// The particle group of leaf `node_idx`.
    pub fn leaf_particles(&self, node_idx: usize) -> &[Particle] {
        let n = &self.tree.nodes[node_idx];
        debug_assert!(n.is_leaf());
        &self.particles[n.offset as usize..(n.offset + n.len) as usize]
    }

    /// Size of the particle file in bytes (48 B per particle, as in the
    /// raw dump — partitioning reorders but does not grow the data).
    pub fn particle_file_bytes(&self) -> u64 {
        self.particles.len() as u64 * BYTES_PER_PARTICLE
    }

    /// Size of the node file in bytes.
    pub fn node_file_bytes(&self) -> u64 {
        self.tree.node_file_bytes()
    }

    /// Total stored size.
    pub fn total_bytes(&self) -> u64 {
        self.particle_file_bytes() + self.node_file_bytes()
    }

    /// Converts this partitioning to a different plot type — the feature
    /// the paper marks as future work: "Since the partitioned
    /// representation contains all the data present in the original
    /// representation, it is possible (although not yet implemented) to
    /// discard the original data and convert between different plot type
    /// partitionings" (§2.3). No access to the raw dump is needed.
    pub fn repartition(
        &self,
        new_plot: PlotType,
        params: crate::builder::BuildParams,
    ) -> PartitionedData {
        crate::builder::partition(&self.particles, new_plot, params)
    }

    /// Checks the store invariants (used by tests and debug assertions):
    /// groups are contiguous, cover the particle array exactly, and appear
    /// in ascending density order.
    pub fn validate(&self) -> Result<(), String> {
        let mut expected_offset = 0u64;
        let mut last_density = f64::NEG_INFINITY;
        for &li in &self.sorted_leaves {
            let n = &self.tree.nodes[li as usize];
            if !n.is_leaf() {
                return Err(format!("sorted leaf {li} is not a leaf"));
            }
            if n.offset != expected_offset {
                return Err(format!(
                    "group of leaf {li} starts at {} expected {expected_offset}",
                    n.offset
                ));
            }
            if n.density < last_density {
                return Err(format!(
                    "density order violated at leaf {li}: {} after {last_density}",
                    n.density
                ));
            }
            last_density = n.density;
            expected_offset += n.len;
        }
        if expected_offset != self.particles.len() as u64 {
            return Err(format!(
                "groups cover {expected_offset} of {} particles",
                self.particles.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{partition, BuildParams};
    use accelviz_beam::distribution::Distribution;

    fn build(n: usize) -> PartitionedData {
        let ps = Distribution::default_beam().sample(n, 11);
        partition(
            &ps,
            PlotType::XYZ,
            BuildParams {
                max_depth: 4,
                leaf_capacity: 64,
                gradient_refinement: None,
            },
        )
    }

    #[test]
    fn store_invariants_hold() {
        let data = build(5_000);
        data.validate().unwrap();
    }

    #[test]
    fn groups_are_sorted_by_increasing_density() {
        let data = build(5_000);
        let densities: Vec<f64> = data
            .sorted_leaves()
            .iter()
            .map(|&li| data.tree().nodes[li as usize].density)
            .collect();
        for w in densities.windows(2) {
            assert!(w[0] <= w[1], "density order violated: {} > {}", w[0], w[1]);
        }
        // A beam has real density contrast: max over min-nonzero should be
        // large (the paper quotes thousands for core vs halo).
        let nonzero: Vec<f64> = densities.iter().copied().filter(|&d| d > 0.0).collect();
        assert!(nonzero.last().unwrap() / nonzero.first().unwrap() > 10.0);
    }

    #[test]
    fn offsets_tile_particle_file() {
        let data = build(3_000);
        let mut seen = vec![false; data.particles().len()];
        for &li in data.sorted_leaves() {
            let n = &data.tree().nodes[li as usize];
            for i in n.offset..n.offset + n.len {
                assert!(!seen[i as usize], "particle {i} covered twice");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn storage_accounting() {
        let data = build(1_000);
        assert_eq!(data.particle_file_bytes(), 48_000);
        assert_eq!(data.node_file_bytes(), data.tree().nodes.len() as u64 * 88);
        assert_eq!(data.total_bytes(), 48_000 + data.node_file_bytes());
    }

    #[test]
    fn repartitioning_changes_plot_without_the_raw_dump() {
        let data = build(3_000);
        assert_eq!(data.plot(), PlotType::XYZ);
        let converted = data.repartition(
            PlotType::MOMENTUM,
            BuildParams {
                max_depth: 4,
                leaf_capacity: 64,
                gradient_refinement: None,
            },
        );
        converted.validate().unwrap();
        assert_eq!(converted.plot(), PlotType::MOMENTUM);
        assert_eq!(converted.particles().len(), data.particles().len());
        // The conversion is lossless: converting back reproduces the same
        // leaf statistics as the original build.
        let back = converted.repartition(
            PlotType::XYZ,
            BuildParams {
                max_depth: 4,
                leaf_capacity: 64,
                gradient_refinement: None,
            },
        );
        let stats = |d: &PartitionedData| {
            let mut v: Vec<(u64, u64)> = d
                .sorted_leaves()
                .iter()
                .map(|&li| {
                    let n = &d.tree().nodes[li as usize];
                    (n.density.to_bits(), n.len)
                })
                .filter(|&(_, len)| len > 0)
                .collect();
            v.sort();
            v
        };
        assert_eq!(stats(&back), stats(&data));
    }

    #[test]
    fn partitioning_preserves_the_multiset_of_particles() {
        let ps = Distribution::default_beam().sample(2_000, 5);
        let data = partition(&ps, PlotType::XYZ, BuildParams::default());
        // Compare sorted coordinate lists (cheap multiset equality).
        let mut orig: Vec<[u64; 2]> = ps
            .iter()
            .map(|p| [p.position.x.to_bits(), p.momentum.y.to_bits()])
            .collect();
        let mut part: Vec<[u64; 2]> = data
            .particles()
            .iter()
            .map(|p| [p.position.x.to_bits(), p.momentum.y.to_bits()])
            .collect();
        orig.sort();
        part.sort();
        assert_eq!(orig, part);
    }
}
