//! Density-sorted octree partitioning of particle data — the paper's §2.3
//! preprocessing pipeline.
//!
//! The paper adds structure to unstructured particle dumps in two steps:
//!
//! 1. **Partitioning** (one-time, on the supercomputer): particles are
//!    inserted into an octree whose subdivision is limited by a maximal
//!    level. The tree is written in two parts — a particle file in which
//!    particles of the same node are grouped and the groups are *sorted by
//!    increasing density*, and a node file in which each node stores an
//!    offset into the particle file plus its group size.
//! 2. **Extraction** (fast, repeatable): given a threshold density, the
//!    particles of all nodes below the threshold are exactly a contiguous
//!    prefix of the particle file, so extraction is a straight copy that
//!    never reads discarded particles.
//!
//! Modules:
//! - [`plots`] — the 6-coordinate → 3-D plot projections of Figure 2.
//! - [`builder`] — octree construction ([`partition`]).
//! - [`node`] — node storage ([`Node`], [`Octree`]).
//! - [`sorted_store`] — the density-sorted two-part layout
//!   ([`PartitionedData`]).
//! - [`extraction`] — threshold extraction ([`HybridExtract`]).
//! - [`density`] — the low-resolution density grids fed to the volume
//!   renderer ([`DensityGrid`]).
//! - [`parallel`] — the multi-node (domain-decomposed) partitioning path
//!   the paper runs when a time step exceeds one node's memory.

pub mod builder;
pub mod density;
pub mod extraction;
pub mod node;
pub mod parallel;
pub mod plots;
pub mod sorted_store;
pub mod store_io;

pub use builder::{partition, BuildParams};
pub use density::DensityGrid;
pub use extraction::HybridExtract;
pub use node::{Node, Octree};
pub use parallel::partition_parallel;
pub use plots::PlotType;
pub use sorted_store::PartitionedData;
