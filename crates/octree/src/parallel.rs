//! Domain-decomposed parallel partitioning.
//!
//! "If the data exceeds the amount of memory available on one node of the
//! supercomputer, it can also be run on multiple nodes: the volume is
//! divided up between nodes and particles are assigned to the
//! corresponding node once they are read from disk" (§2.3). Here the
//! "nodes" are Rayon tasks: the root's octants are built independently in
//! parallel and grafted under a common root, producing the same tree shape
//! as the serial build for the same parameters.

use crate::builder::BuildParams;
use crate::node::{Node, Octree};
use crate::plots::PlotType;
use crate::sorted_store::PartitionedData;
use accelviz_beam::particle::Particle;
use accelviz_math::{Aabb, Vec3};
use rayon::prelude::*;

/// Partitions a particle dump using the multi-node (domain-decomposed)
/// strategy: the root volume is split into its 8 octants, particles are
/// routed to their octant, each octant's subtree is built in parallel, and
/// the pieces are merged into one density-sorted store.
pub fn partition_parallel(
    particles: &[Particle],
    plot: PlotType,
    params: BuildParams,
) -> PartitionedData {
    if particles.is_empty() || params.max_depth == 0 {
        return crate::builder::partition(particles, plot, params);
    }
    let points: Vec<Vec3> = particles.iter().map(|p| plot.project(p)).collect();
    let bounds = padded_bounds(&points);

    // Route particles to root octants (the "assignment" phase).
    let mut buckets: [Vec<u32>; 8] = Default::default();
    for (i, &q) in points.iter().enumerate() {
        buckets[bounds.octant_index(q)].push(i as u32);
    }

    // Build each octant subtree in parallel.
    struct Piece {
        nodes: Vec<Node>,
        /// (local leaf node index, particle indices) per leaf.
        leaves: Vec<(u32, Vec<u32>)>,
    }
    let pieces: Vec<Piece> = (0..8usize)
        .into_par_iter()
        .map(|oct| {
            let sub_bounds = bounds.octant(oct);
            let items = &buckets[oct];
            let mut nodes = vec![Node::leaf(sub_bounds, 1)];
            nodes[0].count = items.len() as u64;
            let mut leaf_items: Vec<Vec<u32>> = vec![items.clone()];
            let mut leaf_slots: Vec<u32> = vec![0];
            let mut cursor = 0;
            while cursor < leaf_slots.len() {
                let node_idx = leaf_slots[cursor] as usize;
                let (depth, nb, count) = {
                    let n = &nodes[node_idx];
                    (n.depth, n.bounds, n.count as usize)
                };
                if depth >= params.max_depth || count <= params.leaf_capacity {
                    cursor += 1;
                    continue;
                }
                let first_child = nodes.len() as u32;
                for i in 0..8 {
                    nodes.push(Node::leaf(nb.octant(i), depth + 1));
                }
                nodes[node_idx].set_children(first_child);
                let its = std::mem::take(&mut leaf_items[cursor]);
                let mut sub: [Vec<u32>; 8] = Default::default();
                for idx in its {
                    sub[nb.octant_index(points[idx as usize])].push(idx);
                }
                for (i, bucket) in sub.into_iter().enumerate() {
                    nodes[first_child as usize + i].count = bucket.len() as u64;
                    leaf_slots.push(first_child + i as u32);
                    leaf_items.push(bucket);
                }
                cursor += 1;
            }
            let leaves = leaf_slots
                .into_iter()
                .zip(leaf_items)
                .filter(|(slot, _)| nodes[*slot as usize].is_leaf())
                .collect();
            Piece { nodes, leaves }
        })
        .collect();

    // Graft the 8 subtrees under one root, re-basing child pointers.
    let mut nodes = vec![Node::leaf(bounds, 0)];
    nodes[0].count = particles.len() as u64;
    // The root's 8 children must be consecutive: reserve their slots first.
    let first_child = nodes.len() as u32; // == 1
    let mut piece_base = Vec::with_capacity(8);
    let mut extra_base = first_child as usize + 8;
    for piece in &pieces {
        piece_base.push((extra_base, piece.nodes.len()));
        extra_base += piece.nodes.len().saturating_sub(1);
    }
    nodes[0].set_children(first_child);
    // Place each piece's root at slot first_child+oct and its remaining
    // nodes at its reserved extra block.
    let mut leaf_slots: Vec<u32> = Vec::new();
    let mut leaf_items: Vec<Vec<u32>> = Vec::new();
    for _ in 0..8 {
        nodes.push(Node::leaf(bounds, 1)); // placeholders, fixed below
    }
    for (oct, piece) in pieces.iter().enumerate() {
        let (base, _) = piece_base[oct];
        let remap = |local: u32| -> u32 {
            if local == 0 {
                first_child + oct as u32
            } else {
                (base + local as usize - 1) as u32
            }
        };
        for (local, n) in piece.nodes.iter().enumerate() {
            let mut copy = *n;
            if !n.is_leaf() {
                // Children of `n` are 8 consecutive local slots starting at
                // some local index c; after remapping, non-root locals stay
                // consecutive because only slot 0 is relocated (and slot 0
                // is never a *child*).
                let c = n.child(0).unwrap();
                copy.set_children(remap(c));
            }
            let global = remap(local as u32) as usize;
            if global >= nodes.len() {
                nodes.resize(global + 1, Node::leaf(bounds, 0));
            }
            nodes[global] = copy;
        }
        for (slot, items) in &piece.leaves {
            leaf_slots.push(remap(*slot));
            leaf_items.push(items.clone());
        }
    }

    let tree = Octree {
        nodes,
        bounds,
        max_depth: params.max_depth,
    };
    PartitionedData::from_build(tree, leaf_slots, leaf_items, particles, plot)
}

fn padded_bounds(points: &[Vec3]) -> Aabb {
    let raw = Aabb::from_points(points.iter().copied());
    if raw.is_empty() {
        return Aabb::new(Vec3::ZERO, Vec3::ONE);
    }
    let size = raw.size();
    let pad = Vec3::new(
        (size.x * 1e-9).max(1e-12),
        (size.y * 1e-9).max(1e-12),
        (size.z * 1e-9).max(1e-12),
    );
    Aabb::new(raw.min, raw.max + pad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extraction::extract;
    use accelviz_beam::distribution::Distribution;

    #[test]
    fn parallel_build_covers_all_particles() {
        let ps = Distribution::default_beam().sample(4_000, 13);
        let params = BuildParams {
            max_depth: 4,
            leaf_capacity: 64,
            gradient_refinement: None,
        };
        let data = partition_parallel(&ps, PlotType::XYZ, params);
        data.validate().unwrap();
        assert_eq!(data.particles().len(), ps.len());
    }

    #[test]
    fn parallel_matches_serial_leaf_statistics() {
        let ps = Distribution::default_beam().sample(3_000, 17);
        let params = BuildParams {
            max_depth: 4,
            leaf_capacity: 32,
            gradient_refinement: None,
        };
        let serial = crate::builder::partition(&ps, PlotType::XYZ, params);
        let par = partition_parallel(&ps, PlotType::XYZ, params);
        // Same number of particles, same multiset of (density, len) leaf
        // groups (node layout may differ).
        let mut a: Vec<(u64, u64)> = serial
            .sorted_leaves()
            .iter()
            .map(|&li| {
                let n = &serial.tree().nodes[li as usize];
                (n.density.to_bits(), n.len)
            })
            .filter(|&(_, len)| len > 0)
            .collect();
        let mut b: Vec<(u64, u64)> = par
            .sorted_leaves()
            .iter()
            .map(|&li| {
                let n = &par.tree().nodes[li as usize];
                (n.density.to_bits(), n.len)
            })
            .filter(|&(_, len)| len > 0)
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_extraction_matches_serial() {
        let ps = Distribution::default_beam().sample(3_000, 19);
        let params = BuildParams {
            max_depth: 4,
            leaf_capacity: 32,
            gradient_refinement: None,
        };
        let serial = crate::builder::partition(&ps, PlotType::XYZ, params);
        let par = partition_parallel(&ps, PlotType::XYZ, params);
        for t in [1e3, 1e6, 1e9] {
            assert_eq!(
                extract(&serial, t).particles.len(),
                extract(&par, t).particles.len(),
                "threshold {t}"
            );
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let data = partition_parallel(&[], PlotType::XYZ, BuildParams::default());
        assert_eq!(data.particles().len(), 0);
        let ps = Distribution::default_beam().sample(5, 1);
        let data = partition_parallel(&ps, PlotType::XYZ, BuildParams::default());
        data.validate().unwrap();
        assert_eq!(data.particles().len(), 5);
    }
}
