//! Domain-decomposed parallel partitioning.
//!
//! "If the data exceeds the amount of memory available on one node of the
//! supercomputer, it can also be run on multiple nodes: the volume is
//! divided up between nodes and particles are assigned to the
//! corresponding node once they are read from disk" (§2.3). Here the
//! "nodes" are Rayon tasks: projection and octant assignment run as
//! chunked parallel passes, the root's octants are built independently in
//! parallel (sharing the serial builder's `grow_subtree` routine, so
//! splitting and gradient-refinement decisions are identical by
//! construction), and the pieces are grafted under a common root. The
//! result is bit-identical to the serial build for the same parameters at
//! every pool size: routing preserves ascending particle order, and the
//! sorted store orders equal-density groups by leaf geometry rather than
//! node layout.
//!

use crate::builder::{grow_subtree, BuildParams, Subtree};
use crate::node::{Node, Octree};
use crate::plots::PlotType;
use crate::sorted_store::PartitionedData;
use accelviz_beam::particle::Particle;
use accelviz_math::{Aabb, Vec3};
use rayon::prelude::*;

/// Partitions a particle dump using the multi-node (domain-decomposed)
/// strategy: the root volume is split into its 8 octants, particles are
/// routed to their octant, each octant's subtree is built in parallel, and
/// the pieces are merged into one density-sorted store. Produces the same
/// store as [`crate::builder::partition`], bit for bit.
pub fn partition_parallel(
    particles: &[Particle],
    plot: PlotType,
    params: BuildParams,
) -> PartitionedData {
    let mut span = accelviz_trace::span("octree.parallel_partition");
    span.arg("particles", particles.len() as f64);
    span.arg("pool_threads", rayon::current_num_threads() as f64);
    // Match the serial builder: non-finite particles (lost particles some
    // codes write as NaN/Inf) would poison bounds and octant assignment.
    let data = if particles.iter().all(|p| p.is_finite()) {
        partition_parallel_finite(particles, plot, params)
    } else {
        let finite: Vec<Particle> = particles
            .iter()
            .copied()
            .filter(|p| p.is_finite())
            .collect();
        partition_parallel_finite(&finite, plot, params)
    };
    let secs = span.elapsed_seconds();
    if secs > 0.0 {
        span.arg("particles_per_sec", particles.len() as f64 / secs);
    }
    data
}

fn partition_parallel_finite(
    particles: &[Particle],
    plot: PlotType,
    params: BuildParams,
) -> PartitionedData {
    // Inputs the serial builder keeps as a single root leaf (or cannot
    // subdivide at all) must not be fanned out into octants: the eager
    // 8-way split would produce a different tree shape than the serial
    // build for the same parameters.
    if particles.len() <= params.leaf_capacity || params.max_depth == 0 {
        return crate::builder::partition(particles, plot, params);
    }

    // Projection is embarrassingly parallel; collect preserves order.
    let points: Vec<Vec3> = {
        let _span = accelviz_trace::span("octree.project");
        particles.par_iter().map(|p| plot.project(p)).collect()
    };
    let bounds = padded_bounds(&points);

    // Route particles to root octants (the "assignment" phase) in chunks:
    // per-chunk histograms concatenated in chunk order leave every bucket
    // in ascending particle order — exactly the order the serial builder's
    // single pass produces.
    let route_span = accelviz_trace::span("octree.route");
    let chunk = points
        .len()
        .div_ceil((rayon::current_num_threads() * 4).max(1))
        .max(1024);
    let partials: Vec<[Vec<u32>; 8]> = points
        .par_chunks(chunk)
        .enumerate()
        .map(|(ci, ch)| {
            let base = (ci * chunk) as u32;
            let mut b: [Vec<u32>; 8] = Default::default();
            for (j, &q) in ch.iter().enumerate() {
                b[bounds.octant_index(q)].push(base + j as u32);
            }
            b
        })
        .collect();
    let mut buckets: [Vec<u32>; 8] = Default::default();
    for part in partials {
        for (o, v) in part.into_iter().enumerate() {
            buckets[o].extend(v);
        }
    }
    drop(route_span);

    // Build each octant subtree in parallel with the serial builder's own
    // subdivision routine (depths are global, so depth-limit and
    // gradient-refinement decisions match the serial build exactly).
    // The octant jobs run on pool worker threads, so each span names its
    // logical parent (the fan-out span) explicitly — the worker's own
    // thread-local span stack belongs to whatever it stole last.
    let fanout = accelviz_trace::span("octree.build_octants");
    let fanout_id = fanout.id();
    let pieces: Vec<Subtree> = buckets
        .into_par_iter()
        .enumerate()
        .map(|(oct, items)| {
            let mut span = accelviz_trace::span_child("octree.octant", fanout_id);
            span.arg("octant", oct as f64);
            span.arg("particles", items.len() as f64);
            grow_subtree(&points, bounds.octant(oct), 1, items, &params)
        })
        .collect();
    drop(fanout);

    // Graft the 8 subtrees under one root, re-basing child pointers.
    let mut nodes = vec![Node::leaf(bounds, 0)];
    nodes[0].count = particles.len() as u64;
    // The root's 8 children must be consecutive: reserve their slots first.
    let first_child = nodes.len() as u32; // == 1
    let mut piece_base = Vec::with_capacity(8);
    let mut extra_base = first_child as usize + 8;
    for piece in &pieces {
        piece_base.push((extra_base, piece.nodes.len()));
        extra_base += piece.nodes.len().saturating_sub(1);
    }
    nodes[0].set_children(first_child);
    // Place each piece's root at slot first_child+oct and its remaining
    // nodes at its reserved extra block.
    let mut leaf_slots: Vec<u32> = Vec::new();
    let mut leaf_items: Vec<Vec<u32>> = Vec::new();
    for _ in 0..8 {
        nodes.push(Node::leaf(bounds, 1)); // placeholders, fixed below
    }
    for (oct, piece) in pieces.into_iter().enumerate() {
        let (base, _) = piece_base[oct];
        let remap = |local: u32| -> u32 {
            if local == 0 {
                first_child + oct as u32
            } else {
                (base + local as usize - 1) as u32
            }
        };
        for (local, n) in piece.nodes.iter().enumerate() {
            let mut copy = *n;
            if !n.is_leaf() {
                // Children of `n` are 8 consecutive local slots starting at
                // some local index c; after remapping, non-root locals stay
                // consecutive because only slot 0 is relocated (and slot 0
                // is never a *child*).
                let c = n.child(0).unwrap();
                copy.set_children(remap(c));
            }
            let global = remap(local as u32) as usize;
            if global >= nodes.len() {
                nodes.resize(global + 1, Node::leaf(bounds, 0));
            }
            nodes[global] = copy;
        }
        for (slot, items) in piece.leaves {
            leaf_slots.push(remap(slot));
            leaf_items.push(items);
        }
    }

    let tree = Octree {
        nodes,
        bounds,
        max_depth: params.max_depth,
    };
    PartitionedData::from_build(tree, leaf_slots, leaf_items, particles, plot)
}

fn padded_bounds(points: &[Vec3]) -> Aabb {
    let raw = Aabb::from_points(points.iter().copied());
    if raw.is_empty() {
        return Aabb::new(Vec3::ZERO, Vec3::ONE);
    }
    let size = raw.size();
    let pad = Vec3::new(
        (size.x * 1e-9).max(1e-12),
        (size.y * 1e-9).max(1e-12),
        (size.z * 1e-9).max(1e-12),
    );
    Aabb::new(raw.min, raw.max + pad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GradientRefinement;
    use crate::extraction::extract;
    use accelviz_beam::distribution::Distribution;

    #[test]
    fn parallel_build_covers_all_particles() {
        let ps = Distribution::default_beam().sample(4_000, 13);
        let params = BuildParams {
            max_depth: 4,
            leaf_capacity: 64,
            gradient_refinement: None,
        };
        let data = partition_parallel(&ps, PlotType::XYZ, params);
        data.validate().unwrap();
        assert_eq!(data.particles().len(), ps.len());
    }

    #[test]
    fn parallel_matches_serial_leaf_statistics() {
        let ps = Distribution::default_beam().sample(3_000, 17);
        let params = BuildParams {
            max_depth: 4,
            leaf_capacity: 32,
            gradient_refinement: None,
        };
        let serial = crate::builder::partition(&ps, PlotType::XYZ, params);
        let par = partition_parallel(&ps, PlotType::XYZ, params);
        // Same number of particles, same multiset of (density, len) leaf
        // groups (node layout may differ).
        let mut a: Vec<(u64, u64)> = serial
            .sorted_leaves()
            .iter()
            .map(|&li| {
                let n = &serial.tree().nodes[li as usize];
                (n.density.to_bits(), n.len)
            })
            .filter(|&(_, len)| len > 0)
            .collect();
        let mut b: Vec<(u64, u64)> = par
            .sorted_leaves()
            .iter()
            .map(|&li| {
                let n = &par.tree().nodes[li as usize];
                (n.density.to_bits(), n.len)
            })
            .filter(|&(_, len)| len > 0)
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_particle_file_is_bit_identical_to_serial() {
        let ps = Distribution::default_beam().sample(6_000, 23);
        let params = BuildParams {
            max_depth: 5,
            leaf_capacity: 32,
            gradient_refinement: None,
        };
        let serial = crate::builder::partition(&ps, PlotType::XYZ, params);
        let par = partition_parallel(&ps, PlotType::XYZ, params);
        assert_eq!(serial.particles(), par.particles());
        assert_eq!(serial.tree().nodes.len(), par.tree().nodes.len());
        let dens = |d: &PartitionedData| -> Vec<(u64, u64)> {
            d.sorted_leaves()
                .iter()
                .map(|&li| {
                    let n = &d.tree().nodes[li as usize];
                    (n.density.to_bits(), n.len)
                })
                .collect()
        };
        assert_eq!(dens(&serial), dens(&par));
    }

    #[test]
    fn parallel_applies_gradient_refinement_like_serial() {
        let ps = Distribution::default_beam().sample(20_000, 29);
        let params = BuildParams {
            max_depth: 3,
            leaf_capacity: 32,
            gradient_refinement: Some(GradientRefinement {
                extra_depth: 2,
                contrast_threshold: 6.0,
            }),
        };
        let serial = crate::builder::partition(&ps, PlotType::XYZ, params);
        let par = partition_parallel(&ps, PlotType::XYZ, params);
        assert!(par.tree().deepest_level() > 3, "refinement must deepen");
        assert_eq!(serial.tree().deepest_level(), par.tree().deepest_level());
        assert_eq!(serial.tree().nodes.len(), par.tree().nodes.len());
        assert_eq!(serial.particles(), par.particles());
    }

    #[test]
    fn parallel_drops_non_finite_particles_like_serial() {
        let mut ps = Distribution::default_beam().sample(2_000, 31);
        ps[7].position.y = f64::NAN;
        ps[600].momentum.x = f64::INFINITY;
        let params = BuildParams {
            max_depth: 4,
            leaf_capacity: 32,
            gradient_refinement: None,
        };
        let serial = crate::builder::partition(&ps, PlotType::XYZ, params);
        let par = partition_parallel(&ps, PlotType::XYZ, params);
        assert_eq!(par.particles().len(), 1_998);
        assert_eq!(serial.particles(), par.particles());
    }

    #[test]
    fn parallel_extraction_matches_serial() {
        let ps = Distribution::default_beam().sample(3_000, 19);
        let params = BuildParams {
            max_depth: 4,
            leaf_capacity: 32,
            gradient_refinement: None,
        };
        let serial = crate::builder::partition(&ps, PlotType::XYZ, params);
        let par = partition_parallel(&ps, PlotType::XYZ, params);
        for t in [1e3, 1e6, 1e9] {
            assert_eq!(
                extract(&serial, t).particles.len(),
                extract(&par, t).particles.len(),
                "threshold {t}"
            );
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let data = partition_parallel(&[], PlotType::XYZ, BuildParams::default());
        assert_eq!(data.particles().len(), 0);
        let ps = Distribution::default_beam().sample(5, 1);
        let data = partition_parallel(&ps, PlotType::XYZ, BuildParams::default());
        data.validate().unwrap();
        assert_eq!(data.particles().len(), 5);
        // Inputs under the leaf capacity stay a single root leaf, exactly
        // like the serial build (the old fan-out split them into octants).
        assert_eq!(data.tree().nodes.len(), 1);
    }
}
