//! Low-resolution density grids: the "volume texture" side of the hybrid
//! representation.
//!
//! The hybrid method renders high-density regions with "fast
//! low-resolution volume rendering" (§2.2); this module bins particles
//! into a regular grid of point density that the software volume renderer
//! consumes as a 3-D texture.

use crate::plots::PlotType;
use accelviz_beam::particle::Particle;
use accelviz_math::{trilinear, Aabb, Vec3};
use rayon::prelude::*;

/// A regular 3-D grid of particle density over a bounding box.
#[derive(Clone, Debug, PartialEq)]
pub struct DensityGrid {
    dims: [usize; 3],
    bounds: Aabb,
    /// Density values, x-fastest layout (`data[x + dims0*(y + dims1*z)]`),
    /// in particles per cell.
    data: Vec<f32>,
    max_value: f32,
}

impl DensityGrid {
    /// Bins projected particles into a `dims`-resolution grid over
    /// `bounds`. Counts are per cell; out-of-bounds particles are ignored.
    pub fn from_particles(
        particles: &[Particle],
        plot: PlotType,
        bounds: Aabb,
        dims: [usize; 3],
    ) -> DensityGrid {
        assert!(dims.iter().all(|&d| d > 0), "grid dims must be positive");
        let n = dims[0] * dims[1] * dims[2];

        // Parallel binning: per-thread chunks produce partial histograms
        // that are then reduced. For the grid sizes used here (≤ 256³) a
        // chunked fold keeps memory reasonable. The chunking (and thus
        // the grouping of the f32 additions) depends on the pool size,
        // but the result does not: cells hold integer counts, and f32
        // sums of integers are exact far beyond any realistic per-cell
        // occupancy, so every grouping produces identical bits.
        let chunk = (particles.len() / rayon::current_num_threads().max(1)).max(1024);
        let data = particles
            .par_chunks(chunk)
            .fold(
                || vec![0.0f32; n],
                |mut acc, ps| {
                    for p in ps {
                        let q = plot.project(p);
                        if let Some(idx) = cell_index(&bounds, dims, q) {
                            acc[idx] += 1.0;
                        }
                    }
                    acc
                },
            )
            .reduce(
                || vec![0.0f32; n],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += y;
                    }
                    a
                },
            );
        let max_value = data.iter().copied().fold(0.0f32, f32::max);
        DensityGrid {
            dims,
            bounds,
            data,
            max_value,
        }
    }

    /// An all-zero grid (useful for incremental accumulation in tests).
    pub fn zeros(bounds: Aabb, dims: [usize; 3]) -> DensityGrid {
        assert!(dims.iter().all(|&d| d > 0));
        DensityGrid {
            dims,
            bounds,
            data: vec![0.0; dims[0] * dims[1] * dims[2]],
            max_value: 0.0,
        }
    }

    /// Reconstructs a grid from previously computed cell values, e.g. when
    /// decoding a grid that was serialized for network transfer. `data`
    /// must be in x-fastest layout with exactly `dims[0]*dims[1]*dims[2]`
    /// entries.
    pub fn from_raw(bounds: Aabb, dims: [usize; 3], data: Vec<f32>) -> DensityGrid {
        assert!(dims.iter().all(|&d| d > 0), "grid dims must be positive");
        assert_eq!(
            data.len(),
            dims[0] * dims[1] * dims[2],
            "cell data must match grid dims"
        );
        let max_value = data.iter().copied().fold(0.0f32, f32::max);
        DensityGrid {
            dims,
            bounds,
            data,
            max_value,
        }
    }

    /// Grid resolution.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Bounds the grid covers.
    pub fn bounds(&self) -> &Aabb {
        &self.bounds
    }

    /// Raw cell values (x-fastest layout).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Largest cell value.
    pub fn max_value(&self) -> f32 {
        self.max_value
    }

    /// Total of all cells (= number of binned particles).
    pub fn total(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Cell value at integer coordinates (clamped to the grid).
    pub fn at(&self, x: usize, y: usize, z: usize) -> f32 {
        let x = x.min(self.dims[0] - 1);
        let y = y.min(self.dims[1] - 1);
        let z = z.min(self.dims[2] - 1);
        self.data[x + self.dims[0] * (y + self.dims[1] * z)]
    }

    /// Trilinearly interpolated, max-normalized density at a world-space
    /// point (0 outside the grid, in [0, 1] inside). This is the "3-D
    /// texture fetch" of the software volume renderer.
    pub fn sample_normalized(&self, p: Vec3) -> f64 {
        if self.max_value <= 0.0 {
            return 0.0;
        }
        let t = self.bounds.normalized_coords(p);
        if !(0.0..=1.0).contains(&t.x) || !(0.0..=1.0).contains(&t.y) || !(0.0..=1.0).contains(&t.z)
        {
            return 0.0;
        }
        // Cell-centered sampling.
        let fx = (t.x * self.dims[0] as f64 - 0.5).clamp(0.0, (self.dims[0] - 1) as f64);
        let fy = (t.y * self.dims[1] as f64 - 0.5).clamp(0.0, (self.dims[1] - 1) as f64);
        let fz = (t.z * self.dims[2] as f64 - 0.5).clamp(0.0, (self.dims[2] - 1) as f64);
        let (x0, y0, z0) = (
            fx.floor() as usize,
            fy.floor() as usize,
            fz.floor() as usize,
        );
        let (x1, y1, z1) = (
            (x0 + 1).min(self.dims[0] - 1),
            (y0 + 1).min(self.dims[1] - 1),
            (z0 + 1).min(self.dims[2] - 1),
        );
        let c = [
            self.at(x0, y0, z0) as f64,
            self.at(x1, y0, z0) as f64,
            self.at(x0, y1, z0) as f64,
            self.at(x1, y1, z0) as f64,
            self.at(x0, y0, z1) as f64,
            self.at(x1, y0, z1) as f64,
            self.at(x0, y1, z1) as f64,
            self.at(x1, y1, z1) as f64,
        ];
        trilinear(&c, fx - x0 as f64, fy - y0 as f64, fz - z0 as f64) / self.max_value as f64
    }

    /// Size of this grid as a 3-D texture: one byte per voxel after the
    /// transfer-function palette lookup (the paletted-texture mode the
    /// paper's hardware used).
    pub fn texture_bytes(&self) -> u64 {
        (self.dims[0] * self.dims[1] * self.dims[2]) as u64
    }

    /// Sum-pools the grid by `factor` along each axis: the low-depth
    /// volume a progressive stream sends first. Each coarse cell holds
    /// the exact particle count of the `factor`³ fine cells it covers
    /// (edge cells cover the remainder), so `total()` is preserved and
    /// the result is still a count grid — `f32` sums of integer counts
    /// are exact far beyond any realistic occupancy, and the serial
    /// x-fastest accumulation order makes the output deterministic.
    pub fn downsample(&self, factor: usize) -> DensityGrid {
        assert!(factor > 0, "downsample factor must be positive");
        let nd = [
            self.dims[0].div_ceil(factor),
            self.dims[1].div_ceil(factor),
            self.dims[2].div_ceil(factor),
        ];
        let mut data = vec![0.0f32; nd[0] * nd[1] * nd[2]];
        for z in 0..self.dims[2] {
            for y in 0..self.dims[1] {
                for x in 0..self.dims[0] {
                    let coarse = (x / factor) + nd[0] * ((y / factor) + nd[1] * (z / factor));
                    data[coarse] += self.data[x + self.dims[0] * (y + self.dims[1] * z)];
                }
            }
        }
        DensityGrid::from_raw(self.bounds, nd, data)
    }
}

/// Flat cell index of a point, or `None` when outside the bounds.
fn cell_index(bounds: &Aabb, dims: [usize; 3], p: Vec3) -> Option<usize> {
    let t = bounds.normalized_coords(p);
    if !(0.0..=1.0).contains(&t.x) || !(0.0..=1.0).contains(&t.y) || !(0.0..=1.0).contains(&t.z) {
        return None;
    }
    let x = ((t.x * dims[0] as f64) as usize).min(dims[0] - 1);
    let y = ((t.y * dims[1] as f64) as usize).min(dims[1] - 1);
    let z = ((t.z * dims[2] as f64) as usize).min(dims[2] - 1);
    Some(x + dims[0] * (y + dims[1] * z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_beam::distribution::Distribution;

    fn unit_bounds() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::ONE)
    }

    #[test]
    fn binning_counts_every_inside_particle() {
        let ps = Distribution::default_beam().sample(5_000, 3);
        let bounds = Aabb::from_points(ps.iter().map(|p| PlotType::XYZ.project(p)));
        let grid = DensityGrid::from_particles(&ps, PlotType::XYZ, bounds, [16, 16, 16]);
        assert_eq!(grid.total() as usize, 5_000);
        assert!(grid.max_value() >= 1.0);
    }

    #[test]
    fn out_of_bounds_particles_are_ignored() {
        let ps = Distribution::default_beam().sample(1_000, 3);
        let tiny = Aabb::new(Vec3::splat(10.0), Vec3::splat(11.0));
        let grid = DensityGrid::from_particles(&ps, PlotType::XYZ, tiny, [4, 4, 4]);
        assert_eq!(grid.total(), 0.0);
        assert_eq!(grid.max_value(), 0.0);
        assert_eq!(grid.sample_normalized(Vec3::splat(10.5)), 0.0);
    }

    #[test]
    fn single_particle_lands_in_the_right_cell() {
        let p = accelviz_beam::particle::Particle::at_rest(Vec3::new(0.9, 0.1, 0.5));
        let grid = DensityGrid::from_particles(&[p], PlotType::XYZ, unit_bounds(), [2, 2, 2]);
        // x = 0.9 → cell 1, y = 0.1 → cell 0, z = 0.5 → cell 1.
        assert_eq!(grid.at(1, 0, 1), 1.0);
        assert_eq!(grid.total(), 1.0);
    }

    #[test]
    fn sample_normalized_is_in_unit_range_and_peaks_at_mass() {
        let ps = Distribution::default_beam().sample(20_000, 3);
        let bounds = Aabb::from_points(ps.iter().map(|p| PlotType::XYZ.project(p)));
        let grid = DensityGrid::from_particles(&ps, PlotType::XYZ, bounds, [32, 32, 32]);
        let center = grid.sample_normalized(bounds.center());
        let corner = grid.sample_normalized(bounds.min);
        assert!((0.0..=1.0).contains(&center));
        assert!(center > corner, "gaussian beam peaks at center");
    }

    #[test]
    fn texture_bytes_budget() {
        let g64 = DensityGrid::zeros(unit_bounds(), [64, 64, 64]);
        let g256 = DensityGrid::zeros(unit_bounds(), [256, 256, 256]);
        assert_eq!(g64.texture_bytes(), 64 * 64 * 64);
        // The paper's Figure 1 contrast: 256³ needs 64× the texture memory
        // of 64³.
        assert_eq!(g256.texture_bytes() / g64.texture_bytes(), 64);
    }

    #[test]
    fn sampling_outside_returns_zero() {
        let ps = Distribution::default_beam().sample(100, 3);
        let bounds = unit_bounds();
        let grid = DensityGrid::from_particles(&ps, PlotType::XYZ, bounds, [4, 4, 4]);
        assert_eq!(grid.sample_normalized(Vec3::splat(2.0)), 0.0);
        assert_eq!(grid.sample_normalized(Vec3::splat(-0.1)), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_dims_panic() {
        let _ = DensityGrid::zeros(unit_bounds(), [0, 4, 4]);
    }

    #[test]
    fn downsample_preserves_mass_and_covers_remainders() {
        let ps = Distribution::default_beam().sample(10_000, 7);
        let bounds = Aabb::from_points(ps.iter().map(|p| PlotType::XYZ.project(p)));
        // 17 is deliberately not divisible by 4: edge cells must absorb
        // the remainder instead of dropping it.
        let grid = DensityGrid::from_particles(&ps, PlotType::XYZ, bounds, [17, 16, 8]);
        let coarse = grid.downsample(4);
        assert_eq!(coarse.dims(), [5, 4, 2]);
        assert_eq!(coarse.bounds(), grid.bounds());
        assert_eq!(coarse.total(), grid.total(), "sum pooling preserves counts");
        assert!(coarse.max_value() >= grid.max_value());
        assert_eq!(coarse.texture_bytes(), 5 * 4 * 2);
    }

    #[test]
    fn downsample_by_one_is_identity() {
        let ps = Distribution::default_beam().sample(1_000, 9);
        let bounds = Aabb::from_points(ps.iter().map(|p| PlotType::XYZ.project(p)));
        let grid = DensityGrid::from_particles(&ps, PlotType::XYZ, bounds, [8, 8, 8]);
        assert_eq!(grid.downsample(1), grid);
    }

    #[test]
    fn downsample_known_cells() {
        // 4×2×1 grid, factor 2 → 2×1×1; coarse cells sum their quadrants.
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let grid = DensityGrid::from_raw(unit_bounds(), [4, 2, 1], data);
        let coarse = grid.downsample(2);
        assert_eq!(coarse.dims(), [2, 1, 1]);
        assert_eq!(
            coarse.data(),
            &[1.0 + 2.0 + 5.0 + 6.0, 3.0 + 4.0 + 7.0 + 8.0]
        );
    }
}
