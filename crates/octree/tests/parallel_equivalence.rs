//! Property: the domain-decomposed parallel partitioner and the serial
//! builder produce the *same* density-sorted store — bit-identical
//! particle file, identical sorted leaf (density, len) sequence, equal
//! node count — for arbitrary particle clouds, depth limits, leaf
//! capacities, and gradient-refinement settings. This must hold at every
//! pool size; the suite is additionally run under `RAYON_NUM_THREADS=1`
//! and `4` in CI (and see `pool_size_one.rs` for an in-repo single-thread
//! run).

use accelviz_beam::particle::Particle;
use accelviz_octree::builder::{partition, BuildParams, GradientRefinement};
use accelviz_octree::parallel::partition_parallel;
use accelviz_octree::plots::PlotType;
use accelviz_octree::sorted_store::PartitionedData;
use proptest::prelude::*;

/// Clouds with real density contrast: a tight core plus a diffuse halo
/// (uniform clouds rarely exercise deep subdivision or refinement).
fn arb_cloud() -> impl Strategy<Value = Vec<Particle>> {
    let core = prop::collection::vec(
        (
            -0.1..0.1f64,
            -1.0..1.0f64,
            -0.1..0.1f64,
            -1.0..1.0f64,
            -0.1..0.1f64,
            -1.0..1.0f64,
        ),
        0..400,
    );
    let halo = prop::collection::vec(
        (
            -50.0..50.0f64,
            -1.0..1.0f64,
            -50.0..50.0f64,
            -1.0..1.0f64,
            -50.0..50.0f64,
            -1.0..1.0f64,
        ),
        0..400,
    );
    (core, halo).prop_map(|(core, halo)| {
        core.into_iter()
            .chain(halo)
            .map(|(x, px, y, py, z, pz)| Particle::from_array([x, px, y, py, z, pz]))
            .collect()
    })
}

fn arb_params() -> impl Strategy<Value = BuildParams> {
    (1u32..5, 1usize..64, 0u32..3, 2.0..10.0f64).prop_map(
        |(max_depth, leaf_capacity, extra_depth, contrast_threshold)| BuildParams {
            max_depth,
            leaf_capacity,
            gradient_refinement: (extra_depth > 0).then_some(GradientRefinement {
                extra_depth,
                contrast_threshold,
            }),
        },
    )
}

/// The equivalence the store guarantees: same particle file (bit for
/// bit), same sorted (density, len) leaf sequence, same node count.
fn assert_stores_equal(serial: &PartitionedData, par: &PartitionedData) {
    assert_eq!(serial.particles(), par.particles(), "particle files differ");
    assert_eq!(
        serial.tree().nodes.len(),
        par.tree().nodes.len(),
        "node counts differ"
    );
    let leaf_seq = |d: &PartitionedData| -> Vec<(u64, u64)> {
        d.sorted_leaves()
            .iter()
            .map(|&li| {
                let n = &d.tree().nodes[li as usize];
                (n.density.to_bits(), n.len)
            })
            .collect()
    };
    assert_eq!(leaf_seq(serial), leaf_seq(par), "sorted leaf groups differ");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_store_is_bit_identical_to_serial(
        cloud in arb_cloud(),
        params in arb_params(),
    ) {
        let serial = partition(&cloud, PlotType::XYZ, params);
        let par = partition_parallel(&cloud, PlotType::XYZ, params);
        serial.validate().expect("serial store invariants");
        par.validate().expect("parallel store invariants");
        assert_stores_equal(&serial, &par);
    }

    #[test]
    fn equivalence_survives_momentum_plots_and_duplicates(
        cloud in arb_cloud(),
        params in arb_params(),
        dup in 0usize..8,
    ) {
        // Duplicated particles stress the tie-break: equal-density leaves
        // and equal positions must still order identically.
        let mut cloud = cloud;
        let n = cloud.len();
        for i in 0..dup.min(n) {
            let p = cloud[i * n / dup.max(1) % n];
            cloud.push(p);
        }
        let serial = partition(&cloud, PlotType::MOMENTUM, params);
        let par = partition_parallel(&cloud, PlotType::MOMENTUM, params);
        assert_stores_equal(&serial, &par);
    }
}
