//! Runs the parallel/serial equivalence check with the pool pinned to a
//! single thread. Each integration-test file is its own process, so
//! setting `RAYON_NUM_THREADS` here (before anything touches the pool)
//! pins this whole binary to one worker regardless of the machine —
//! covering the degenerate pool size without a separate CI job.

use accelviz_beam::distribution::Distribution;
use accelviz_octree::builder::{partition, BuildParams, GradientRefinement};
use accelviz_octree::parallel::partition_parallel;
use accelviz_octree::plots::PlotType;
use std::sync::Once;

static PIN: Once = Once::new();

fn pin_single_thread() {
    PIN.call_once(|| {
        // Safe here: this runs before the pool exists, and the pool reads
        // the variable exactly once at creation.
        std::env::set_var("RAYON_NUM_THREADS", "1");
    });
}

#[test]
fn pool_honors_the_env_override() {
    pin_single_thread();
    assert_eq!(rayon::current_num_threads(), 1);
}

#[test]
fn one_thread_pool_matches_serial_build() {
    pin_single_thread();
    let ps = Distribution::default_beam().sample(8_000, 37);
    for params in [
        BuildParams {
            max_depth: 4,
            leaf_capacity: 32,
            gradient_refinement: None,
        },
        BuildParams {
            max_depth: 3,
            leaf_capacity: 16,
            gradient_refinement: Some(GradientRefinement {
                extra_depth: 2,
                contrast_threshold: 6.0,
            }),
        },
    ] {
        let serial = partition(&ps, PlotType::XYZ, params);
        let par = partition_parallel(&ps, PlotType::XYZ, params);
        assert_eq!(serial.particles(), par.particles());
        assert_eq!(serial.tree().nodes.len(), par.tree().nodes.len());
    }
}
