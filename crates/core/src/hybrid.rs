//! The hybrid representation: extracted halo points + low-resolution
//! density volume (§2.1–2.3).

use accelviz_beam::io::BYTES_PER_PARTICLE;
use accelviz_beam::particle::Particle;
use accelviz_math::{Aabb, Vec3};
use accelviz_octree::density::DensityGrid;
use accelviz_octree::extraction::extract;
use accelviz_octree::plots::PlotType;
use accelviz_octree::sorted_store::PartitionedData;

/// One time step in hybrid form: the low-density particles kept for point
/// rendering plus the density volume for texture-based volume rendering.
#[derive(Clone, Debug, PartialEq)]
pub struct HybridFrame {
    /// Recorded step index this frame came from.
    pub step: usize,
    /// The plot projection this frame was built for.
    pub plot: PlotType,
    /// Plot-space bounds.
    pub bounds: Aabb,
    /// The kept (halo) particles, in ascending-leaf-density order.
    pub points: Vec<Particle>,
    /// Normalized leaf density of each kept particle's octree node,
    /// parallel to `points` — what the point transfer function consumes.
    pub point_densities: Vec<f64>,
    /// The low-resolution density volume.
    pub grid: DensityGrid,
    /// The extraction threshold (absolute leaf density).
    pub threshold: f64,
    /// Particles discarded by extraction (represented only by the volume).
    pub discarded: u64,
}

impl HybridFrame {
    /// Builds a hybrid frame from partitioned data: extraction at
    /// `threshold` for the points, plus binning of *all* particles into a
    /// `volume_dims` grid.
    pub fn from_partition(
        data: &PartitionedData,
        step: usize,
        threshold: f64,
        volume_dims: [usize; 3],
    ) -> HybridFrame {
        let mut span = accelviz_trace::span("core.hybrid_frame");
        let ex = extract(data, threshold);
        if span.is_active() {
            span.arg("step", step as f64);
            span.arg("threshold", threshold);
            span.arg("points_kept", ex.particles.len() as f64);
            span.arg("voxelized", ex.discarded as f64);
        }
        let bounds = data.tree().bounds;
        let grid = DensityGrid::from_particles(data.particles(), data.plot(), bounds, volume_dims);

        // Per-particle normalized node densities (for the point TF): walk
        // the kept leaves in order; their groups tile the kept prefix.
        let max_density = data
            .sorted_leaves()
            .iter()
            .map(|&li| data.tree().nodes[li as usize].density)
            .fold(0.0f64, f64::max)
            .max(1e-300);
        let mut point_densities = Vec::with_capacity(ex.particles.len());
        for &li in data.sorted_leaves().iter().take(ex.leaves_kept) {
            let n = &data.tree().nodes[li as usize];
            for _ in 0..n.len {
                point_densities.push(n.density / max_density);
            }
        }
        debug_assert_eq!(point_densities.len(), ex.particles.len());

        HybridFrame {
            step,
            plot: data.plot(),
            bounds,
            points: ex.particles.to_vec(),
            point_densities,
            grid,
            threshold,
            discarded: ex.discarded,
        }
    }

    /// Projected plot-space positions of the kept points.
    pub fn point_positions(&self) -> Vec<Vec3> {
        self.points.iter().map(|p| self.plot.project(p)).collect()
    }

    /// Size of the point part in bytes (raw particle layout).
    pub fn point_bytes(&self) -> u64 {
        self.points.len() as u64 * BYTES_PER_PARTICLE
    }

    /// Size of the volume part in bytes (paletted 3-D texture).
    pub fn volume_bytes(&self) -> u64 {
        self.grid.texture_bytes()
    }

    /// Total hybrid frame size — the number the paper's "smaller than
    /// 100 MB" and frame-cache budgets are about.
    pub fn total_bytes(&self) -> u64 {
        self.point_bytes() + self.volume_bytes()
    }

    /// Compression relative to the raw dump this frame represents.
    pub fn compression_factor(&self) -> f64 {
        let raw = (self.points.len() as u64 + self.discarded) * BYTES_PER_PARTICLE;
        if self.total_bytes() == 0 {
            f64::INFINITY
        } else {
            raw as f64 / self.total_bytes() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_beam::distribution::Distribution;
    use accelviz_octree::builder::{partition, BuildParams};
    use accelviz_octree::extraction::threshold_for_budget;

    fn partitioned(n: usize) -> PartitionedData {
        let ps = Distribution::default_beam().sample(n, 33);
        partition(
            &ps,
            PlotType::XYZ,
            BuildParams {
                max_depth: 4,
                leaf_capacity: 64,
                gradient_refinement: None,
            },
        )
    }

    #[test]
    fn frame_keeps_prefix_and_bins_everything() {
        let data = partitioned(5_000);
        let t = threshold_for_budget(&data, 1_000);
        let frame = HybridFrame::from_partition(&data, 7, t, [16, 16, 16]);
        assert_eq!(frame.step, 7);
        assert!(frame.points.len() <= 1_000);
        assert_eq!(frame.points.len() as u64 + frame.discarded, 5_000);
        // The volume bins ALL particles, not just the kept ones.
        assert_eq!(frame.grid.total() as u64, 5_000);
        assert_eq!(frame.point_densities.len(), frame.points.len());
    }

    #[test]
    fn point_densities_are_normalized_and_sorted() {
        let data = partitioned(5_000);
        let t = threshold_for_budget(&data, 2_000);
        let frame = HybridFrame::from_partition(&data, 0, t, [8, 8, 8]);
        for w in frame.point_densities.windows(2) {
            assert!(w[0] <= w[1], "densities follow the sorted store order");
        }
        for &d in &frame.point_densities {
            assert!((0.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn byte_accounting() {
        let data = partitioned(2_000);
        let frame = HybridFrame::from_partition(&data, 0, f64::INFINITY, [16, 16, 16]);
        assert_eq!(frame.point_bytes(), 2_000 * 48);
        assert_eq!(frame.volume_bytes(), 16 * 16 * 16);
        assert_eq!(frame.total_bytes(), 2_000 * 48 + 4_096);
    }

    #[test]
    fn tighter_threshold_compresses_more() {
        let data = partitioned(5_000);
        let loose =
            HybridFrame::from_partition(&data, 0, threshold_for_budget(&data, 4_000), [16, 16, 16]);
        let tight =
            HybridFrame::from_partition(&data, 0, threshold_for_budget(&data, 200), [16, 16, 16]);
        assert!(tight.total_bytes() < loose.total_bytes());
        assert!(tight.compression_factor() > loose.compression_factor());
        assert!(tight.compression_factor() > 1.0);
    }

    #[test]
    fn point_positions_lie_in_bounds() {
        let data = partitioned(3_000);
        let t = threshold_for_budget(&data, 1_500);
        let frame = HybridFrame::from_partition(&data, 0, t, [8, 8, 8]);
        for p in frame.point_positions() {
            assert!(frame.bounds.contains(p));
        }
    }
}
