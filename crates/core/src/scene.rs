//! Scene assembly: rendering hybrid frames (Figure 4's decomposition) and
//! field-line sets (Figure 6's representations).

use crate::hybrid::HybridFrame;
use crate::transfer::TransferFunctionPair;
use accelviz_fieldlines::illuminated::illuminated_segments;
use accelviz_fieldlines::line::FieldLine;
use accelviz_fieldlines::sos::{sos_strip, SosParams};
use accelviz_fieldlines::style::LineStyle;
use accelviz_fieldlines::tube::{tube_triangles, TubeParams};
use accelviz_math::{Aabb, Rgba, Vec3};
use accelviz_octree::density::DensityGrid;
use accelviz_render::camera::Camera;
use accelviz_render::framebuffer::Framebuffer;
use accelviz_render::points::{keep_point, PointStyle};
use accelviz_render::rasterizer::{draw_triangle, draw_triangle_strip, RasterOptions};
use accelviz_render::shading::{shade_tube_fragment, Material};
use accelviz_render::texture::tube_bump_map;
use accelviz_render::transparency::TransparentQueue;
use accelviz_render::volume::{render_volume, ScalarField3, VolumeStyle};

/// Adapter: a [`DensityGrid`] as the volume renderer's scalar field.
pub struct GridField<'a>(pub &'a DensityGrid);

impl ScalarField3 for GridField<'_> {
    fn bounds(&self) -> Aabb {
        *self.0.bounds()
    }
    fn sample(&self, p: Vec3) -> f64 {
        self.0.sample_normalized(p)
    }
}

/// Which part of the hybrid image to render (Figure 4 shows all three).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RenderMode {
    /// Volume-rendered portion only.
    VolumeOnly,
    /// Point-rendered portion only.
    PointsOnly,
    /// The combined hybrid rendering.
    Hybrid,
}

/// Cost counters of a rendered scene.
#[derive(Clone, Copy, Debug, Default)]
pub struct SceneStats {
    /// Field samples taken by the volume ray-caster (fill-rate proxy).
    pub volume_samples: u64,
    /// Points actually splatted.
    pub points_drawn: usize,
    /// Triangles rasterized.
    pub triangles: usize,
    /// Fragments written by triangle rasterization.
    pub fragments: usize,
}

/// Renders a hybrid frame. The volume pass uses the pair's volume TF; the
/// point pass draws each particle with probability equal to the point
/// TF's fraction at its node density (the "three out of every four
/// points" rule), evaluated with the same deterministic hash as the
/// plain point renderer.
pub fn render_hybrid_frame(
    fb: &mut Framebuffer,
    camera: &Camera,
    frame: &HybridFrame,
    tfs: &TransferFunctionPair,
    mode: RenderMode,
    volume_style: &VolumeStyle,
    point_style: &PointStyle,
) -> SceneStats {
    let mut stats = SceneStats::default();

    if mode != RenderMode::PointsOnly {
        let field = GridField(&frame.grid);
        let vtf = tfs.volume;
        let transfer = move |d: f64| vtf.sample(d);
        stats.volume_samples = render_volume(fb, camera, &field, &transfer, volume_style);
    }

    if mode != RenderMode::VolumeOnly {
        let mut span = accelviz_trace::span("render.points_pass");
        let positions = frame.point_positions();
        let (w, h) = (fb.width(), fb.height());
        for (i, &p) in positions.iter().enumerate() {
            let fraction = tfs.point.fraction(frame.point_densities[i]);
            // Also honor any global subsample in the style.
            let keep = fraction * point_style.fraction;
            if keep < 1.0 && !keep_point(i as u64, keep) {
                continue;
            }
            let Some((px, py, z)) = camera.project_to_pixel(p, w, h) else {
                continue;
            };
            if !(-1.0..=1.0).contains(&z) {
                continue;
            }
            // Single-pixel splat at the paper's working scale; bigger
            // sizes go through the full splatter.
            let radius = point_style.size_px.max(0.5);
            let x0 = (px - radius).floor().max(0.0) as isize;
            let y0 = (py - radius).floor().max(0.0) as isize;
            let x1 = ((px + radius).ceil() as isize).min(w as isize - 1);
            let y1 = ((py + radius).ceil() as isize).min(h as isize - 1);
            for y in y0.max(0)..=y1.max(-1) {
                for x in x0.max(0)..=x1.max(-1) {
                    let dx = x as f64 + 0.5 - px;
                    let dy = y as f64 + 0.5 - py;
                    let d2 = (dx * dx + dy * dy) / (radius * radius);
                    if d2 > 1.0 {
                        continue;
                    }
                    let falloff = (1.0 - d2).sqrt() as f32;
                    let c = point_style.color.with_alpha(point_style.color.a * falloff);
                    fb.blend_fragment(x as usize, y as usize, z as f32, c, point_style.write_depth);
                }
            }
            stats.points_drawn += 1;
        }
        if span.is_active() {
            span.arg("points_drawn", stats.points_drawn as f64);
            span.arg("points_available", positions.len() as f64);
        }
    }
    stats
}

/// A dynamically calculated per-particle property used to color the
/// point-rendered halo at draw time.
///
/// §2.5: "Because points are drawn dynamically, they could be drawn (in
/// terms of color or opacity) based on some dynamically calculated
/// property that the scientist is interested in, such as temperature or
/// emittance. Volume-based rendering, because it is limited to
/// pre-calculated data, cannot allow dynamic changes like these." This is
/// exactly why these attributes take the raw [`HybridFrame::points`] and
/// need no re-extraction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointAttribute {
    /// The octree-node density (the default, what the point TF uses).
    NodeDensity,
    /// Transverse momentum magnitude √(pₓ² + p_y²) — a "temperature".
    TransverseMomentum,
    /// Longitudinal momentum p_z.
    LongitudinalMomentum,
    /// Transverse radius √(x² + y²) — halo-ness.
    TransverseRadius,
    /// Single-particle emittance-like action x·p_y − y·pₓ.
    AngularMomentum,
}

impl PointAttribute {
    /// Evaluates the attribute for one particle (with its normalized node
    /// density available).
    pub fn eval(&self, p: &accelviz_beam::particle::Particle, node_density: f64) -> f64 {
        match self {
            PointAttribute::NodeDensity => node_density,
            PointAttribute::TransverseMomentum => {
                (p.momentum.x * p.momentum.x + p.momentum.y * p.momentum.y).sqrt()
            }
            PointAttribute::LongitudinalMomentum => p.momentum.z,
            PointAttribute::TransverseRadius => p.transverse_radius(),
            PointAttribute::AngularMomentum => {
                p.position.x * p.momentum.y - p.position.y * p.momentum.x
            }
        }
    }
}

/// Renders the point part of a hybrid frame with per-point colors computed
/// *at draw time* from `attribute` through `palette` (a map from the
/// attribute value, normalized to its observed [min, max], to a color).
/// Returns the points drawn. This is the dynamic-recoloring path that the
/// precomputed volume representation cannot offer.
pub fn render_points_by_attribute(
    fb: &mut Framebuffer,
    camera: &Camera,
    frame: &HybridFrame,
    attribute: PointAttribute,
    palette: &dyn Fn(f64) -> Rgba,
    size_px: f64,
) -> usize {
    let positions = frame.point_positions();
    // Normalize the attribute over the frame.
    let values: Vec<f64> = frame
        .points
        .iter()
        .zip(&frame.point_densities)
        .map(|(p, &d)| attribute.eval(p, d))
        .collect();
    let (lo, hi) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = (hi - lo).max(1e-300);
    let (w, h) = (fb.width(), fb.height());
    let mut drawn = 0;
    for (i, &pos) in positions.iter().enumerate() {
        let Some((px, py, z)) = camera.project_to_pixel(pos, w, h) else {
            continue;
        };
        if !(-1.0..=1.0).contains(&z) {
            continue;
        }
        let color = palette((values[i] - lo) / span);
        let r = size_px.max(0.5);
        let x0 = (px - r).floor().max(0.0) as isize;
        let y0 = (py - r).floor().max(0.0) as isize;
        let x1 = ((px + r).ceil() as isize).min(w as isize - 1);
        let y1 = ((py + r).ceil() as isize).min(h as isize - 1);
        for y in y0.max(0)..=y1.max(-1) {
            for x in x0.max(0)..=x1.max(-1) {
                let dx = x as f64 + 0.5 - px;
                let dy = y as f64 + 0.5 - py;
                let d2 = (dx * dx + dy * dy) / (r * r);
                if d2 > 1.0 {
                    continue;
                }
                fb.blend_fragment(x as usize, y as usize, z as f32, color, false);
            }
        }
        drawn += 1;
    }
    drawn
}

/// The field-line representations of Figure 6 that the scene renderer can
/// draw.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineRepresentation {
    /// (a) conventional line drawing (flat color, 1-px strips).
    FlatLines,
    /// (b) illuminated streamlines.
    Illuminated,
    /// (c) conventional streamtubes.
    Streamtubes,
    /// (d) self-orienting surfaces with bump-mapped tube shading.
    SelfOrientingSurfaces,
    /// (e) wide textured ribbons with strand density by field strength.
    Ribbons,
    /// (f) self-orienting surfaces with the enhanced (two-light) shading.
    EnhancedLighting,
    /// (§3.3.2) self-orienting surfaces with dark halo rims for depth
    /// disambiguation.
    HaloedSos,
    /// (i) self-orienting surfaces drawn translucent (flat shading,
    /// back-to-front sorted — the paper's transparency trade-off).
    TransparentSos,
}

/// Renders a set of field lines in the chosen representation, styled by
/// field magnitude. Returns the cost counters (triangle counts are the
/// FIG6 comparison).
pub fn render_line_set(
    fb: &mut Framebuffer,
    camera: &Camera,
    lines: &[FieldLine],
    representation: LineRepresentation,
    style: &LineStyle,
    half_width: f64,
) -> SceneStats {
    let mut span = accelviz_trace::span("render.lines_pass");
    let mut stats = SceneStats::default();
    let eye = camera.eye;
    let material = Material::default();
    let bump = tube_bump_map(64);
    let sos_params = SosParams {
        half_width,
        ..Default::default()
    };

    match representation {
        LineRepresentation::FlatLines | LineRepresentation::Illuminated => {
            // Line primitives: rendered as thin (sub-pixel-ish) strips so
            // the software pass has something to rasterize; geometry cost
            // recorded as segments → 2 triangles each (the hardware would
            // use GL_LINES; the *comparative* counts in FIG6 use the
            // analytic segment counts, not these).
            for line in lines {
                // GL_LINES rasterizes at a 1-pixel minimum; give the thin
                // strip at least ~1 px of world-space width at the line's
                // distance so it cannot vanish between pixel centers.
                let dist = line.points.first().map(|p| p.distance(eye)).unwrap_or(1.0);
                let px_world = 1.0 / camera.pixels_per_world_unit(dist, fb.height()).max(1e-9);
                let thin = SosParams {
                    half_width: (half_width * 0.25).max(0.6 * px_world),
                    ..sos_params
                };
                let mut verts = sos_strip(line, eye, &thin);
                match representation {
                    LineRepresentation::FlatLines => {
                        let c = style.color_for(line.mean_magnitude());
                        for v in &mut verts {
                            v.color = c;
                        }
                    }
                    _ => {
                        let segs =
                            illuminated_segments(line, eye, style.color_for(line.mean_magnitude()));
                        for (i, v) in verts.iter_mut().enumerate() {
                            let si = (i / 2).min(segs.len().saturating_sub(1));
                            if !segs.is_empty() {
                                v.color = segs[si].color;
                            }
                        }
                    }
                }
                let shader = |_u: f64, _v: f64, c: Rgba| Some(c);
                let (t, f) =
                    draw_triangle_strip(fb, camera, &verts, &shader, RasterOptions::default());
                stats.triangles += t;
                stats.fragments += f;
            }
        }
        LineRepresentation::Streamtubes => {
            for line in lines {
                let params = TubeParams {
                    radius: half_width,
                    sides: 12,
                    color: style.color_for(line.mean_magnitude()),
                };
                let tris = tube_triangles(line, eye, &params);
                let shader = |_u: f64, _v: f64, c: Rgba| Some(c);
                for tri in &tris {
                    stats.fragments +=
                        draw_triangle(fb, camera, tri, &shader, RasterOptions::default());
                }
                stats.triangles += tris.len();
            }
        }
        LineRepresentation::SelfOrientingSurfaces => {
            for line in lines {
                let verts = style.styled_strip(line, eye, &sos_params);
                let shader = |_u: f64, v: f64, c: Rgba| shade_tube_fragment(&bump, &material, c, v);
                let (t, f) =
                    draw_triangle_strip(fb, camera, &verts, &shader, RasterOptions::default());
                stats.triangles += t;
                stats.fragments += f;
            }
        }
        LineRepresentation::EnhancedLighting => {
            // Figure 6(f): the offset second light varies thin strips
            // across their width; same geometry, pure texture math.
            for line in lines {
                let verts = style.styled_strip(line, eye, &sos_params);
                let shader = |_u: f64, v: f64, c: Rgba| {
                    accelviz_render::shading::shade_tube_fragment_enhanced(&bump, &material, c, v)
                };
                let (t, f) =
                    draw_triangle_strip(fb, camera, &verts, &shader, RasterOptions::default());
                stats.triangles += t;
                stats.fragments += f;
            }
        }
        LineRepresentation::HaloedSos => {
            // §3.3.2: a dark rim around the lit tube core clarifies the
            // ordering of overlapping lines. The halo map modulates the
            // bump-shaded fragment.
            let halo = accelviz_render::texture::halo_map(64, 0.3);
            for line in lines {
                let verts = style.styled_strip(line, eye, &sos_params);
                let shader = |_u: f64, v: f64, c: Rgba| {
                    let lit = shade_tube_fragment(&bump, &material, c, v)?;
                    let rim = halo.sample(0.0, v);
                    if rim.a < 0.5 {
                        return None;
                    }
                    Some(Rgba::new(
                        lit.r * rim.r,
                        lit.g * rim.g,
                        lit.b * rim.b,
                        lit.a,
                    ))
                };
                let (t, f) =
                    draw_triangle_strip(fb, camera, &verts, &shader, RasterOptions::default());
                stats.triangles += t;
                stats.fragments += f;
            }
        }
        LineRepresentation::Ribbons => {
            // Figure 6(e): few, wide strips; strand count textured by the
            // local field strength stands in for many individual lines.
            let max_mag = lines
                .iter()
                .flat_map(|l| l.magnitudes.iter().copied())
                .fold(0.0f64, f64::max)
                .max(1e-300);
            let ribbon_params = accelviz_fieldlines::ribbon::RibbonParams {
                strip: SosParams {
                    half_width: half_width * 5.0,
                    ..sos_params
                },
                max_strands: 8,
                max_magnitude: max_mag,
            };
            for line in lines {
                let (mut verts, strands) =
                    accelviz_fieldlines::ribbon::ribbon_strip(line, eye, &ribbon_params);
                style.restyle_strip(line, &mut verts);
                // One density texture per strand count, sampled by v.
                let maps: Vec<_> = (1..=8)
                    .map(|s| accelviz_render::texture::ribbon_density_map(64, s))
                    .collect();
                // Encode the strand count into the u texture coordinate so
                // the shader can pick the right map (the hardware would
                // bind per-segment textures).
                for (v, &s) in verts.iter_mut().zip(&strands) {
                    v.uv.0 = s as f64;
                }
                let shader = |u: f64, v: f64, c: Rgba| {
                    let s = (u.round() as usize).clamp(1, 8);
                    let tex = maps[s - 1].sample(0.0, v);
                    if tex.a < 0.5 {
                        return None;
                    }
                    Some(c)
                };
                let (t, f) =
                    draw_triangle_strip(fb, camera, &verts, &shader, RasterOptions::default());
                stats.triangles += t;
                stats.fragments += f;
            }
        }
        LineRepresentation::TransparentSos => {
            // §3.3.3: transparency disables bump mapping; triangles are
            // queued and composited back-to-front.
            let mut queue = TransparentQueue::new();
            for line in lines {
                let mut verts = style.styled_strip(line, eye, &sos_params);
                for v in &mut verts {
                    v.color = v.color.with_alpha(v.color.a * 0.5);
                }
                stats.triangles += verts.len().saturating_sub(2);
                queue.push_strip(camera, &verts);
            }
            stats.fragments += queue.flush(fb, camera);
        }
    }
    if span.is_active() {
        span.arg("lines", lines.len() as f64);
        span.arg("triangles", stats.triangles as f64);
        span.arg("fragments", stats.fragments as f64);
    }
    stats
}

/// Focus + context rendering (§3.3.3, Figure 6(i)): lines touching the
/// region of interest render fully opaque through the bump-shaded path;
/// everything else is de-emphasized with `context_alpha` transparency, so
/// "the interior structures can remain clear, and the global context is
/// not lost". Returns (focus stats, context stats).
pub fn render_focus_context(
    fb: &mut Framebuffer,
    camera: &Camera,
    lines: &[FieldLine],
    region: &accelviz_fieldlines::roi::Region,
    style: &LineStyle,
    half_width: f64,
    context_alpha: f32,
) -> (SceneStats, SceneStats) {
    let alphas = accelviz_fieldlines::roi::focus_alphas(lines, region, context_alpha);
    let mut focus = Vec::new();
    let mut context = Vec::new();
    for (line, &a) in lines.iter().zip(&alphas) {
        if a >= 1.0 {
            focus.push(line.clone());
        } else {
            context.push(line.clone());
        }
    }
    // Context first (translucent, sorted), focus on top (opaque, bump
    // shaded) — the opaque pass also writes depth so focus occludes
    // context correctly on overlap.
    let ctx_stats = render_line_set(
        fb,
        camera,
        &context,
        LineRepresentation::TransparentSos,
        style,
        half_width,
    );
    let focus_stats = render_line_set(
        fb,
        camera,
        &focus,
        LineRepresentation::SelfOrientingSurfaces,
        style,
        half_width,
    );
    (focus_stats, ctx_stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_beam::distribution::Distribution;
    use accelviz_octree::builder::{partition, BuildParams};
    use accelviz_octree::extraction::threshold_for_budget;
    use accelviz_octree::plots::PlotType;

    fn test_frame() -> HybridFrame {
        let ps = Distribution::default_beam().sample(4_000, 3);
        let data = partition(
            &ps,
            PlotType::XYZ,
            BuildParams {
                max_depth: 4,
                leaf_capacity: 64,
                gradient_refinement: None,
            },
        );
        let t = threshold_for_budget(&data, 1_500);
        HybridFrame::from_partition(&data, 0, t, [16, 16, 16])
    }

    fn camera_for(frame: &HybridFrame) -> Camera {
        let c = frame.bounds.center();
        let d = frame.bounds.longest_edge() * 2.5;
        Camera::orbit(c, d, 0.4, 0.3, 1.0)
    }

    #[test]
    fn hybrid_mode_draws_both_parts() {
        let frame = test_frame();
        let cam = camera_for(&frame);
        let tfs = TransferFunctionPair::linked_at(0.05, 0.02);
        let mut fb = Framebuffer::new(96, 96);
        let stats = render_hybrid_frame(
            &mut fb,
            &cam,
            &frame,
            &tfs,
            RenderMode::Hybrid,
            &VolumeStyle {
                steps: 32,
                ..Default::default()
            },
            &PointStyle::default(),
        );
        assert!(stats.volume_samples > 0);
        assert!(stats.points_drawn > 0);
        assert!(fb.lit_pixel_count(0.01) > 0, "something must be visible");
    }

    #[test]
    fn decomposition_modes_split_the_work() {
        let frame = test_frame();
        let cam = camera_for(&frame);
        let tfs = TransferFunctionPair::linked_at(0.05, 0.02);
        let vs = VolumeStyle {
            steps: 32,
            ..Default::default()
        };
        let ps = PointStyle::default();
        let mut fb = Framebuffer::new(64, 64);
        let vol = render_hybrid_frame(
            &mut fb,
            &cam,
            &frame,
            &tfs,
            RenderMode::VolumeOnly,
            &vs,
            &ps,
        );
        assert!(vol.volume_samples > 0);
        assert_eq!(vol.points_drawn, 0);
        fb.clear(Rgba::TRANSPARENT);
        let pts = render_hybrid_frame(
            &mut fb,
            &cam,
            &frame,
            &tfs,
            RenderMode::PointsOnly,
            &vs,
            &ps,
        );
        assert_eq!(pts.volume_samples, 0);
        assert!(pts.points_drawn > 0);
    }

    #[test]
    fn point_tf_controls_points_drawn() {
        let frame = test_frame();
        let cam = camera_for(&frame);
        let vs = VolumeStyle {
            steps: 8,
            ..Default::default()
        };
        let ps = PointStyle::default();
        let mut fb = Framebuffer::new(64, 64);
        // A pair whose point threshold is huge draws all kept points.
        let all = TransferFunctionPair::linked_at(2.0, 0.01);
        let many = render_hybrid_frame(
            &mut fb,
            &cam,
            &frame,
            &all,
            RenderMode::PointsOnly,
            &vs,
            &ps,
        );
        // A pair whose threshold is tiny draws almost none.
        let none = TransferFunctionPair::linked_at(1e-9, 1e-12);
        let few = render_hybrid_frame(
            &mut fb,
            &cam,
            &frame,
            &none,
            RenderMode::PointsOnly,
            &vs,
            &ps,
        );
        assert!(many.points_drawn > few.points_drawn);
        assert_eq!(few.points_drawn, 0);
    }

    #[test]
    fn attribute_coloring_changes_without_reextraction() {
        let frame = test_frame();
        let cam = camera_for(&frame);
        let heat = |t: f64| Rgba::new(t as f32, 0.0, (1.0 - t) as f32, 0.8);
        let mut fb_r = Framebuffer::new(96, 96);
        let mut fb_m = Framebuffer::new(96, 96);
        let n_r = render_points_by_attribute(
            &mut fb_r,
            &cam,
            &frame,
            PointAttribute::TransverseRadius,
            &heat,
            1.0,
        );
        let n_m = render_points_by_attribute(
            &mut fb_m,
            &cam,
            &frame,
            PointAttribute::TransverseMomentum,
            &heat,
            1.0,
        );
        // Same points drawn (same geometry), different colors (different
        // attribute) — the recoloring is purely dynamic.
        assert_eq!(n_r, n_m);
        assert!(n_r > 0);
        assert!(
            fb_r.mse(&fb_m) > 0.0,
            "different attributes must yield different images"
        );
    }

    #[test]
    fn point_attributes_evaluate_correctly() {
        use accelviz_beam::particle::Particle;
        let p = Particle::from_array([3.0, 0.5, 4.0, -0.5, 1.0, 2.0]);
        assert_eq!(PointAttribute::NodeDensity.eval(&p, 0.7), 0.7);
        assert!(
            (PointAttribute::TransverseMomentum.eval(&p, 0.0) - (0.5f64.powi(2) * 2.0).sqrt())
                .abs()
                < 1e-12
        );
        assert_eq!(PointAttribute::LongitudinalMomentum.eval(&p, 0.0), 2.0);
        assert_eq!(PointAttribute::TransverseRadius.eval(&p, 0.0), 5.0);
        // x·py − y·px = 3·(−0.5) − 4·0.5 = −3.5
        assert_eq!(PointAttribute::AngularMomentum.eval(&p, 0.0), -3.5);
    }

    fn sample_lines(n: usize) -> Vec<FieldLine> {
        (0..n)
            .map(|i| {
                let mut l = FieldLine::new();
                let y = i as f64 * 0.1 - 0.2;
                for j in 0..12 {
                    l.push(
                        Vec3::new(j as f64 * 0.1 - 0.6, y, 0.0),
                        Vec3::UNIT_X,
                        0.2 + 0.1 * j as f64,
                    );
                }
                l
            })
            .collect()
    }

    #[test]
    fn representations_have_expected_triangle_ratios() {
        let lines = sample_lines(5);
        let cam = Camera::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, 1.0);
        let style = LineStyle::electric(1.5);
        let mut fb = Framebuffer::new(96, 96);
        let sos = render_line_set(
            &mut fb,
            &cam,
            &lines,
            LineRepresentation::SelfOrientingSurfaces,
            &style,
            0.02,
        );
        fb.clear(Rgba::TRANSPARENT);
        let tubes = render_line_set(
            &mut fb,
            &cam,
            &lines,
            LineRepresentation::Streamtubes,
            &style,
            0.02,
        );
        assert!(sos.triangles > 0 && tubes.triangles > 0);
        let ratio = tubes.triangles as f64 / sos.triangles as f64;
        assert!(
            ratio > 5.0,
            "streamtubes must cost ≳5–6× the triangles (got {ratio:.1})"
        );
        assert!(sos.fragments > 0);
    }

    #[test]
    fn transparent_sos_draws_without_depth_writes() {
        let lines = sample_lines(4);
        let cam = Camera::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, 1.0);
        let style = LineStyle::electric(1.5);
        let mut fb = Framebuffer::new(64, 64);
        let stats = render_line_set(
            &mut fb,
            &cam,
            &lines,
            LineRepresentation::TransparentSos,
            &style,
            0.03,
        );
        assert!(stats.fragments > 0);
        // No depth writes: the buffer depth stays at infinity everywhere.
        let mut any_depth = false;
        for y in 0..64 {
            for x in 0..64 {
                if fb.get_depth(x, y).is_finite() {
                    any_depth = true;
                }
            }
        }
        assert!(!any_depth);
    }

    #[test]
    fn enhanced_and_haloed_and_ribbon_representations_render() {
        let lines = sample_lines(4);
        let cam = Camera::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, 1.0);
        let style = LineStyle::electric(1.5);
        for rep in [
            LineRepresentation::EnhancedLighting,
            LineRepresentation::HaloedSos,
            LineRepresentation::Ribbons,
        ] {
            let mut fb = Framebuffer::new(96, 96);
            let stats = render_line_set(&mut fb, &cam, &lines, rep, &style, 0.05);
            assert!(stats.triangles > 0, "{rep:?} drew no triangles");
            assert!(stats.fragments > 0, "{rep:?} wrote no fragments");
            assert!(fb.lit_pixel_count(0.005) > 0, "{rep:?} invisible");
        }
    }

    #[test]
    fn haloed_sos_has_dark_rims() {
        // Render one thick horizontal strip with and without halo; the
        // haloed version must contain near-black lit pixels at the rims.
        let lines = sample_lines(1);
        let cam = Camera::look_at(Vec3::new(0.0, 0.0, 2.0), Vec3::ZERO, 1.0);
        let style = LineStyle::electric(1.5);
        let mut plain = Framebuffer::new(128, 128);
        let mut haloed = Framebuffer::new(128, 128);
        render_line_set(
            &mut plain,
            &cam,
            &lines,
            LineRepresentation::SelfOrientingSurfaces,
            &style,
            0.08,
        );
        render_line_set(
            &mut haloed,
            &cam,
            &lines,
            LineRepresentation::HaloedSos,
            &style,
            0.08,
        );
        let dark = |fb: &Framebuffer| {
            let mut n = 0;
            for y in 0..128 {
                for x in 0..128 {
                    let c = fb.get(x, y);
                    if c.a > 0.5 && c.luminance() < 0.02 {
                        n += 1;
                    }
                }
            }
            n
        };
        assert!(
            dark(&haloed) > dark(&plain) + 10,
            "halo must add dark rim pixels ({} vs {})",
            dark(&haloed),
            dark(&plain)
        );
    }

    #[test]
    fn ribbons_use_fewer_lines_for_similar_coverage() {
        // The Figure 6(e) economics: a handful of wide ribbons covers a
        // comparable screen area to many thin strips.
        let many = sample_lines(8);
        let few = sample_lines(2);
        let cam = Camera::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, 1.0);
        let style = LineStyle::electric(1.5);
        let mut fb_many = Framebuffer::new(96, 96);
        let mut fb_few = Framebuffer::new(96, 96);
        let s_many = render_line_set(
            &mut fb_many,
            &cam,
            &many,
            LineRepresentation::SelfOrientingSurfaces,
            &style,
            0.01,
        );
        let s_few = render_line_set(
            &mut fb_few,
            &cam,
            &few,
            LineRepresentation::Ribbons,
            &style,
            0.01,
        );
        assert!(s_few.triangles < s_many.triangles);
        assert!(
            fb_few.lit_pixel_count(0.005) * 2 > fb_many.lit_pixel_count(0.005),
            "ribbons must cover comparable area: {} vs {}",
            fb_few.lit_pixel_count(0.005),
            fb_many.lit_pixel_count(0.005)
        );
    }

    #[test]
    fn focus_context_splits_opacity_by_region() {
        use accelviz_fieldlines::roi::Region;
        let lines = sample_lines(6); // lines at y = -0.2 .. 0.3
        let cam = Camera::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, 1.0);
        let style = LineStyle::electric(1.5);
        // ROI covers only the lower lines (y < 0).
        let region = Region::Box(accelviz_math::Aabb::new(
            Vec3::new(-10.0, -10.0, -10.0),
            Vec3::new(10.0, 0.0, 10.0),
        ));
        let mut fb = Framebuffer::new(96, 96);
        let (focus, ctx) = render_focus_context(&mut fb, &cam, &lines, &region, &style, 0.03, 0.2);
        assert!(focus.triangles > 0, "some lines are in focus");
        assert!(ctx.triangles > 0, "some lines are context");
        // Context lines survive as translucent geometry (unlike cutaway).
        assert!(fb.lit_pixel_count(0.003) > 0);
        // Compare against a cutaway: the cutaway image has *fewer* lit
        // pixels because the context is gone entirely.
        let cut = accelviz_fieldlines::roi::cutaway(&lines, &region);
        let mut fb_cut = Framebuffer::new(96, 96);
        render_line_set(
            &mut fb_cut,
            &cam,
            &cut,
            LineRepresentation::SelfOrientingSurfaces,
            &style,
            0.03,
        );
        assert!(
            fb.lit_pixel_count(0.003) > fb_cut.lit_pixel_count(0.003),
            "focus+context must keep more of the picture than cutaway"
        );
    }

    #[test]
    fn flat_and_illuminated_lines_render() {
        let lines = sample_lines(3);
        let cam = Camera::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, 1.0);
        let style = LineStyle::electric(1.5);
        let mut fb = Framebuffer::new(64, 64);
        let flat = render_line_set(
            &mut fb,
            &cam,
            &lines,
            LineRepresentation::FlatLines,
            &style,
            0.02,
        );
        fb.clear(Rgba::TRANSPARENT);
        let ill = render_line_set(
            &mut fb,
            &cam,
            &lines,
            LineRepresentation::Illuminated,
            &style,
            0.02,
        );
        assert!(flat.fragments > 0);
        assert!(ill.fragments > 0);
        assert_eq!(flat.triangles, ill.triangles, "same thin-strip geometry");
    }
}
