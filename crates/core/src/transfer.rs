//! The dual transfer functions of the hybrid method (§2.4, Figure 3).
//!
//! *Volume TF*: "maps point density to color and opacity for the
//! volume-rendered portion of the image. Typically, a step function is
//! used to map low-density regions to 0 (fully transparent) and higher
//! density regions to some low constant so that one can see inside the
//! volume. The program also allows a ramp to transition between the high
//! and low values."
//!
//! *Point TF*: "maps density to number of points rendered ... Below a
//! certain threshold density, the data is rendered as points; above that
//! threshold, no points are drawn. Intermediate values are mapped to the
//! fraction of points drawn."
//!
//! *Inverse linking*: "By default, the two transfer functions are inverses
//! of each other. Changing one results in an equal and opposite change in
//! the other. This way, the user can change the boundary between the
//! volume- and the point-rendered regions."

use accelviz_math::{smoothstep, Rgba};

/// The volume transfer function: a step at `threshold` with a smooth ramp
/// of width `ramp_width`, topping out at `max_opacity` (kept low "so that
/// one can see inside the volume").
#[derive(Clone, Copy, Debug)]
pub struct VolumeTransferFunction {
    /// Normalized density at which the volume becomes visible.
    pub threshold: f64,
    /// Width of the smooth transition below the threshold (0 = hard
    /// step). Softens "the artificial boundary of the volume-rendered
    /// region".
    pub ramp_width: f64,
    /// Opacity of the volume-rendered region.
    pub max_opacity: f32,
    /// Color at the threshold.
    pub low_color: Rgba,
    /// Color at maximum density.
    pub high_color: Rgba,
}

impl Default for VolumeTransferFunction {
    fn default() -> VolumeTransferFunction {
        VolumeTransferFunction {
            threshold: 0.05,
            ramp_width: 0.02,
            max_opacity: 0.08,
            low_color: Rgba::rgb(0.15, 0.3, 0.9),
            high_color: Rgba::rgb(1.0, 0.95, 0.5),
        }
    }
}

impl VolumeTransferFunction {
    /// The visibility weight in [0, 1] at normalized density `d` (opacity
    /// divided by `max_opacity`).
    pub fn weight(&self, d: f64) -> f64 {
        smoothstep(self.threshold - self.ramp_width, self.threshold, d)
    }

    /// Color + opacity at normalized density `d`.
    pub fn sample(&self, d: f64) -> Rgba {
        let w = self.weight(d);
        if w <= 0.0 {
            return Rgba::TRANSPARENT;
        }
        let t = ((d - self.threshold) / (1.0 - self.threshold).max(1e-9)).clamp(0.0, 1.0) as f32;
        self.low_color
            .lerp(self.high_color, t)
            .with_alpha(self.max_opacity * w as f32)
    }
}

/// The point transfer function: fraction of points drawn as a function of
/// normalized density — 1 in the halo, ramping to 0 above the threshold.
#[derive(Clone, Copy, Debug)]
pub struct PointTransferFunction {
    /// Normalized density above which no points are drawn.
    pub threshold: f64,
    /// Width of the fraction ramp below the threshold.
    pub ramp_width: f64,
}

impl Default for PointTransferFunction {
    fn default() -> PointTransferFunction {
        PointTransferFunction {
            threshold: 0.05,
            ramp_width: 0.02,
        }
    }
}

impl PointTransferFunction {
    /// Fraction of points drawn at normalized density `d` (e.g. 0.75 means
    /// "three out of every four points are drawn").
    pub fn fraction(&self, d: f64) -> f64 {
        1.0 - smoothstep(self.threshold - self.ramp_width, self.threshold, d)
    }
}

/// The linked pair. While linked (the default), the two functions share
/// their boundary so that `point_fraction(d) + volume_weight(d) = 1` at
/// every density — the paper's "equal and opposite change".
///
/// ```
/// use accelviz_core::transfer::TransferFunctionPair;
///
/// let mut pair = TransferFunctionPair::linked_at(0.1, 0.04);
/// // Dragging one side moves the other: the inverse invariant holds at
/// // every density.
/// pair.edit_volume_threshold(0.2);
/// for i in 0..=100 {
///     let d = i as f64 / 100.0;
///     assert!((pair.coverage(d) - 1.0).abs() < 1e-12);
/// }
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct TransferFunctionPair {
    /// The volume side.
    pub volume: VolumeTransferFunction,
    /// The point side.
    pub point: PointTransferFunction,
    /// Whether edits propagate inversely (set false to "edit separately").
    pub linked: bool,
}

impl TransferFunctionPair {
    /// A linked pair with the given region boundary.
    pub fn linked_at(threshold: f64, ramp_width: f64) -> TransferFunctionPair {
        let mut pair = TransferFunctionPair {
            volume: VolumeTransferFunction::default(),
            point: PointTransferFunction::default(),
            linked: true,
        };
        pair.set_boundary(threshold, ramp_width);
        pair
    }

    /// Moves the point/volume boundary (both functions when linked).
    pub fn set_boundary(&mut self, threshold: f64, ramp_width: f64) {
        self.volume.threshold = threshold;
        self.volume.ramp_width = ramp_width;
        if self.linked {
            self.point.threshold = threshold;
            self.point.ramp_width = ramp_width;
        }
    }

    /// Edits the volume threshold; when linked, the point function makes
    /// the equal and opposite change.
    pub fn edit_volume_threshold(&mut self, threshold: f64) {
        self.volume.threshold = threshold;
        if self.linked {
            self.point.threshold = threshold;
            self.point.ramp_width = self.volume.ramp_width;
        }
    }

    /// Edits the point threshold; when linked, the volume function
    /// follows.
    pub fn edit_point_threshold(&mut self, threshold: f64) {
        self.point.threshold = threshold;
        if self.linked {
            self.volume.threshold = threshold;
            self.volume.ramp_width = self.point.ramp_width;
        }
    }

    /// The linking invariant: point fraction + volume weight at a density.
    pub fn coverage(&self, d: f64) -> f64 {
        self.point.fraction(d) + self.volume.weight(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_tf_is_transparent_below_threshold() {
        let tf = VolumeTransferFunction::default();
        assert_eq!(tf.sample(0.0), Rgba::TRANSPARENT);
        assert_eq!(tf.sample(0.02), Rgba::TRANSPARENT);
        let above = tf.sample(0.5);
        assert!(above.a > 0.0);
        assert!((above.a - tf.max_opacity).abs() < 1e-6);
    }

    #[test]
    fn volume_tf_opacity_is_monotone_through_ramp() {
        let tf = VolumeTransferFunction::default();
        let mut prev = -1.0f32;
        for i in 0..=100 {
            let a = tf.sample(i as f64 / 100.0).a;
            assert!(a >= prev, "opacity must be monotone");
            prev = a;
        }
    }

    #[test]
    fn volume_tf_color_shifts_with_density() {
        let tf = VolumeTransferFunction::default();
        let low = tf.sample(0.06);
        let high = tf.sample(1.0);
        assert!(low.b > low.r, "low densities are blue");
        assert!(high.r > high.b, "high densities are warm");
    }

    #[test]
    fn hard_step_when_ramp_is_zero() {
        let tf = VolumeTransferFunction {
            ramp_width: 0.0,
            ..Default::default()
        };
        assert_eq!(tf.weight(tf.threshold - 1e-9), 0.0);
        assert_eq!(tf.weight(tf.threshold + 1e-9), 1.0);
    }

    #[test]
    fn point_tf_draws_halo_fully_core_not_at_all() {
        let tf = PointTransferFunction::default();
        assert_eq!(tf.fraction(0.0), 1.0);
        assert_eq!(tf.fraction(1.0), 0.0);
        // Intermediate densities draw an intermediate fraction.
        let mid = tf.fraction(tf.threshold - tf.ramp_width / 2.0);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn linked_pair_sums_to_one_everywhere() {
        let pair = TransferFunctionPair::linked_at(0.1, 0.04);
        for i in 0..=200 {
            let d = i as f64 / 200.0;
            assert!(
                (pair.coverage(d) - 1.0).abs() < 1e-12,
                "coverage at {d} is {}",
                pair.coverage(d)
            );
        }
    }

    #[test]
    fn editing_one_side_moves_the_other_when_linked() {
        let mut pair = TransferFunctionPair::linked_at(0.1, 0.04);
        pair.edit_volume_threshold(0.2);
        assert_eq!(pair.point.threshold, 0.2);
        pair.edit_point_threshold(0.05);
        assert_eq!(pair.volume.threshold, 0.05);
        // Invariant still holds after edits.
        for i in 0..=100 {
            let d = i as f64 / 100.0;
            assert!((pair.coverage(d) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn unlinked_pair_edits_independently() {
        let mut pair = TransferFunctionPair::linked_at(0.1, 0.04);
        pair.linked = false;
        pair.edit_volume_threshold(0.3);
        assert_eq!(pair.point.threshold, 0.1, "point TF must not move");
        // Non-inverse configurations are now possible ("the regions can
        // overlap, as in this example" — Figure 3a): here the edit opened
        // a gap where neither representation covers the density.
        let d = 0.2;
        assert_eq!(pair.point.fraction(d), 0.0, "past the point threshold");
        assert_eq!(pair.volume.weight(d), 0.0, "below the volume threshold");
        assert!(pair.coverage(0.25) < 1.0, "a gap between regions exists");
    }
}
