//! The paper's primary contribution, assembled: the hybrid point/volume
//! rendering pipeline (§2), its dual transfer functions, the interactive
//! viewer with its frame cache, and the remote-visualization transfer
//! model.
//!
//! - [`transfer`] — the volume transfer function (density → color/opacity,
//!   step + ramp) and the point transfer function (density → fraction of
//!   points drawn), with the paper's inverse linking (Figure 3).
//! - [`hybrid`] — the hybrid frame: extracted halo points + low-resolution
//!   density volume, with honest byte accounting.
//! - [`scene`] — rendering a hybrid frame (volume, points, or combined —
//!   Figure 4) and the field-line scene for §3's representations.
//! - [`viewer`] — the desktop viewer model: frame stepping, memory
//!   budget, disk-load times, video-memory residency (Figure 5, §2.5).
//! - [`remote`] — bandwidth/storage model for moving representations "to
//!   a remote computer on a scientist's desk thousands of miles away".
//! - [`shard`] — deterministic frame-to-shard ownership (rendezvous
//!   hashing) for spreading one catalog across N frame servers.
//! - [`pipeline`] — end-to-end orchestration: simulate → partition →
//!   extract → view.

pub mod hybrid;
pub mod pipeline;
pub mod remote;
pub mod scene;
pub mod session;
pub mod shard;
pub mod transfer;
pub mod viewer;

pub use hybrid::HybridFrame;
pub use pipeline::{process_run, PipelineParams};
pub use remote::TransferModel;
pub use scene::{render_hybrid_frame, GridField, RenderMode, SceneStats};
pub use session::{SessionOp, ViewerSession};
pub use shard::ShardSpec;
pub use transfer::{PointTransferFunction, TransferFunctionPair, VolumeTransferFunction};
pub use viewer::{FrameCache, FrameLoad};
