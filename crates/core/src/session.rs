//! The interactive viewing session (§2.4–2.5): the state machine behind
//! the paper's desktop "view program with an interactive transfer
//! function editor".
//!
//! The session owns a frame series, the linked transfer-function pair,
//! the orbit camera, and the render mode. Its invariants encode the
//! paper's interactivity argument:
//!
//! - Stepping frames touches only the frame cache (disk on a miss,
//!   nothing on a hit).
//! - Dragging the TF boundary is O(1) state mutation — extraction is
//!   *never* re-run; the point TF re-filters and the volume TF re-colors
//!   at the next render. But the boundary can only move "up until the
//!   boundary specified during preprocessing, beyond which no points are
//!   available" — the session clamps and reports it.
//! - Rotating the camera re-renders but recomputes nothing else.

use crate::hybrid::HybridFrame;
use crate::scene::{render_hybrid_frame, RenderMode, SceneStats};
use crate::transfer::TransferFunctionPair;
use crate::viewer::{FrameSource, LocalFrames};
use accelviz_render::camera::Camera;
use accelviz_render::framebuffer::Framebuffer;
use accelviz_render::points::PointStyle;
use accelviz_render::volume::VolumeStyle;
use std::sync::Arc;

/// One user interaction.
#[derive(Clone, Copy, Debug)]
pub enum SessionOp {
    /// Keyboard-step to a frame.
    StepTo(usize),
    /// Drag the linked transfer-function boundary to a normalized
    /// density.
    SetBoundary(f64),
    /// Orbit the camera by (Δazimuth, Δelevation) radians.
    Orbit(f64, f64),
    /// Switch the render mode (Figure 4's decomposition toggle).
    SetMode(RenderMode),
}

/// What an interaction cost.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpCost {
    /// Disk seconds spent (only frame misses pay this).
    pub io_seconds: f64,
    /// Whether any preprocessing (partitioning/extraction) re-ran. The
    /// session guarantees this stays `false` — that is the hybrid
    /// method's point.
    pub reprocessed: bool,
    /// Whether a `SetBoundary` request was clamped to the preprocessing
    /// threshold.
    pub clamped: bool,
    /// Whether a `StepTo` load failed (only remote sources can fail; the
    /// session keeps showing the previous frame).
    pub failed: bool,
    /// Whether the source served a *stale* frame in place of the
    /// requested one (remote retries exhausted, graceful degradation).
    /// The session stays on its previous frame index and keeps
    /// rendering; the UI should badge the display as stale.
    pub degraded: bool,
    /// Whether the source served a *partially refined* rendition of the
    /// requested frame (a progressive stream that could not finish).
    /// Always paired with `degraded`, but unlike a stale frame the
    /// session *does* advance — the data really is the requested frame,
    /// at reduced fidelity.
    pub partial: bool,
}

/// An interactive viewing session over a hybrid frame series. The frames
/// come from a [`FrameSource`] — local memory for the paper's desktop
/// viewer, or a TCP connection to an `accelviz-serve` server; the session
/// logic is identical either way.
pub struct ViewerSession {
    source: Box<dyn FrameSource>,
    current_frame: Arc<HybridFrame>,
    /// The linked transfer functions (public for inspection; mutate via
    /// [`ViewerSession::apply`]).
    pub tfs: TransferFunctionPair,
    mode: RenderMode,
    current: usize,
    theta: f64,
    phi: f64,
    distance_factor: f64,
}

impl ViewerSession {
    /// Opens a session over an in-memory frame series with the
    /// paper-desktop cache.
    pub fn open(frames: Vec<HybridFrame>) -> ViewerSession {
        assert!(!frames.is_empty(), "a session needs at least one frame");
        ViewerSession::open_with(Box::new(LocalFrames::paper_desktop(frames)))
    }

    /// Opens a session over any frame source. Loads frame 0 eagerly so
    /// the session always has a current frame; panics if the source is
    /// empty or the initial load fails.
    pub fn open_with(mut source: Box<dyn FrameSource>) -> ViewerSession {
        assert!(
            source.frame_count() > 0,
            "a session needs at least one frame"
        );
        let (current_frame, _) = source.load(0).expect("initial frame load must succeed");
        ViewerSession {
            source,
            current_frame,
            tfs: TransferFunctionPair::linked_at(0.05, 0.02),
            mode: RenderMode::Hybrid,
            current: 0,
            theta: 0.5,
            phi: 0.35,
            distance_factor: 2.2,
        }
    }

    /// The current frame index.
    pub fn current(&self) -> usize {
        self.current
    }

    /// The current frame.
    pub fn frame(&self) -> &HybridFrame {
        &self.current_frame
    }

    /// Number of frames in the session.
    pub fn frame_count(&self) -> usize {
        self.source.frame_count()
    }

    /// The maximum normalized density at which the current frame still
    /// has points — the preprocessing boundary the paper says the user
    /// cannot drag past.
    pub fn preprocessing_boundary(&self) -> f64 {
        self.frame().point_densities.last().copied().unwrap_or(0.0)
    }

    /// Applies one interaction and reports its cost.
    pub fn apply(&mut self, op: SessionOp) -> OpCost {
        match op {
            SessionOp::StepTo(frame) => {
                let frame = frame.min(self.source.frame_count() - 1);
                match self.source.load(frame) {
                    // A degraded load hands back a stale resident frame:
                    // keep rendering it, but do not pretend we moved —
                    // `current` stays where the data actually is. The
                    // exception is a *partial* degraded load: that is the
                    // requested frame at reduced refinement, so the
                    // session really did move.
                    Ok((f, load)) if load.degraded => {
                        self.current_frame = f;
                        if load.partial {
                            self.current = frame;
                        }
                        OpCost {
                            io_seconds: load.seconds,
                            degraded: true,
                            partial: load.partial,
                            ..Default::default()
                        }
                    }
                    Ok((f, load)) => {
                        self.current_frame = f;
                        self.current = frame;
                        OpCost {
                            io_seconds: load.seconds,
                            ..Default::default()
                        }
                    }
                    // A failed load (remote transport error) leaves the
                    // session on the previous frame.
                    Err(_) => OpCost {
                        failed: true,
                        ..Default::default()
                    },
                }
            }
            SessionOp::SetBoundary(d) => {
                let limit = self.preprocessing_boundary();
                let clamped = d > limit && limit > 0.0;
                let applied = if clamped { limit } else { d };
                let ramp = self.tfs.volume.ramp_width;
                self.tfs.set_boundary(applied, ramp);
                OpCost {
                    clamped,
                    ..Default::default()
                }
            }
            SessionOp::Orbit(dtheta, dphi) => {
                self.theta += dtheta;
                self.phi = (self.phi + dphi).clamp(-1.4, 1.4);
                OpCost::default()
            }
            SessionOp::SetMode(mode) => {
                self.mode = mode;
                OpCost::default()
            }
        }
    }

    /// The current camera.
    pub fn camera(&self, aspect: f64) -> Camera {
        let b = self.frame().bounds;
        Camera::orbit(
            b.center(),
            b.longest_edge() * self.distance_factor,
            self.theta,
            self.phi,
            aspect,
        )
    }

    /// Renders the current state.
    pub fn render(&self, fb: &mut Framebuffer) -> SceneStats {
        let mut span = accelviz_trace::span("session.render_frame");
        let cam = self.camera(fb.width() as f64 / fb.height() as f64);
        let stats = render_hybrid_frame(
            fb,
            &cam,
            self.frame(),
            &self.tfs,
            self.mode,
            &VolumeStyle {
                steps: 48,
                ..Default::default()
            },
            &PointStyle::default(),
        );
        if span.is_active() {
            span.arg("frame", self.current as f64);
            span.arg("volume_samples", stats.volume_samples as f64);
            span.arg("points_drawn", stats.points_drawn as f64);
        }
        stats
    }

    /// Writes the whole-frame Chrome trace accumulated so far (every span
    /// the pipeline recorded into the global registry — partition,
    /// extraction, wire transfer, render) to `path`. Requires tracing to
    /// be on (`ACCELVIZ_TRACE` set, or
    /// [`accelviz_trace::registry::Registry::set_spans_enabled`] called on
    /// the global registry); with tracing off the file is written but
    /// contains no span events.
    pub fn dump_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        accelviz_trace::chrome::write_trace(path, accelviz_trace::global())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_beam::distribution::Distribution;
    use accelviz_octree::builder::{partition, BuildParams};
    use accelviz_octree::extraction::threshold_for_budget;
    use accelviz_octree::plots::PlotType;

    fn session(n_frames: usize) -> ViewerSession {
        let frames: Vec<HybridFrame> = (0..n_frames)
            .map(|i| {
                let ps = Distribution::default_beam().sample(2_000, i as u64 + 1);
                let data = partition(&ps, PlotType::XYZ, BuildParams::default());
                let t = threshold_for_budget(&data, 600);
                HybridFrame::from_partition(&data, i, t, [16, 16, 16])
            })
            .collect();
        ViewerSession::open(frames)
    }

    #[test]
    fn boundary_edits_never_reprocess() {
        let mut s = session(2);
        for d in [0.01, 0.02, 0.001, 0.03] {
            let cost = s.apply(SessionOp::SetBoundary(d));
            assert!(!cost.reprocessed);
            assert_eq!(cost.io_seconds, 0.0);
        }
        // The edit is visible in the next render: a tiny boundary draws
        // fewer points than a generous one.
        s.apply(SessionOp::SetBoundary(1e-6));
        let mut fb = Framebuffer::new(64, 64);
        let few = s.render(&mut fb).points_drawn;
        s.apply(SessionOp::SetBoundary(s.preprocessing_boundary()));
        let mut fb = Framebuffer::new(64, 64);
        let many = s.render(&mut fb).points_drawn;
        assert!(
            many > few,
            "boundary must control drawn points: {many} vs {few}"
        );
    }

    #[test]
    fn boundary_clamps_at_preprocessing_threshold() {
        let mut s = session(1);
        let limit = s.preprocessing_boundary();
        assert!(limit > 0.0);
        let cost = s.apply(SessionOp::SetBoundary(limit * 10.0));
        assert!(
            cost.clamped,
            "no points exist beyond the preprocessing boundary"
        );
        assert!((s.tfs.point.threshold - limit).abs() < 1e-12);
        // Inside the available range: no clamp.
        let cost = s.apply(SessionOp::SetBoundary(limit * 0.5));
        assert!(!cost.clamped);
    }

    #[test]
    fn stepping_costs_io_once_then_nothing() {
        let mut s = session(3);
        let first = s.apply(SessionOp::StepTo(2));
        assert!(first.io_seconds > 0.0, "cold frame pays disk time");
        let again = s.apply(SessionOp::StepTo(2));
        assert_eq!(again.io_seconds, 0.0, "warm frame is instantaneous");
        assert_eq!(s.current(), 2);
        // Out-of-range steps clamp to the last frame.
        s.apply(SessionOp::StepTo(99));
        assert_eq!(s.current(), 2);
    }

    #[test]
    fn orbiting_changes_the_image_only() {
        let mut s = session(1);
        let mut before = Framebuffer::new(64, 64);
        s.render(&mut before);
        let cost = s.apply(SessionOp::Orbit(0.8, 0.2));
        assert_eq!(cost, OpCost::default());
        let mut after = Framebuffer::new(64, 64);
        s.render(&mut after);
        assert!(before.mse(&after) > 0.0, "the view must actually rotate");
    }

    #[test]
    fn mode_toggle_reproduces_figure4_decomposition() {
        let mut s = session(1);
        s.apply(SessionOp::SetMode(RenderMode::VolumeOnly));
        let mut fb = Framebuffer::new(64, 64);
        let vol = s.render(&mut fb);
        assert_eq!(vol.points_drawn, 0);
        s.apply(SessionOp::SetMode(RenderMode::PointsOnly));
        let mut fb = Framebuffer::new(64, 64);
        let pts = s.render(&mut fb);
        assert_eq!(pts.volume_samples, 0);
        assert!(pts.points_drawn > 0);
    }

    #[test]
    #[should_panic]
    fn empty_session_panics() {
        let _ = ViewerSession::open(Vec::new());
    }
}
