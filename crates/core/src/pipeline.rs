//! End-to-end orchestration: simulate → partition → extract → view.
//!
//! This is the workflow of the paper's §2: beam snapshots come off the
//! simulation, each is partitioned once (the "expensive" step, run in
//! parallel here as on the paper's IBM SP), and hybrid frames are
//! extracted at whatever threshold the session needs.

use crate::hybrid::HybridFrame;
use accelviz_beam::simulation::Snapshot;
use accelviz_octree::builder::{partition, BuildParams};
use accelviz_octree::extraction::threshold_for_budget;
use accelviz_octree::plots::PlotType;
use accelviz_octree::sorted_store::PartitionedData;
use rayon::prelude::*;

/// Pipeline configuration.
#[derive(Clone, Copy, Debug)]
pub struct PipelineParams {
    /// Plot projection to partition for.
    pub plot: PlotType,
    /// Octree build parameters.
    pub build: BuildParams,
    /// Per-frame point budget (the extraction threshold is derived per
    /// frame so output sizes stay bounded — the paper's "conservative
    /// point density threshold").
    pub point_budget: usize,
    /// Volume texture resolution.
    pub volume_dims: [usize; 3],
}

impl Default for PipelineParams {
    fn default() -> PipelineParams {
        PipelineParams {
            plot: PlotType::XYZ,
            build: BuildParams::default(),
            point_budget: 10_000,
            volume_dims: [64, 64, 64],
        }
    }
}

/// Partitions one snapshot.
pub fn partition_snapshot(snapshot: &Snapshot, params: &PipelineParams) -> PartitionedData {
    partition(&snapshot.particles, params.plot, params.build)
}

/// Processes a whole run: partitions every snapshot in parallel and
/// extracts one hybrid frame per snapshot at the configured point budget.
pub fn process_run(snapshots: &[Snapshot], params: &PipelineParams) -> Vec<HybridFrame> {
    let mut run_span = accelviz_trace::span("pipeline.process_run");
    run_span.arg("frames", snapshots.len() as f64);
    // Per-frame jobs run on pool workers; parent them to the run span
    // explicitly so the logical hierarchy survives work stealing.
    let run_id = run_span.id();
    snapshots
        .par_iter()
        .map(|snap| {
            let mut span = accelviz_trace::span_child("pipeline.frame", run_id);
            span.arg("step", snap.step as f64);
            let data = partition_snapshot(snap, params);
            let threshold = threshold_for_budget(&data, params.point_budget);
            HybridFrame::from_partition(&data, snap.step, threshold, params.volume_dims)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_beam::simulation::{BeamConfig, BeamSimulation};

    fn short_run(n_particles: usize, steps: usize) -> Vec<Snapshot> {
        let mut sim = BeamSimulation::new(BeamConfig::zero_current(n_particles, 5));
        sim.run(steps, 4)
    }

    #[test]
    fn one_frame_per_snapshot_with_bounded_points() {
        let snaps = short_run(2_000, 5);
        let params = PipelineParams {
            point_budget: 500,
            volume_dims: [16, 16, 16],
            ..Default::default()
        };
        let frames = process_run(&snaps, &params);
        assert_eq!(frames.len(), snaps.len());
        for (f, s) in frames.iter().zip(&snaps) {
            assert_eq!(f.step, s.step);
            assert!(f.points.len() <= 500, "budget exceeded: {}", f.points.len());
            assert_eq!(f.grid.total() as usize, 2_000, "volume bins all particles");
        }
    }

    #[test]
    fn frames_track_the_evolving_beam() {
        let snaps = short_run(2_000, 6);
        let params = PipelineParams {
            point_budget: 1_000,
            volume_dims: [8, 8, 8],
            ..Default::default()
        };
        let frames = process_run(&snaps, &params);
        // Bounds differ between early and late frames (the beam breathes
        // through the FODO cell).
        let first = frames.first().unwrap().bounds;
        let last = frames.last().unwrap().bounds;
        assert!(
            (first.size().x - last.size().x).abs() > 1e-9
                || (first.size().y - last.size().y).abs() > 1e-9,
            "beam envelope must evolve across frames"
        );
    }

    #[test]
    fn parallel_processing_is_deterministic() {
        let snaps = short_run(1_000, 4);
        let params = PipelineParams {
            point_budget: 300,
            volume_dims: [8, 8, 8],
            ..Default::default()
        };
        let a = process_run(&snaps, &params);
        let b = process_run(&snaps, &params);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.points, y.points);
            assert_eq!(x.threshold, y.threshold);
        }
    }
}
