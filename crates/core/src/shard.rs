//! Deterministic frame-to-shard ownership for scale-out serving.
//!
//! The paper's remote pipeline assumed one server per viewer; serving one
//! terascale run to many concurrent dashboards means spreading the frame
//! catalog across N shard servers and routing each request to the shard
//! that owns it. [`ShardSpec`] is that ownership function: a pure,
//! seedless map from frame index to shard, shared by the router, the
//! shard launcher, and any client that wants to predict placement.
//!
//! Ownership uses rendezvous (highest-random-weight) hashing: every
//! `(frame, shard)` pair gets a deterministic 64-bit score and the frame
//! belongs to the shard with the highest score. The payoff over
//! `frame % N` is *minimal movement on reshard*: growing N→N+1 only
//! moves the frames whose new shard outscores every old one — about
//! `1/(N+1)` of the catalog — instead of reshuffling nearly everything.
//! The viewer and examples can construct a `ShardSpec` without touching
//! the serve crate, which is why the type lives here.

/// A deterministic assignment of frame indices to `shards` shard
/// servers, by rendezvous hashing. Copyable, comparable, and stable
/// across processes and platforms — two sides that agree on the shard
/// count agree on every frame's owner.
///
/// ```
/// use accelviz_core::shard::ShardSpec;
///
/// let spec = ShardSpec::new(4);
/// // Ownership is a pure function of (frame, shard count)...
/// assert_eq!(spec.owner_of(7), ShardSpec::new(4).owner_of(7));
/// // ...and every frame lands on a real shard.
/// assert!((0..100).all(|f| spec.owner_of(f) < 4));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    shards: usize,
}

impl ShardSpec {
    /// A layout over `shards` shard servers.
    ///
    /// # Panics
    /// Panics if `shards` is zero — an empty shard set owns nothing and
    /// can serve nothing. (The serve-layer constructors reject an empty
    /// set with an error before ever building a spec.)
    pub fn new(shards: usize) -> ShardSpec {
        assert!(shards > 0, "a shard layout needs at least one shard");
        ShardSpec { shards }
    }

    /// How many shards this layout spreads frames over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard that owns `frame`: the highest-scoring shard under
    /// rendezvous hashing. Always `< self.shards()`.
    pub fn owner_of(&self, frame: u32) -> usize {
        let mut best = 0usize;
        let mut best_score = score(frame, 0);
        for shard in 1..self.shards {
            let s = score(frame, shard);
            if s > best_score {
                best = shard;
                best_score = s;
            }
        }
        best
    }

    /// Owner of every frame in `0..frame_count`, as one vector — the
    /// shape the router's shard map and the shard launcher both consume.
    pub fn assignments(&self, frame_count: usize) -> Vec<usize> {
        (0..frame_count).map(|f| self.owner_of(f as u32)).collect()
    }
}

/// The rendezvous score of a `(frame, shard)` pair: both identities are
/// pre-mixed with distinct odd constants, combined, and finished with a
/// SplitMix64 avalanche so no low-entropy input pattern (sequential
/// frames, small shard ids) biases the argmax.
fn score(frame: u32, shard: usize) -> u64 {
    let f = (frame as u64)
        .wrapping_add(1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let s = (shard as u64)
        .wrapping_add(1)
        .wrapping_mul(0xA24B_AED4_963E_E407);
    splitmix64(f ^ s)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_owns_everything() {
        let spec = ShardSpec::new(1);
        assert!((0..1000).all(|f| spec.owner_of(f) == 0));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        ShardSpec::new(0);
    }

    #[test]
    fn ownership_is_deterministic_and_in_range() {
        for n in 1..=8 {
            let spec = ShardSpec::new(n);
            for f in 0..500u32 {
                let owner = spec.owner_of(f);
                assert!(owner < n);
                assert_eq!(owner, spec.owner_of(f), "pure function of (frame, n)");
            }
        }
    }

    #[test]
    fn assignments_match_owner_of() {
        let spec = ShardSpec::new(3);
        let owners = spec.assignments(64);
        assert_eq!(owners.len(), 64);
        for (f, &owner) in owners.iter().enumerate() {
            assert_eq!(owner, spec.owner_of(f as u32));
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let spec = ShardSpec::new(4);
        let mut counts = [0usize; 4];
        for f in 0..10_000u32 {
            counts[spec.owner_of(f)] += 1;
        }
        // Fair share is 2500; rendezvous hashing should stay well within
        // 2x of it in both directions on 10k keys.
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                (1_500..=3_500).contains(&c),
                "shard {shard} owns {c} of 10000 frames"
            );
        }
    }

    #[test]
    fn resharding_moves_frames_only_to_the_new_shard() {
        // The rendezvous property: growing N -> N+1 relocates a frame
        // only when the new shard outscores every existing one, so every
        // moved frame lands on the new shard and the old shards never
        // trade frames among themselves.
        for n in 1..=6 {
            let old = ShardSpec::new(n);
            let new = ShardSpec::new(n + 1);
            let mut moved = 0usize;
            for f in 0..2_000u32 {
                let (a, b) = (old.owner_of(f), new.owner_of(f));
                if a != b {
                    assert_eq!(b, n, "frame {f} moved {a}->{b}, not to the new shard");
                    moved += 1;
                }
            }
            // Expected movement is ~2000/(n+1); it must never be the
            // near-total reshuffle a modulo map would cause.
            assert!(
                moved < 2_000 * 2 / (n + 1),
                "n={n}: {moved} of 2000 frames moved"
            );
            assert!(moved > 0, "n={n}: growth must hand the new shard work");
        }
    }
}
