//! Deterministic frame-to-shard ownership for scale-out serving.
//!
//! The paper's remote pipeline assumed one server per viewer; serving one
//! terascale run to many concurrent dashboards means spreading the frame
//! catalog across N shard servers and routing each request to the shard
//! that owns it. [`ShardSpec`] is that ownership function: a pure,
//! seedless map from frame index to shard, shared by the router, the
//! shard launcher, and any client that wants to predict placement.
//!
//! Ownership uses rendezvous (highest-random-weight) hashing: every
//! `(frame, shard)` pair gets a deterministic 64-bit score and the frame
//! belongs to the shard with the highest score. The payoff over
//! `frame % N` is *minimal movement on reshard*: growing N→N+1 only
//! moves the frames whose new shard outscores every old one — about
//! `1/(N+1)` of the catalog — instead of reshuffling nearly everything.
//! The viewer and examples can construct a `ShardSpec` without touching
//! the serve crate, which is why the type lives here.

/// A deterministic assignment of frame indices to `shards` shard
/// servers, by rendezvous hashing. Copyable, comparable, and stable
/// across processes and platforms — two sides that agree on the shard
/// count agree on every frame's owner.
///
/// ```
/// use accelviz_core::shard::ShardSpec;
///
/// let spec = ShardSpec::new(4);
/// // Ownership is a pure function of (frame, shard count)...
/// assert_eq!(spec.owner_of(7), ShardSpec::new(4).owner_of(7));
/// // ...and every frame lands on a real shard.
/// assert!((0..100).all(|f| spec.owner_of(f) < 4));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    shards: usize,
}

impl ShardSpec {
    /// A layout over `shards` shard servers.
    ///
    /// # Panics
    /// Panics if `shards` is zero — an empty shard set owns nothing and
    /// can serve nothing. (The serve-layer constructors reject an empty
    /// set with an error before ever building a spec.)
    pub fn new(shards: usize) -> ShardSpec {
        assert!(shards > 0, "a shard layout needs at least one shard");
        ShardSpec { shards }
    }

    /// How many shards this layout spreads frames over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard that owns `frame`: the highest-scoring shard under
    /// rendezvous hashing. Always `< self.shards()`.
    pub fn owner_of(&self, frame: u32) -> usize {
        let mut best = 0usize;
        let mut best_score = score(frame, 0);
        for shard in 1..self.shards {
            let s = score(frame, shard);
            if s > best_score {
                best = shard;
                best_score = s;
            }
        }
        best
    }

    /// Owner of every frame in `0..frame_count`, as one vector — the
    /// shape the router's shard map and the shard launcher both consume.
    pub fn assignments(&self, frame_count: usize) -> Vec<usize> {
        (0..frame_count).map(|f| self.owner_of(f as u32)).collect()
    }

    /// The top-`k` shards for `frame` under rendezvous hashing, in
    /// descending score order — the frame's *replica set*, with the
    /// primary owner first and each later entry the next-preferred
    /// fallback. `k` is clamped to the shard count, and `k == 0` is
    /// rejected (a frame with no owners can never be served).
    ///
    /// `owners(frame, 1)` is exactly `[owner_of(frame)]`: the argmax of
    /// the same per-`(frame, shard)` scores, so a single-replica layout
    /// reproduces the pre-replication placement bit for bit. Growing `k`
    /// only *appends* lower-scored shards — it never reorders the
    /// prefix — so raising the replication factor of a deployment keeps
    /// every frame's primary (and the data already resident there) in
    /// place.
    ///
    /// ```
    /// use accelviz_core::shard::ShardSpec;
    ///
    /// let spec = ShardSpec::new(4);
    /// for f in 0..100 {
    ///     let owners = spec.owners(f, 2);
    ///     assert_eq!(owners[0], spec.owner_of(f));
    ///     assert_ne!(owners[0], owners[1], "replicas are distinct shards");
    /// }
    /// ```
    pub fn owners(&self, frame: u32, k: usize) -> Vec<usize> {
        assert!(k > 0, "a frame needs at least one owner");
        let k = k.min(self.shards);
        // Scores are 64-bit SplitMix64 outputs; collisions across the
        // handful of shards a deployment runs are vanishingly unlikely,
        // but the tie-break on shard index keeps the order total and
        // platform-independent regardless.
        let mut scored: Vec<(u64, usize)> =
            (0..self.shards).map(|s| (score(frame, s), s)).collect();
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.truncate(k);
        scored.into_iter().map(|(_, s)| s).collect()
    }

    /// Replica set of every frame in `0..frame_count` at replication
    /// `k` — the replicated twin of [`ShardSpec::assignments`].
    pub fn replica_assignments(&self, frame_count: usize, k: usize) -> Vec<Vec<usize>> {
        (0..frame_count).map(|f| self.owners(f as u32, k)).collect()
    }
}

/// The rendezvous score of a `(frame, shard)` pair: both identities are
/// pre-mixed with distinct odd constants, combined, and finished with a
/// SplitMix64 avalanche so no low-entropy input pattern (sequential
/// frames, small shard ids) biases the argmax.
fn score(frame: u32, shard: usize) -> u64 {
    let f = (frame as u64)
        .wrapping_add(1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let s = (shard as u64)
        .wrapping_add(1)
        .wrapping_mul(0xA24B_AED4_963E_E407);
    splitmix64(f ^ s)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_owns_everything() {
        let spec = ShardSpec::new(1);
        assert!((0..1000).all(|f| spec.owner_of(f) == 0));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        ShardSpec::new(0);
    }

    #[test]
    fn ownership_is_deterministic_and_in_range() {
        for n in 1..=8 {
            let spec = ShardSpec::new(n);
            for f in 0..500u32 {
                let owner = spec.owner_of(f);
                assert!(owner < n);
                assert_eq!(owner, spec.owner_of(f), "pure function of (frame, n)");
            }
        }
    }

    #[test]
    fn assignments_match_owner_of() {
        let spec = ShardSpec::new(3);
        let owners = spec.assignments(64);
        assert_eq!(owners.len(), 64);
        for (f, &owner) in owners.iter().enumerate() {
            assert_eq!(owner, spec.owner_of(f as u32));
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let spec = ShardSpec::new(4);
        let mut counts = [0usize; 4];
        for f in 0..10_000u32 {
            counts[spec.owner_of(f)] += 1;
        }
        // Fair share is 2500; rendezvous hashing should stay well within
        // 2x of it in both directions on 10k keys.
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                (1_500..=3_500).contains(&c),
                "shard {shard} owns {c} of 10000 frames"
            );
        }
    }

    #[test]
    fn owners_at_k1_reproduce_the_single_owner_layout() {
        // The replication acceptance bar: `owners(f, 1)` must be the
        // PR 8 placement exactly, for every frame at every shard count.
        for n in 1..=8 {
            let spec = ShardSpec::new(n);
            for f in 0..2_000u32 {
                assert_eq!(
                    spec.owners(f, 1),
                    vec![spec.owner_of(f)],
                    "k=1 must be bit-compatible at n={n}, frame {f}"
                );
            }
        }
    }

    #[test]
    fn owners_are_distinct_prefix_stable_and_clamped() {
        let spec = ShardSpec::new(5);
        for f in 0..500u32 {
            let all = spec.owners(f, 5);
            // Distinct shards, all in range.
            let mut seen = [false; 5];
            for &s in &all {
                assert!(s < 5);
                assert!(!seen[s], "shard {s} appears twice for frame {f}");
                seen[s] = true;
            }
            // Growing k appends — it never reorders the preference
            // prefix, so replication bumps keep primaries in place.
            for k in 1..=5 {
                assert_eq!(spec.owners(f, k), all[..k], "prefix at k={k}");
            }
            // k past the shard count clamps to every shard.
            assert_eq!(spec.owners(f, 99), all);
        }
    }

    #[test]
    #[should_panic(expected = "at least one owner")]
    fn zero_replication_is_rejected() {
        ShardSpec::new(3).owners(0, 0);
    }

    #[test]
    fn replica_sets_spread_secondaries_across_shards() {
        // Secondary replicas are rendezvous-scored too, so they balance
        // like primaries instead of piling onto one backup shard.
        let spec = ShardSpec::new(4);
        let mut secondary_counts = [0usize; 4];
        for f in 0..10_000u32 {
            secondary_counts[spec.owners(f, 2)[1]] += 1;
        }
        for (shard, &c) in secondary_counts.iter().enumerate() {
            assert!(
                (1_500..=3_500).contains(&c),
                "shard {shard} backs up {c} of 10000 frames"
            );
        }
    }

    #[test]
    fn replica_assignments_match_owners() {
        let spec = ShardSpec::new(3);
        let sets = spec.replica_assignments(64, 2);
        assert_eq!(sets.len(), 64);
        for (f, set) in sets.iter().enumerate() {
            assert_eq!(set, &spec.owners(f as u32, 2));
        }
    }

    #[test]
    fn resharding_moves_frames_only_to_the_new_shard() {
        // The rendezvous property: growing N -> N+1 relocates a frame
        // only when the new shard outscores every existing one, so every
        // moved frame lands on the new shard and the old shards never
        // trade frames among themselves.
        for n in 1..=6 {
            let old = ShardSpec::new(n);
            let new = ShardSpec::new(n + 1);
            let mut moved = 0usize;
            for f in 0..2_000u32 {
                let (a, b) = (old.owner_of(f), new.owner_of(f));
                if a != b {
                    assert_eq!(b, n, "frame {f} moved {a}->{b}, not to the new shard");
                    moved += 1;
                }
            }
            // Expected movement is ~2000/(n+1); it must never be the
            // near-total reshuffle a modulo map would cause.
            assert!(
                moved < 2_000 * 2 / (n + 1),
                "n={n}: {moved} of 2000 frames moved"
            );
            assert!(moved > 0, "n={n}: growth must hand the new shard work");
        }
    }
}
