//! The remote-visualization transfer model.
//!
//! "The interactivity offered by the hybrid method makes choosing viewing
//! parameters ... an easy job, and the storage savings mean that the data
//! can be more efficiently transferred from the computer where it was
//! generated to a remote computer on a scientist's desk thousands of
//! miles away" (§2.1). This module turns representation sizes into
//! transfer times for the SIZE experiment.

/// A network path with a fixed usable bandwidth.
#[derive(Clone, Copy, Debug)]
pub struct TransferModel {
    /// Usable bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Fixed per-transfer latency in seconds.
    pub latency: f64,
}

impl TransferModel {
    /// A paper-era wide-area research link: ~100 Mbit/s usable.
    pub fn wide_area() -> TransferModel {
        TransferModel {
            bandwidth: 12.5e6,
            latency: 0.05,
        }
    }

    /// A paper-era desktop LAN: ~1 Gbit/s.
    pub fn local_area() -> TransferModel {
        TransferModel {
            bandwidth: 125.0e6,
            latency: 0.001,
        }
    }

    /// Transfer time for a payload.
    pub fn seconds_for(&self, bytes: u64) -> f64 {
        assert!(self.bandwidth > 0.0);
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Speedup of sending `small` instead of `large`.
    pub fn speedup(&self, large: u64, small: u64) -> f64 {
        self.seconds_for(large) / self.seconds_for(small).max(1e-12)
    }
}

/// A comparison row of the SIZE experiment: one representation's size and
/// its transfer times on the two modeled links.
#[derive(Clone, Debug)]
pub struct TransferReport {
    /// Label ("raw dump", "hybrid ≤100 MB", …).
    pub label: String,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Seconds on the wide-area link.
    pub wan_seconds: f64,
    /// Seconds on the LAN.
    pub lan_seconds: f64,
}

impl TransferReport {
    /// Builds a report row.
    pub fn new(label: impl Into<String>, bytes: u64) -> TransferReport {
        TransferReport {
            label: label.into(),
            bytes,
            wan_seconds: TransferModel::wide_area().seconds_for(bytes),
            lan_seconds: TransferModel::local_area().seconds_for(bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_linear_in_size_plus_latency() {
        let m = TransferModel {
            bandwidth: 1e6,
            latency: 0.5,
        };
        assert!((m.seconds_for(0) - 0.5).abs() < 1e-12);
        assert!((m.seconds_for(1_000_000) - 1.5).abs() < 1e-12);
        assert!((m.seconds_for(2_000_000) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn paper_scale_wan_comparison() {
        // A raw 5 GB time step vs a 100 MB hybrid frame on the WAN.
        let wan = TransferModel::wide_area();
        let raw = wan.seconds_for(5_000_000_000);
        let hybrid = wan.seconds_for(100_000_000);
        // Raw: ~400 s (almost 7 minutes); hybrid: ~8 s.
        assert!(raw > 390.0 && raw < 410.0, "raw {raw}");
        assert!(hybrid > 7.0 && hybrid < 9.0, "hybrid {hybrid}");
        assert!(wan.speedup(5_000_000_000, 100_000_000) > 45.0);
    }

    #[test]
    fn report_rows_are_consistent() {
        let r = TransferReport::new("hybrid", 100 << 20);
        assert_eq!(r.bytes, 100 << 20);
        assert!(r.lan_seconds < r.wan_seconds);
        assert_eq!(r.label, "hybrid");
    }
}
