//! The desktop viewer's frame cache (§2.5).
//!
//! "The hybrid method can produce very compact representations, allowing
//! multiple time steps to fit into memory. ... a high-end PC is capable of
//! holding around 10 time steps in memory at once. The previewing program
//! allows the user to step through frames using the keyboard. If a frame
//! is already in memory, it can be displayed instantaneously: the volume
//! texture and display lists are already loaded into video memory, or can
//! be quickly swapped in by the display driver. If a frame is not in
//! memory, it is loaded from disk, a process that takes around 10 seconds
//! for a 100 MB time step."

use crate::hybrid::HybridFrame;
use accelviz_render::texmem::TextureMemory;
use parking_lot::Mutex;
use std::io;
use std::sync::Arc;

/// Result of stepping the viewer to a frame.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrameLoad {
    /// Whether the frame was already in main memory (display is
    /// "instantaneous").
    pub cache_hit: bool,
    /// Bytes read from disk (0 on a hit).
    pub bytes_loaded: u64,
    /// Modeled latency to display the frame: disk read (on miss) plus any
    /// texture re-upload.
    pub seconds: f64,
    /// Whether the frame's volume texture was still resident in video
    /// memory.
    pub texture_resident: bool,
    /// Whether this is a *stale* frame served in place of the requested
    /// one because the source's data path failed (remote retries
    /// exhausted). Local sources never set this; the viewer should badge
    /// the display rather than freeze it.
    pub degraded: bool,
    /// Whether the frame is a *partially refined* rendition of the
    /// requested frame: a progressive stream that could not finish left
    /// a renderable coarse frame behind (always paired with
    /// `degraded`). Unlike a stale degraded load this IS the requested
    /// frame — just at reduced fidelity — so the viewer advances to it.
    pub partial: bool,
}

/// Where a viewing session gets its frames. The paper's desktop viewer
/// reads hybrid frames from local disk ([`LocalFrames`]); the remote
/// service serves the same frames over TCP (`accelviz-serve`'s
/// `RemoteFrames`). A [`crate::session::ViewerSession`] runs unmodified
/// over either.
pub trait FrameSource: Send {
    /// Number of frames available from this source.
    fn frame_count(&self) -> usize;

    /// Loads frame `index`, returning the frame and what the load cost.
    /// `index` must be `< frame_count()`. Local sources are infallible;
    /// remote sources surface transport errors here.
    fn load(&mut self, index: usize) -> io::Result<(Arc<HybridFrame>, FrameLoad)>;
}

/// The in-memory frame series backing the paper's desktop viewer: frames
/// held locally, with a [`FrameCache`] modeling which are resident and
/// what a cold load costs.
pub struct LocalFrames {
    frames: Vec<Arc<HybridFrame>>,
    cache: FrameCache,
}

impl LocalFrames {
    /// A local source over `frames` with an explicit cache model.
    pub fn new(frames: Vec<HybridFrame>, cache: FrameCache) -> LocalFrames {
        LocalFrames {
            frames: frames.into_iter().map(Arc::new).collect(),
            cache,
        }
    }

    /// A local source with the paper-era desktop cache (1 GB memory,
    /// 10 MB/s disk, GeForce-class texture memory).
    pub fn paper_desktop(frames: Vec<HybridFrame>) -> LocalFrames {
        let sizes: Vec<(u64, u64)> = frames
            .iter()
            .map(|f| (f.total_bytes(), f.volume_bytes()))
            .collect();
        LocalFrames::new(frames, FrameCache::paper_desktop(sizes))
    }

    /// The underlying cache model (hit/miss statistics, residency).
    pub fn cache(&self) -> &FrameCache {
        &self.cache
    }
}

impl FrameSource for LocalFrames {
    fn frame_count(&self) -> usize {
        self.frames.len()
    }

    fn load(&mut self, index: usize) -> io::Result<(Arc<HybridFrame>, FrameLoad)> {
        let load = self.cache.step_to(index);
        Ok((Arc::clone(&self.frames[index]), load))
    }
}

/// A frame cache over a sequence of hybrid frames with known sizes. Holds
/// frames in an LRU set bounded by a main-memory budget, and tracks volume
/// textures in a [`TextureMemory`] model. Thread-safe: the viewer's UI
/// thread and prefetcher share it.
pub struct FrameCache {
    inner: Mutex<Inner>,
}

struct Inner {
    /// (frame size in bytes, volume texture bytes) per frame.
    frames: Vec<(u64, u64)>,
    memory_budget: u64,
    disk_bandwidth: f64,
    resident: Vec<usize>, // LRU order, front = oldest
    resident_bytes: u64,
    texmem: TextureMemory,
    hits: u64,
    misses: u64,
}

impl FrameCache {
    /// A cache over frames of the given `(total_bytes, texture_bytes)`
    /// sizes, with a main-memory budget and a disk bandwidth
    /// (bytes/second). The paper's desktop: ~1 GB budget, 10 MB/s disk
    /// (100 MB loads in ~10 s).
    pub fn new(
        frames: Vec<(u64, u64)>,
        memory_budget: u64,
        disk_bandwidth: f64,
        texmem: TextureMemory,
    ) -> FrameCache {
        assert!(disk_bandwidth > 0.0);
        FrameCache {
            inner: Mutex::new(Inner {
                frames,
                memory_budget,
                disk_bandwidth,
                resident: Vec::new(),
                resident_bytes: 0,
                texmem,
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// The paper-era desktop configuration for a given list of frame
    /// sizes: 1 GB of frame memory, 10 MB/s disk, GeForce-class texture
    /// memory.
    pub fn paper_desktop(frames: Vec<(u64, u64)>) -> FrameCache {
        FrameCache::new(frames, 1 << 30, 10.0e6, TextureMemory::geforce_class())
    }

    /// Number of frames the cache knows about.
    pub fn frame_count(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Number of frames currently resident in main memory.
    pub fn resident_count(&self) -> usize {
        self.inner.lock().resident.len()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.inner.lock().hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.inner.lock().misses
    }

    /// Prefetches the frames around `current` (the keyboard-stepping
    /// workflow of §2.5 almost always moves to a neighbor), warming the
    /// cache in both directions up to `radius`. Returns the number of
    /// frames actually loaded. Never evicts the current frame.
    pub fn prefetch_window(&self, current: usize, radius: usize) -> usize {
        let n = self.frame_count();
        if n == 0 {
            return 0;
        }
        let mut loaded = 0;
        // Touch the current frame first so it is the most-recently-used
        // and survives the prefetch evictions.
        self.step_to(current.min(n - 1));
        for d in 1..=radius {
            for idx in [current.checked_sub(d), Some(current + d)]
                .into_iter()
                .flatten()
            {
                if idx < n && !self.step_to_internal(idx, true).cache_hit {
                    loaded += 1;
                }
            }
        }
        loaded
    }

    /// Steps the viewer to `frame`, loading from "disk" if needed and
    /// binding its volume texture.
    pub fn step_to(&self, frame: usize) -> FrameLoad {
        self.step_to_internal(frame, false)
    }

    fn step_to_internal(&self, frame: usize, prefetch: bool) -> FrameLoad {
        let mut g = self.inner.lock();
        assert!(frame < g.frames.len(), "frame {frame} out of range");
        let (total, tex) = g.frames[frame];

        let pos = g.resident.iter().position(|&f| f == frame);
        let (cache_hit, bytes_loaded, mut seconds) = match pos {
            Some(p) => {
                // LRU touch.
                let f = g.resident.remove(p);
                g.resident.push(f);
                if !prefetch {
                    g.hits += 1;
                }
                (true, 0, 0.0)
            }
            None => {
                // Evict LRU frames until the new one fits.
                while g.resident_bytes + total > g.memory_budget && !g.resident.is_empty() {
                    let victim = g.resident.remove(0);
                    g.resident_bytes -= g.frames[victim].0;
                    g.texmem.evict(victim as u64);
                }
                g.resident.push(frame);
                g.resident_bytes += total;
                if !prefetch {
                    g.misses += 1;
                }
                (false, total, total as f64 / g.disk_bandwidth)
            }
        };

        // Bind the volume texture (may re-upload if the driver evicted
        // it — the "quickly swapped in by the display driver" path).
        let tex_result = g.texmem.request(frame as u64, tex);
        let texture_resident = match tex_result {
            Some(r) => {
                seconds += r.upload_seconds;
                r.was_resident
            }
            None => false,
        };

        FrameLoad {
            cache_hit,
            bytes_loaded,
            seconds,
            texture_resident,
            degraded: false,
            partial: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ten 100 MB frames with 256 KB volume textures (64³).
    fn paper_frames(n: usize) -> Vec<(u64, u64)> {
        vec![(100 << 20, 64 * 64 * 64); n]
    }

    #[test]
    fn first_visit_misses_revisit_hits() {
        let cache = FrameCache::paper_desktop(paper_frames(5));
        let first = cache.step_to(2);
        assert!(!first.cache_hit);
        assert_eq!(first.bytes_loaded, 100 << 20);
        // ~10 s for a 100 MB load at 10 MB/s — the paper's number.
        assert!(
            (first.seconds - 10.49).abs() < 0.2,
            "load took {}",
            first.seconds
        );
        let again = cache.step_to(2);
        assert!(again.cache_hit);
        assert_eq!(again.bytes_loaded, 0);
        assert!(
            again.seconds < 1e-3,
            "cached frame displays instantaneously"
        );
        assert!(again.texture_resident);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn about_ten_100mb_frames_fit_in_a_1gb_budget() {
        let cache = FrameCache::paper_desktop(paper_frames(20));
        for f in 0..20 {
            cache.step_to(f);
        }
        // The paper: "a high-end PC is capable of holding around 10 time
        // steps in memory at once."
        assert_eq!(cache.resident_count(), 10);
    }

    #[test]
    fn lru_eviction_prefers_old_frames() {
        let cache = FrameCache::new(
            vec![(400, 10); 4],
            1000,
            1e6,
            TextureMemory::new(1 << 20, 1e9),
        );
        cache.step_to(0);
        cache.step_to(1);
        cache.step_to(0); // touch 0 so 1 is LRU
        cache.step_to(2); // evicts 1
        assert!(cache.step_to(0).cache_hit);
        assert!(!cache.step_to(1).cache_hit);
    }

    #[test]
    fn stepping_through_cached_frames_is_free() {
        // The time-animation workflow of Figure 5: after one pass, paging
        // through the resident window costs nothing.
        let cache = FrameCache::paper_desktop(paper_frames(8));
        for f in 0..8 {
            cache.step_to(f);
        }
        let mut total = 0.0;
        for f in 0..8 {
            total += cache.step_to(f).seconds;
        }
        assert!(
            total < 1e-6,
            "stepping through resident frames cost {total}"
        );
    }

    #[test]
    fn prefetch_makes_neighbor_steps_hits() {
        let cache = FrameCache::paper_desktop(paper_frames(9));
        cache.step_to(4);
        let loaded = cache.prefetch_window(4, 2);
        assert_eq!(loaded, 4, "frames 2, 3, 5, 6 must be prefetched");
        // Stepping to any of them is now instantaneous.
        for f in [3usize, 5, 2, 6] {
            let load = cache.step_to(f);
            assert!(load.cache_hit, "frame {f} should be warm");
            assert!(load.seconds < 1e-3);
        }
        // Prefetch loads don't pollute the hit/miss statistics.
        assert_eq!(cache.misses(), 1, "only the explicit step_to(4) missed");
    }

    #[test]
    fn prefetch_clamps_at_series_edges() {
        let cache = FrameCache::paper_desktop(paper_frames(3));
        let loaded = cache.prefetch_window(0, 5);
        assert_eq!(loaded, 2, "only frames 1 and 2 exist to the right");
        assert_eq!(cache.resident_count(), 3);
        // Empty cache case.
        let empty = FrameCache::paper_desktop(Vec::new());
        assert_eq!(empty.prefetch_window(0, 3), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_frame_panics() {
        let cache = FrameCache::paper_desktop(paper_frames(2));
        cache.step_to(5);
    }
}
