//! Wire-codec hardening: property-tested roundtrips plus corruption
//! handling. The contract under test: any `HybridFrame` survives
//! encode → decode bit-identically, and any damaged stream produces a
//! structured [`ServeError`] — never a panic.

use accelviz_beam::particle::Particle;
use accelviz_core::hybrid::HybridFrame;
use accelviz_math::{Aabb, Vec3};
use accelviz_octree::density::DensityGrid;
use accelviz_octree::plots::PlotType;
use accelviz_serve::error::ServeError;
use accelviz_serve::protocol::{read_response, write_response, write_response_v, Response};
use accelviz_serve::wire::{
    decode_frame, decode_frame_v2, encode_frame, encode_frame_v2, read_envelope, write_envelope, V2,
};
use proptest::prelude::*;

/// A strategy over arbitrary (well-formed) hybrid frames.
fn arb_frame() -> impl Strategy<Value = HybridFrame> {
    let particle = (
        -10.0..10.0f64,
        -1.0..1.0f64,
        -10.0..10.0f64,
        -1.0..1.0f64,
        -10.0..10.0f64,
        -1.0..1.0f64,
    );
    (
        (0usize..10_000, 0usize..4),
        prop::collection::vec((particle, 0.0..1.0f64), 0..32),
        (1usize..5, 1usize..5, 1usize..5),
        prop::collection::vec(0.0..50.0f32, 64..=64),
        (1e-9..10.0f64, 0u64..100_000),
        (
            (-5.0..0.0f64, -5.0..0.0f64, -5.0..0.0f64),
            (0.1..5.0f64, 0.1..5.0f64, 0.1..5.0f64),
        ),
    )
        .prop_map(
            |((step, plot_idx), pts, dims, cells, (threshold, discarded), bounds)| {
                let ((x0, y0, z0), (dx, dy, dz)) = bounds;
                let bounds = Aabb {
                    min: Vec3::new(x0, y0, z0),
                    max: Vec3::new(x0 + dx, y0 + dy, z0 + dz),
                };
                let mut points = Vec::new();
                let mut point_densities = Vec::new();
                for ((x, px, y, py, z, pz), d) in pts {
                    points.push(Particle::from_array([x, px, y, py, z, pz]));
                    point_densities.push(d);
                }
                let dims = [dims.0, dims.1, dims.2];
                let n_cells = dims[0] * dims[1] * dims[2];
                HybridFrame {
                    step,
                    plot: PlotType::FIGURE2[plot_idx],
                    bounds,
                    points,
                    point_densities,
                    grid: DensityGrid::from_raw(bounds, dims, cells[..n_cells].to_vec()),
                    threshold,
                    discarded,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn frame_payloads_roundtrip_bit_identically(frame in arb_frame()) {
        let payload = encode_frame(&frame);
        let decoded = decode_frame(&payload).expect("well-formed payload must decode");
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn frame_responses_roundtrip_through_envelopes(frame in arb_frame()) {
        let mut buf = Vec::new();
        let written = write_response(&mut buf, &Response::Frame(frame.clone())).unwrap();
        prop_assert_eq!(written as usize, buf.len());
        let (resp, wire_bytes) = read_response(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(wire_bytes as usize, buf.len());
        match resp {
            Response::Frame(decoded) => prop_assert_eq!(decoded, frame),
            other => return Err(TestCaseError::fail(format!("expected Frame, got {other:?}"))),
        }
    }

    #[test]
    fn truncation_anywhere_is_a_structured_error(frame in arb_frame(), cut in 0.0..1.0f64) {
        let mut buf = Vec::new();
        write_response(&mut buf, &Response::Frame(frame)).unwrap();
        // Cut the stream at a proportional point strictly before the end.
        let keep = ((buf.len() - 1) as f64 * cut) as usize;
        let result = read_envelope(&mut &buf[..keep]);
        prop_assert!(
            matches!(result, Err(ServeError::Truncated { .. })),
            "cut at {}/{} gave {:?}", keep, buf.len(), result
        );
    }

    #[test]
    fn v2_frame_payloads_roundtrip_bit_identically(frame in arb_frame()) {
        let (payload, raw_len) = encode_frame_v2(&frame);
        prop_assert_eq!(raw_len as usize, encode_frame(&frame).len());
        let decoded = decode_frame_v2(&payload).expect("well-formed v2 payload must decode");
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn v2_frame_responses_roundtrip_through_envelopes(frame in arb_frame()) {
        let mut buf = Vec::new();
        let written = write_response_v(&mut buf, V2, &Response::Frame(frame.clone())).unwrap();
        prop_assert_eq!(written as usize, buf.len());
        let (resp, wire_bytes) = read_response(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(wire_bytes as usize, buf.len());
        match resp {
            Response::Frame(decoded) => prop_assert_eq!(decoded, frame),
            other => return Err(TestCaseError::fail(format!("expected Frame, got {other:?}"))),
        }
    }

    #[test]
    fn v2_truncation_anywhere_is_a_structured_error(frame in arb_frame(), cut in 0.0..1.0f64) {
        let (payload, _) = encode_frame_v2(&frame);
        let keep = ((payload.len() - 1) as f64 * cut) as usize;
        match decode_frame_v2(&payload[..keep]) {
            Err(ServeError::Corrupt(_)) | Err(ServeError::Truncated { .. }) => {}
            other => return Err(TestCaseError::fail(format!(
                "v2 cut at {keep}/{} gave {other:?}", payload.len()
            ))),
        }
    }

    #[test]
    fn v2_payload_bitflips_never_decode_silently(frame in arb_frame(), at in 0.0..1.0f64) {
        // Straight at the v2 payload codec, no envelope checksum in the
        // way: a flipped byte must never decode to a *different* frame —
        // it surfaces as a structured error (truncated/corrupt blocks, or
        // the trailing checksum over the decoded frame), except when the
        // flip lands in a bitpack block's dead padding bits, where the
        // identical frame decoding back is correct.
        let (payload, _) = encode_frame_v2(&frame);
        let mut bad = payload.clone();
        let idx = ((payload.len() - 1) as f64 * at) as usize;
        bad[idx] ^= 0x40;
        match decode_frame_v2(&bad) {
            Err(ServeError::Corrupt(_)) | Err(ServeError::Truncated { .. }) => {}
            Ok(decoded) => prop_assert_eq!(decoded, frame),
            Err(other) => return Err(TestCaseError::fail(format!(
                "v2 bitflip at {idx} gave unexpected error {other:?}"
            ))),
        }
    }

    #[test]
    fn payload_bitflips_never_decode_silently(frame in arb_frame(), at in 0.0..1.0f64) {
        let payload = encode_frame(&frame);
        if payload.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::new();
        write_envelope(&mut buf, 0x83, &payload).unwrap();
        // Flip one payload byte (past the 16-byte header).
        let idx = 16 + ((payload.len() - 1) as f64 * at) as usize;
        buf[idx] ^= 0x40;
        let result = read_envelope(&mut buf.as_slice());
        prop_assert!(
            matches!(result, Err(ServeError::ChecksumMismatch { .. })),
            "bitflip at {idx} gave {result:?}"
        );
    }
}

#[test]
fn bad_magic_is_rejected_before_anything_else() {
    let mut buf = Vec::new();
    write_envelope(&mut buf, 0x01, b"payload").unwrap();
    buf[0] = b'X';
    match read_envelope(&mut buf.as_slice()) {
        Err(ServeError::BadMagic(m)) => assert_eq!(&m[1..], b"VWF"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn unknown_protocol_version_is_rejected() {
    let mut buf = Vec::new();
    write_envelope(&mut buf, 0x01, b"payload").unwrap();
    buf[4..6].copy_from_slice(&99u16.to_le_bytes());
    match read_envelope(&mut buf.as_slice()) {
        Err(ServeError::UnsupportedVersion(99)) => {}
        other => panic!("expected UnsupportedVersion(99), got {other:?}"),
    }
}

#[test]
fn corrupted_checksum_trailer_is_rejected() {
    let mut buf = Vec::new();
    write_envelope(&mut buf, 0x01, b"payload").unwrap();
    let last = buf.len() - 1;
    buf[last] ^= 0xff;
    assert!(matches!(
        read_envelope(&mut buf.as_slice()),
        Err(ServeError::ChecksumMismatch { .. })
    ));
}

#[test]
fn garbage_frame_payload_is_corrupt_not_a_panic() {
    // A syntactically valid envelope whose payload is noise.
    for len in [0usize, 1, 7, 16, 64, 300] {
        let noise: Vec<u8> = (0..len)
            .map(|i| (i as u8).wrapping_mul(37).wrapping_add(11))
            .collect();
        match decode_frame(&noise) {
            Err(ServeError::Corrupt(_)) => {}
            Ok(_) => panic!("noise of {len} bytes decoded as a frame"),
            Err(other) => panic!("expected Corrupt, got {other:?}"),
        }
    }
}

#[test]
fn empty_frame_roundtrips() {
    let bounds = Aabb {
        min: Vec3::new(0.0, 0.0, 0.0),
        max: Vec3::new(1.0, 1.0, 1.0),
    };
    let frame = HybridFrame {
        step: 0,
        plot: PlotType::XYZ,
        bounds,
        points: Vec::new(),
        point_densities: Vec::new(),
        grid: DensityGrid::from_raw(bounds, [1, 1, 1], vec![0.0]),
        threshold: 0.5,
        discarded: 0,
    };
    let decoded = decode_frame(&encode_frame(&frame)).unwrap();
    assert_eq!(decoded, frame);
}
