//! Property tests for the retry policy: a backoff schedule must be a
//! pure function of its seed, must never exceed the retry budget or the
//! attempt count, and — whenever the multiplier dominates the jitter —
//! must be monotonically spaced.

use accelviz_serve::RetryPolicy;
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn schedules_are_deterministic_bounded_and_monotone(
        seed in 0u64..1_000_000_000_000,
        attempts in 2u32..10,
        base_ms in 1u64..200,
        budget_ms in 50u64..5_000,
        jitter in 0.0..1.0f64,
        growth in 0.0..2.0f64,
    ) {
        // multiplier >= 1 + jitter is the documented monotonicity
        // precondition; generate only policies that satisfy it.
        let policy = RetryPolicy {
            max_attempts: attempts,
            base_delay: Duration::from_millis(base_ms),
            max_delay: Duration::from_secs(5),
            multiplier: 1.0 + jitter + growth,
            jitter,
            seed,
            budget: Duration::from_millis(budget_ms),
        };

        // Deterministic: the same policy always emits the same schedule,
        // bit for bit.
        let schedule = policy.schedule();
        prop_assert_eq!(&schedule, &policy.schedule());

        // Bounded by the attempt count (first try is not a retry) and by
        // the wall-clock budget even if every attempt failed instantly.
        prop_assert!((schedule.len() as u32) < attempts);
        let total: Duration = schedule.iter().sum();
        prop_assert!(total <= policy.budget, "{total:?} > {:?}", policy.budget);

        // Monotonically spaced: each wait at least as long as the last.
        for w in schedule.windows(2) {
            prop_assert!(w[1] >= w[0], "schedule not monotone: {schedule:?}");
        }

        // Every single delay respects the jittered per-delay cap.
        let cap = Duration::from_secs_f64(
            policy.max_delay.as_secs_f64() * (1.0 + policy.jitter),
        );
        for d in &schedule {
            prop_assert!(*d <= cap, "{d:?} exceeds cap {cap:?}");
        }
    }

    #[test]
    fn delay_for_is_pure_and_seed_sensitive(
        seed in 0u64..1_000_000_000_000,
        attempt in 0u32..16,
    ) {
        let p = RetryPolicy::seeded(seed);
        prop_assert_eq!(p.delay_for(attempt), p.delay_for(attempt));
        // A different seed must not produce an identical full schedule
        // (individual delays may collide; five in a row will not).
        let q = RetryPolicy::seeded(seed ^ 0xDEAD_BEEF);
        let ps: Vec<_> = (0..5).map(|a| p.delay_for(a)).collect();
        let qs: Vec<_> = (0..5).map(|a| q.delay_for(a)).collect();
        prop_assert!(ps != qs, "seeds {seed} and {} jitter identically", seed ^ 0xDEAD_BEEF);
    }

    #[test]
    fn next_delay_never_busts_the_budget(
        seed in 0u64..1_000_000_000_000,
        elapsed_ms in 0u64..40_000,
        attempt in 0u32..8,
    ) {
        let p = RetryPolicy::seeded(seed);
        let elapsed = Duration::from_millis(elapsed_ms);
        if let Some(d) = p.next_delay(attempt, elapsed) {
            prop_assert!(elapsed + d <= p.budget);
            prop_assert!(attempt + 2 <= p.max_attempts);
        }
    }
}
