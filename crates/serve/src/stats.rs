//! Per-request observability: counters and a latency histogram the server
//! accumulates and reports through the `Stats` reply.
//!
//! The counters live in an [`accelviz_trace::registry::Registry`] owned by
//! each server (so two servers in one process never mix numbers), under
//! the `serve.*` names below; [`ServerStats::from_registry`] assembles the
//! wire-shaped snapshot from it. The histogram type is the shared
//! [`accelviz_trace::hist::LogHistogram`] — the bucket layout the `Stats`
//! reply has always carried — re-exported under its historical name so the
//! wire codec and existing callers are untouched.

use accelviz_trace::registry::Registry;

pub use accelviz_trace::hist::{
    LogHistogram as LatencyHistogram, LATENCY_BUCKETS, LATENCY_EDGES_US,
};

/// Registry counter: requests handled, across all clients and kinds.
pub const CTR_REQUESTS: &str = "serve.requests";
/// Registry counter: frame replies sent.
pub const CTR_FRAMES_SERVED: &str = "serve.frames_served";
/// Registry counter: payload + framing bytes written to clients.
pub const CTR_BYTES_SENT: &str = "serve.bytes_sent";
/// Registry counter: frame requests answered from the extraction cache.
pub const CTR_CACHE_HITS: &str = "serve.cache_hits";
/// Registry counter: frame requests that ran a fresh extraction.
pub const CTR_CACHE_MISSES: &str = "serve.cache_misses";
/// Registry histogram: request service-time distribution.
pub const HIST_LATENCY: &str = "serve.request_latency";
/// Registry counter: connections refused at the connection cap (the
/// client got an in-band `ERR_BUSY` and the socket was closed).
pub const CTR_SHED_CONNECTIONS: &str = "serve.shed_connections";
/// Registry counter: frame requests refused at the in-flight extraction
/// limit (in-band `ERR_BUSY`; the connection stays usable).
pub const CTR_SHED_EXTRACTIONS: &str = "serve.shed_extractions";
/// Registry counter: `accept(2)` failures on the listener (fd
/// exhaustion, transient kernel errors). Registry-only — the `Stats`
/// wire shape is unchanged; tests and embedders read it via
/// [`crate::server::FrameServer::metrics`].
pub const CTR_ACCEPT_ERRORS: &str = "serve.accept_errors";
/// Registry counter: request handlers that panicked and were isolated
/// (the client got `ERR_INTERNAL`; the listener and the other
/// connections were unaffected).
pub const CTR_HANDLER_PANICS: &str = "serve.handler_panics";
/// Registry counter: what served frames would have occupied as raw v1
/// payloads — the numerator of the compression ratio.
pub const CTR_FRAME_BYTES_RAW: &str = "serve.frame_bytes_raw";
/// Registry counter: frame payload bytes actually written to the wire
/// (compressed under AVWF v2, identical to raw for v1 sessions).
pub const CTR_FRAME_BYTES_WIRE: &str = "serve.frame_bytes_wire";
/// Registry counter: progressive (LOD) frame requests served. Each also
/// counts once under `serve.frames_served`; this isolates the
/// progressive share. Registry-only — the `Stats` wire shape is frozen.
pub const CTR_LOD_REQUESTS: &str = "serve.lod_requests";
/// Registry counter: progressive chunk records written (every stream is
/// at least 2: the coarse head and the final tail).
pub const CTR_LOD_CHUNKS: &str = "serve.lod_chunks";
/// Registry counter: wire bytes of progressive chunk envelopes.
/// Registry-only.
pub const CTR_LOD_BYTES_WIRE: &str = "serve.lod_bytes_wire";

/// A snapshot of the server's lifetime counters, as carried by the
/// `Stats` reply.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServerStats {
    /// Requests handled, across all clients and kinds.
    pub requests: u64,
    /// Frame replies sent.
    pub frames_served: u64,
    /// Payload + framing bytes written to clients.
    pub bytes_sent: u64,
    /// Frame requests answered from the extraction cache.
    pub cache_hits: u64,
    /// Frame requests that ran a fresh extraction.
    pub cache_misses: u64,
    /// Request service-time distribution.
    pub latency: LatencyHistogram,
    /// What served frames would have occupied as raw v1 payloads. Only a
    /// v2 stats reply carries this on the wire; a v1 session reads zero.
    pub frame_bytes_raw: u64,
    /// Frame payload bytes actually written (compressed under v2). Only
    /// carried by a v2 stats reply.
    pub frame_bytes_wire: u64,
}

impl ServerStats {
    /// Assembles the wire snapshot from a server's metrics registry.
    pub fn from_registry(reg: &Registry) -> ServerStats {
        ServerStats {
            requests: reg.counter(CTR_REQUESTS),
            frames_served: reg.counter(CTR_FRAMES_SERVED),
            bytes_sent: reg.counter(CTR_BYTES_SENT),
            cache_hits: reg.counter(CTR_CACHE_HITS),
            cache_misses: reg.counter(CTR_CACHE_MISSES),
            latency: reg.histogram(HIST_LATENCY).unwrap_or_default(),
            frame_bytes_raw: reg.counter(CTR_FRAME_BYTES_RAW),
            frame_bytes_wire: reg.counter(CTR_FRAME_BYTES_WIRE),
        }
    }

    /// Raw-to-wire compression ratio of served frames; 1.0 when nothing
    /// has been served (or the session is all-v1, where wire == raw).
    pub fn compression_ratio(&self) -> f64 {
        if self.frame_bytes_wire == 0 {
            1.0
        } else {
            self.frame_bytes_raw as f64 / self.frame_bytes_wire as f64
        }
    }

    /// Fraction of frame requests served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// A printable multi-line summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "requests {}  frames {}  bytes {}  cache {}/{} ({:.0}% hit)\nlatency:",
            self.requests,
            self.frames_served,
            self.bytes_sent,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.hit_rate() * 100.0,
        );
        for (i, &c) in self.latency.counts.iter().enumerate() {
            if c > 0 {
                s.push_str(&format!(" {}:{}", LatencyHistogram::label(i), c));
            }
        }
        if self.frame_bytes_wire > 0 {
            s.push_str(&format!(
                "\nframe payload: {} B raw -> {} B wire ({:.2}x)",
                self.frame_bytes_raw,
                self.frame_bytes_wire,
                self.compression_ratio()
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_spaced() {
        let mut h = LatencyHistogram::default();
        h.record(50e-6); // 50 µs -> bucket 0
        h.record(0.5e-3); // 0.5 ms -> bucket 1
        h.record(5e-3); // 5 ms -> bucket 2
        h.record(2.0); // 2 s -> bucket 5
        h.record(60.0); // 60 s -> overflow
        assert_eq!(h.counts, [1, 1, 1, 0, 0, 1, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn labels_read_naturally() {
        assert_eq!(LatencyHistogram::label(0), "<=100us");
        assert_eq!(LatencyHistogram::label(1), "<=1ms");
        assert_eq!(LatencyHistogram::label(5), "<=10s");
        assert_eq!(LatencyHistogram::label(6), ">10s");
    }

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(ServerStats::default().hit_rate(), 0.0);
        let s = ServerStats {
            cache_hits: 3,
            cache_misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert!(s.summary().contains("75% hit"));
    }

    #[test]
    fn snapshot_mirrors_the_registry() {
        let reg = Registry::new();
        reg.add(CTR_REQUESTS, 5);
        reg.add(CTR_FRAMES_SERVED, 3);
        reg.add(CTR_BYTES_SENT, 9_000);
        reg.add(CTR_CACHE_HITS, 2);
        reg.add(CTR_CACHE_MISSES, 1);
        reg.add(CTR_FRAME_BYTES_RAW, 8_000);
        reg.add(CTR_FRAME_BYTES_WIRE, 2_000);
        reg.record_seconds(HIST_LATENCY, 0.002);
        let s = ServerStats::from_registry(&reg);
        assert_eq!(s.requests, 5);
        assert_eq!(s.frames_served, 3);
        assert_eq!(s.bytes_sent, 9_000);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.frame_bytes_raw, 8_000);
        assert_eq!(s.frame_bytes_wire, 2_000);
        assert!((s.compression_ratio() - 4.0).abs() < 1e-12);
        assert!(s.summary().contains("4.00x"));
        assert_eq!(s.latency.total(), 1);
        assert_eq!(s.latency.counts[2], 1);
    }

    #[test]
    fn empty_registry_snapshots_as_default() {
        assert_eq!(
            ServerStats::from_registry(&Registry::new()),
            ServerStats::default()
        );
    }
}
