//! Per-request observability: counters and a latency histogram the server
//! accumulates and reports through the `Stats` reply.

/// Upper edges of the latency buckets, in microseconds. A request falls in
/// the first bucket whose edge it does not exceed; slower requests land in
/// the final overflow bucket.
pub const LATENCY_EDGES_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Number of histogram buckets (the edges plus one overflow bucket).
pub const LATENCY_BUCKETS: usize = LATENCY_EDGES_US.len() + 1;

/// A fixed-bucket log-scale latency histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Request counts per bucket.
    pub counts: [u64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// Records one request that took `seconds`.
    pub fn record(&mut self, seconds: f64) {
        let us = (seconds.max(0.0) * 1e6) as u64;
        let bucket = LATENCY_EDGES_US
            .iter()
            .position(|&edge| us <= edge)
            .unwrap_or(LATENCY_EDGES_US.len());
        self.counts[bucket] += 1;
    }

    /// Total requests recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Human label for bucket `i`, e.g. `"<=1ms"` or `">10s"`.
    pub fn label(i: usize) -> String {
        fn us_text(us: u64) -> String {
            if us >= 1_000_000 {
                format!("{}s", us / 1_000_000)
            } else if us >= 1_000 {
                format!("{}ms", us / 1_000)
            } else {
                format!("{us}us")
            }
        }
        if i < LATENCY_EDGES_US.len() {
            format!("<={}", us_text(LATENCY_EDGES_US[i]))
        } else {
            format!(">{}", us_text(*LATENCY_EDGES_US.last().unwrap()))
        }
    }
}

/// A snapshot of the server's lifetime counters, as carried by the
/// `Stats` reply.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServerStats {
    /// Requests handled, across all clients and kinds.
    pub requests: u64,
    /// Frame replies sent.
    pub frames_served: u64,
    /// Payload + framing bytes written to clients.
    pub bytes_sent: u64,
    /// Frame requests answered from the extraction cache.
    pub cache_hits: u64,
    /// Frame requests that ran a fresh extraction.
    pub cache_misses: u64,
    /// Request service-time distribution.
    pub latency: LatencyHistogram,
}

impl ServerStats {
    /// Fraction of frame requests served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// A printable multi-line summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "requests {}  frames {}  bytes {}  cache {}/{} ({:.0}% hit)\nlatency:",
            self.requests,
            self.frames_served,
            self.bytes_sent,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.hit_rate() * 100.0,
        );
        for (i, &c) in self.latency.counts.iter().enumerate() {
            if c > 0 {
                s.push_str(&format!(" {}:{}", LatencyHistogram::label(i), c));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_spaced() {
        let mut h = LatencyHistogram::default();
        h.record(50e-6); // 50 µs -> bucket 0
        h.record(0.5e-3); // 0.5 ms -> bucket 1
        h.record(5e-3); // 5 ms -> bucket 2
        h.record(2.0); // 2 s -> bucket 5
        h.record(60.0); // 60 s -> overflow
        assert_eq!(h.counts, [1, 1, 1, 0, 0, 1, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn labels_read_naturally() {
        assert_eq!(LatencyHistogram::label(0), "<=100us");
        assert_eq!(LatencyHistogram::label(1), "<=1ms");
        assert_eq!(LatencyHistogram::label(5), "<=10s");
        assert_eq!(LatencyHistogram::label(6), ">10s");
    }

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(ServerStats::default().hit_rate(), 0.0);
        let s = ServerStats {
            cache_hits: 3,
            cache_misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert!(s.summary().contains("75% hit"));
    }
}
