//! Retry scheduling for the frame-service client.
//!
//! The policy is a pure function of `(seed, attempt)`: exponential
//! backoff with deterministic jitter, capped per-delay and bounded by a
//! total retry budget. Determinism matters here for the same reason it
//! does in [`crate::fault`] — a chaos run that retried its way to
//! success (or failure) must be replayable byte for byte.

use std::time::Duration;

/// When and how often the client retries a failed request.
///
/// A transient failure on attempt `n` (zero-based) sleeps
/// `min(max_delay, base_delay * multiplier^n) * (1 + jitter * u_n)`
/// where `u_n ∈ [0, 1)` is drawn deterministically from `seed` and `n`.
/// Retries stop when `max_attempts` have been made or when the elapsed
/// time plus the next delay would exceed `budget`.
///
/// With `multiplier >= 1 + jitter` the schedule is monotonically
/// non-decreasing — the defaults satisfy this.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts allowed, including the first (so `1` means never
    /// retry).
    pub max_attempts: u32,
    /// Delay before the first retry, pre-jitter.
    pub base_delay: Duration,
    /// Upper bound on any single pre-jitter delay.
    pub max_delay: Duration,
    /// Exponential growth factor between consecutive delays.
    pub multiplier: f64,
    /// Jitter fraction: each delay is stretched by up to `jitter * 100` %.
    pub jitter: f64,
    /// Seed for the deterministic jitter sequence.
    pub seed: u64,
    /// Total wall-clock allowance for retrying one operation; once the
    /// elapsed time plus the next delay would exceed it, the client
    /// gives up.
    pub budget: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(5),
            multiplier: 2.0,
            jitter: 0.5,
            seed: 0,
            budget: Duration::from_secs(30),
        }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// A policy that differs from the default only in its jitter seed —
    /// handy for tests that want distinct but reproducible schedules.
    pub fn seeded(seed: u64) -> RetryPolicy {
        RetryPolicy {
            seed,
            ..RetryPolicy::default()
        }
    }

    /// A fast-retry variant for tests: short delays, generous attempts,
    /// tight budget. Still fully deterministic.
    pub fn fast(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(50),
            multiplier: 2.0,
            jitter: 0.5,
            seed,
            budget: Duration::from_secs(10),
        }
    }

    /// The jittered delay before retry number `attempt` (zero-based).
    /// Pure: same policy and attempt always give the same answer.
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let exp = self.base_delay.as_secs_f64().max(0.0)
            * self.multiplier.max(1.0).powi(attempt.min(64) as i32);
        let capped = exp.min(self.max_delay.as_secs_f64());
        // u ∈ [0, 1) from the top 53 bits of a SplitMix64 draw.
        let bits = splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0xA24B_AED4_963E_E407));
        let u = (bits >> 11) as f64 / (1u64 << 53) as f64;
        Duration::from_secs_f64(capped * (1.0 + self.jitter.max(0.0) * u))
    }

    /// Decides whether to retry after a transient failure: `attempt` is
    /// the zero-based index of the retry being considered and `elapsed`
    /// the time already spent on this operation. Returns the delay to
    /// sleep, or `None` when attempts or budget are exhausted.
    pub fn next_delay(&self, attempt: u32, elapsed: Duration) -> Option<Duration> {
        // attempt N being considered means N + 1 attempts already failed;
        // allow it only if a further try stays within max_attempts.
        if attempt + 2 > self.max_attempts {
            return None;
        }
        let delay = self.delay_for(attempt);
        if elapsed + delay > self.budget {
            return None;
        }
        Some(delay)
    }

    /// The full backoff schedule this policy would produce if every
    /// attempt failed instantly (so elapsed time is the sum of prior
    /// delays). Used by the property tests.
    pub fn schedule(&self) -> Vec<Duration> {
        let mut out = Vec::new();
        let mut elapsed = Duration::ZERO;
        for attempt in 0.. {
            match self.next_delay(attempt, elapsed) {
                Some(d) => {
                    elapsed += d;
                    out.push(d);
                }
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_attempt_only_policy_never_retries() {
        let p = RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        };
        assert_eq!(p.next_delay(0, Duration::ZERO), None);
        assert!(p.schedule().is_empty());
    }

    #[test]
    fn defaults_produce_a_monotone_bounded_schedule() {
        let p = RetryPolicy::default();
        let s = p.schedule();
        assert_eq!(s.len() as u32, p.max_attempts - 1);
        for w in s.windows(2) {
            assert!(w[1] >= w[0], "schedule must be non-decreasing: {s:?}");
        }
        let total: Duration = s.iter().sum();
        assert!(total <= p.budget);
        for d in &s {
            assert!(*d <= Duration::from_secs_f64(p.max_delay.as_secs_f64() * (1.0 + p.jitter)));
        }
    }

    #[test]
    fn budget_cuts_the_schedule_short() {
        let p = RetryPolicy {
            budget: Duration::from_millis(150),
            ..RetryPolicy::default()
        };
        let s = p.schedule();
        assert!(
            (s.len() as u32) < p.max_attempts - 1,
            "150 ms budget cannot fit the full default schedule: {s:?}"
        );
        let total: Duration = s.iter().sum();
        assert!(total <= p.budget);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let a = RetryPolicy::seeded(42).schedule();
        let b = RetryPolicy::seeded(42).schedule();
        let c = RetryPolicy::seeded(43).schedule();
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds must jitter differently");
    }
}
