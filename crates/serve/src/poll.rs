//! Readiness primitives for the event-driven server backend.
//!
//! This is the `mio`-shaped corner of the crate, hand-rolled because the
//! workspace vendors everything: a safe wrapper over `poll(2)` (via the
//! `vendor/libc` shim, the same pattern as the store's mmap), a
//! self-pipe [`Waker`] so other threads can interrupt a blocked poll
//! deterministically, and the [`AcceptBackoff`] schedule that keeps an
//! accept loop from hot-spinning when `accept(2)` itself fails
//! repeatedly (fd exhaustion being the classic case).
//!
//! Unix-only, like the reactor built on it; on other platforms the
//! server falls back to the threaded backend.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Readiness interest / result flags, a safe mirror of `POLLIN`-family
/// bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Readiness {
    /// The fd can be read without blocking (or has pending EOF).
    pub readable: bool,
    /// The fd can be written without blocking.
    pub writable: bool,
    /// The fd is in an error/hangup/invalid state and should be closed.
    pub error: bool,
}

impl Readiness {
    /// Nothing reported.
    pub fn is_empty(&self) -> bool {
        !(self.readable || self.writable || self.error)
    }
}

/// One fd with its requested interest, the input row of [`poll`].
#[derive(Clone, Copy, Debug)]
pub struct PollEntry {
    /// The descriptor to watch.
    pub fd: RawFd,
    /// Wait for readability.
    pub read: bool,
    /// Wait for writability.
    pub write: bool,
}

/// Polls `entries` until at least one is ready or `timeout` passes
/// (`None` waits indefinitely). Returns per-entry [`Readiness`] in input
/// order; on timeout every entry is empty. `EINTR` is retried
/// internally.
pub fn poll(entries: &[PollEntry], timeout: Option<Duration>) -> io::Result<Vec<Readiness>> {
    let mut fds: Vec<libc::pollfd> = entries
        .iter()
        .map(|e| libc::pollfd {
            fd: e.fd,
            events: (if e.read { libc::POLLIN } else { 0 })
                | (if e.write { libc::POLLOUT } else { 0 }),
            revents: 0,
        })
        .collect();
    // poll(2) takes milliseconds; round partial milliseconds up so a
    // 100 µs timeout is a 1 ms sleep, never a hot 0 ms spin.
    let ms: libc::c_int = match timeout {
        None => -1,
        Some(t) => t
            .as_millis()
            .max(u128::from(!t.is_zero()))
            .min(i32::MAX as u128) as libc::c_int,
    };
    loop {
        let rc = unsafe { libc::poll(fds.as_mut_ptr(), fds.len() as libc::nfds_t, ms) };
        if rc >= 0 {
            return Ok(fds
                .iter()
                .map(|f| Readiness {
                    readable: f.revents & libc::POLLIN != 0,
                    writable: f.revents & libc::POLLOUT != 0,
                    error: f.revents & (libc::POLLERR | libc::POLLHUP | libc::POLLNVAL) != 0,
                })
                .collect());
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// A self-pipe that wakes a thread blocked in [`poll`]: include
/// [`Waker::fd`] in the entry set with read interest, and any thread may
/// call [`Waker::wake`] to make that poll return immediately. Closing is
/// handled by `Drop`.
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

// The fds are plain kernel handles; wake() and drain() only touch the
// pipe through syscalls that are safe to issue from any thread.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Opens the pipe.
    pub fn new() -> io::Result<Waker> {
        let mut fds = [-1 as libc::c_int; 2];
        if unsafe { libc::pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The fd to include (with read interest) in the poll set.
    pub fn fd(&self) -> RawFd {
        self.read_fd
    }

    /// Wakes the polling thread by writing one byte. Wakes are
    /// level-triggered and coalesce: the pipe holds pending wake bytes
    /// until [`Waker::drain`] reads them, so a burst of wakes costs a
    /// burst of bytes, not lost signals.
    pub fn wake(&self) {
        let byte = [1u8];
        // A full pipe already guarantees the poller will wake; the
        // return value is deliberately ignored.
        let _ = unsafe { libc::write(self.write_fd, byte.as_ptr() as *const libc::c_void, 1) };
    }

    /// Consumes pending wake bytes after a poll reported the pipe
    /// readable. Reads at most one buffer's worth; leftovers simply make
    /// the next poll return immediately, which is harmless.
    pub fn drain(&self) {
        let mut buf = [0u8; 256];
        let _ = unsafe {
            libc::read(
                self.read_fd,
                buf.as_mut_ptr() as *mut libc::c_void,
                buf.len(),
            )
        };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            libc::close(self.read_fd);
            libc::close(self.write_fd);
        }
    }
}

/// Exponential backoff for a failing accept loop.
///
/// `accept(2)` failing is not like a connection failing: the listener is
/// shared, the error usually reflects process-wide pressure (EMFILE,
/// ENFILE, ENOBUFS), and the naive `continue` turns the accept thread
/// into a 100%-CPU spin until the pressure clears. Each consecutive
/// failure doubles the pause (from [`AcceptBackoff::FIRST`] up to
/// [`AcceptBackoff::MAX`]); any successful accept resets it.
#[derive(Clone, Copy, Debug, Default)]
pub struct AcceptBackoff {
    consecutive_errors: u32,
}

impl AcceptBackoff {
    /// Pause after the first failure.
    pub const FIRST: Duration = Duration::from_millis(1);
    /// Ceiling on the pause, however long the error streak.
    pub const MAX: Duration = Duration::from_millis(100);

    /// A fresh schedule with no failures recorded.
    pub fn new() -> AcceptBackoff {
        AcceptBackoff::default()
    }

    /// Records one accept failure; returns how long to pause before
    /// retrying (doubling per consecutive failure, capped at
    /// [`AcceptBackoff::MAX`]).
    pub fn on_error(&mut self) -> Duration {
        let shift = self.consecutive_errors.min(16);
        self.consecutive_errors = self.consecutive_errors.saturating_add(1);
        Self::FIRST.saturating_mul(1u32 << shift).min(Self::MAX)
    }

    /// Records a successful accept, resetting the schedule.
    pub fn on_success(&mut self) {
        self.consecutive_errors = 0;
    }

    /// Whether the loop is currently in an error streak.
    pub fn in_error_streak(&self) -> bool {
        self.consecutive_errors > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn poll_times_out_empty_and_reports_the_waker() {
        let waker = Waker::new().unwrap();
        let entries = [PollEntry {
            fd: waker.fd(),
            read: true,
            write: false,
        }];
        let ready = poll(&entries, Some(Duration::from_millis(5))).unwrap();
        assert!(ready[0].is_empty(), "no wake yet: {:?}", ready[0]);

        waker.wake();
        let ready = poll(&entries, Some(Duration::from_secs(2))).unwrap();
        assert!(ready[0].readable, "a wake must be visible: {:?}", ready[0]);
        waker.drain();
        let ready = poll(&entries, Some(Duration::from_millis(5))).unwrap();
        assert!(ready[0].is_empty(), "drain consumes the wake");
    }

    #[test]
    fn wake_from_another_thread_interrupts_a_long_poll() {
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        let w = std::sync::Arc::clone(&waker);
        let t0 = Instant::now();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w.wake();
        });
        let entries = [PollEntry {
            fd: waker.fd(),
            read: true,
            write: false,
        }];
        let ready = poll(&entries, Some(Duration::from_secs(30))).unwrap();
        assert!(ready[0].readable);
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "the wake, not the timeout, must end the poll"
        );
        handle.join().unwrap();
    }

    #[test]
    fn accept_backoff_doubles_caps_and_resets() {
        let mut b = AcceptBackoff::new();
        assert!(!b.in_error_streak());
        let first = b.on_error();
        assert_eq!(first, AcceptBackoff::FIRST);
        assert!(b.in_error_streak());
        let mut prev = first;
        let mut saw_cap = false;
        for _ in 0..20 {
            let d = b.on_error();
            assert!(d >= prev, "backoff must be non-decreasing");
            assert!(d <= AcceptBackoff::MAX);
            saw_cap |= d == AcceptBackoff::MAX;
            prev = d;
        }
        assert!(saw_cap, "20 consecutive failures must reach the cap");
        b.on_success();
        assert!(!b.in_error_streak());
        assert_eq!(b.on_error(), AcceptBackoff::FIRST, "success resets");
    }

    #[test]
    fn a_hundred_failures_sleep_long_enough_to_not_spin() {
        // The regression the schedule exists for: a persistent accept
        // error (EMFILE) must not become a hot loop. 100 consecutive
        // failures must schedule well over a second of cumulative pause.
        let mut b = AcceptBackoff::new();
        let total: Duration = (0..100).map(|_| b.on_error()).sum();
        assert!(
            total >= Duration::from_secs(5),
            "100 failures only paused {total:?}"
        );
    }
}
