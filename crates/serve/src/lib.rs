//! Remote visualization as a working service (§2.1's transfer story made
//! real).
//!
//! The paper argues the hybrid representation's payoff is that compact
//! frames "can be more efficiently transferred from the computer where it
//! was generated to a remote computer on a scientist's desk thousands of
//! miles away". The rest of the workspace models that with
//! [`accelviz_core::remote::TransferModel`] arithmetic; this crate
//! implements it: a TCP frame server that owns the partitioned stores,
//! extracts hybrid frames on demand, and serves them to many concurrent
//! viewers over a versioned, checksummed wire format.
//!
//! - [`wire`] — the envelope framing and the [`HybridFrame`] codecs:
//!   the raw v1 encoding and the compressed AVWF v2 encoding built from
//!   `accelviz-store`'s codec blocks, negotiated per session at `Hello`.
//! - [`protocol`] — `Hello` / `ListFrames` / `RequestFrame` / `Stats`
//!   requests and their replies, including structured errors.
//! - [`lod`] — progressive multi-resolution streaming: the
//!   coarse-to-fine chunk planner ([`lod::plan_frame_chunks`]) and the
//!   verifying reassembler ([`lod::ProgressiveAssembler`]), on top of
//!   the record framing in `accelviz_store::progressive`.
//! - [`cache`] — the server's shared LRU extraction cache, keyed by
//!   `(frame, threshold)`.
//! - [`server`] — [`server::FrameServer`] with two selectable connection
//!   backends ([`server::ServeBackend`]): an event-driven `poll(2)`
//!   reactor over a fixed worker pool (the unix default) and the
//!   thread-per-connection baseline.
//! - [`poll`] — the hand-rolled readiness primitives under the reactor:
//!   a `poll(2)` wrapper, a self-pipe waker, and accept-error backoff.
//! - [`client`] — [`client::Client`] and [`client::RemoteFrames`], a
//!   [`accelviz_core::viewer::FrameSource`] so a `ViewerSession` runs
//!   unmodified against a remote server.
//! - [`stats`] — the per-request counters and latency histogram the
//!   `Stats` reply carries.
//! - [`router`] — the scale-out layer: [`router::ShardedFrameService`]
//!   and [`router::FrameRouter`], one AVWF front door over N shard
//!   servers with rendezvous-hashed (optionally replicated) frame
//!   ownership, pooled retrying upstream connections, cross-shard herd
//!   coalescing, replica failover with optional hedged reads, and
//!   aggregated `Stats`.
//! - [`breaker`] — per-shard circuit breakers on the upstream leg, so a
//!   dead shard fast-fails in microseconds instead of burning the retry
//!   budget per request.
//! - [`health`] — the background prober that pings every shard with
//!   cheap `Stats` round trips on a seeded-jitter interval and
//!   reinstates recovered shards with no operator in the loop.
//! - [`retry`] — the deterministic backoff policy behind the client's
//!   reconnect-and-replay resilience.
//! - [`fault`] — seeded, scheduled fault injection for chaos testing
//!   (delays, disconnects, truncations, bit flips at byte offsets).
//! - [`lru`] — the O(log n) recency order shared by the server's
//!   extraction cache, the client's resident set, and the out-of-core
//!   run store's residency window (the type now lives in
//!   `accelviz-store` and is re-exported here unchanged).
//!
//! The failure model — which faults exist, why replay is idempotent, when
//! the server sheds, and how the viewer degrades — is written up in
//! DESIGN.md §11.
//!
//! [`HybridFrame`]: accelviz_core::hybrid::HybridFrame

#![deny(missing_docs)]

pub mod breaker;
pub mod cache;
pub mod client;
pub mod error;
pub mod fault;
pub mod health;
pub mod lod;
#[cfg(unix)]
pub mod poll;
pub mod protocol;
#[cfg(unix)]
mod reactor;
pub mod retry;
pub mod router;
pub mod server;
pub mod stats;
pub mod wire;

// The recency-order structure moved into `accelviz-store` (its residency
// layer needs it below this crate in the dependency graph); re-exported
// under its historical path so `accelviz_serve::lru::LruOrder` keeps
// resolving for every existing caller.
pub use accelviz_store::lru;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use client::{
    Client, ClientConfig, ClientStats, Connector, FaultyConnector, FetchMetrics, RemoteFrames,
    TcpConnector, Transport,
};
pub use error::{Result, ServeError};
pub use fault::{FaultDirection, FaultEvent, FaultKind, FaultPlan, FaultScript, FaultyTransport};
pub use health::HealthConfig;
pub use lru::LruOrder;
pub use retry::RetryPolicy;
pub use router::{FrameRouter, HedgeConfig, RouterConfig, ShardMap, ShardedFrameService};
pub use server::{FrameServer, ServeBackend, ServerConfig};
pub use stats::ServerStats;
