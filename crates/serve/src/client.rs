//! The client side: a thin connection handle plus [`RemoteFrames`], a
//! [`FrameSource`] that lets an unmodified
//! [`accelviz_core::session::ViewerSession`] run against a remote server.

use crate::error::{Result, ServeError};
use crate::protocol::{read_response, write_request, FrameInfo, Request, Response};
use crate::stats::ServerStats;
use crate::wire::VERSION;
use accelviz_core::hybrid::HybridFrame;
use accelviz_core::viewer::{FrameLoad, FrameSource};
use std::collections::HashMap;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Instant;

/// What one frame fetch actually cost on the wire — the measured numbers
/// the `TransferModel` predicts analytically.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FetchMetrics {
    /// Envelope bytes received for the frame reply.
    pub wire_bytes: u64,
    /// Wall-clock seconds from request write to decoded frame.
    pub seconds: f64,
}

/// A connected client. One TCP stream, strict request/reply.
pub struct Client {
    stream: TcpStream,
    frame_count: u32,
}

impl Client {
    /// Connects and performs the `Hello` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr).map_err(ServeError::Io)?;
        let _ = stream.set_nodelay(true);
        let mut client = Client {
            stream,
            frame_count: 0,
        };
        match client.call(&Request::Hello { version: VERSION })? {
            Response::HelloAck { frame_count, .. } => {
                client.frame_count = frame_count;
                Ok(client)
            }
            other => Err(unexpected("HelloAck", &other)),
        }
    }

    /// Frames the server advertised at handshake.
    pub fn frame_count(&self) -> usize {
        self.frame_count as usize
    }

    /// Fetches the frame catalog.
    pub fn list_frames(&mut self) -> Result<Vec<FrameInfo>> {
        match self.call(&Request::ListFrames)? {
            Response::FrameList(frames) => Ok(frames),
            other => Err(unexpected("FrameList", &other)),
        }
    }

    /// Fetches one frame at one threshold, measuring the transfer.
    pub fn fetch(&mut self, frame: u32, threshold: f64) -> Result<(HybridFrame, FetchMetrics)> {
        // The wire-transfer span of the pipeline trace: request write to
        // decoded reply, as seen from the viewer side.
        let mut span = accelviz_trace::span("serve.fetch");
        span.arg("frame", frame as f64);
        span.arg("threshold", threshold);
        let t0 = Instant::now();
        write_request(
            &mut self.stream,
            &Request::RequestFrame { frame, threshold },
        )?;
        let (resp, wire_bytes) = read_response(&mut self.stream)?;
        let seconds = t0.elapsed().as_secs_f64();
        span.arg("wire_bytes", wire_bytes as f64);
        match resp {
            Response::Frame(f) => Ok((
                f,
                FetchMetrics {
                    wire_bytes,
                    seconds,
                },
            )),
            other => Err(unexpected("Frame", &other)),
        }
    }

    /// Fetches the server's statistics snapshot.
    pub fn stats(&mut self) -> Result<ServerStats> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected("Stats", &other)),
        }
    }

    fn call(&mut self, req: &Request) -> Result<Response> {
        write_request(&mut self.stream, req)?;
        Ok(read_response(&mut self.stream)?.0)
    }
}

/// Converts an in-band error reply to [`ServeError::Remote`]; anything
/// else out of order is a protocol violation.
fn unexpected(wanted: &str, got: &Response) -> ServeError {
    match got {
        Response::Error { code, message } => ServeError::Remote {
            code: *code,
            message: message.clone(),
        },
        other => ServeError::Protocol(format!("expected {wanted}, got {}", response_name(other))),
    }
}

fn response_name(r: &Response) -> &'static str {
    match r {
        Response::HelloAck { .. } => "HelloAck",
        Response::FrameList(_) => "FrameList",
        Response::Frame(_) => "Frame",
        Response::Stats(_) => "Stats",
        Response::Error { .. } => "Error",
    }
}

/// A network-backed [`FrameSource`]: frames come over TCP at a fixed
/// extraction threshold, with a client-side resident set so revisited
/// frames display without a round trip — the remote twin of the viewer's
/// local [`accelviz_core::viewer::FrameCache`].
pub struct RemoteFrames {
    client: Client,
    threshold: f64,
    /// Frames the client may hold before evicting, LRU.
    max_resident: usize,
    resident: Vec<u32>,
    frames: HashMap<u32, Arc<HybridFrame>>,
    /// Wire bytes received across all fetches.
    pub bytes_fetched: u64,
}

impl RemoteFrames {
    /// A remote source fetching at `threshold`, holding up to
    /// `max_resident` frames client-side.
    pub fn new(client: Client, threshold: f64, max_resident: usize) -> RemoteFrames {
        assert!(max_resident > 0, "need room for at least the current frame");
        RemoteFrames {
            client,
            threshold,
            max_resident,
            resident: Vec::new(),
            frames: HashMap::new(),
            bytes_fetched: 0,
        }
    }

    /// The connection, e.g. to pull server stats mid-session.
    pub fn client(&mut self) -> &mut Client {
        &mut self.client
    }
}

impl FrameSource for RemoteFrames {
    fn frame_count(&self) -> usize {
        self.client.frame_count()
    }

    fn load(&mut self, index: usize) -> io::Result<(Arc<HybridFrame>, FrameLoad)> {
        let key = index as u32;
        if let Some(frame) = self.frames.get(&key).cloned() {
            let pos = self.resident.iter().position(|&k| k == key).unwrap();
            let k = self.resident.remove(pos);
            self.resident.push(k);
            let load = FrameLoad {
                cache_hit: true,
                bytes_loaded: 0,
                seconds: 0.0,
                texture_resident: true,
            };
            return Ok((frame, load));
        }
        let (frame, metrics) = self
            .client
            .fetch(key, self.threshold)
            .map_err(io::Error::from)?;
        let frame = Arc::new(frame);
        while self.resident.len() >= self.max_resident {
            let victim = self.resident.remove(0);
            self.frames.remove(&victim);
        }
        self.resident.push(key);
        self.frames.insert(key, Arc::clone(&frame));
        self.bytes_fetched += metrics.wire_bytes;
        let load = FrameLoad {
            cache_hit: false,
            bytes_loaded: metrics.wire_bytes,
            seconds: metrics.seconds,
            texture_resident: false,
        };
        Ok((frame, load))
    }
}
