//! The client side: a resilient connection handle plus [`RemoteFrames`],
//! a [`FrameSource`] that lets an unmodified
//! [`accelviz_core::session::ViewerSession`] run against a remote server.
//!
//! Resilience model: the protocol is strict request/reply and every
//! request (`Hello`, `ListFrames`, `RequestFrame`, `Stats`) is
//! idempotent, so any transport failure — timeout, reset, truncation,
//! corruption — can be healed by reconnecting, re-running the `Hello`
//! handshake, and replaying the request. [`Client`] does exactly that,
//! paced by a [`RetryPolicy`]; when retries are exhausted,
//! [`RemoteFrames`] degrades to its most recent resident frame (flagged
//! [`FrameLoad::degraded`]) so the viewer keeps rendering instead of
//! freezing. Retries, reconnects, and degraded loads are counted on the
//! global [`accelviz_trace`] registry under the `client.*` names below.

use crate::error::{Result, ServeError};
use crate::fault::{FaultScript, FaultyTransport};
use crate::lod::ProgressiveAssembler;
use crate::lru::LruOrder;
use crate::protocol::{
    read_chunk_reply, read_response, write_request, ChunkReply, FrameInfo, Request, Response,
};
use crate::retry::RetryPolicy;
use crate::stats::ServerStats;
use crate::wire::VERSION;
use accelviz_core::hybrid::HybridFrame;
use accelviz_core::viewer::{FrameLoad, FrameSource};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A progressive fetch outcome: the final result, plus — on failure —
/// the renderable partial frame the stream reached and what it cost.
type ProgressiveFetch = (
    Result<(HybridFrame, FetchMetrics)>,
    Option<(HybridFrame, FetchMetrics)>,
);

/// Global-registry counter: requests retried after a transient failure.
pub const CTR_CLIENT_RETRIES: &str = "client.retries";
/// Global-registry counter: connections re-established (including the
/// `Hello` re-handshake).
pub const CTR_CLIENT_RECONNECTS: &str = "client.reconnects";
/// Global-registry counter: loads served from a stale resident frame
/// after retries were exhausted.
pub const CTR_CLIENT_DEGRADED: &str = "client.degraded_frames";
/// Global-registry counter: progressive chunk records applied to an
/// assembling frame (replayed records skipped at the high-water mark do
/// not count).
pub const CTR_CLIENT_REFINE_CHUNKS: &str = "client.refine_chunks";
/// Global-registry counter: loads answered with a *partially refined*
/// frame after a progressive stream failed past the renderable coarse
/// head (the [`FrameLoad::partial`] degradation).
pub const CTR_CLIENT_REFINE_PARTIAL: &str = "client.refine_partial_frames";

/// What one frame fetch actually cost on the wire — the measured numbers
/// the `TransferModel` predicts analytically.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FetchMetrics {
    /// Envelope bytes received for the frame reply.
    pub wire_bytes: u64,
    /// Wall-clock seconds from request write to decoded frame, including
    /// any retries and reconnects in between.
    pub seconds: f64,
}

/// A client connection stream. Anything `Read + Write` qualifies; the
/// production transport is a `TcpStream`, tests substitute
/// [`FaultyTransport`]-wrapped streams.
pub trait Transport: Read + Write + Send {}

impl<S: Read + Write + Send> Transport for S {}

/// Produces fresh [`Transport`]s — called once at connect time and again
/// on every reconnect. Implement it to put anything between the client
/// and the server (the crate ships [`TcpConnector`] and
/// [`FaultyConnector`]).
pub trait Connector: Send {
    /// Opens a new transport to the server.
    fn connect(&mut self) -> Result<Box<dyn Transport>>;
}

/// Client-side resilience knobs.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection; `None` uses the OS
    /// default. Mirrors the server's 30 s worker timeouts.
    pub connect_timeout: Option<Duration>,
    /// Bound on any single blocking read — a stalled or half-open server
    /// must not hang the viewer forever.
    pub read_timeout: Option<Duration>,
    /// Same bound for writes.
    pub write_timeout: Option<Duration>,
    /// How transient failures are retried; `None` fails fast on the
    /// first error (the pre-resilience behavior).
    pub retry: Option<RetryPolicy>,
    /// The newest protocol version this client offers at `Hello`. The
    /// server answers with `min(max_version, its own newest)`; set this
    /// to `wire::V1` to force an uncompressed v1 session against any
    /// server.
    pub max_version: u16,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(30)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            retry: Some(RetryPolicy::default()),
            max_version: VERSION,
        }
    }
}

impl ClientConfig {
    /// Timeouts on, retries off: any transport failure surfaces
    /// immediately, like the client behaved before the resilience layer.
    pub fn no_retry() -> ClientConfig {
        ClientConfig {
            retry: None,
            ..ClientConfig::default()
        }
    }
}

/// Dials a TCP address with the configured timeouts.
pub struct TcpConnector {
    addrs: Vec<SocketAddr>,
    connect_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
}

impl TcpConnector {
    /// Resolves `addr` once and dials it (first address that answers)
    /// with `config`'s timeouts on every connect.
    pub fn new(addr: impl ToSocketAddrs, config: &ClientConfig) -> Result<TcpConnector> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs().map_err(ServeError::Io)?.collect();
        if addrs.is_empty() {
            return Err(ServeError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )));
        }
        Ok(TcpConnector {
            addrs,
            connect_timeout: config.connect_timeout,
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
        })
    }

    fn dial(&self) -> Result<TcpStream> {
        let mut last: Option<io::Error> = None;
        for addr in &self.addrs {
            let attempt = match self.connect_timeout {
                Some(t) => TcpStream::connect_timeout(addr, t),
                None => TcpStream::connect(addr),
            };
            match attempt {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(self.read_timeout);
                    let _ = stream.set_write_timeout(self.write_timeout);
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ServeError::Io(last.expect("addrs is non-empty")))
    }
}

impl Connector for TcpConnector {
    fn connect(&mut self) -> Result<Box<dyn Transport>> {
        Ok(Box::new(self.dial()?))
    }
}

/// A [`TcpConnector`] whose every transport is wrapped in a
/// [`FaultyTransport`] drawing from one shared [`FaultScript`] — the
/// chaos-test connector. Byte positions in the script are cumulative
/// across reconnects, so one seeded plan describes the whole session.
pub struct FaultyConnector {
    inner: TcpConnector,
    script: Arc<FaultScript>,
}

impl FaultyConnector {
    /// Wraps `inner` so every connection it opens is faulted by `script`.
    pub fn new(inner: TcpConnector, script: Arc<FaultScript>) -> FaultyConnector {
        FaultyConnector { inner, script }
    }
}

impl Connector for FaultyConnector {
    fn connect(&mut self) -> Result<Box<dyn Transport>> {
        let stream = self.inner.dial()?;
        Ok(Box::new(FaultyTransport::new(
            stream,
            Arc::clone(&self.script),
        )))
    }
}

/// What the resilience layer has done on this client's behalf.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests retried after a transient failure.
    pub retries: u64,
    /// Connections re-established (each includes a `Hello` re-handshake).
    pub reconnects: u64,
    /// Operations that failed even after exhausting the retry policy.
    pub giveups: u64,
}

/// A connected client. One transport at a time, strict request/reply;
/// transparently reconnects and replays on transient failures when a
/// [`RetryPolicy`] is configured.
pub struct Client {
    connector: Box<dyn Connector>,
    config: ClientConfig,
    transport: Option<Box<dyn Transport>>,
    frame_count: u32,
    /// The protocol version the server granted at the most recent
    /// handshake (0 before any handshake succeeds).
    negotiated: u16,
    stats: ClientStats,
    ever_connected: bool,
    /// Wire bytes of the most recent successful reply (attempts that
    /// failed partway do not count — their bytes never became a frame).
    last_wire_bytes: u64,
}

impl Client {
    /// Connects with default resilience (30 s timeouts, default retry
    /// policy) and performs the `Hello` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit resilience knobs.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Client> {
        let connector = TcpConnector::new(addr, &config)?;
        Client::connect_via(Box::new(connector), config)
    }

    /// Connects through an arbitrary [`Connector`] — the entry point for
    /// fault-injected transports.
    pub fn connect_via(connector: Box<dyn Connector>, config: ClientConfig) -> Result<Client> {
        let mut client = Client {
            connector,
            config,
            transport: None,
            frame_count: 0,
            negotiated: 0,
            stats: ClientStats::default(),
            ever_connected: false,
            last_wire_bytes: 0,
        };
        // The initial connect gets the same retry treatment as any later
        // operation: a server still coming up is a transient condition.
        client.retry_loop(|_t| Ok(()))?;
        Ok(client)
    }

    /// Frames the server advertised at the (most recent) handshake.
    pub fn frame_count(&self) -> usize {
        self.frame_count as usize
    }

    /// The protocol version the server granted at the most recent
    /// handshake: `wire::V2` against a current server, `wire::V1` when
    /// either side capped the session at the uncompressed encoding.
    pub fn negotiated_version(&self) -> u16 {
        self.negotiated
    }

    /// What the resilience layer has done so far.
    pub fn client_stats(&self) -> ClientStats {
        self.stats
    }

    /// Fetches the frame catalog.
    pub fn list_frames(&mut self) -> Result<Vec<FrameInfo>> {
        match self.call(Request::ListFrames)? {
            Response::FrameList(frames) => Ok(frames),
            other => Err(unexpected("FrameList", &other)),
        }
    }

    /// Fetches one frame at one threshold, measuring the transfer
    /// (retries and reconnects included in the measured seconds).
    pub fn fetch(&mut self, frame: u32, threshold: f64) -> Result<(HybridFrame, FetchMetrics)> {
        // The wire-transfer span of the pipeline trace: request write to
        // decoded reply, as seen from the viewer side.
        let mut span = accelviz_trace::span("serve.fetch");
        span.arg("frame", frame as f64);
        span.arg("threshold", threshold);
        let t0 = Instant::now();
        let resp = self.call(Request::RequestFrame { frame, threshold })?;
        let seconds = t0.elapsed().as_secs_f64();
        match resp {
            Response::Frame(f) => {
                let wire_bytes = self.last_wire_bytes;
                span.arg("wire_bytes", wire_bytes as f64);
                Ok((
                    f,
                    FetchMetrics {
                        wire_bytes,
                        seconds,
                    },
                ))
            }
            other => Err(unexpected("Frame", &other)),
        }
    }

    /// Fetches one frame progressively: a coarse renderable head first,
    /// then refinement records, reassembled and verified against the
    /// frame's v1 trailer — the returned frame is bit-identical to what
    /// [`Client::fetch`] returns for the same request. `chunk_bytes` is
    /// the requested chunk budget (0 lets the server choose, honoring
    /// its `ACCELVIZ_LOD_BUDGET`). Requires a v2 session; a v1-capped
    /// client gets the server's in-band rejection.
    ///
    /// Resilience: a mid-stream transport failure reconnects and
    /// replays the request; the server restarts from the first record
    /// and already-applied records are skipped at the assembler's
    /// high-water mark, so refinement resumes instead of restarting.
    pub fn fetch_progressive(
        &mut self,
        frame: u32,
        threshold: f64,
        chunk_bytes: u64,
    ) -> Result<(HybridFrame, FetchMetrics)> {
        self.fetch_progressive_inner(frame, threshold, chunk_bytes)
            .0
    }

    /// The progressive fetch with its degradation channel: on failure,
    /// the second slot carries the renderable partial frame the stream
    /// got to (if it reached the coarse head at all) and what it cost.
    /// [`RemoteFrames`] uses this to hand the viewer a reduced-fidelity
    /// rendition of the *requested* frame instead of a stale one.
    fn fetch_progressive_inner(
        &mut self,
        frame: u32,
        threshold: f64,
        chunk_bytes: u64,
    ) -> ProgressiveFetch {
        let mut span = accelviz_trace::span("serve.fetch_progressive");
        span.arg("frame", frame as f64);
        span.arg("threshold", threshold);
        let t0 = Instant::now();
        // The assembler lives *outside* the retry loop: it is the
        // replay high-water mark, and on total failure it still holds
        // the renderable partial.
        let mut asm = ProgressiveAssembler::new();
        let mut wire_bytes = 0u64;
        let result = self.retry_loop(|t| {
            write_request(
                t,
                &Request::RequestFrameProgressive {
                    frame,
                    threshold,
                    chunk_bytes,
                },
            )?;
            loop {
                let (reply, bytes) = read_chunk_reply(t)?;
                let record = match reply {
                    ChunkReply::Chunk(record) => record,
                    ChunkReply::Error { code, message } => {
                        return Err(ServeError::Remote { code, message });
                    }
                };
                // A replayed stream restarts at seq 0; records already
                // spliced are skipped, not re-applied.
                let rec = accelviz_store::progressive::decode_record(&record)
                    .map_err(|e| ServeError::Corrupt(e.to_string()))?;
                if rec.seq < asm.next_seq() {
                    continue;
                }
                let done = asm.accept(&record)?;
                wire_bytes += bytes;
                accelviz_trace::global().add(CTR_CLIENT_REFINE_CHUNKS, 1);
                if done {
                    return Ok(());
                }
            }
        });
        let seconds = t0.elapsed().as_secs_f64();
        let metrics = FetchMetrics {
            wire_bytes,
            seconds,
        };
        span.arg("wire_bytes", wire_bytes as f64);
        match result {
            Ok(()) => {
                self.last_wire_bytes = wire_bytes;
                let frame = asm.into_frame().expect("completed stream has a frame");
                (Ok((frame, metrics)), None)
            }
            Err(e) => {
                span.arg("failed", 1.0);
                let partial = asm.partial_frame().map(|p| (p, metrics));
                (Err(e), partial)
            }
        }
    }

    /// Fetches the server's statistics snapshot.
    pub fn stats(&mut self) -> Result<ServerStats> {
        match self.call(Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// One request/reply exchange under the retry loop. An in-band
    /// [`Response::Error`] becomes `Err(Remote)` *inside* the loop so
    /// `ERR_BUSY` is retried with backoff like any transient failure;
    /// non-retryable remote errors pass straight through.
    fn call(&mut self, req: Request) -> Result<Response> {
        let (resp, wire_bytes) = self.retry_loop(move |t| {
            write_request(t, &req)?;
            let (resp, wire_bytes) = read_response(t)?;
            if let Response::Error { code, message } = resp {
                return Err(ServeError::Remote { code, message });
            }
            Ok((resp, wire_bytes))
        })?;
        self.last_wire_bytes = wire_bytes;
        Ok(resp)
    }

    /// Opens a fresh transport and re-runs the `Hello` handshake.
    fn establish(&mut self) -> Result<Box<dyn Transport>> {
        let mut t = self.connector.connect()?;
        write_request(
            &mut t,
            &Request::Hello {
                version: self.config.max_version,
            },
        )?;
        let (resp, _) = read_response(&mut t)?;
        match resp {
            Response::HelloAck {
                version,
                frame_count,
            } => {
                self.frame_count = frame_count;
                self.negotiated = version;
                if self.ever_connected {
                    self.stats.reconnects += 1;
                    accelviz_trace::global().add(CTR_CLIENT_RECONNECTS, 1);
                }
                self.ever_connected = true;
                Ok(t)
            }
            other => Err(unexpected("HelloAck", &other)),
        }
    }

    /// Runs `op` against a live transport, reconnecting and replaying on
    /// transient failures as the retry policy allows. The idempotence of
    /// every protocol request is what makes blind replay correct.
    fn retry_loop<T>(
        &mut self,
        mut op: impl FnMut(&mut Box<dyn Transport>) -> Result<T>,
    ) -> Result<T> {
        let start = Instant::now();
        let mut attempt: u32 = 0;
        loop {
            let result = match self.transport.take() {
                Some(mut t) => match op(&mut t) {
                    Ok(v) => {
                        self.transport = Some(t);
                        return Ok(v);
                    }
                    Err(e) => {
                        // A Remote error arrived in a well-formed reply:
                        // the stream is still in sync, keep it. Anything
                        // else may have desynced the framing — drop the
                        // transport so the next attempt reconnects.
                        if matches!(e, ServeError::Remote { .. }) {
                            self.transport = Some(t);
                        }
                        Err(e)
                    }
                },
                None => self.establish().map(|t| {
                    self.transport = Some(t);
                }),
            };
            let err = match result {
                Ok(()) => continue, // transport established; run op next
                Err(e) => e,
            };
            let delay = match &self.config.retry {
                Some(policy) if err.is_transient() => policy.next_delay(attempt, start.elapsed()),
                _ => None,
            };
            match delay {
                Some(d) => {
                    self.stats.retries += 1;
                    accelviz_trace::global().add(CTR_CLIENT_RETRIES, 1);
                    std::thread::sleep(d);
                    attempt += 1;
                }
                None => {
                    if self.config.retry.is_some() && err.is_transient() {
                        self.stats.giveups += 1;
                    }
                    return Err(err);
                }
            }
        }
    }
}

/// Converts an in-band error reply to [`ServeError::Remote`]; anything
/// else out of order is a protocol violation.
fn unexpected(wanted: &str, got: &Response) -> ServeError {
    match got {
        Response::Error { code, message } => ServeError::Remote {
            code: *code,
            message: message.clone(),
        },
        other => ServeError::Protocol(format!("expected {wanted}, got {}", response_name(other))),
    }
}

fn response_name(r: &Response) -> &'static str {
    match r {
        Response::HelloAck { .. } => "HelloAck",
        Response::FrameList(_) => "FrameList",
        Response::Frame(_) => "Frame",
        Response::Stats(_) => "Stats",
        Response::Error { .. } => "Error",
    }
}

/// A network-backed [`FrameSource`]: frames come over TCP at a fixed
/// extraction threshold, with a client-side resident set so revisited
/// frames display without a round trip — the remote twin of the viewer's
/// local [`accelviz_core::viewer::FrameCache`]. When a fetch fails even
/// after the client's retries, the source *degrades* instead of erroring:
/// it hands back its most recently displayed resident frame flagged
/// [`FrameLoad::degraded`], so the viewer keeps rendering something
/// honest rather than freezing.
pub struct RemoteFrames {
    client: Client,
    threshold: f64,
    /// Frames the client may hold before evicting, LRU.
    max_resident: usize,
    resident: LruOrder<u32>,
    frames: HashMap<u32, Arc<HybridFrame>>,
    /// `Some(chunk budget)` switches cold loads to progressive fetches
    /// (0 = server default); the degradation ladder then prefers a
    /// partial rendition of the requested frame over a stale one.
    progressive: Option<u64>,
    /// Wire bytes received across all fetches.
    pub bytes_fetched: u64,
    /// Loads answered with a stale resident frame after retries were
    /// exhausted.
    pub degraded_loads: u64,
    /// Loads answered with a partially refined frame after a
    /// progressive stream failed past its renderable head.
    pub partial_loads: u64,
}

impl RemoteFrames {
    /// A remote source fetching at `threshold`, holding up to
    /// `max_resident` frames client-side.
    pub fn new(client: Client, threshold: f64, max_resident: usize) -> RemoteFrames {
        assert!(max_resident > 0, "need room for at least the current frame");
        RemoteFrames {
            client,
            threshold,
            max_resident,
            resident: LruOrder::new(),
            frames: HashMap::new(),
            progressive: None,
            bytes_fetched: 0,
            degraded_loads: 0,
            partial_loads: 0,
        }
    }

    /// Switches cold loads to progressive streaming with the given
    /// chunk budget (0 = server default). The fully refined frame is
    /// bit-identical to a plain fetch, so the resident set and the
    /// session above are unaffected — but when a stream dies past its
    /// renderable head, the viewer gets the requested frame at partial
    /// refinement ([`FrameLoad::partial`]) instead of a stale one.
    /// Requires the session to have negotiated v2.
    pub fn progressive(mut self, chunk_bytes: u64) -> RemoteFrames {
        self.progressive = Some(chunk_bytes);
        self
    }

    /// The connection, e.g. to pull server stats mid-session.
    pub fn client(&mut self) -> &mut Client {
        &mut self.client
    }

    /// The stale-frame fallback: most recently used resident frame.
    fn fallback(&mut self) -> Option<(Arc<HybridFrame>, FrameLoad)> {
        let key = *self.resident.newest()?;
        let frame = Arc::clone(self.frames.get(&key)?);
        self.degraded_loads += 1;
        accelviz_trace::global().add(CTR_CLIENT_DEGRADED, 1);
        Some((
            frame,
            FrameLoad {
                cache_hit: true,
                bytes_loaded: 0,
                seconds: 0.0,
                texture_resident: true,
                degraded: true,
                partial: false,
            },
        ))
    }
}

impl FrameSource for RemoteFrames {
    fn frame_count(&self) -> usize {
        self.client.frame_count()
    }

    fn load(&mut self, index: usize) -> io::Result<(Arc<HybridFrame>, FrameLoad)> {
        let key = index as u32;
        if let Some(frame) = self.frames.get(&key).cloned() {
            self.resident.touch(key);
            let load = FrameLoad {
                cache_hit: true,
                bytes_loaded: 0,
                seconds: 0.0,
                texture_resident: true,
                degraded: false,
                partial: false,
            };
            return Ok((frame, load));
        }
        let fetched = match self.progressive {
            Some(budget) => {
                match self
                    .client
                    .fetch_progressive_inner(key, self.threshold, budget)
                {
                    (Ok(r), _) => Ok(r),
                    // The stream died but got past its renderable head:
                    // hand the viewer the *requested* frame at partial
                    // refinement. Not cached — the next visit refetches
                    // toward the full frame.
                    (Err(_), Some((partial, metrics))) => {
                        self.partial_loads += 1;
                        self.bytes_fetched += metrics.wire_bytes;
                        accelviz_trace::global().add(CTR_CLIENT_REFINE_PARTIAL, 1);
                        return Ok((
                            Arc::new(partial),
                            FrameLoad {
                                cache_hit: false,
                                bytes_loaded: metrics.wire_bytes,
                                seconds: metrics.seconds,
                                texture_resident: false,
                                degraded: true,
                                partial: true,
                            },
                        ));
                    }
                    (Err(e), None) => Err(e),
                }
            }
            None => self.client.fetch(key, self.threshold),
        };
        let (frame, metrics) = match fetched {
            Ok(r) => r,
            Err(e) => {
                // Retries (if configured) are exhausted. Degrade to the
                // most recent resident frame if we have one; a session
                // with no resident frame yet has nothing to show and the
                // error must surface.
                return match self.fallback() {
                    Some(degraded) => Ok(degraded),
                    None => Err(io::Error::from(e)),
                };
            }
        };
        let frame = Arc::new(frame);
        while self.resident.len() >= self.max_resident {
            if let Some(victim) = self.resident.pop_oldest() {
                self.frames.remove(&victim);
            }
        }
        self.resident.touch(key);
        self.frames.insert(key, Arc::clone(&frame));
        self.bytes_fetched += metrics.wire_bytes;
        let load = FrameLoad {
            cache_hit: false,
            bytes_loaded: metrics.wire_bytes,
            seconds: metrics.seconds,
            texture_resident: false,
            degraded: false,
            partial: false,
        };
        Ok((frame, load))
    }
}
