//! The shard router: one AVWF front door over N frame servers.
//!
//! The paper's remote pipeline pairs one server with one viewer; scaling
//! one terascale run to many concurrent dashboards means spreading the
//! frame catalog over N shard servers ([`crate::server::FrameServer`]s,
//! any backend) and putting a router in front that clients cannot tell
//! from a single big server:
//!
//! - `Hello` negotiates a protocol version locally, exactly like a
//!   direct server — the client's session version is independent of the
//!   (always newest) version the router speaks to its shards.
//! - `ListFrames` answers with the merged catalog: every shard's local
//!   catalog stitched back into global frame order at spawn time.
//! - `RequestFrame` routes to the owning shard (the [`ShardMap`] built
//!   from an [`ShardSpec`] rendezvous layout) over a pooled upstream
//!   [`crate::client::Client`] — so the proxy leg inherits the client
//!   layer's reconnect-and-replay retry machinery unchanged.
//! - `Stats` sums every shard's counters into one wire-shaped
//!   [`ServerStats`]; the router's own `router.*` counters live in its
//!   private registry ([`FrameRouter::metrics`]) because the `Stats`
//!   wire shape is frozen.
//!
//! Herd coalescing: the router keeps its own small LRU of decoded frames
//! keyed `(global frame, threshold bits)`, with the same
//! collapse-identical-requests discipline as the server's extraction
//! cache — a thundering herd of M clients on one cold frame costs one
//! upstream fetch (and therefore at most one extraction on the owning
//! shard). Upstream *failures* are shared with every coalesced waiter
//! but never cached, so a shard coming back is observed on the very next
//! request.
//!
//! Failure semantics (the PR 5 degradation model, one hop out): when a
//! shard dies mid-session the router retries per its upstream policy,
//! then answers that frame with an in-band `ERR_INTERNAL` while the
//! catalog and every other shard's frames keep serving. A resilient
//! client ([`crate::client::RemoteFrames`]) turns that into a
//! flagged-stale degraded frame instead of a dead session; when the
//! shard returns (or [`FrameRouter::set_shard_addr`] repoints its pool
//! at a replacement), the same requests simply succeed again.

use crate::breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker, Transition};
use crate::cache::CacheKey;
use crate::client::{Client, ClientConfig};
use crate::error::ServeError;
use crate::health::{HealthConfig, Prober};
use crate::lru::LruOrder;
use crate::protocol::{
    read_request, write_response_v, FrameInfo, Request, Response, ERR_BAD_REQUEST,
    ERR_BAD_THRESHOLD, ERR_INTERNAL, ERR_NO_SUCH_FRAME, RESP_FRAME,
};
use crate::retry::RetryPolicy;
use crate::server::{CountGuard, FrameServer, ServerConfig};
use crate::stats::ServerStats;
use crate::wire::{encode_frame, encode_frame_v2, write_envelope_v, V1, V2, VERSION};
use accelviz_core::hybrid::HybridFrame;
use accelviz_core::shard::ShardSpec;
use accelviz_octree::sorted_store::PartitionedData;
use accelviz_store::ResidentRun;
use accelviz_trace::registry::Registry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Registry counter: requests the router handled, across all clients
/// and kinds.
pub const CTR_ROUTER_REQUESTS: &str = "router.requests";
/// Registry counter: frame replies the router sent downstream.
pub const CTR_ROUTER_FRAMES_SERVED: &str = "router.frames_served";
/// Registry counter: payload + framing bytes the router wrote to
/// clients.
pub const CTR_ROUTER_BYTES_SENT: &str = "router.bytes_sent";
/// Registry counter: frame requests answered from the router's frame
/// cache (including coalesced waiters).
pub const CTR_ROUTER_CACHE_HITS: &str = "router.cache_hits";
/// Registry counter: frame requests that went upstream to a shard.
pub const CTR_ROUTER_CACHE_MISSES: &str = "router.cache_misses";
/// Registry counter: frame requests that coalesced into an upstream
/// fetch already in flight (a subset of `router.cache_hits` — the herd
/// collapse at work).
pub const CTR_ROUTER_COALESCED: &str = "router.coalesced_fetches";
/// Registry counter: upstream fetches the router started (each one
/// costs the owning shard at most one extraction).
pub const CTR_ROUTER_UPSTREAM_FETCHES: &str = "router.upstream_fetches";
/// Registry counter: retries the pooled upstream clients burned against
/// shards (transient shard failures absorbed by the proxy leg).
pub const CTR_ROUTER_UPSTREAM_RETRIES: &str = "router.upstream_retries";
/// Registry counter: upstream operations that failed even after the
/// upstream retry policy — each one became an in-band `ERR_INTERNAL`
/// (for frames) or a zero contribution (for stats aggregation).
pub const CTR_ROUTER_UPSTREAM_ERRORS: &str = "router.upstream_errors";
/// Registry counter: connections closed at the router's connection cap.
/// Unlike the shard servers (which answer `ERR_BUSY` in-band from a
/// bounded pool), the thin router sheds by closing: the client's retry
/// classifier sees the reset as transient and backs off the same way.
pub const CTR_ROUTER_SHED_CONNECTIONS: &str = "router.shed_connections";
/// Registry counter: `accept(2)` failures on the router listener.
pub const CTR_ROUTER_ACCEPT_ERRORS: &str = "router.accept_errors";
/// Registry counter: request handlers that panicked and were isolated
/// (the client got `ERR_INTERNAL`; the listener survived).
pub const CTR_ROUTER_HANDLER_PANICS: &str = "router.handler_panics";
/// Registry histogram: router request service time, including the
/// upstream hop for cache misses.
pub const HIST_ROUTER_LATENCY: &str = "router.request_latency";
/// Registry counter: progressive (LOD) frame requests the router served
/// by fetching the full frame upstream and re-chunking it locally.
pub const CTR_ROUTER_LOD_REQUESTS: &str = "router.lod_requests";
/// Registry counter: progressive chunk records the router wrote.
pub const CTR_ROUTER_LOD_CHUNKS: &str = "router.lod_chunks";
/// Registry counter: breaker trips (Closed or HalfOpen → Open) — a
/// shard was ejected from routing until it proves itself again.
pub const CTR_ROUTER_BREAKER_OPEN: &str = "router.breaker_open";
/// Registry counter: breaker cooldowns that elapsed into a half-open
/// trial (Open → HalfOpen).
pub const CTR_ROUTER_BREAKER_HALF_OPEN: &str = "router.breaker_half_open";
/// Registry counter: breaker reinstatements (Open or HalfOpen →
/// Closed), whether from a successful trial, a successful probe, or a
/// `set_shard_addr` reset.
pub const CTR_ROUTER_BREAKER_CLOSED: &str = "router.breaker_closed";
/// Registry counter: fetch attempts an open breaker rejected in
/// microseconds instead of burning the upstream retry budget.
pub const CTR_ROUTER_BREAKER_FAST_FAILS: &str = "router.breaker_fast_fails";
/// Registry counter: background health probes a shard answered.
pub const CTR_ROUTER_PROBE_OK: &str = "router.probe_ok";
/// Registry counter: background health probes a shard failed.
pub const CTR_ROUTER_PROBE_FAIL: &str = "router.probe_fail";
/// Registry counter: frame fetches ultimately served by a replica other
/// than the frame's primary owner — the redundancy at work.
pub const CTR_ROUTER_REPLICA_FAILOVERS: &str = "router.replica_failovers";
/// Registry counter: fetches where the hedge delay elapsed and a second
/// replica was raced against the slow primary.
pub const CTR_ROUTER_HEDGED_REQUESTS: &str = "router.hedged_requests";
/// Registry counter: hedged fetches where the raced replica answered
/// first (with the primary still in flight).
pub const CTR_ROUTER_HEDGED_WINS: &str = "router.hedged_wins";
/// Registry histogram: one upstream fetch attempt against a shard,
/// retries included — the distribution the hedge delay quantile is
/// derived from.
pub const HIST_ROUTER_UPSTREAM_LATENCY: &str = "router.upstream_latency";

/// Where every global frame lives: which shards hold a replica of it
/// (preference-ordered, primary first) and which *local* index each of
/// those shards knows it by. Built once from a [`ShardSpec`], a frame
/// count, and a replication factor, then shared by the shard launcher
/// (to provision the — possibly overlapping — slices) and the router
/// (to route requests and fall through replicas on failure).
///
/// ```
/// use accelviz_core::shard::ShardSpec;
/// use accelviz_serve::ShardMap;
///
/// let map = ShardMap::sliced(&ShardSpec::new(2), 6);
/// assert_eq!(map.frame_count(), 6);
/// assert_eq!(map.replication(), 1);
/// let (shard, _local) = map.locate(4).expect("frame 4 exists");
/// assert!(shard < map.shard_count());
/// // Out-of-catalog frames have no owner.
/// assert!(map.locate(6).is_none());
///
/// // At replication 2 every frame lives on two shards.
/// let map = ShardMap::sliced_replicated(&ShardSpec::new(3), 6, 2);
/// assert_eq!(map.replication(), 2);
/// assert_eq!(map.replicas(0).expect("frame 0 exists").len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ShardMap {
    /// `replicas[g]` = preference-ordered `(shard, local index)` pairs
    /// for global frame `g`; the first entry is the primary owner.
    replicas: Vec<Vec<(u32, u32)>>,
    shards: usize,
    replication: usize,
}

impl ShardMap {
    /// The single-replica sliced layout — identical to the
    /// pre-replication behavior: each shard holds only the frames it
    /// primarily owns, packed in ascending global order. Shorthand for
    /// [`ShardMap::sliced_replicated`] with `replication == 1`.
    pub fn sliced(spec: &ShardSpec, frame_count: usize) -> ShardMap {
        ShardMap::sliced_replicated(spec, frame_count, 1)
    }

    /// The layout for *physically sliced* shards at a replication
    /// factor: each shard holds every frame whose top-`replication`
    /// rendezvous owner set includes it, packed in ascending global
    /// order, so global frame `g` is that shard's `rank(g)`-th local
    /// frame. This is what
    /// [`ShardedFrameService::spawn_loopback_replicated`] feeds its
    /// shards. `replication` is clamped to the shard count; zero is
    /// rejected by the underlying [`ShardSpec::owners`].
    pub fn sliced_replicated(spec: &ShardSpec, frame_count: usize, replication: usize) -> ShardMap {
        let mut next_local = vec![0u32; spec.shards()];
        let replicas = (0..frame_count)
            .map(|g| {
                spec.owners(g as u32, replication)
                    .into_iter()
                    .map(|shard| {
                        let local = next_local[shard];
                        next_local[shard] += 1;
                        (shard as u32, local)
                    })
                    .collect()
            })
            .collect();
        ShardMap {
            replicas,
            shards: spec.shards(),
            replication: replication.min(spec.shards()),
        }
    }

    /// The single-replica shared layout (every shard exposes the full
    /// catalog); shorthand for [`ShardMap::shared_replicated`] with
    /// `replication == 1`.
    pub fn shared(spec: &ShardSpec, frame_count: usize) -> ShardMap {
        ShardMap::shared_replicated(spec, frame_count, 1)
    }

    /// The layout for shards that all expose the *full* catalog (e.g.
    /// N stored servers sharing one run file): routing preference still
    /// follows the rendezvous replica set, but a frame's local index on
    /// every replica is its global index. This is what
    /// [`ShardedFrameService::spawn_stored_loopback_replicated`] uses.
    pub fn shared_replicated(spec: &ShardSpec, frame_count: usize, replication: usize) -> ShardMap {
        let replicas = (0..frame_count)
            .map(|g| {
                spec.owners(g as u32, replication)
                    .into_iter()
                    .map(|shard| (shard as u32, g as u32))
                    .collect()
            })
            .collect();
        ShardMap {
            replicas,
            shards: spec.shards(),
            replication: replication.min(spec.shards()),
        }
    }

    /// Shards this map routes over.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Global frames this map covers.
    pub fn frame_count(&self) -> usize {
        self.replicas.len()
    }

    /// Replicas every frame lives on (after clamping to the shard
    /// count).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Where global frame `g` primarily lives: `(shard, local index)`,
    /// or `None` when `g` is outside the catalog.
    pub fn locate(&self, g: u32) -> Option<(usize, u32)> {
        self.replicas
            .get(g as usize)
            .map(|set| (set[0].0 as usize, set[0].1))
    }

    /// Every `(shard, local index)` replica of global frame `g` in
    /// routing-preference order (primary first), or `None` when `g` is
    /// outside the catalog.
    pub fn replicas(&self, g: u32) -> Option<&[(u32, u32)]> {
        self.replicas.get(g as usize).map(|set| set.as_slice())
    }

    /// The global frames shard `s` holds a replica of (primary or
    /// fallback), ascending — the slice the shard launcher provisions.
    pub fn frames_owned_by(&self, s: usize) -> Vec<usize> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, set)| set.iter().any(|&(shard, _)| shard as usize == s))
            .map(|(g, _)| g)
            .collect()
    }
}

/// Router tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// Byte budget for the router's decoded-frame cache (the
    /// herd-coalescing layer), LRU by resident frame bytes
    /// ([`HybridFrame::total_bytes`] per frame); must be positive.
    /// Frames vary by orders of magnitude with threshold and grid
    /// dims, so the budget counts bytes rather than entries; a frame
    /// larger than the whole budget is still admitted (to serve its
    /// coalesced waiters) and becomes the next eviction victim.
    pub cache_bytes: u64,
    /// Bound on any single blocking read from a client; `None` waits
    /// forever.
    pub read_timeout: Option<Duration>,
    /// Same bound for writes.
    pub write_timeout: Option<Duration>,
    /// Client connections served concurrently; past this, new arrivals
    /// are counted under `router.shed_connections` and closed.
    pub max_connections: usize,
    /// The resilience knobs for the pooled upstream connections to the
    /// shards — retry/backoff on this leg is what turns a shard blip
    /// into a blip instead of a failed client request. `max_version` is
    /// honored, so a `wire::V1`-capped upstream config forces
    /// uncompressed shard hops.
    pub upstream: ClientConfig,
    /// Overrides `upstream.retry` when set — the knob operators tune
    /// without rebuilding a whole [`ClientConfig`]. Whichever policy
    /// wins, its seed is only a *base*: every fresh upstream dial
    /// derives its own jitter seed from `(base seed, shard, dial
    /// count)`, so a shard restart does not march every pooled
    /// connection through identical backoff schedules (a synchronized
    /// retry storm), while any fixed base seed still replays exactly.
    pub upstream_retry: Option<RetryPolicy>,
    /// Idle upstream connections kept pooled per shard.
    pub upstream_idle: usize,
    /// When a shard's circuit breaker trips and how long it cools down.
    pub breaker: BreakerConfig,
    /// The background health prober's pacing (zero interval disables
    /// it).
    pub health: HealthConfig,
    /// Hedged upstream reads: `None` (the default) never hedges;
    /// `Some` races the next replica when the primary is slower than a
    /// latency quantile says it should be. Only meaningful with
    /// replicated shard maps — with one replica per frame there is
    /// nothing to race.
    pub hedge: Option<HedgeConfig>,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            cache_bytes: 128 << 20,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_connections: 256,
            upstream: ClientConfig::default(),
            upstream_retry: None,
            upstream_idle: 4,
            breaker: BreakerConfig::default(),
            health: HealthConfig::default(),
            hedge: None,
        }
    }
}

/// When and how aggressively to hedge a slow upstream fetch with a
/// request to the next replica.
#[derive(Clone, Copy, Debug)]
pub struct HedgeConfig {
    /// The latency quantile of `router.upstream_latency` that sets the
    /// hedge delay: a primary slower than this is raced. `0.95` hedges
    /// roughly the slowest 5% of fetches.
    pub quantile: f64,
    /// Floor on the derived delay — hedging below this would duplicate
    /// upstream work on healthy fetch jitter.
    pub min_delay: Duration,
    /// Ceiling on the derived delay, and the delay used while the
    /// latency histogram is still empty (or the quantile lands in its
    /// unbounded overflow bucket).
    pub max_delay: Duration,
}

impl Default for HedgeConfig {
    fn default() -> HedgeConfig {
        HedgeConfig {
            quantile: 0.95,
            min_delay: Duration::from_millis(1),
            max_delay: Duration::from_secs(2),
        }
    }
}

impl HedgeConfig {
    /// The hedge delay derived from the observed upstream latency
    /// distribution, clamped to `[min_delay, max_delay]`.
    fn delay_from(&self, metrics: &Registry) -> Duration {
        metrics
            .histogram(HIST_ROUTER_UPSTREAM_LATENCY)
            .and_then(|h| h.quantile_upper_bound(self.quantile))
            .map(Duration::from_secs_f64)
            .unwrap_or(self.max_delay)
            .clamp(self.min_delay, self.max_delay)
    }
}

/// How a router frame fetch was satisfied.
enum FetchOutcome {
    /// Already decoded and resident in the router cache.
    Hit,
    /// Joined an upstream fetch another request had in flight.
    Coalesced,
    /// Went upstream (and the result, success or failure, was shared
    /// with any waiters that arrived meanwhile).
    Fetched,
}

/// In-flight upstream fetch of one key. Waiters block on `cv` until
/// `done` holds the shared outcome; unlike the extraction cache's
/// pending slot this carries a `Result`, because an upstream fetch can
/// *fail* (dead shard) and that failure must be delivered to every
/// coalesced waiter — never panicked across threads, never cached.
struct FetchPending {
    done: StdMutex<Option<Result<Arc<HybridFrame>, String>>>,
    cv: Condvar,
}

enum FetchEntry {
    Ready(Arc<HybridFrame>),
    Fetching(Arc<FetchPending>),
}

struct FetchInner {
    /// Byte budget over resident decoded frames
    /// ([`HybridFrame::total_bytes`] each).
    budget: u64,
    /// Bytes currently resident under `Ready` entries.
    resident_bytes: u64,
    /// LRU over *ready* keys only; in-flight fetches cannot be evicted.
    order: LruOrder<CacheKey>,
    entries: HashMap<CacheKey, FetchEntry>,
}

/// The router's frame cache: LRU over decoded frames plus the
/// same-key coalescing that collapses a thundering herd into one
/// upstream fetch. Failures are shared with waiters but vacated, not
/// cached — the next request after a shard recovers goes upstream.
///
/// Capacity is a *byte* budget, not an entry count: frames vary by
/// orders of magnitude with threshold and grid dims, so an entry count
/// either wastes the budget on small frames or blows it on large ones.
/// A frame larger than the whole budget is still admitted (and becomes
/// the next eviction victim) — the just-fetched frame must be resident
/// to serve its coalesced waiters.
struct FetchCache {
    inner: Mutex<FetchInner>,
}

impl FetchCache {
    fn new(budget: u64) -> FetchCache {
        assert!(budget > 0, "router cache needs a positive byte budget");
        FetchCache {
            inner: Mutex::new(FetchInner {
                budget,
                resident_bytes: 0,
                order: LruOrder::new(),
                entries: HashMap::new(),
            }),
        }
    }

    /// Returns the frame for `key`, fetching it with `fetch` when it is
    /// neither cached nor already in flight. Concurrent calls with the
    /// same key run `fetch` once and share its outcome.
    fn get_or_fetch(
        &self,
        key: CacheKey,
        fetch: impl FnOnce() -> Result<Arc<HybridFrame>, String>,
    ) -> (Result<Arc<HybridFrame>, String>, FetchOutcome) {
        let pending = {
            let mut g = self.inner.lock();
            match g.entries.get(&key) {
                Some(FetchEntry::Ready(frame)) => {
                    let frame = Arc::clone(frame);
                    g.order.touch(key);
                    return (Ok(frame), FetchOutcome::Hit);
                }
                Some(FetchEntry::Fetching(p)) => Arc::clone(p),
                None => {
                    let p = Arc::new(FetchPending {
                        done: StdMutex::new(None),
                        cv: Condvar::new(),
                    });
                    g.entries.insert(key, FetchEntry::Fetching(Arc::clone(&p)));
                    drop(g);
                    return (self.run_fetch(key, p, fetch), FetchOutcome::Fetched);
                }
            }
        };
        // Coalesced: wait outside every lock for the in-flight fetch and
        // share its outcome, failure included.
        let mut d = pending.done.lock().unwrap_or_else(|e| e.into_inner());
        while d.is_none() {
            d = pending.cv.wait(d).unwrap_or_else(|e| e.into_inner());
        }
        let outcome = d.clone().expect("outcome present");
        (outcome, FetchOutcome::Coalesced)
    }

    /// Runs `fetch` for a key this thread just marked in flight, then
    /// publishes the outcome to the map (success only) and to every
    /// coalesced waiter (success or failure).
    fn run_fetch(
        &self,
        key: CacheKey,
        pending: Arc<FetchPending>,
        fetch: impl FnOnce() -> Result<Arc<HybridFrame>, String>,
    ) -> Result<Arc<HybridFrame>, String> {
        let outcome = fetch();
        {
            let mut g = self.inner.lock();
            match &outcome {
                Ok(frame) => {
                    // Make room by bytes: evict oldest Ready frames
                    // until the newcomer fits (or nothing is left to
                    // evict — an oversized frame is admitted anyway and
                    // is simply the next victim). The newcomer is not
                    // in `order` yet, so it can never evict itself.
                    let incoming = frame.total_bytes();
                    while g.resident_bytes + incoming > g.budget {
                        let Some(victim) = g.order.pop_oldest() else {
                            break;
                        };
                        if let Some(FetchEntry::Ready(evicted)) = g.entries.remove(&victim) {
                            g.resident_bytes -= evicted.total_bytes();
                        }
                    }
                    g.order.touch(key);
                    g.resident_bytes += incoming;
                    g.entries.insert(key, FetchEntry::Ready(Arc::clone(frame)));
                }
                // A failed fetch vacates the key so recovery is observed
                // on the very next request.
                Err(_) => {
                    g.entries.remove(&key);
                }
            }
        }
        *pending.done.lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome.clone());
        pending.cv.notify_all();
        outcome
    }
}

/// SplitMix64 — the workspace's stock seed mixer, used here to derive
/// decorrelated per-connection retry seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One shard's pooled upstream connections. Checked-out clients that
/// finish their operation cleanly go back to the idle pool (up to
/// `max_idle`); any failure drops the connection instead — its stream
/// may be mid-envelope, and the next checkout dials fresh.
struct UpstreamPool {
    shard: usize,
    addr: Mutex<SocketAddr>,
    idle: Mutex<Vec<Client>>,
    config: ClientConfig,
    /// Fresh dials so far — the per-connection retry seed counter.
    dialed: AtomicU64,
    max_idle: usize,
}

impl UpstreamPool {
    fn new(shard: usize, addr: SocketAddr, config: ClientConfig, max_idle: usize) -> UpstreamPool {
        UpstreamPool {
            shard,
            addr: Mutex::new(addr),
            idle: Mutex::new(Vec::new()),
            config,
            dialed: AtomicU64::new(0),
            max_idle,
        }
    }

    /// Where this pool currently dials — the address the health prober
    /// pings, so `set_shard_addr` repoints probing too.
    fn addr(&self) -> SocketAddr {
        *self.addr.lock()
    }

    /// Repoints the pool (shard restarted elsewhere); idle connections
    /// to the old address are dropped.
    fn set_addr(&self, addr: SocketAddr) {
        *self.addr.lock() = addr;
        self.idle.lock().clear();
    }

    /// The config for one fresh dial: the shared policy with a retry
    /// seed derived from `(base seed, shard, dial count)`. Each
    /// connection jitters its backoff on its own schedule — a shard
    /// restart must not turn N pooled connections into N synchronized
    /// retry volleys — while a fixed base seed keeps the whole pattern
    /// replayable.
    fn dial_config(&self) -> ClientConfig {
        let mut config = self.config;
        if let Some(retry) = &mut config.retry {
            let dial = self.dialed.fetch_add(1, Ordering::Relaxed);
            retry.seed = splitmix64(retry.seed ^ ((self.shard as u64) << 32) ^ dial);
        }
        config
    }

    /// Runs `op` on a pooled (or freshly dialed) client. Returns the
    /// result plus the retries the client burned inside the call — the
    /// upstream leg's resilience cost, surfaced for `router.*` counters.
    fn with<T>(
        &self,
        op: impl FnOnce(&mut Client) -> crate::error::Result<T>,
    ) -> crate::error::Result<(T, u64)> {
        let mut client = match self.idle.lock().pop() {
            Some(c) => c,
            None => Client::connect_with(self.addr(), self.dial_config())?,
        };
        let before = client.client_stats().retries;
        match op(&mut client) {
            Ok(v) => {
                let retries = client.client_stats().retries - before;
                let mut idle = self.idle.lock();
                if idle.len() < self.max_idle {
                    idle.push(client);
                }
                Ok((v, retries))
            }
            Err(e) => Err(e),
        }
    }
}

/// The state the accept loop and every connection handler share.
struct RouterShared {
    map: ShardMap,
    catalog: Vec<FrameInfo>,
    pools: Vec<UpstreamPool>,
    /// One circuit breaker per shard, fed by upstream fetches, stats
    /// hops, and the background prober alike.
    breakers: Vec<CircuitBreaker>,
    cache: FetchCache,
    config: RouterConfig,
    metrics: Registry,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    inflight_requests: AtomicUsize,
}

/// Lands a breaker state transition on the `router.breaker_*` counters.
fn note_transition(metrics: &Registry, transition: Option<Transition>) {
    match transition {
        Some(Transition::Opened) => {
            metrics.add(CTR_ROUTER_BREAKER_OPEN, 1);
        }
        Some(Transition::HalfOpened) => {
            metrics.add(CTR_ROUTER_BREAKER_HALF_OPEN, 1);
        }
        Some(Transition::Closed) => {
            metrics.add(CTR_ROUTER_BREAKER_CLOSED, 1);
        }
        None => {}
    }
}

/// A running shard router: binds its own listener, speaks the unchanged
/// AVWF protocol to clients, and proxies frame requests to the owning
/// shard over pooled, retrying upstream connections. See the
/// [module docs](self) for the full semantics.
///
/// ```
/// use accelviz_beam::distribution::Distribution;
/// use accelviz_core::shard::ShardSpec;
/// use accelviz_octree::builder::{partition, BuildParams};
/// use accelviz_octree::plots::PlotType;
/// use accelviz_serve::{Client, FrameRouter, FrameServer, RouterConfig, ServerConfig, ShardMap};
///
/// // Two shards that each expose the full 3-frame catalog, so the
/// // shared layout applies (local index == global index).
/// let data: Vec<_> = (0..3u64)
///     .map(|i| {
///         let ps = Distribution::default_beam().sample(300, i + 1);
///         partition(&ps, PlotType::XYZ, BuildParams::default())
///     })
///     .collect();
/// let a = FrameServer::spawn_loopback(data.clone(), ServerConfig::default()).unwrap();
/// let b = FrameServer::spawn_loopback(data, ServerConfig::default()).unwrap();
///
/// let map = ShardMap::shared(&ShardSpec::new(2), 3);
/// let router = FrameRouter::spawn(
///     "127.0.0.1:0",
///     vec![a.addr(), b.addr()],
///     map,
///     RouterConfig::default(),
/// )
/// .unwrap();
///
/// // A stock client cannot tell the router from a single server.
/// let mut client = Client::connect(router.addr()).unwrap();
/// assert_eq!(client.frame_count(), 3);
/// let (frame, _) = client.fetch(1, f64::INFINITY).unwrap();
/// assert_eq!(frame.step, 1);
///
/// drop(client);
/// router.shutdown();
/// a.shutdown();
/// b.shutdown();
/// ```
pub struct FrameRouter {
    shared: Arc<RouterShared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    prober: Option<Prober>,
    #[cfg(unix)]
    waker: Arc<crate::poll::Waker>,
}

impl FrameRouter {
    /// Binds `addr` and starts routing over the given shard addresses.
    /// `shards[i]` must be the server owning every `(i, local)` entry of
    /// `map`. Fails fast — with an error, not a degraded catalog — when
    /// the shard set is empty, its length disagrees with the map, any
    /// shard is unreachable at spawn, or a shard advertises fewer frames
    /// than the map routes to it.
    pub fn spawn(
        addr: &str,
        shards: Vec<SocketAddr>,
        map: ShardMap,
        config: RouterConfig,
    ) -> io::Result<FrameRouter> {
        if shards.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a router needs at least one shard",
            ));
        }
        if shards.len() != map.shard_count() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "shard map routes over {} shards but {} addresses were given",
                    map.shard_count(),
                    shards.len()
                ),
            ));
        }
        // The operator override wins over the full upstream config; the
        // winner's seed is re-derived per dial inside the pool.
        let mut upstream = config.upstream;
        if let Some(retry) = config.upstream_retry {
            upstream.retry = Some(retry);
        }
        let shard_count = shards.len();
        let pools: Vec<UpstreamPool> = shards
            .into_iter()
            .enumerate()
            .map(|(i, a)| UpstreamPool::new(i, a, upstream, config.upstream_idle))
            .collect();
        let breakers = (0..shard_count)
            .map(|_| CircuitBreaker::new(config.breaker))
            .collect();
        let catalog = merge_catalogs(&map, &pools)?;
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(RouterShared {
            map,
            catalog,
            pools,
            breakers,
            cache: FetchCache::new(config.cache_bytes.max(1)),
            config,
            metrics: Registry::new(),
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            inflight_requests: AtomicUsize::new(0),
        });
        let prober = {
            let addrs = Arc::clone(&shared);
            let verdicts = Arc::clone(&shared);
            Prober::spawn(
                config.health,
                shard_count,
                move |i| addrs.pools[i].addr(),
                move |i, ok| {
                    if ok {
                        verdicts.metrics.add(CTR_ROUTER_PROBE_OK, 1);
                        note_transition(&verdicts.metrics, verdicts.breakers[i].on_success());
                    } else {
                        verdicts.metrics.add(CTR_ROUTER_PROBE_FAIL, 1);
                        note_transition(&verdicts.metrics, verdicts.breakers[i].on_failure());
                    }
                },
            )
        };
        #[cfg(unix)]
        {
            let waker = Arc::new(crate::poll::Waker::new()?);
            let (s, w) = (Arc::clone(&shared), Arc::clone(&waker));
            let accept = std::thread::spawn(move || accept_loop(s, listener, w));
            Ok(FrameRouter {
                shared,
                addr: local,
                accept: Some(accept),
                prober,
                waker,
            })
        }
        #[cfg(not(unix))]
        {
            let s = Arc::clone(&shared);
            let accept = std::thread::spawn(move || blocking_accept_loop(s, listener));
            Ok(FrameRouter {
                shared,
                addr: local,
                accept: Some(accept),
                prober,
            })
        }
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shards this router routes over.
    pub fn shard_count(&self) -> usize {
        self.shared.map.shard_count()
    }

    /// The merged catalog served to `ListFrames`, in global frame order.
    pub fn catalog(&self) -> &[FrameInfo] {
        &self.shared.catalog
    }

    /// The router's private metrics registry — every `router.*` counter
    /// documented in this module, for tests and embedders. The wire
    /// `Stats` reply carries the *summed shard* counters instead,
    /// because its shape is frozen.
    pub fn metrics(&self) -> &Registry {
        &self.shared.metrics
    }

    /// Repoints shard `shard`'s upstream pool at `addr` — the failover
    /// hook for a shard restarted on a new address. Idle pooled
    /// connections to the old address are dropped, and the shard's
    /// circuit breaker is reset to Closed: a replacement shard must not
    /// inherit the dead one's verdict, or the router would keep
    /// fast-failing a healthy server until a cooldown elapsed. The
    /// merged catalog is kept, so the replacement must serve the same
    /// frame slice. Errors when `shard` is out of range.
    pub fn set_shard_addr(&self, shard: usize, addr: SocketAddr) -> io::Result<()> {
        match self.shared.pools.get(shard) {
            Some(pool) => {
                pool.set_addr(addr);
                note_transition(&self.shared.metrics, self.shared.breakers[shard].reset());
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("shard {shard} out of range ({} shards)", self.shard_count()),
            )),
        }
    }

    /// Shard `shard`'s current circuit-breaker state, for dashboards
    /// and tests. Panics when `shard` is out of range.
    pub fn breaker_state(&self, shard: usize) -> BreakerState {
        self.shared.breakers[shard].state()
    }

    /// Stops accepting, joins the accept thread, and drains in-flight
    /// replies (bounded by one second, mirroring the server's default
    /// drain).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // Stop probing first: a dying deployment's shards going away
        // must not race verdicts into the breakers mid-shutdown.
        if let Some(mut prober) = self.prober.take() {
            prober.shutdown();
        }
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.shared.shutdown.store(true, Ordering::SeqCst);
        #[cfg(unix)]
        self.waker.wake();
        #[cfg(not(unix))]
        {
            let _ = TcpStream::connect(self.addr);
        }
        let _ = accept.join();
        let deadline = Instant::now() + Duration::from_secs(1);
        while self.shared.inflight_requests.load(Ordering::SeqCst) > 0 && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for FrameRouter {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Fetches every shard's catalog and stitches the merged global catalog:
/// entry `g` comes from its *primary* owner's local slot, relabeled with
/// the global index (`frame = g`, `step = g` — the run-wide convention a
/// direct server of the unsliced data would report). Every fallback
/// replica's local index is validated against its shard's catalog too —
/// a replica that cannot actually serve its frames would otherwise only
/// be discovered during a failover, the worst possible moment.
fn merge_catalogs(map: &ShardMap, pools: &[UpstreamPool]) -> io::Result<Vec<FrameInfo>> {
    let mut shard_catalogs = Vec::with_capacity(pools.len());
    for (i, pool) in pools.iter().enumerate() {
        let (catalog, _retries) = pool.with(|c| c.list_frames()).map_err(|e| {
            io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("shard {i} catalog fetch failed: {e}"),
            )
        })?;
        shard_catalogs.push(catalog);
    }
    let mut merged = Vec::with_capacity(map.frame_count());
    for g in 0..map.frame_count() {
        let replicas = map.replicas(g as u32).expect("g < frame_count");
        for &(shard, local) in replicas {
            let (shard, local) = (shard as usize, local as usize);
            if local >= shard_catalogs[shard].len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "shard {shard} advertises {} frames but the map routes global frame {g} \
                         to its local index {local}",
                        shard_catalogs[shard].len()
                    ),
                ));
            }
        }
        let (shard, local) = (replicas[0].0 as usize, replicas[0].1 as usize);
        let entry = &shard_catalogs[shard][local];
        merged.push(FrameInfo {
            frame: g as u32,
            step: g as u64,
            particles: entry.particles,
            default_threshold: entry.default_threshold,
        });
    }
    Ok(merged)
}

/// The router accept loop: non-blocking listener polled alongside the
/// shutdown self-pipe, connections past the cap counted and closed.
#[cfg(unix)]
fn accept_loop(shared: Arc<RouterShared>, listener: TcpListener, waker: Arc<crate::poll::Waker>) {
    use crate::poll::{poll, AcceptBackoff, PollEntry};
    use std::os::unix::io::AsRawFd;

    if listener.set_nonblocking(true).is_err() {
        return blocking_accept_loop(shared, listener);
    }
    let mut backoff = AcceptBackoff::new();
    let mut cooldown: Option<Instant> = None;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let now = Instant::now();
        let listener_armed = match cooldown {
            Some(until) if until > now => false,
            _ => {
                cooldown = None;
                true
            }
        };
        let timeout = cooldown.map(|until| until.saturating_duration_since(now));
        let mut entries = vec![PollEntry {
            fd: waker.fd(),
            read: true,
            write: false,
        }];
        if listener_armed {
            entries.push(PollEntry {
                fd: listener.as_raw_fd(),
                read: true,
                write: false,
            });
        }
        let ready = match poll(&entries, timeout) {
            Ok(ready) => ready,
            Err(_) => {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        };
        if ready[0].readable {
            waker.drain();
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if listener_armed && !ready[1].is_empty() {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        backoff.on_success();
                        let _ = stream.set_nonblocking(false);
                        admit(&shared, stream);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        shared.metrics.add(CTR_ROUTER_ACCEPT_ERRORS, 1);
                        cooldown = Some(Instant::now() + backoff.on_error());
                        break;
                    }
                }
            }
        }
    }
}

/// Blocking fallback (and the whole story on non-unix builds): shutdown
/// wake relies on the next connection arriving.
fn blocking_accept_loop(shared: Arc<RouterShared>, listener: TcpListener) {
    let mut error_pause = Duration::from_millis(1);
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                error_pause = Duration::from_millis(1);
                admit(&shared, stream);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                shared.metrics.add(CTR_ROUTER_ACCEPT_ERRORS, 1);
                std::thread::sleep(error_pause);
                error_pause = (error_pause * 2).min(Duration::from_millis(100));
            }
        }
    }
}

/// Admits or sheds one accepted connection. Past the cap the stream is
/// counted and dropped without spawning anything — a connect flood must
/// not mint router threads.
fn admit(shared: &Arc<RouterShared>, stream: TcpStream) {
    if shared.active_connections.load(Ordering::SeqCst) >= shared.config.max_connections {
        shared.metrics.add(CTR_ROUTER_SHED_CONNECTIONS, 1);
        return; // dropping the stream closes it
    }
    shared.active_connections.fetch_add(1, Ordering::SeqCst);
    let conn = Arc::clone(shared);
    std::thread::spawn(move || {
        let _guard = CountGuard(&conn.active_connections);
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(conn.config.read_timeout);
        let _ = stream.set_write_timeout(conn.config.write_timeout);
        client_loop(&conn, stream);
    });
}

/// The per-connection request/reply loop — the same session shape as the
/// server's `serve_loop`, with the shard hop inside `respond_router`.
/// Takes the `Arc` (not a plain borrow) because a hedged fetch spawns a
/// helper thread that must co-own the shared state.
fn client_loop<S: Read + Write>(shared: &Arc<RouterShared>, mut stream: S) {
    let mut session_version = V1;
    loop {
        let req = match read_request(&mut stream) {
            Ok(req) => req,
            Err(ServeError::Truncated { got: 0, .. }) | Err(ServeError::Io(_)) => return,
            Err(e) => {
                let reply = Response::Error {
                    code: ERR_BAD_REQUEST,
                    message: e.to_string(),
                };
                let _ = write_response_v(&mut stream, session_version, &reply);
                return;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let t0 = Instant::now();
        let _inflight = CountGuard({
            shared.inflight_requests.fetch_add(1, Ordering::SeqCst);
            &shared.inflight_requests
        });
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            respond_router(shared, req, &mut stream, &mut session_version)
        }));
        let (bytes, served_frame) = match outcome {
            Ok(Ok(r)) => r,
            Ok(Err(_)) => return, // client went away mid-reply
            Err(_panic) => {
                shared.metrics.add(CTR_ROUTER_HANDLER_PANICS, 1);
                let reply = Response::Error {
                    code: ERR_INTERNAL,
                    message: "internal error routing this request; the connection survives"
                        .to_string(),
                };
                match write_response_v(&mut stream, session_version, &reply) {
                    Ok(bytes) => (bytes, false),
                    Err(_) => return,
                }
            }
        };
        shared.metrics.add(CTR_ROUTER_REQUESTS, 1);
        shared.metrics.add(CTR_ROUTER_BYTES_SENT, bytes);
        if served_frame {
            shared.metrics.add(CTR_ROUTER_FRAMES_SERVED, 1);
        }
        shared
            .metrics
            .record_seconds(HIST_ROUTER_LATENCY, t0.elapsed().as_secs_f64());
    }
}

/// Serves one request at the router; returns (wire bytes written, was a
/// frame reply). Mirrors the server's `respond` contract so a client
/// cannot tell the difference.
fn respond_router<S: Write>(
    shared: &Arc<RouterShared>,
    req: Request,
    stream: &mut S,
    session_version: &mut u16,
) -> crate::error::Result<(u64, bool)> {
    match req {
        Request::Hello { version } => {
            let reply = if version == 0 {
                Response::Error {
                    code: ERR_BAD_REQUEST,
                    message: format!("protocol version must be at least 1, client sent {version}"),
                }
            } else {
                let negotiated = version.min(VERSION);
                *session_version = negotiated;
                Response::HelloAck {
                    version: negotiated,
                    frame_count: shared.catalog.len() as u32,
                }
            };
            Ok((write_response_v(stream, *session_version, &reply)?, false))
        }
        Request::ListFrames => {
            let frames = shared.catalog.clone();
            Ok((
                write_response_v(stream, *session_version, &Response::FrameList(frames))?,
                false,
            ))
        }
        Request::RequestFrame { frame, threshold } => {
            let frame = match route_frame(shared, frame, threshold, stream, *session_version)? {
                Ok(frame) => frame,
                Err(reply_written) => return Ok(reply_written),
            };
            // Re-encode at the *client's* negotiated version, straight
            // from the cached Arc — both codecs are deterministic, so the
            // bytes match what a direct server of the same data writes.
            let payload = if *session_version >= V2 {
                encode_frame_v2(&frame).0
            } else {
                encode_frame(&frame)
            };
            let bytes = write_envelope_v(stream, *session_version, RESP_FRAME, &payload)?;
            Ok((bytes, true))
        }
        Request::RequestFrameProgressive {
            frame,
            threshold,
            chunk_bytes,
        } => {
            // Same v2-session gate as a direct server: the chunk records
            // only exist on the v2 wire.
            if *session_version < V2 {
                let reply = Response::Error {
                    code: ERR_BAD_REQUEST,
                    message: "progressive streaming requires a v2 session; \
                              send Hello with version >= 2 first"
                        .to_string(),
                };
                return Ok((write_response_v(stream, *session_version, &reply)?, false));
            }
            let frame = match route_frame(shared, frame, threshold, stream, *session_version)? {
                Ok(frame) => frame,
                Err(reply_written) => return Ok(reply_written),
            };
            // The upstream hop stays a *full* fetch through the shared
            // cache (coalescing with plain requests for the same key);
            // the router re-chunks locally with the same planner the
            // shards run, which is a pure function of (frame, budget) —
            // so the record bytes a sharded session sees are identical
            // to a direct server's.
            let records =
                crate::lod::plan_frame_chunks(&frame, crate::lod::chunk_budget(chunk_bytes));
            let mut bytes = 0u64;
            for record in &records {
                bytes += crate::protocol::write_chunk(stream, record)?;
            }
            shared.metrics.add(CTR_ROUTER_LOD_REQUESTS, 1);
            shared
                .metrics
                .add(CTR_ROUTER_LOD_CHUNKS, records.len() as u64);
            Ok((bytes, true))
        }
        Request::Stats => {
            let snapshot = aggregate_stats(shared);
            Ok((
                write_response_v(stream, *session_version, &Response::Stats(snapshot))?,
                false,
            ))
        }
    }
}

/// The shared routing path behind both frame request kinds: validates
/// the threshold, locates the frame's replica set, and resolves the
/// decoded frame through the router cache (one upstream fetch per
/// herd). On a policy or upstream failure the in-band error reply is
/// already written and the inner `Err` carries `respond_router`'s
/// return value; the outer `Err` is a dead client connection.
fn route_frame<S: Write>(
    shared: &Arc<RouterShared>,
    frame: u32,
    threshold: f64,
    stream: &mut S,
    session_version: u16,
) -> crate::error::Result<std::result::Result<Arc<HybridFrame>, (u64, bool)>> {
    if threshold.is_nan() {
        let reply = Response::Error {
            code: ERR_BAD_THRESHOLD,
            message: format!("threshold must not be NaN, got {threshold}"),
        };
        return Ok(Err((
            write_response_v(stream, session_version, &reply)?,
            false,
        )));
    }
    if shared.map.replicas(frame).is_none() {
        let reply = Response::Error {
            code: ERR_NO_SUCH_FRAME,
            message: format!(
                "frame {frame} requested, {} available",
                shared.catalog.len()
            ),
        };
        return Ok(Err((
            write_response_v(stream, session_version, &reply)?,
            false,
        )));
    }
    let key = CacheKey::new(frame, threshold);
    let global = frame as usize;
    let (result, outcome) = shared
        .cache
        .get_or_fetch(key, || fetch_replicated(shared, frame, global, threshold));
    match outcome {
        FetchOutcome::Hit => {
            shared.metrics.add(CTR_ROUTER_CACHE_HITS, 1);
        }
        FetchOutcome::Coalesced => {
            shared.metrics.add(CTR_ROUTER_CACHE_HITS, 1);
            shared.metrics.add(CTR_ROUTER_COALESCED, 1);
        }
        FetchOutcome::Fetched => {
            shared.metrics.add(CTR_ROUTER_CACHE_MISSES, 1);
        }
    }
    match result {
        Ok(frame) => Ok(Ok(frame)),
        Err(why) => {
            // Upstream retries exhausted: degrade this frame
            // in-band, keep the session. A resilient client turns
            // this into a flagged stale frame (PR 5 model).
            let reply = Response::Error {
                code: ERR_INTERNAL,
                message: why,
            };
            Ok(Err((
                write_response_v(stream, session_version, &reply)?,
                false,
            )))
        }
    }
}

/// One upstream frame fetch attempt against shard `shard`, through its
/// pool, with the shard's breaker told the outcome. The decoded frame
/// is relabeled with its *global* step index: a sliced shard only knows
/// its local frame numbering, and the run-wide convention (what a
/// direct server of the unsliced data bakes into the frame, and what
/// the merged catalog advertises) is `step == global index`.
fn attempt_fetch(
    shared: &RouterShared,
    shard: usize,
    local: u32,
    global: usize,
    threshold: f64,
) -> Result<Arc<HybridFrame>, String> {
    shared.metrics.add(CTR_ROUTER_UPSTREAM_FETCHES, 1);
    let t0 = Instant::now();
    let result = shared.pools[shard].with(|c| c.fetch(local, threshold));
    shared
        .metrics
        .record_seconds(HIST_ROUTER_UPSTREAM_LATENCY, t0.elapsed().as_secs_f64());
    match result {
        Ok(((mut frame, _metrics), retries)) => {
            shared.metrics.add(CTR_ROUTER_UPSTREAM_RETRIES, retries);
            note_transition(&shared.metrics, shared.breakers[shard].on_success());
            frame.step = global;
            Ok(Arc::new(frame))
        }
        Err(e) => {
            shared.metrics.add(CTR_ROUTER_UPSTREAM_ERRORS, 1);
            note_transition(&shared.metrics, shared.breakers[shard].on_failure());
            Err(format!(
                "shard {shard} failed serving its frame {local}: {e}"
            ))
        }
    }
}

/// Advances `cursor` to the next replica whose breaker admits an
/// attempt, counting fast-fails along the way. Returns the replica's
/// position in the preference list plus its `(shard, local)` target, or
/// `None` when every remaining replica fast-failed. Admission is lazy —
/// a half-open trial slot is only claimed when the fetch is actually
/// about to use it.
fn next_candidate(
    shared: &RouterShared,
    replicas: &[(u32, u32)],
    cursor: &mut usize,
) -> Option<(usize, usize, u32)> {
    while *cursor < replicas.len() {
        let idx = *cursor;
        *cursor += 1;
        let (shard, local) = (replicas[idx].0 as usize, replicas[idx].1);
        let (admission, transition) = shared.breakers[shard].admit();
        note_transition(&shared.metrics, transition);
        match admission {
            Admission::FastFail => {
                shared.metrics.add(CTR_ROUTER_BREAKER_FAST_FAILS, 1);
            }
            Admission::Allow | Admission::Trial => return Some((idx, shard, local)),
        }
    }
    None
}

/// One logical frame fetch, resolved across the frame's replica set:
/// walk the preference order, skip replicas whose breaker fast-fails
/// (microseconds each), attempt the rest in turn — optionally hedged —
/// and stop at the first success. Only when every replica has either
/// fast-failed or genuinely failed does the fetch fail, which the
/// caller turns into the in-band `ERR_INTERNAL` degraded path; with
/// replication ≥ 2 a single dead shard therefore costs zero degraded
/// frames.
fn fetch_replicated(
    shared: &Arc<RouterShared>,
    frame: u32,
    global: usize,
    threshold: f64,
) -> Result<Arc<HybridFrame>, String> {
    let replicas = shared
        .map
        .replicas(frame)
        .expect("caller checked the frame exists")
        .to_vec();
    let mut cursor = 0usize;
    let mut last_err: Option<String> = None;
    while let Some((idx, shard, local)) = next_candidate(shared, &replicas, &mut cursor) {
        let outcome = match shared.config.hedge {
            Some(hedge) => hedged_attempt(
                shared,
                &replicas,
                &mut cursor,
                idx,
                shard,
                local,
                global,
                threshold,
                hedge,
            ),
            None => attempt_fetch(shared, shard, local, global, threshold).map(|f| (f, idx)),
        };
        match outcome {
            Ok((decoded, served_idx)) => {
                if served_idx > 0 {
                    shared.metrics.add(CTR_ROUTER_REPLICA_FAILOVERS, 1);
                }
                return Ok(decoded);
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        format!(
            "every replica's circuit breaker is open for frame {global} \
             ({} replicas)",
            replicas.len()
        )
    }))
}

/// One fetch attempt with a hedge: the primary runs on a helper thread;
/// if it has not answered within the quantile-derived hedge delay, the
/// next admissible replica is raced against it and the first genuine
/// reply wins. The loser is not cancelled — it finishes on its thread
/// and reports its own outcome to its breaker and counters, it just
/// cannot win. Returns the frame plus the preference index of the
/// replica that served it.
#[allow(clippy::too_many_arguments)]
fn hedged_attempt(
    shared: &Arc<RouterShared>,
    replicas: &[(u32, u32)],
    cursor: &mut usize,
    primary_idx: usize,
    shard: usize,
    local: u32,
    global: usize,
    threshold: f64,
    hedge: HedgeConfig,
) -> Result<(Arc<HybridFrame>, usize), String> {
    use std::sync::mpsc;
    let (tx, rx) = mpsc::channel();
    let spawn_attempt = |idx: usize, shard: usize, local: u32| {
        let s = Arc::clone(shared);
        let tx = tx.clone();
        std::thread::spawn(move || {
            let outcome = attempt_fetch(&s, shard, local, global, threshold);
            // A send after the winner returned just goes nowhere.
            let _ = tx.send((idx, outcome));
        });
    };
    let delay = hedge.delay_from(&shared.metrics);
    spawn_attempt(primary_idx, shard, local);
    let mut in_flight = 1usize;
    let mut hedge_launched = false;
    let mut last_err: Option<String> = None;
    while in_flight > 0 {
        let (idx, outcome) = if hedge_launched {
            rx.recv().expect("tx is owned by this frame until return")
        } else {
            match rx.recv_timeout(delay) {
                Ok(msg) => msg,
                Err(_slow_primary) => {
                    hedge_launched = true;
                    if let Some((idx2, shard2, local2)) = next_candidate(shared, replicas, cursor) {
                        shared.metrics.add(CTR_ROUTER_HEDGED_REQUESTS, 1);
                        spawn_attempt(idx2, shard2, local2);
                        in_flight += 1;
                    }
                    continue;
                }
            }
        };
        in_flight -= 1;
        match outcome {
            Ok(frame) => {
                if idx != primary_idx && in_flight > 0 {
                    shared.metrics.add(CTR_ROUTER_HEDGED_WINS, 1);
                }
                return Ok((frame, idx));
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least the primary attempt completed"))
}

/// Sums every reachable shard's `Stats` snapshot into one wire-shaped
/// total; a shard that cannot answer contributes zeros (and an
/// `router.upstream_errors` count) instead of failing the reply, and a
/// shard whose breaker is open is skipped outright (a
/// `router.breaker_fast_fails` count) — one dead shard must not add its
/// full retry budget to every `Stats` round trip. Stats hops feed the
/// breakers like any other upstream traffic, so a `Stats` poll doubles
/// as a half-open trial once the cooldown elapses.
fn aggregate_stats(shared: &RouterShared) -> ServerStats {
    let mut total = ServerStats::default();
    for (shard, pool) in shared.pools.iter().enumerate() {
        let (admission, transition) = shared.breakers[shard].admit();
        note_transition(&shared.metrics, transition);
        if admission == Admission::FastFail {
            shared.metrics.add(CTR_ROUTER_BREAKER_FAST_FAILS, 1);
            continue;
        }
        match pool.with(|c| c.stats()) {
            Ok((s, retries)) => {
                shared.metrics.add(CTR_ROUTER_UPSTREAM_RETRIES, retries);
                note_transition(&shared.metrics, shared.breakers[shard].on_success());
                total.requests += s.requests;
                total.frames_served += s.frames_served;
                total.bytes_sent += s.bytes_sent;
                total.cache_hits += s.cache_hits;
                total.cache_misses += s.cache_misses;
                total.frame_bytes_raw += s.frame_bytes_raw;
                total.frame_bytes_wire += s.frame_bytes_wire;
                for (t, c) in total.latency.counts.iter_mut().zip(s.latency.counts.iter()) {
                    *t += c;
                }
            }
            Err(_) => {
                shared.metrics.add(CTR_ROUTER_UPSTREAM_ERRORS, 1);
                note_transition(&shared.metrics, shared.breakers[shard].on_failure());
            }
        }
    }
    total
}

/// A whole sharded deployment in one handle: N loopback shard servers,
/// each owning its rendezvous slice of the catalog, fronted by a
/// [`FrameRouter`] — the test, example, and single-host topology. For a
/// distributed deployment, spawn [`FrameServer`]s where the data lives
/// and wire a [`FrameRouter::spawn`] to their addresses instead.
///
/// ```
/// use accelviz_beam::distribution::Distribution;
/// use accelviz_octree::builder::{partition, BuildParams};
/// use accelviz_octree::plots::PlotType;
/// use accelviz_serve::{Client, RouterConfig, ServerConfig, ShardedFrameService};
///
/// let data: Vec<_> = (0..3u64)
///     .map(|i| {
///         let ps = Distribution::default_beam().sample(300, i + 1);
///         partition(&ps, PlotType::XYZ, BuildParams::default())
///     })
///     .collect();
/// let service = ShardedFrameService::spawn_loopback(
///     data,
///     2,
///     ServerConfig::default(),
///     RouterConfig::default(),
/// )
/// .unwrap();
/// assert_eq!(service.shard_count(), 2);
///
/// let mut client = Client::connect(service.addr()).unwrap();
/// let catalog = client.list_frames().unwrap();
/// assert_eq!(catalog.len(), 3);
/// let (frame, _) = client.fetch(2, f64::INFINITY).unwrap();
/// assert_eq!(frame.step, 2);
///
/// drop(client);
/// service.shutdown();
/// ```
pub struct ShardedFrameService {
    /// `None` marks a shard killed by [`ShardedFrameService::kill_shard`]
    /// and not yet reinstated.
    shards: Vec<Option<FrameServer>>,
    /// What each shard serves — retained so a killed shard can be
    /// respawned bit-identically by
    /// [`ShardedFrameService::reinstate_shard`].
    sources: Vec<ShardSource>,
    shard_config: ServerConfig,
    router: FrameRouter,
}

/// The data a shard was provisioned with, kept for reinstatement.
enum ShardSource {
    /// A physically sliced shard's frames, in local-index order.
    Sliced(Vec<PartitionedData>),
    /// A stored shard's shared out-of-core run.
    Stored(Arc<ResidentRun>),
}

impl ShardedFrameService {
    /// Spawns `shards` loopback shard servers over `data` sliced by
    /// rendezvous ownership ([`ShardMap::sliced`]) plus the fronting
    /// router — the single-replica layout, bit-identical to the
    /// pre-replication service. Rejects an empty shard set with
    /// `InvalidInput`.
    pub fn spawn_loopback(
        data: Vec<PartitionedData>,
        shards: usize,
        shard_config: ServerConfig,
        router_config: RouterConfig,
    ) -> io::Result<ShardedFrameService> {
        Self::spawn_loopback_replicated(data, shards, 1, shard_config, router_config)
    }

    /// Spawns `shards` loopback shard servers over `data`, each
    /// provisioned with the (overlapping, when `replication > 1`)
    /// slice of frames whose rendezvous replica set includes it
    /// ([`ShardMap::sliced_replicated`]), plus the fronting router.
    /// With `replication >= 2` every frame lives on at least two shards
    /// and a single shard kill costs zero degraded frames. Rejects an
    /// empty shard set or a zero replication factor with
    /// `InvalidInput`; `replication` above the shard count clamps.
    pub fn spawn_loopback_replicated(
        data: Vec<PartitionedData>,
        shards: usize,
        replication: usize,
        shard_config: ServerConfig,
        router_config: RouterConfig,
    ) -> io::Result<ShardedFrameService> {
        let spec = Self::validated_spec(shards, replication)?;
        let map = ShardMap::sliced_replicated(&spec, data.len(), replication);
        let mut slices: Vec<Vec<PartitionedData>> = (0..shards).map(|_| Vec::new()).collect();
        for (g, d) in data.into_iter().enumerate() {
            let set = map.replicas(g as u32).expect("g is in range");
            // Ascending-g pushes reproduce each shard's local ranking;
            // the last replica takes the original, the rest clone.
            let (last, rest) = set.split_last().expect("replica sets are nonempty");
            for &(shard, _) in rest {
                slices[shard as usize].push(d.clone());
            }
            slices[last.0 as usize].push(d);
        }
        let sources: Vec<ShardSource> = slices.into_iter().map(ShardSource::Sliced).collect();
        Self::front(sources, map, shard_config, router_config)
    }

    /// Spawns `shards` loopback shard servers that all read the same
    /// out-of-core `run` (ownership is logical, [`ShardMap::shared`]),
    /// plus the fronting router — single-replica routing preference.
    pub fn spawn_stored_loopback(
        run: Arc<ResidentRun>,
        shards: usize,
        shard_config: ServerConfig,
        router_config: RouterConfig,
    ) -> io::Result<ShardedFrameService> {
        Self::spawn_stored_loopback_replicated(run, shards, 1, shard_config, router_config)
    }

    /// The replicated twin of
    /// [`ShardedFrameService::spawn_stored_loopback`]: every shard
    /// already exposes the full catalog, so replication here is purely
    /// a routing property ([`ShardMap::shared_replicated`]) — no frame
    /// is provisioned twice, but each request has `replication` shards
    /// to fall through.
    pub fn spawn_stored_loopback_replicated(
        run: Arc<ResidentRun>,
        shards: usize,
        replication: usize,
        shard_config: ServerConfig,
        router_config: RouterConfig,
    ) -> io::Result<ShardedFrameService> {
        let spec = Self::validated_spec(shards, replication)?;
        let map = ShardMap::shared_replicated(&spec, run.frame_count(), replication);
        let sources = (0..shards)
            .map(|_| ShardSource::Stored(Arc::clone(&run)))
            .collect();
        Self::front(sources, map, shard_config, router_config)
    }

    fn validated_spec(shards: usize, replication: usize) -> io::Result<ShardSpec> {
        if shards == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a sharded service needs at least one shard",
            ));
        }
        if replication == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a sharded service needs a replication factor of at least 1",
            ));
        }
        Ok(ShardSpec::new(shards))
    }

    fn front(
        sources: Vec<ShardSource>,
        map: ShardMap,
        shard_config: ServerConfig,
        router_config: RouterConfig,
    ) -> io::Result<ShardedFrameService> {
        let servers = sources
            .iter()
            .map(|source| spawn_shard(source, shard_config))
            .collect::<io::Result<Vec<_>>>()?;
        let addrs = servers.iter().map(|s| s.addr()).collect();
        let router = FrameRouter::spawn("127.0.0.1:0", addrs, map, router_config)?;
        Ok(ShardedFrameService {
            shards: servers.into_iter().map(Some).collect(),
            sources,
            shard_config,
            router,
        })
    }

    /// The router address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.router.addr()
    }

    /// Shard servers behind the router (killed ones included).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard `i`'s server handle (its private address, metrics, stats).
    ///
    /// # Panics
    /// Panics when shard `i` is currently killed — a dead server has no
    /// handle to return.
    pub fn shard(&self, i: usize) -> &FrameServer {
        self.shards[i]
            .as_ref()
            .expect("shard was killed and not reinstated")
    }

    /// Whether shard `i` is currently live.
    pub fn shard_alive(&self, i: usize) -> bool {
        self.shards[i].is_some()
    }

    /// Kills shard `i`: shuts the server down and drops its handle, so
    /// every connection to it — pooled upstream connections included —
    /// starts failing. The router is told nothing; discovering the
    /// death (retries, breaker trip, probe failures) and surviving it
    /// (replica fall-through) is exactly what this hook exists to
    /// exercise. A no-op when the shard is already dead.
    pub fn kill_shard(&mut self, i: usize) {
        if let Some(server) = self.shards[i].take() {
            server.shutdown();
        }
    }

    /// Reinstates a killed shard `i`: respawns a server over the same
    /// source data (bit-identical frames, fresh address) and repoints
    /// the router's pool at it — which also resets the shard's breaker,
    /// per [`FrameRouter::set_shard_addr`]. A no-op when the shard is
    /// alive.
    pub fn reinstate_shard(&mut self, i: usize) -> io::Result<()> {
        if self.shards[i].is_some() {
            return Ok(());
        }
        let server = spawn_shard(&self.sources[i], self.shard_config)?;
        self.router.set_shard_addr(i, server.addr())?;
        self.shards[i] = Some(server);
        Ok(())
    }

    /// The fronting router (its `router.*` metrics, the failover hook).
    pub fn router(&self) -> &FrameRouter {
        &self.router
    }

    /// Sum of every *live* shard's local stats — the same totals a
    /// client reads with a `Stats` request through the router (which
    /// likewise counts a dead shard as zeros).
    pub fn stats(&self) -> ServerStats {
        let mut total = ServerStats::default();
        for shard in self.shards.iter().flatten() {
            let s = shard.stats();
            total.requests += s.requests;
            total.frames_served += s.frames_served;
            total.bytes_sent += s.bytes_sent;
            total.cache_hits += s.cache_hits;
            total.cache_misses += s.cache_misses;
            total.frame_bytes_raw += s.frame_bytes_raw;
            total.frame_bytes_wire += s.frame_bytes_wire;
            for (t, c) in total.latency.counts.iter_mut().zip(s.latency.counts.iter()) {
                *t += c;
            }
        }
        total
    }

    /// Stops the router first (so no request races a dying shard), then
    /// every live shard.
    pub fn shutdown(self) {
        let ShardedFrameService { shards, router, .. } = self;
        router.shutdown();
        for shard in shards.into_iter().flatten() {
            shard.shutdown();
        }
    }
}

/// Spawns one shard server over its retained source.
fn spawn_shard(source: &ShardSource, config: ServerConfig) -> io::Result<FrameServer> {
    match source {
        ShardSource::Sliced(slice) => FrameServer::spawn_loopback(slice.clone(), config),
        ShardSource::Stored(run) => FrameServer::spawn_stored_loopback(Arc::clone(run), config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_beam::distribution::Distribution;
    use accelviz_octree::builder::{partition, BuildParams};
    use accelviz_octree::plots::PlotType;

    fn tiny_frame(step: usize) -> Arc<HybridFrame> {
        let ps = Distribution::default_beam().sample(100, step as u64 + 1);
        let data = partition(&ps, PlotType::XYZ, BuildParams::default());
        Arc::new(HybridFrame::from_partition(
            &data,
            step,
            f64::INFINITY,
            [2, 2, 2],
        ))
    }

    #[test]
    fn sliced_map_ranks_local_indices_per_shard() {
        let spec = ShardSpec::new(3);
        let map = ShardMap::sliced(&spec, 50);
        let mut seen = [0u32; 3];
        for g in 0..50u32 {
            let (shard, local) = map.locate(g).unwrap();
            assert_eq!(shard, spec.owner_of(g));
            assert_eq!(local, seen[shard], "locals are dense and ascending");
            seen[shard] += 1;
        }
        let total: u32 = seen.iter().sum();
        assert_eq!(total, 50);
        for (s, &count) in seen.iter().enumerate() {
            assert_eq!(map.frames_owned_by(s).len(), count as usize);
        }
    }

    #[test]
    fn shared_map_uses_global_indices_locally() {
        let map = ShardMap::shared(&ShardSpec::new(2), 10);
        for g in 0..10u32 {
            let (_, local) = map.locate(g).unwrap();
            assert_eq!(local, g);
        }
        assert!(map.locate(10).is_none());
    }

    #[test]
    fn fetch_cache_coalesces_and_shares_failures_without_caching_them() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Barrier;

        let cache = Arc::new(FetchCache::new(1 << 20));
        let key = CacheKey::new(0, 1.0);
        let calls = Arc::new(AtomicU64::new(0));
        let gate = Arc::new(Barrier::new(2));

        // First wave: the fetch fails; a waiter that arrives mid-fetch
        // shares the failure.
        let waiter = {
            let (cache, gate) = (Arc::clone(&cache), Arc::clone(&gate));
            std::thread::spawn(move || {
                gate.wait(); // fetcher is inside its fetch
                cache
                    .get_or_fetch(key, || panic!("waiter must coalesce, not fetch"))
                    .0
            })
        };
        let (first, _) = cache.get_or_fetch(key, || {
            calls.fetch_add(1, Ordering::SeqCst);
            gate.wait();
            // Give the waiter time to register on the pending slot.
            std::thread::sleep(Duration::from_millis(50));
            Err("shard down".to_string())
        });
        assert_eq!(first.unwrap_err(), "shard down");
        assert_eq!(waiter.join().unwrap().unwrap_err(), "shard down");

        // The failure was not cached: the next call fetches again and a
        // success is then served from cache.
        let frame = tiny_frame(0);
        let served = Arc::clone(&frame);
        let fetch_calls = Arc::clone(&calls);
        let (second, _) = cache.get_or_fetch(key, move || {
            fetch_calls.fetch_add(1, Ordering::SeqCst);
            Ok(served)
        });
        assert!(Arc::ptr_eq(&second.unwrap(), &frame));
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        let (third, _) = cache.get_or_fetch(key, || panic!("cached now"));
        assert!(Arc::ptr_eq(&third.unwrap(), &frame));
    }

    #[test]
    fn fetch_cache_evicts_lru_by_bytes() {
        // A budget of exactly two frames: the third insert must evict
        // the least recently used resident frame.
        let frame_bytes = tiny_frame(0).total_bytes();
        let cache = FetchCache::new(2 * frame_bytes);
        let keys: Vec<CacheKey> = (0..3).map(|f| CacheKey::new(f, 1.0)).collect();
        for (i, &k) in keys[..2].iter().enumerate() {
            let (r, _) = cache.get_or_fetch(k, || Ok(tiny_frame(i)));
            r.unwrap();
        }
        // Touch key 0 so key 1 is the LRU victim.
        cache
            .get_or_fetch(keys[0], || panic!("resident"))
            .0
            .unwrap();
        cache.get_or_fetch(keys[2], || Ok(tiny_frame(2))).0.unwrap();
        cache
            .get_or_fetch(keys[0], || panic!("survived"))
            .0
            .unwrap();
        let mut refetched = false;
        cache
            .get_or_fetch(keys[1], || {
                refetched = true;
                Ok(tiny_frame(1))
            })
            .0
            .unwrap();
        assert!(refetched, "key 1 was the LRU victim");
    }

    #[test]
    fn fetch_cache_admits_frames_larger_than_the_whole_budget() {
        let cache = FetchCache::new(1);
        let key = CacheKey::new(0, 1.0);
        let frame = tiny_frame(0);
        let served = Arc::clone(&frame);
        let (r, _) = cache.get_or_fetch(key, move || Ok(served));
        assert!(Arc::ptr_eq(&r.unwrap(), &frame));
        // Still resident: the just-inserted frame is never its own
        // eviction victim, so its coalesced waiters are served.
        let (again, _) = cache.get_or_fetch(key, || panic!("resident"));
        assert!(Arc::ptr_eq(&again.unwrap(), &frame));
        // The next distinct insert evicts it.
        cache
            .get_or_fetch(CacheKey::new(1, 1.0), || Ok(tiny_frame(1)))
            .0
            .unwrap();
        let mut refetched = false;
        cache
            .get_or_fetch(key, || {
                refetched = true;
                Ok(tiny_frame(0))
            })
            .0
            .unwrap();
        assert!(refetched, "the oversized frame was the next victim");
    }
}
