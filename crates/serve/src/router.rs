//! The shard router: one AVWF front door over N frame servers.
//!
//! The paper's remote pipeline pairs one server with one viewer; scaling
//! one terascale run to many concurrent dashboards means spreading the
//! frame catalog over N shard servers ([`crate::server::FrameServer`]s,
//! any backend) and putting a router in front that clients cannot tell
//! from a single big server:
//!
//! - `Hello` negotiates a protocol version locally, exactly like a
//!   direct server — the client's session version is independent of the
//!   (always newest) version the router speaks to its shards.
//! - `ListFrames` answers with the merged catalog: every shard's local
//!   catalog stitched back into global frame order at spawn time.
//! - `RequestFrame` routes to the owning shard (the [`ShardMap`] built
//!   from an [`ShardSpec`] rendezvous layout) over a pooled upstream
//!   [`crate::client::Client`] — so the proxy leg inherits the client
//!   layer's reconnect-and-replay retry machinery unchanged.
//! - `Stats` sums every shard's counters into one wire-shaped
//!   [`ServerStats`]; the router's own `router.*` counters live in its
//!   private registry ([`FrameRouter::metrics`]) because the `Stats`
//!   wire shape is frozen.
//!
//! Herd coalescing: the router keeps its own small LRU of decoded frames
//! keyed `(global frame, threshold bits)`, with the same
//! collapse-identical-requests discipline as the server's extraction
//! cache — a thundering herd of M clients on one cold frame costs one
//! upstream fetch (and therefore at most one extraction on the owning
//! shard). Upstream *failures* are shared with every coalesced waiter
//! but never cached, so a shard coming back is observed on the very next
//! request.
//!
//! Failure semantics (the PR 5 degradation model, one hop out): when a
//! shard dies mid-session the router retries per its upstream policy,
//! then answers that frame with an in-band `ERR_INTERNAL` while the
//! catalog and every other shard's frames keep serving. A resilient
//! client ([`crate::client::RemoteFrames`]) turns that into a
//! flagged-stale degraded frame instead of a dead session; when the
//! shard returns (or [`FrameRouter::set_shard_addr`] repoints its pool
//! at a replacement), the same requests simply succeed again.

use crate::cache::CacheKey;
use crate::client::{Client, ClientConfig};
use crate::error::ServeError;
use crate::lru::LruOrder;
use crate::protocol::{
    read_request, write_response_v, FrameInfo, Request, Response, ERR_BAD_REQUEST,
    ERR_BAD_THRESHOLD, ERR_INTERNAL, ERR_NO_SUCH_FRAME, RESP_FRAME,
};
use crate::server::{CountGuard, FrameServer, ServerConfig};
use crate::stats::ServerStats;
use crate::wire::{encode_frame, encode_frame_v2, write_envelope_v, V1, V2, VERSION};
use accelviz_core::hybrid::HybridFrame;
use accelviz_core::shard::ShardSpec;
use accelviz_octree::sorted_store::PartitionedData;
use accelviz_store::ResidentRun;
use accelviz_trace::registry::Registry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Registry counter: requests the router handled, across all clients
/// and kinds.
pub const CTR_ROUTER_REQUESTS: &str = "router.requests";
/// Registry counter: frame replies the router sent downstream.
pub const CTR_ROUTER_FRAMES_SERVED: &str = "router.frames_served";
/// Registry counter: payload + framing bytes the router wrote to
/// clients.
pub const CTR_ROUTER_BYTES_SENT: &str = "router.bytes_sent";
/// Registry counter: frame requests answered from the router's frame
/// cache (including coalesced waiters).
pub const CTR_ROUTER_CACHE_HITS: &str = "router.cache_hits";
/// Registry counter: frame requests that went upstream to a shard.
pub const CTR_ROUTER_CACHE_MISSES: &str = "router.cache_misses";
/// Registry counter: frame requests that coalesced into an upstream
/// fetch already in flight (a subset of `router.cache_hits` — the herd
/// collapse at work).
pub const CTR_ROUTER_COALESCED: &str = "router.coalesced_fetches";
/// Registry counter: upstream fetches the router started (each one
/// costs the owning shard at most one extraction).
pub const CTR_ROUTER_UPSTREAM_FETCHES: &str = "router.upstream_fetches";
/// Registry counter: retries the pooled upstream clients burned against
/// shards (transient shard failures absorbed by the proxy leg).
pub const CTR_ROUTER_UPSTREAM_RETRIES: &str = "router.upstream_retries";
/// Registry counter: upstream operations that failed even after the
/// upstream retry policy — each one became an in-band `ERR_INTERNAL`
/// (for frames) or a zero contribution (for stats aggregation).
pub const CTR_ROUTER_UPSTREAM_ERRORS: &str = "router.upstream_errors";
/// Registry counter: connections closed at the router's connection cap.
/// Unlike the shard servers (which answer `ERR_BUSY` in-band from a
/// bounded pool), the thin router sheds by closing: the client's retry
/// classifier sees the reset as transient and backs off the same way.
pub const CTR_ROUTER_SHED_CONNECTIONS: &str = "router.shed_connections";
/// Registry counter: `accept(2)` failures on the router listener.
pub const CTR_ROUTER_ACCEPT_ERRORS: &str = "router.accept_errors";
/// Registry counter: request handlers that panicked and were isolated
/// (the client got `ERR_INTERNAL`; the listener survived).
pub const CTR_ROUTER_HANDLER_PANICS: &str = "router.handler_panics";
/// Registry histogram: router request service time, including the
/// upstream hop for cache misses.
pub const HIST_ROUTER_LATENCY: &str = "router.request_latency";
/// Registry counter: progressive (LOD) frame requests the router served
/// by fetching the full frame upstream and re-chunking it locally.
pub const CTR_ROUTER_LOD_REQUESTS: &str = "router.lod_requests";
/// Registry counter: progressive chunk records the router wrote.
pub const CTR_ROUTER_LOD_CHUNKS: &str = "router.lod_chunks";

/// Where every global frame lives: which shard owns it and which *local*
/// index that shard knows it by. Built once from a [`ShardSpec`] and a
/// frame count, then shared by the shard launcher (to slice the data)
/// and the router (to route requests).
///
/// ```
/// use accelviz_core::shard::ShardSpec;
/// use accelviz_serve::ShardMap;
///
/// let map = ShardMap::sliced(&ShardSpec::new(2), 6);
/// assert_eq!(map.frame_count(), 6);
/// let (shard, _local) = map.locate(4).expect("frame 4 exists");
/// assert!(shard < map.shard_count());
/// // Out-of-catalog frames have no owner.
/// assert!(map.locate(6).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct ShardMap {
    /// `owners[g] = (shard, local index)` for global frame `g`.
    owners: Vec<(u32, u32)>,
    shards: usize,
}

impl ShardMap {
    /// The layout for *physically sliced* shards: each shard holds only
    /// its owned frames, packed in ascending global order, so global
    /// frame `g` is the owner's `rank(g)`-th local frame. This is what
    /// [`ShardedFrameService::spawn_loopback`] feeds its shards.
    pub fn sliced(spec: &ShardSpec, frame_count: usize) -> ShardMap {
        let mut next_local = vec![0u32; spec.shards()];
        let owners = (0..frame_count)
            .map(|g| {
                let shard = spec.owner_of(g as u32);
                let local = next_local[shard];
                next_local[shard] += 1;
                (shard as u32, local)
            })
            .collect();
        ShardMap {
            owners,
            shards: spec.shards(),
        }
    }

    /// The layout for shards that all expose the *full* catalog (e.g.
    /// N stored servers sharing one run file): ownership still follows
    /// the rendezvous spec, but a frame's local index on its owner is
    /// its global index. This is what
    /// [`ShardedFrameService::spawn_stored_loopback`] uses.
    pub fn shared(spec: &ShardSpec, frame_count: usize) -> ShardMap {
        let owners = (0..frame_count)
            .map(|g| (spec.owner_of(g as u32) as u32, g as u32))
            .collect();
        ShardMap {
            owners,
            shards: spec.shards(),
        }
    }

    /// Shards this map routes over.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Global frames this map covers.
    pub fn frame_count(&self) -> usize {
        self.owners.len()
    }

    /// Where global frame `g` lives: `(shard, local index)`, or `None`
    /// when `g` is outside the catalog.
    pub fn locate(&self, g: u32) -> Option<(usize, u32)> {
        self.owners
            .get(g as usize)
            .map(|&(s, local)| (s as usize, local))
    }

    /// The global frames shard `s` owns, ascending.
    pub fn frames_owned_by(&self, s: usize) -> Vec<usize> {
        self.owners
            .iter()
            .enumerate()
            .filter(|(_, &(shard, _))| shard as usize == s)
            .map(|(g, _)| g)
            .collect()
    }
}

/// Router tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// Byte budget for the router's decoded-frame cache (the
    /// herd-coalescing layer), LRU by resident frame bytes
    /// ([`HybridFrame::total_bytes`] per frame); must be positive.
    /// Frames vary by orders of magnitude with threshold and grid
    /// dims, so the budget counts bytes rather than entries; a frame
    /// larger than the whole budget is still admitted (to serve its
    /// coalesced waiters) and becomes the next eviction victim.
    pub cache_bytes: u64,
    /// Bound on any single blocking read from a client; `None` waits
    /// forever.
    pub read_timeout: Option<Duration>,
    /// Same bound for writes.
    pub write_timeout: Option<Duration>,
    /// Client connections served concurrently; past this, new arrivals
    /// are counted under `router.shed_connections` and closed.
    pub max_connections: usize,
    /// The resilience knobs for the pooled upstream connections to the
    /// shards — retry/backoff on this leg is what turns a shard blip
    /// into a blip instead of a failed client request. `max_version` is
    /// honored, so a `wire::V1`-capped upstream config forces
    /// uncompressed shard hops.
    pub upstream: ClientConfig,
    /// Idle upstream connections kept pooled per shard.
    pub upstream_idle: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            cache_bytes: 128 << 20,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_connections: 256,
            upstream: ClientConfig::default(),
            upstream_idle: 4,
        }
    }
}

/// How a router frame fetch was satisfied.
enum FetchOutcome {
    /// Already decoded and resident in the router cache.
    Hit,
    /// Joined an upstream fetch another request had in flight.
    Coalesced,
    /// Went upstream (and the result, success or failure, was shared
    /// with any waiters that arrived meanwhile).
    Fetched,
}

/// In-flight upstream fetch of one key. Waiters block on `cv` until
/// `done` holds the shared outcome; unlike the extraction cache's
/// pending slot this carries a `Result`, because an upstream fetch can
/// *fail* (dead shard) and that failure must be delivered to every
/// coalesced waiter — never panicked across threads, never cached.
struct FetchPending {
    done: StdMutex<Option<Result<Arc<HybridFrame>, String>>>,
    cv: Condvar,
}

enum FetchEntry {
    Ready(Arc<HybridFrame>),
    Fetching(Arc<FetchPending>),
}

struct FetchInner {
    /// Byte budget over resident decoded frames
    /// ([`HybridFrame::total_bytes`] each).
    budget: u64,
    /// Bytes currently resident under `Ready` entries.
    resident_bytes: u64,
    /// LRU over *ready* keys only; in-flight fetches cannot be evicted.
    order: LruOrder<CacheKey>,
    entries: HashMap<CacheKey, FetchEntry>,
}

/// The router's frame cache: LRU over decoded frames plus the
/// same-key coalescing that collapses a thundering herd into one
/// upstream fetch. Failures are shared with waiters but vacated, not
/// cached — the next request after a shard recovers goes upstream.
///
/// Capacity is a *byte* budget, not an entry count: frames vary by
/// orders of magnitude with threshold and grid dims, so an entry count
/// either wastes the budget on small frames or blows it on large ones.
/// A frame larger than the whole budget is still admitted (and becomes
/// the next eviction victim) — the just-fetched frame must be resident
/// to serve its coalesced waiters.
struct FetchCache {
    inner: Mutex<FetchInner>,
}

impl FetchCache {
    fn new(budget: u64) -> FetchCache {
        assert!(budget > 0, "router cache needs a positive byte budget");
        FetchCache {
            inner: Mutex::new(FetchInner {
                budget,
                resident_bytes: 0,
                order: LruOrder::new(),
                entries: HashMap::new(),
            }),
        }
    }

    /// Returns the frame for `key`, fetching it with `fetch` when it is
    /// neither cached nor already in flight. Concurrent calls with the
    /// same key run `fetch` once and share its outcome.
    fn get_or_fetch(
        &self,
        key: CacheKey,
        fetch: impl FnOnce() -> Result<Arc<HybridFrame>, String>,
    ) -> (Result<Arc<HybridFrame>, String>, FetchOutcome) {
        let pending = {
            let mut g = self.inner.lock();
            match g.entries.get(&key) {
                Some(FetchEntry::Ready(frame)) => {
                    let frame = Arc::clone(frame);
                    g.order.touch(key);
                    return (Ok(frame), FetchOutcome::Hit);
                }
                Some(FetchEntry::Fetching(p)) => Arc::clone(p),
                None => {
                    let p = Arc::new(FetchPending {
                        done: StdMutex::new(None),
                        cv: Condvar::new(),
                    });
                    g.entries.insert(key, FetchEntry::Fetching(Arc::clone(&p)));
                    drop(g);
                    return (self.run_fetch(key, p, fetch), FetchOutcome::Fetched);
                }
            }
        };
        // Coalesced: wait outside every lock for the in-flight fetch and
        // share its outcome, failure included.
        let mut d = pending.done.lock().unwrap_or_else(|e| e.into_inner());
        while d.is_none() {
            d = pending.cv.wait(d).unwrap_or_else(|e| e.into_inner());
        }
        let outcome = d.clone().expect("outcome present");
        (outcome, FetchOutcome::Coalesced)
    }

    /// Runs `fetch` for a key this thread just marked in flight, then
    /// publishes the outcome to the map (success only) and to every
    /// coalesced waiter (success or failure).
    fn run_fetch(
        &self,
        key: CacheKey,
        pending: Arc<FetchPending>,
        fetch: impl FnOnce() -> Result<Arc<HybridFrame>, String>,
    ) -> Result<Arc<HybridFrame>, String> {
        let outcome = fetch();
        {
            let mut g = self.inner.lock();
            match &outcome {
                Ok(frame) => {
                    // Make room by bytes: evict oldest Ready frames
                    // until the newcomer fits (or nothing is left to
                    // evict — an oversized frame is admitted anyway and
                    // is simply the next victim). The newcomer is not
                    // in `order` yet, so it can never evict itself.
                    let incoming = frame.total_bytes();
                    while g.resident_bytes + incoming > g.budget {
                        let Some(victim) = g.order.pop_oldest() else {
                            break;
                        };
                        if let Some(FetchEntry::Ready(evicted)) = g.entries.remove(&victim) {
                            g.resident_bytes -= evicted.total_bytes();
                        }
                    }
                    g.order.touch(key);
                    g.resident_bytes += incoming;
                    g.entries.insert(key, FetchEntry::Ready(Arc::clone(frame)));
                }
                // A failed fetch vacates the key so recovery is observed
                // on the very next request.
                Err(_) => {
                    g.entries.remove(&key);
                }
            }
        }
        *pending.done.lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome.clone());
        pending.cv.notify_all();
        outcome
    }
}

/// One shard's pooled upstream connections. Checked-out clients that
/// finish their operation cleanly go back to the idle pool (up to
/// `max_idle`); any failure drops the connection instead — its stream
/// may be mid-envelope, and the next checkout dials fresh.
struct UpstreamPool {
    addr: Mutex<SocketAddr>,
    idle: Mutex<Vec<Client>>,
    config: ClientConfig,
    max_idle: usize,
}

impl UpstreamPool {
    fn new(addr: SocketAddr, config: ClientConfig, max_idle: usize) -> UpstreamPool {
        UpstreamPool {
            addr: Mutex::new(addr),
            idle: Mutex::new(Vec::new()),
            config,
            max_idle,
        }
    }

    /// Repoints the pool (shard restarted elsewhere); idle connections
    /// to the old address are dropped.
    fn set_addr(&self, addr: SocketAddr) {
        *self.addr.lock() = addr;
        self.idle.lock().clear();
    }

    /// Runs `op` on a pooled (or freshly dialed) client. Returns the
    /// result plus the retries the client burned inside the call — the
    /// upstream leg's resilience cost, surfaced for `router.*` counters.
    fn with<T>(
        &self,
        op: impl FnOnce(&mut Client) -> crate::error::Result<T>,
    ) -> crate::error::Result<(T, u64)> {
        let mut client = match self.idle.lock().pop() {
            Some(c) => c,
            None => Client::connect_with(*self.addr.lock(), self.config)?,
        };
        let before = client.client_stats().retries;
        match op(&mut client) {
            Ok(v) => {
                let retries = client.client_stats().retries - before;
                let mut idle = self.idle.lock();
                if idle.len() < self.max_idle {
                    idle.push(client);
                }
                Ok((v, retries))
            }
            Err(e) => Err(e),
        }
    }
}

/// The state the accept loop and every connection handler share.
struct RouterShared {
    map: ShardMap,
    catalog: Vec<FrameInfo>,
    pools: Vec<UpstreamPool>,
    cache: FetchCache,
    config: RouterConfig,
    metrics: Registry,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    inflight_requests: AtomicUsize,
}

/// A running shard router: binds its own listener, speaks the unchanged
/// AVWF protocol to clients, and proxies frame requests to the owning
/// shard over pooled, retrying upstream connections. See the
/// [module docs](self) for the full semantics.
///
/// ```
/// use accelviz_beam::distribution::Distribution;
/// use accelviz_core::shard::ShardSpec;
/// use accelviz_octree::builder::{partition, BuildParams};
/// use accelviz_octree::plots::PlotType;
/// use accelviz_serve::{Client, FrameRouter, FrameServer, RouterConfig, ServerConfig, ShardMap};
///
/// // Two shards that each expose the full 3-frame catalog, so the
/// // shared layout applies (local index == global index).
/// let data: Vec<_> = (0..3u64)
///     .map(|i| {
///         let ps = Distribution::default_beam().sample(300, i + 1);
///         partition(&ps, PlotType::XYZ, BuildParams::default())
///     })
///     .collect();
/// let a = FrameServer::spawn_loopback(data.clone(), ServerConfig::default()).unwrap();
/// let b = FrameServer::spawn_loopback(data, ServerConfig::default()).unwrap();
///
/// let map = ShardMap::shared(&ShardSpec::new(2), 3);
/// let router = FrameRouter::spawn(
///     "127.0.0.1:0",
///     vec![a.addr(), b.addr()],
///     map,
///     RouterConfig::default(),
/// )
/// .unwrap();
///
/// // A stock client cannot tell the router from a single server.
/// let mut client = Client::connect(router.addr()).unwrap();
/// assert_eq!(client.frame_count(), 3);
/// let (frame, _) = client.fetch(1, f64::INFINITY).unwrap();
/// assert_eq!(frame.step, 1);
///
/// drop(client);
/// router.shutdown();
/// a.shutdown();
/// b.shutdown();
/// ```
pub struct FrameRouter {
    shared: Arc<RouterShared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    #[cfg(unix)]
    waker: Arc<crate::poll::Waker>,
}

impl FrameRouter {
    /// Binds `addr` and starts routing over the given shard addresses.
    /// `shards[i]` must be the server owning every `(i, local)` entry of
    /// `map`. Fails fast — with an error, not a degraded catalog — when
    /// the shard set is empty, its length disagrees with the map, any
    /// shard is unreachable at spawn, or a shard advertises fewer frames
    /// than the map routes to it.
    pub fn spawn(
        addr: &str,
        shards: Vec<SocketAddr>,
        map: ShardMap,
        config: RouterConfig,
    ) -> io::Result<FrameRouter> {
        if shards.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a router needs at least one shard",
            ));
        }
        if shards.len() != map.shard_count() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "shard map routes over {} shards but {} addresses were given",
                    map.shard_count(),
                    shards.len()
                ),
            ));
        }
        let pools: Vec<UpstreamPool> = shards
            .into_iter()
            .map(|a| UpstreamPool::new(a, config.upstream, config.upstream_idle))
            .collect();
        let catalog = merge_catalogs(&map, &pools)?;
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(RouterShared {
            map,
            catalog,
            pools,
            cache: FetchCache::new(config.cache_bytes.max(1)),
            config,
            metrics: Registry::new(),
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            inflight_requests: AtomicUsize::new(0),
        });
        #[cfg(unix)]
        {
            let waker = Arc::new(crate::poll::Waker::new()?);
            let (s, w) = (Arc::clone(&shared), Arc::clone(&waker));
            let accept = std::thread::spawn(move || accept_loop(s, listener, w));
            Ok(FrameRouter {
                shared,
                addr: local,
                accept: Some(accept),
                waker,
            })
        }
        #[cfg(not(unix))]
        {
            let s = Arc::clone(&shared);
            let accept = std::thread::spawn(move || blocking_accept_loop(s, listener));
            Ok(FrameRouter {
                shared,
                addr: local,
                accept: Some(accept),
            })
        }
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shards this router routes over.
    pub fn shard_count(&self) -> usize {
        self.shared.map.shard_count()
    }

    /// The merged catalog served to `ListFrames`, in global frame order.
    pub fn catalog(&self) -> &[FrameInfo] {
        &self.shared.catalog
    }

    /// The router's private metrics registry — every `router.*` counter
    /// documented in this module, for tests and embedders. The wire
    /// `Stats` reply carries the *summed shard* counters instead,
    /// because its shape is frozen.
    pub fn metrics(&self) -> &Registry {
        &self.shared.metrics
    }

    /// Repoints shard `shard`'s upstream pool at `addr` — the failover
    /// hook for a shard restarted on a new address. Idle pooled
    /// connections to the old address are dropped; the merged catalog is
    /// kept, so the replacement must serve the same frame slice. Errors
    /// when `shard` is out of range.
    pub fn set_shard_addr(&self, shard: usize, addr: SocketAddr) -> io::Result<()> {
        match self.shared.pools.get(shard) {
            Some(pool) => {
                pool.set_addr(addr);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("shard {shard} out of range ({} shards)", self.shard_count()),
            )),
        }
    }

    /// Stops accepting, joins the accept thread, and drains in-flight
    /// replies (bounded by one second, mirroring the server's default
    /// drain).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.shared.shutdown.store(true, Ordering::SeqCst);
        #[cfg(unix)]
        self.waker.wake();
        #[cfg(not(unix))]
        {
            let _ = TcpStream::connect(self.addr);
        }
        let _ = accept.join();
        let deadline = Instant::now() + Duration::from_secs(1);
        while self.shared.inflight_requests.load(Ordering::SeqCst) > 0 && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for FrameRouter {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Fetches every shard's catalog and stitches the merged global catalog:
/// entry `g` comes from its owner's local slot, relabeled with the
/// global index (`frame = g`, `step = g` — the run-wide convention a
/// direct server of the unsliced data would report).
fn merge_catalogs(map: &ShardMap, pools: &[UpstreamPool]) -> io::Result<Vec<FrameInfo>> {
    let mut shard_catalogs = Vec::with_capacity(pools.len());
    for (i, pool) in pools.iter().enumerate() {
        let (catalog, _retries) = pool.with(|c| c.list_frames()).map_err(|e| {
            io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("shard {i} catalog fetch failed: {e}"),
            )
        })?;
        shard_catalogs.push(catalog);
    }
    let mut merged = Vec::with_capacity(map.frame_count());
    for g in 0..map.frame_count() {
        let (shard, local) = map.locate(g as u32).expect("g < frame_count");
        let entry = shard_catalogs[shard].get(local as usize).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "shard {shard} advertises {} frames but the map routes global frame {g} \
                     to its local index {local}",
                    shard_catalogs[shard].len()
                ),
            )
        })?;
        merged.push(FrameInfo {
            frame: g as u32,
            step: g as u64,
            particles: entry.particles,
            default_threshold: entry.default_threshold,
        });
    }
    Ok(merged)
}

/// The router accept loop: non-blocking listener polled alongside the
/// shutdown self-pipe, connections past the cap counted and closed.
#[cfg(unix)]
fn accept_loop(shared: Arc<RouterShared>, listener: TcpListener, waker: Arc<crate::poll::Waker>) {
    use crate::poll::{poll, AcceptBackoff, PollEntry};
    use std::os::unix::io::AsRawFd;

    if listener.set_nonblocking(true).is_err() {
        return blocking_accept_loop(shared, listener);
    }
    let mut backoff = AcceptBackoff::new();
    let mut cooldown: Option<Instant> = None;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let now = Instant::now();
        let listener_armed = match cooldown {
            Some(until) if until > now => false,
            _ => {
                cooldown = None;
                true
            }
        };
        let timeout = cooldown.map(|until| until.saturating_duration_since(now));
        let mut entries = vec![PollEntry {
            fd: waker.fd(),
            read: true,
            write: false,
        }];
        if listener_armed {
            entries.push(PollEntry {
                fd: listener.as_raw_fd(),
                read: true,
                write: false,
            });
        }
        let ready = match poll(&entries, timeout) {
            Ok(ready) => ready,
            Err(_) => {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        };
        if ready[0].readable {
            waker.drain();
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if listener_armed && !ready[1].is_empty() {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        backoff.on_success();
                        let _ = stream.set_nonblocking(false);
                        admit(&shared, stream);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        shared.metrics.add(CTR_ROUTER_ACCEPT_ERRORS, 1);
                        cooldown = Some(Instant::now() + backoff.on_error());
                        break;
                    }
                }
            }
        }
    }
}

/// Blocking fallback (and the whole story on non-unix builds): shutdown
/// wake relies on the next connection arriving.
fn blocking_accept_loop(shared: Arc<RouterShared>, listener: TcpListener) {
    let mut error_pause = Duration::from_millis(1);
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                error_pause = Duration::from_millis(1);
                admit(&shared, stream);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                shared.metrics.add(CTR_ROUTER_ACCEPT_ERRORS, 1);
                std::thread::sleep(error_pause);
                error_pause = (error_pause * 2).min(Duration::from_millis(100));
            }
        }
    }
}

/// Admits or sheds one accepted connection. Past the cap the stream is
/// counted and dropped without spawning anything — a connect flood must
/// not mint router threads.
fn admit(shared: &Arc<RouterShared>, stream: TcpStream) {
    if shared.active_connections.load(Ordering::SeqCst) >= shared.config.max_connections {
        shared.metrics.add(CTR_ROUTER_SHED_CONNECTIONS, 1);
        return; // dropping the stream closes it
    }
    shared.active_connections.fetch_add(1, Ordering::SeqCst);
    let conn = Arc::clone(shared);
    std::thread::spawn(move || {
        let _guard = CountGuard(&conn.active_connections);
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(conn.config.read_timeout);
        let _ = stream.set_write_timeout(conn.config.write_timeout);
        client_loop(&conn, stream);
    });
}

/// The per-connection request/reply loop — the same session shape as the
/// server's `serve_loop`, with the shard hop inside `respond_router`.
fn client_loop<S: Read + Write>(shared: &RouterShared, mut stream: S) {
    let mut session_version = V1;
    loop {
        let req = match read_request(&mut stream) {
            Ok(req) => req,
            Err(ServeError::Truncated { got: 0, .. }) | Err(ServeError::Io(_)) => return,
            Err(e) => {
                let reply = Response::Error {
                    code: ERR_BAD_REQUEST,
                    message: e.to_string(),
                };
                let _ = write_response_v(&mut stream, session_version, &reply);
                return;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let t0 = Instant::now();
        let _inflight = CountGuard({
            shared.inflight_requests.fetch_add(1, Ordering::SeqCst);
            &shared.inflight_requests
        });
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            respond_router(shared, req, &mut stream, &mut session_version)
        }));
        let (bytes, served_frame) = match outcome {
            Ok(Ok(r)) => r,
            Ok(Err(_)) => return, // client went away mid-reply
            Err(_panic) => {
                shared.metrics.add(CTR_ROUTER_HANDLER_PANICS, 1);
                let reply = Response::Error {
                    code: ERR_INTERNAL,
                    message: "internal error routing this request; the connection survives"
                        .to_string(),
                };
                match write_response_v(&mut stream, session_version, &reply) {
                    Ok(bytes) => (bytes, false),
                    Err(_) => return,
                }
            }
        };
        shared.metrics.add(CTR_ROUTER_REQUESTS, 1);
        shared.metrics.add(CTR_ROUTER_BYTES_SENT, bytes);
        if served_frame {
            shared.metrics.add(CTR_ROUTER_FRAMES_SERVED, 1);
        }
        shared
            .metrics
            .record_seconds(HIST_ROUTER_LATENCY, t0.elapsed().as_secs_f64());
    }
}

/// Serves one request at the router; returns (wire bytes written, was a
/// frame reply). Mirrors the server's `respond` contract so a client
/// cannot tell the difference.
fn respond_router<S: Write>(
    shared: &RouterShared,
    req: Request,
    stream: &mut S,
    session_version: &mut u16,
) -> crate::error::Result<(u64, bool)> {
    match req {
        Request::Hello { version } => {
            let reply = if version == 0 {
                Response::Error {
                    code: ERR_BAD_REQUEST,
                    message: format!("protocol version must be at least 1, client sent {version}"),
                }
            } else {
                let negotiated = version.min(VERSION);
                *session_version = negotiated;
                Response::HelloAck {
                    version: negotiated,
                    frame_count: shared.catalog.len() as u32,
                }
            };
            Ok((write_response_v(stream, *session_version, &reply)?, false))
        }
        Request::ListFrames => {
            let frames = shared.catalog.clone();
            Ok((
                write_response_v(stream, *session_version, &Response::FrameList(frames))?,
                false,
            ))
        }
        Request::RequestFrame { frame, threshold } => {
            let frame = match route_frame(shared, frame, threshold, stream, *session_version)? {
                Ok(frame) => frame,
                Err(reply_written) => return Ok(reply_written),
            };
            // Re-encode at the *client's* negotiated version, straight
            // from the cached Arc — both codecs are deterministic, so the
            // bytes match what a direct server of the same data writes.
            let payload = if *session_version >= V2 {
                encode_frame_v2(&frame).0
            } else {
                encode_frame(&frame)
            };
            let bytes = write_envelope_v(stream, *session_version, RESP_FRAME, &payload)?;
            Ok((bytes, true))
        }
        Request::RequestFrameProgressive {
            frame,
            threshold,
            chunk_bytes,
        } => {
            // Same v2-session gate as a direct server: the chunk records
            // only exist on the v2 wire.
            if *session_version < V2 {
                let reply = Response::Error {
                    code: ERR_BAD_REQUEST,
                    message: "progressive streaming requires a v2 session; \
                              send Hello with version >= 2 first"
                        .to_string(),
                };
                return Ok((write_response_v(stream, *session_version, &reply)?, false));
            }
            let frame = match route_frame(shared, frame, threshold, stream, *session_version)? {
                Ok(frame) => frame,
                Err(reply_written) => return Ok(reply_written),
            };
            // The upstream hop stays a *full* fetch through the shared
            // cache (coalescing with plain requests for the same key);
            // the router re-chunks locally with the same planner the
            // shards run, which is a pure function of (frame, budget) —
            // so the record bytes a sharded session sees are identical
            // to a direct server's.
            let records =
                crate::lod::plan_frame_chunks(&frame, crate::lod::chunk_budget(chunk_bytes));
            let mut bytes = 0u64;
            for record in &records {
                bytes += crate::protocol::write_chunk(stream, record)?;
            }
            shared.metrics.add(CTR_ROUTER_LOD_REQUESTS, 1);
            shared
                .metrics
                .add(CTR_ROUTER_LOD_CHUNKS, records.len() as u64);
            Ok((bytes, true))
        }
        Request::Stats => {
            let snapshot = aggregate_stats(shared);
            Ok((
                write_response_v(stream, *session_version, &Response::Stats(snapshot))?,
                false,
            ))
        }
    }
}

/// The shared routing path behind both frame request kinds: validates
/// the threshold, locates the owning shard, and resolves the decoded
/// frame through the router cache (one upstream fetch per herd). On a
/// policy or upstream failure the in-band error reply is already
/// written and the inner `Err` carries `respond_router`'s return value;
/// the outer `Err` is a dead client connection.
fn route_frame<S: Write>(
    shared: &RouterShared,
    frame: u32,
    threshold: f64,
    stream: &mut S,
    session_version: u16,
) -> crate::error::Result<std::result::Result<Arc<HybridFrame>, (u64, bool)>> {
    if threshold.is_nan() {
        let reply = Response::Error {
            code: ERR_BAD_THRESHOLD,
            message: format!("threshold must not be NaN, got {threshold}"),
        };
        return Ok(Err((
            write_response_v(stream, session_version, &reply)?,
            false,
        )));
    }
    let Some((shard, local)) = shared.map.locate(frame) else {
        let reply = Response::Error {
            code: ERR_NO_SUCH_FRAME,
            message: format!(
                "frame {frame} requested, {} available",
                shared.catalog.len()
            ),
        };
        return Ok(Err((
            write_response_v(stream, session_version, &reply)?,
            false,
        )));
    };
    let key = CacheKey::new(frame, threshold);
    let global = frame as usize;
    let (result, outcome) = shared.cache.get_or_fetch(key, || {
        fetch_upstream(shared, shard, local, global, threshold)
    });
    match outcome {
        FetchOutcome::Hit => {
            shared.metrics.add(CTR_ROUTER_CACHE_HITS, 1);
        }
        FetchOutcome::Coalesced => {
            shared.metrics.add(CTR_ROUTER_CACHE_HITS, 1);
            shared.metrics.add(CTR_ROUTER_COALESCED, 1);
        }
        FetchOutcome::Fetched => {
            shared.metrics.add(CTR_ROUTER_CACHE_MISSES, 1);
        }
    }
    match result {
        Ok(frame) => Ok(Ok(frame)),
        Err(why) => {
            // Upstream retries exhausted: degrade this frame
            // in-band, keep the session. A resilient client turns
            // this into a flagged stale frame (PR 5 model).
            let reply = Response::Error {
                code: ERR_INTERNAL,
                message: why,
            };
            Ok(Err((
                write_response_v(stream, session_version, &reply)?,
                false,
            )))
        }
    }
}

/// One upstream frame fetch against the owning shard, through its pool.
/// The decoded frame is relabeled with its *global* step index: a sliced
/// shard only knows its local frame numbering, and the run-wide
/// convention (what a direct server of the unsliced data bakes into the
/// frame, and what the merged catalog advertises) is `step == global
/// index`.
fn fetch_upstream(
    shared: &RouterShared,
    shard: usize,
    local: u32,
    global: usize,
    threshold: f64,
) -> Result<Arc<HybridFrame>, String> {
    shared.metrics.add(CTR_ROUTER_UPSTREAM_FETCHES, 1);
    match shared.pools[shard].with(|c| c.fetch(local, threshold)) {
        Ok(((mut frame, _metrics), retries)) => {
            shared.metrics.add(CTR_ROUTER_UPSTREAM_RETRIES, retries);
            frame.step = global;
            Ok(Arc::new(frame))
        }
        Err(e) => {
            shared.metrics.add(CTR_ROUTER_UPSTREAM_ERRORS, 1);
            Err(format!(
                "shard {shard} failed serving its frame {local}: {e}"
            ))
        }
    }
}

/// Sums every reachable shard's `Stats` snapshot into one wire-shaped
/// total; a shard that cannot answer contributes zeros (and an
/// `router.upstream_errors` count) instead of failing the reply.
fn aggregate_stats(shared: &RouterShared) -> ServerStats {
    let mut total = ServerStats::default();
    for pool in &shared.pools {
        match pool.with(|c| c.stats()) {
            Ok((s, retries)) => {
                shared.metrics.add(CTR_ROUTER_UPSTREAM_RETRIES, retries);
                total.requests += s.requests;
                total.frames_served += s.frames_served;
                total.bytes_sent += s.bytes_sent;
                total.cache_hits += s.cache_hits;
                total.cache_misses += s.cache_misses;
                total.frame_bytes_raw += s.frame_bytes_raw;
                total.frame_bytes_wire += s.frame_bytes_wire;
                for (t, c) in total.latency.counts.iter_mut().zip(s.latency.counts.iter()) {
                    *t += c;
                }
            }
            Err(_) => {
                shared.metrics.add(CTR_ROUTER_UPSTREAM_ERRORS, 1);
            }
        }
    }
    total
}

/// A whole sharded deployment in one handle: N loopback shard servers,
/// each owning its rendezvous slice of the catalog, fronted by a
/// [`FrameRouter`] — the test, example, and single-host topology. For a
/// distributed deployment, spawn [`FrameServer`]s where the data lives
/// and wire a [`FrameRouter::spawn`] to their addresses instead.
///
/// ```
/// use accelviz_beam::distribution::Distribution;
/// use accelviz_octree::builder::{partition, BuildParams};
/// use accelviz_octree::plots::PlotType;
/// use accelviz_serve::{Client, RouterConfig, ServerConfig, ShardedFrameService};
///
/// let data: Vec<_> = (0..3u64)
///     .map(|i| {
///         let ps = Distribution::default_beam().sample(300, i + 1);
///         partition(&ps, PlotType::XYZ, BuildParams::default())
///     })
///     .collect();
/// let service = ShardedFrameService::spawn_loopback(
///     data,
///     2,
///     ServerConfig::default(),
///     RouterConfig::default(),
/// )
/// .unwrap();
/// assert_eq!(service.shard_count(), 2);
///
/// let mut client = Client::connect(service.addr()).unwrap();
/// let catalog = client.list_frames().unwrap();
/// assert_eq!(catalog.len(), 3);
/// let (frame, _) = client.fetch(2, f64::INFINITY).unwrap();
/// assert_eq!(frame.step, 2);
///
/// drop(client);
/// service.shutdown();
/// ```
pub struct ShardedFrameService {
    shards: Vec<FrameServer>,
    router: FrameRouter,
}

impl ShardedFrameService {
    /// Spawns `shards` loopback shard servers over `data` sliced by
    /// rendezvous ownership ([`ShardMap::sliced`]) plus the fronting
    /// router. Rejects an empty shard set with `InvalidInput`.
    pub fn spawn_loopback(
        data: Vec<PartitionedData>,
        shards: usize,
        shard_config: ServerConfig,
        router_config: RouterConfig,
    ) -> io::Result<ShardedFrameService> {
        if shards == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a sharded service needs at least one shard",
            ));
        }
        let spec = ShardSpec::new(shards);
        let map = ShardMap::sliced(&spec, data.len());
        let mut slices: Vec<Vec<PartitionedData>> = (0..shards).map(|_| Vec::new()).collect();
        for (g, d) in data.into_iter().enumerate() {
            slices[spec.owner_of(g as u32)].push(d);
        }
        let servers = slices
            .into_iter()
            .map(|slice| FrameServer::spawn_loopback(slice, shard_config))
            .collect::<io::Result<Vec<_>>>()?;
        Self::front(servers, map, router_config)
    }

    /// Spawns `shards` loopback shard servers that all read the same
    /// out-of-core `run` (ownership is logical, [`ShardMap::shared`]),
    /// plus the fronting router. Rejects an empty shard set.
    pub fn spawn_stored_loopback(
        run: Arc<ResidentRun>,
        shards: usize,
        shard_config: ServerConfig,
        router_config: RouterConfig,
    ) -> io::Result<ShardedFrameService> {
        if shards == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a sharded service needs at least one shard",
            ));
        }
        let spec = ShardSpec::new(shards);
        let map = ShardMap::shared(&spec, run.frame_count());
        let servers = (0..shards)
            .map(|_| FrameServer::spawn_stored_loopback(Arc::clone(&run), shard_config))
            .collect::<io::Result<Vec<_>>>()?;
        Self::front(servers, map, router_config)
    }

    fn front(
        servers: Vec<FrameServer>,
        map: ShardMap,
        router_config: RouterConfig,
    ) -> io::Result<ShardedFrameService> {
        let addrs = servers.iter().map(|s| s.addr()).collect();
        let router = FrameRouter::spawn("127.0.0.1:0", addrs, map, router_config)?;
        Ok(ShardedFrameService {
            shards: servers,
            router,
        })
    }

    /// The router address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.router.addr()
    }

    /// Shard servers behind the router.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard `i`'s server handle (its private address, metrics, stats).
    pub fn shard(&self, i: usize) -> &FrameServer {
        &self.shards[i]
    }

    /// The fronting router (its `router.*` metrics, the failover hook).
    pub fn router(&self) -> &FrameRouter {
        &self.router
    }

    /// Sum of every shard's local stats — the same totals a client reads
    /// with a `Stats` request through the router.
    pub fn stats(&self) -> ServerStats {
        let mut total = ServerStats::default();
        for shard in &self.shards {
            let s = shard.stats();
            total.requests += s.requests;
            total.frames_served += s.frames_served;
            total.bytes_sent += s.bytes_sent;
            total.cache_hits += s.cache_hits;
            total.cache_misses += s.cache_misses;
            total.frame_bytes_raw += s.frame_bytes_raw;
            total.frame_bytes_wire += s.frame_bytes_wire;
            for (t, c) in total.latency.counts.iter_mut().zip(s.latency.counts.iter()) {
                *t += c;
            }
        }
        total
    }

    /// Stops the router first (so no request races a dying shard), then
    /// every shard.
    pub fn shutdown(self) {
        let ShardedFrameService { shards, router } = self;
        router.shutdown();
        for shard in shards {
            shard.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_beam::distribution::Distribution;
    use accelviz_octree::builder::{partition, BuildParams};
    use accelviz_octree::plots::PlotType;

    fn tiny_frame(step: usize) -> Arc<HybridFrame> {
        let ps = Distribution::default_beam().sample(100, step as u64 + 1);
        let data = partition(&ps, PlotType::XYZ, BuildParams::default());
        Arc::new(HybridFrame::from_partition(
            &data,
            step,
            f64::INFINITY,
            [2, 2, 2],
        ))
    }

    #[test]
    fn sliced_map_ranks_local_indices_per_shard() {
        let spec = ShardSpec::new(3);
        let map = ShardMap::sliced(&spec, 50);
        let mut seen = [0u32; 3];
        for g in 0..50u32 {
            let (shard, local) = map.locate(g).unwrap();
            assert_eq!(shard, spec.owner_of(g));
            assert_eq!(local, seen[shard], "locals are dense and ascending");
            seen[shard] += 1;
        }
        let total: u32 = seen.iter().sum();
        assert_eq!(total, 50);
        for (s, &count) in seen.iter().enumerate() {
            assert_eq!(map.frames_owned_by(s).len(), count as usize);
        }
    }

    #[test]
    fn shared_map_uses_global_indices_locally() {
        let map = ShardMap::shared(&ShardSpec::new(2), 10);
        for g in 0..10u32 {
            let (_, local) = map.locate(g).unwrap();
            assert_eq!(local, g);
        }
        assert!(map.locate(10).is_none());
    }

    #[test]
    fn fetch_cache_coalesces_and_shares_failures_without_caching_them() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Barrier;

        let cache = Arc::new(FetchCache::new(1 << 20));
        let key = CacheKey::new(0, 1.0);
        let calls = Arc::new(AtomicU64::new(0));
        let gate = Arc::new(Barrier::new(2));

        // First wave: the fetch fails; a waiter that arrives mid-fetch
        // shares the failure.
        let waiter = {
            let (cache, gate) = (Arc::clone(&cache), Arc::clone(&gate));
            std::thread::spawn(move || {
                gate.wait(); // fetcher is inside its fetch
                cache
                    .get_or_fetch(key, || panic!("waiter must coalesce, not fetch"))
                    .0
            })
        };
        let (first, _) = cache.get_or_fetch(key, || {
            calls.fetch_add(1, Ordering::SeqCst);
            gate.wait();
            // Give the waiter time to register on the pending slot.
            std::thread::sleep(Duration::from_millis(50));
            Err("shard down".to_string())
        });
        assert_eq!(first.unwrap_err(), "shard down");
        assert_eq!(waiter.join().unwrap().unwrap_err(), "shard down");

        // The failure was not cached: the next call fetches again and a
        // success is then served from cache.
        let frame = tiny_frame(0);
        let served = Arc::clone(&frame);
        let fetch_calls = Arc::clone(&calls);
        let (second, _) = cache.get_or_fetch(key, move || {
            fetch_calls.fetch_add(1, Ordering::SeqCst);
            Ok(served)
        });
        assert!(Arc::ptr_eq(&second.unwrap(), &frame));
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        let (third, _) = cache.get_or_fetch(key, || panic!("cached now"));
        assert!(Arc::ptr_eq(&third.unwrap(), &frame));
    }

    #[test]
    fn fetch_cache_evicts_lru_by_bytes() {
        // A budget of exactly two frames: the third insert must evict
        // the least recently used resident frame.
        let frame_bytes = tiny_frame(0).total_bytes();
        let cache = FetchCache::new(2 * frame_bytes);
        let keys: Vec<CacheKey> = (0..3).map(|f| CacheKey::new(f, 1.0)).collect();
        for (i, &k) in keys[..2].iter().enumerate() {
            let (r, _) = cache.get_or_fetch(k, || Ok(tiny_frame(i)));
            r.unwrap();
        }
        // Touch key 0 so key 1 is the LRU victim.
        cache
            .get_or_fetch(keys[0], || panic!("resident"))
            .0
            .unwrap();
        cache.get_or_fetch(keys[2], || Ok(tiny_frame(2))).0.unwrap();
        cache
            .get_or_fetch(keys[0], || panic!("survived"))
            .0
            .unwrap();
        let mut refetched = false;
        cache
            .get_or_fetch(keys[1], || {
                refetched = true;
                Ok(tiny_frame(1))
            })
            .0
            .unwrap();
        assert!(refetched, "key 1 was the LRU victim");
    }

    #[test]
    fn fetch_cache_admits_frames_larger_than_the_whole_budget() {
        let cache = FetchCache::new(1);
        let key = CacheKey::new(0, 1.0);
        let frame = tiny_frame(0);
        let served = Arc::clone(&frame);
        let (r, _) = cache.get_or_fetch(key, move || Ok(served));
        assert!(Arc::ptr_eq(&r.unwrap(), &frame));
        // Still resident: the just-inserted frame is never its own
        // eviction victim, so its coalesced waiters are served.
        let (again, _) = cache.get_or_fetch(key, || panic!("resident"));
        assert!(Arc::ptr_eq(&again.unwrap(), &frame));
        // The next distinct insert evicts it.
        cache
            .get_or_fetch(CacheKey::new(1, 1.0), || Ok(tiny_frame(1)))
            .0
            .unwrap();
        let mut refetched = false;
        cache
            .get_or_fetch(key, || {
                refetched = true;
                Ok(tiny_frame(0))
            })
            .0
            .unwrap();
        assert!(refetched, "the oversized frame was the next victim");
    }
}
