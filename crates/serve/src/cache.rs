//! The server's shared extraction cache.
//!
//! Extraction is the expensive part of serving a frame request: walking
//! the density-sorted store and binning the volume. Clients stepping
//! through the same animation ask for the same `(frame, threshold)` pairs
//! over and over, so the server keeps the most recent extractions keyed
//! exactly that way.
//!
//! The cache holds one coarse `parking_lot::Mutex` across the *build* of
//! a missing entry. That is deliberate: when several clients request the
//! same cold `(frame, threshold)` at once, the first runs the extraction
//! and the rest block until it lands, then hit — identical concurrent
//! work is coalesced instead of duplicated. Distinct keys do serialize
//! behind a build; for the paper's workload (extractions of a few ms,
//! interactive request rates) that trade is the right one.

use accelviz_core::hybrid::HybridFrame;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: frame index plus the exact threshold bits. Using `to_bits`
/// sidesteps float equality — a client re-requesting the same dialed
/// threshold hits; any different dial is a different extraction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Frame index.
    pub frame: u32,
    /// `f64::to_bits` of the extraction threshold.
    pub threshold_bits: u64,
}

impl CacheKey {
    /// Key for `frame` extracted at `threshold`.
    pub fn new(frame: u32, threshold: f64) -> CacheKey {
        CacheKey {
            frame,
            threshold_bits: threshold.to_bits(),
        }
    }
}

struct Inner {
    capacity: usize,
    /// LRU order, front = oldest.
    order: Vec<CacheKey>,
    entries: HashMap<CacheKey, Arc<HybridFrame>>,
    hits: u64,
    misses: u64,
}

/// An LRU cache of extracted frames shared by all connection threads.
pub struct ExtractionCache {
    inner: Mutex<Inner>,
}

impl ExtractionCache {
    /// A cache holding at most `capacity` extractions.
    pub fn new(capacity: usize) -> ExtractionCache {
        assert!(capacity > 0, "cache needs at least one slot");
        ExtractionCache {
            inner: Mutex::new(Inner {
                capacity,
                order: Vec::new(),
                entries: HashMap::new(),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Returns the cached frame for `key`, building it with `build` on a
    /// miss. The returned flag is `true` on a hit. Concurrent calls with
    /// the same cold key run `build` once: the lock is held across it.
    pub fn get_or_build(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> HybridFrame,
    ) -> (Arc<HybridFrame>, bool) {
        let mut g = self.inner.lock();
        if let Some(frame) = g.entries.get(&key).cloned() {
            let pos = g.order.iter().position(|k| *k == key).unwrap();
            let k = g.order.remove(pos);
            g.order.push(k);
            g.hits += 1;
            return (frame, true);
        }
        g.misses += 1;
        let frame = Arc::new(build());
        while g.order.len() >= g.capacity {
            let victim = g.order.remove(0);
            g.entries.remove(&victim);
        }
        g.order.push(key);
        g.entries.insert(key, Arc::clone(&frame));
        (frame, false)
    }

    /// (hits, misses) so far.
    pub fn counters(&self) -> (u64, u64) {
        let g = self.inner.lock();
        (g.hits, g.misses)
    }

    /// Extractions currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_beam::distribution::Distribution;
    use accelviz_octree::builder::{partition, BuildParams};
    use accelviz_octree::plots::PlotType;

    fn frame(step: usize) -> HybridFrame {
        let ps = Distribution::default_beam().sample(500, step as u64 + 1);
        let data = partition(&ps, PlotType::XYZ, BuildParams::default());
        HybridFrame::from_partition(&data, step, f64::INFINITY, [4, 4, 4])
    }

    #[test]
    fn second_request_hits_and_shares_the_arc() {
        let cache = ExtractionCache::new(4);
        let key = CacheKey::new(0, 0.5);
        let (a, hit_a) = cache.get_or_build(key, || frame(0));
        let (b, hit_b) = cache.get_or_build(key, || panic!("must not rebuild"));
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.counters(), (1, 1));
    }

    #[test]
    fn distinct_thresholds_are_distinct_entries() {
        let cache = ExtractionCache::new(4);
        cache.get_or_build(CacheKey::new(0, 0.25), || frame(0));
        let (_, hit) = cache.get_or_build(CacheKey::new(0, 0.5), || frame(0));
        assert!(!hit, "a different threshold is a different extraction");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_evicts_the_oldest_untouched_key() {
        let cache = ExtractionCache::new(2);
        let (k0, k1, k2) = (
            CacheKey::new(0, 1.0),
            CacheKey::new(1, 1.0),
            CacheKey::new(2, 1.0),
        );
        cache.get_or_build(k0, || frame(0));
        cache.get_or_build(k1, || frame(1));
        cache.get_or_build(k0, || panic!("k0 is resident")); // touch k0
        cache.get_or_build(k2, || frame(2)); // evicts k1
        assert!(cache.get_or_build(k0, || panic!("k0 survived")).1);
        let (_, hit) = cache.get_or_build(k1, || frame(1));
        assert!(!hit, "k1 was the LRU victim");
    }
}
