//! The server's shared extraction cache.
//!
//! Extraction is the expensive part of serving a frame request: walking
//! the density-sorted store and binning the volume. Clients stepping
//! through the same animation ask for the same `(frame, threshold)` pairs
//! over and over, so the server keeps the most recent extractions keyed
//! exactly that way.
//!
//! Concurrency: the map lock is held only for bookkeeping, never across a
//! build. A cold key is marked *building* and its extraction runs outside
//! the lock, so distinct cold keys extract concurrently on their own
//! connection threads; concurrent requests for the *same* cold key still
//! coalesce — later arrivals block on that key's condition variable and
//! count as hits when the first build lands. (The previous design held
//! one coarse mutex across the build, serializing unrelated extractions.)

use crate::lru::LruOrder;
use accelviz_core::hybrid::HybridFrame;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Cache key: frame index plus the exact threshold bits. Using `to_bits`
/// sidesteps float equality — a client re-requesting the same dialed
/// threshold hits; any different dial is a different extraction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Frame index.
    pub frame: u32,
    /// `f64::to_bits` of the extraction threshold.
    pub threshold_bits: u64,
}

impl CacheKey {
    /// Key for `frame` extracted at `threshold`. `-0.0` is normalized to
    /// `0.0`: the two compare equal everywhere in extraction, so they
    /// must not occupy two cache slots for the same result.
    pub fn new(frame: u32, threshold: f64) -> CacheKey {
        let threshold = if threshold == 0.0 { 0.0 } else { threshold };
        CacheKey {
            frame,
            threshold_bits: threshold.to_bits(),
        }
    }
}

/// In-flight build of one key. Waiters block on `cv` until `done` holds
/// the outcome; `Err(())` means the builder panicked and the key is free
/// to rebuild.
struct Pending {
    done: StdMutex<Option<Result<Arc<HybridFrame>, ()>>>,
    cv: Condvar,
}

enum Entry {
    Ready(Arc<HybridFrame>),
    Building(Arc<Pending>),
}

struct Inner {
    capacity: usize,
    /// LRU order over *ready* keys. Building keys are not listed and
    /// therefore cannot be evicted mid-build.
    order: LruOrder<CacheKey>,
    entries: HashMap<CacheKey, Entry>,
    hits: u64,
    misses: u64,
}

/// What [`ExtractionCache::probe`] found for a key — enough for the
/// server's load-shedder to decide whether admitting a request would
/// start a *new* extraction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Probe {
    /// The extraction is cached; serving it is cheap.
    Ready,
    /// Another thread is building it right now; a request would coalesce.
    Building,
    /// Nothing cached or in flight; a request would start an extraction.
    Vacant,
}

/// An LRU cache of extracted frames shared by all connection threads.
pub struct ExtractionCache {
    inner: Mutex<Inner>,
}

impl ExtractionCache {
    /// A cache holding at most `capacity` extractions.
    pub fn new(capacity: usize) -> ExtractionCache {
        assert!(capacity > 0, "cache needs at least one slot");
        ExtractionCache {
            inner: Mutex::new(Inner {
                capacity,
                order: LruOrder::new(),
                entries: HashMap::new(),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Returns the cached frame for `key`, building it with `build` on a
    /// miss. The returned flag is `true` on a hit. Concurrent calls with
    /// the same cold key run `build` once (the rest wait for it and hit);
    /// calls with distinct cold keys build concurrently.
    pub fn get_or_build(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> HybridFrame,
    ) -> (Arc<HybridFrame>, bool) {
        let mut build = Some(build);
        loop {
            enum Found {
                Ready(Arc<HybridFrame>),
                Building(Arc<Pending>),
                Vacant,
            }
            let found = {
                let mut g = self.inner.lock();
                let found = match g.entries.get(&key) {
                    Some(Entry::Ready(frame)) => Found::Ready(Arc::clone(frame)),
                    Some(Entry::Building(p)) => Found::Building(Arc::clone(p)),
                    None => Found::Vacant,
                };
                match &found {
                    Found::Ready(_) => {
                        g.order.touch(key);
                        g.hits += 1;
                    }
                    // Coalesced into the in-flight build: a hit.
                    Found::Building(_) => g.hits += 1,
                    Found::Vacant => {
                        g.misses += 1;
                        let p = Arc::new(Pending {
                            done: StdMutex::new(None),
                            cv: Condvar::new(),
                        });
                        g.entries.insert(key, Entry::Building(Arc::clone(&p)));
                        drop(g);
                        return self.run_build(key, p, build.take().expect("build consumed once"));
                    }
                }
                found
            };
            let pending = match found {
                Found::Ready(frame) => return (frame, true),
                Found::Building(p) => p,
                Found::Vacant => unreachable!("vacant case returned above"),
            };
            // Wait outside every lock for the in-flight build.
            let mut d = pending.done.lock().unwrap_or_else(|e| e.into_inner());
            while d.is_none() {
                d = pending.cv.wait(d).unwrap_or_else(|e| e.into_inner());
            }
            match d.as_ref().expect("outcome present") {
                Ok(frame) => return (Arc::clone(frame), true),
                // The builder panicked; the key was vacated — retry (this
                // caller may become the new builder).
                Err(()) => continue,
            }
        }
    }

    /// Runs `build` for a key this thread just marked as building, then
    /// publishes the outcome to the map and to any coalesced waiters.
    fn run_build(
        &self,
        key: CacheKey,
        pending: Arc<Pending>,
        build: impl FnOnce() -> HybridFrame,
    ) -> (Arc<HybridFrame>, bool) {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(build)) {
            Ok(frame) => {
                let frame = Arc::new(frame);
                {
                    let mut g = self.inner.lock();
                    while g.order.len() >= g.capacity {
                        if let Some(victim) = g.order.pop_oldest() {
                            g.entries.remove(&victim);
                        }
                    }
                    g.order.touch(key);
                    g.entries.insert(key, Entry::Ready(Arc::clone(&frame)));
                }
                *pending.done.lock().unwrap_or_else(|e| e.into_inner()) =
                    Some(Ok(Arc::clone(&frame)));
                pending.cv.notify_all();
                (frame, false)
            }
            Err(payload) => {
                // Vacate the key and release the waiters so the cache is
                // not wedged by a failed extraction.
                self.inner.lock().entries.remove(&key);
                *pending.done.lock().unwrap_or_else(|e| e.into_inner()) = Some(Err(()));
                pending.cv.notify_all();
                std::panic::resume_unwind(payload)
            }
        }
    }

    /// A non-admitting peek at `key`: would a request hit, coalesce, or
    /// start a fresh extraction? Does not touch the LRU order or the
    /// hit/miss counters — the server's load-shedder calls this to
    /// decide whether to admit a request *before* committing to build.
    pub fn probe(&self, key: &CacheKey) -> Probe {
        match self.inner.lock().entries.get(key) {
            Some(Entry::Ready(_)) => Probe::Ready,
            Some(Entry::Building(_)) => Probe::Building,
            None => Probe::Vacant,
        }
    }

    /// (hits, misses) so far.
    pub fn counters(&self) -> (u64, u64) {
        let g = self.inner.lock();
        (g.hits, g.misses)
    }

    /// Extractions currently resident (including in-flight builds).
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_beam::distribution::Distribution;
    use accelviz_octree::builder::{partition, BuildParams};
    use accelviz_octree::plots::PlotType;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;
    use std::time::Duration;

    fn frame(step: usize) -> HybridFrame {
        let ps = Distribution::default_beam().sample(500, step as u64 + 1);
        let data = partition(&ps, PlotType::XYZ, BuildParams::default());
        HybridFrame::from_partition(&data, step, f64::INFINITY, [4, 4, 4])
    }

    #[test]
    fn second_request_hits_and_shares_the_arc() {
        let cache = ExtractionCache::new(4);
        let key = CacheKey::new(0, 0.5);
        let (a, hit_a) = cache.get_or_build(key, || frame(0));
        let (b, hit_b) = cache.get_or_build(key, || panic!("must not rebuild"));
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.counters(), (1, 1));
    }

    #[test]
    fn distinct_thresholds_are_distinct_entries() {
        let cache = ExtractionCache::new(4);
        cache.get_or_build(CacheKey::new(0, 0.25), || frame(0));
        let (_, hit) = cache.get_or_build(CacheKey::new(0, 0.5), || frame(0));
        assert!(!hit, "a different threshold is a different extraction");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn negative_zero_threshold_shares_the_positive_zero_slot() {
        assert_eq!(CacheKey::new(3, -0.0), CacheKey::new(3, 0.0));
        let cache = ExtractionCache::new(4);
        cache.get_or_build(CacheKey::new(0, 0.0), || frame(0));
        let (_, hit) = cache.get_or_build(CacheKey::new(0, -0.0), || panic!("same slot"));
        assert!(hit, "-0.0 and 0.0 request the same extraction");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_the_oldest_untouched_key() {
        let cache = ExtractionCache::new(2);
        let (k0, k1, k2) = (
            CacheKey::new(0, 1.0),
            CacheKey::new(1, 1.0),
            CacheKey::new(2, 1.0),
        );
        cache.get_or_build(k0, || frame(0));
        cache.get_or_build(k1, || frame(1));
        cache.get_or_build(k0, || panic!("k0 is resident")); // touch k0
        cache.get_or_build(k2, || frame(2)); // evicts k1
        assert!(cache.get_or_build(k0, || panic!("k0 survived")).1);
        let (_, hit) = cache.get_or_build(k1, || frame(1));
        assert!(!hit, "k1 was the LRU victim");
    }

    #[test]
    fn same_cold_key_builds_once_across_threads() {
        let cache = Arc::new(ExtractionCache::new(4));
        let builds = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(Barrier::new(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (cache, builds, barrier) = (
                Arc::clone(&cache),
                Arc::clone(&builds),
                Arc::clone(&barrier),
            );
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                cache.get_or_build(CacheKey::new(0, 0.5), || {
                    builds.fetch_add(1, Ordering::SeqCst);
                    // Long enough that the other threads arrive mid-build.
                    std::thread::sleep(Duration::from_millis(50));
                    frame(0)
                })
            }));
        }
        let results: Vec<(Arc<HybridFrame>, bool)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(builds.load(Ordering::SeqCst), 1, "build ran exactly once");
        assert_eq!(results.iter().filter(|(_, hit)| !hit).count(), 1);
        for (f, _) in &results[1..] {
            assert!(Arc::ptr_eq(&results[0].0, f), "all callers share one Arc");
        }
    }

    #[test]
    fn distinct_cold_keys_build_concurrently() {
        let cache = Arc::new(ExtractionCache::new(8));
        let barrier = Arc::new(Barrier::new(2));
        let in_build = Arc::new(Barrier::new(2));
        let mut handles = Vec::new();
        for i in 0..2u32 {
            let (cache, barrier, in_build) = (
                Arc::clone(&cache),
                Arc::clone(&barrier),
                Arc::clone(&in_build),
            );
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                cache.get_or_build(CacheKey::new(i, 1.0), || {
                    // Both builders must be inside their builds at the
                    // same time for this rendezvous to pass; under the
                    // old whole-build lock it would deadlock.
                    in_build.wait();
                    frame(i as usize)
                });
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.counters(), (0, 2));
    }

    #[test]
    fn probe_sees_all_three_states_without_admitting() {
        let cache = Arc::new(ExtractionCache::new(4));
        let key = CacheKey::new(0, 0.5);
        assert_eq!(cache.probe(&key), Probe::Vacant);

        let gate = Arc::new(Barrier::new(2));
        let builder = {
            let (cache, gate) = (Arc::clone(&cache), Arc::clone(&gate));
            std::thread::spawn(move || {
                cache.get_or_build(key, || {
                    gate.wait(); // probe happens while we are in here
                    gate.wait();
                    frame(0)
                })
            })
        };
        gate.wait();
        assert_eq!(cache.probe(&key), Probe::Building);
        gate.wait();
        builder.join().unwrap();
        assert_eq!(cache.probe(&key), Probe::Ready);
        // Probing never counted as a hit or a miss beyond the one build.
        assert_eq!(cache.counters(), (0, 1));
    }

    #[test]
    fn panicking_build_vacates_the_key_for_retry() {
        let cache = ExtractionCache::new(4);
        let key = CacheKey::new(0, 0.5);
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_build(key, || panic!("extraction failed"));
        }));
        assert!(poisoned.is_err());
        assert_eq!(cache.len(), 0, "failed build must not leave a residue");
        let (_, hit) = cache.get_or_build(key, || frame(0));
        assert!(!hit, "key is rebuildable after a failed build");
    }
}
