//! The request/response protocol spoken over envelopes.
//!
//! A connection is a strict request/reply loop: the client writes one
//! request envelope, the server answers with exactly one response
//! envelope. Request kinds live in `0x0_`, responses in `0x8_`; a server
//! that cannot satisfy a request answers in-band with [`Response::Error`]
//! rather than dropping the connection, so one malformed request does not
//! kill an interactive session.

use crate::error::{Result, ServeError};
use crate::stats::{LatencyHistogram, ServerStats, LATENCY_BUCKETS};
use crate::wire::{
    decode_frame, decode_frame_v2, encode_frame, encode_frame_v2, read_envelope, write_envelope,
    write_envelope_v, PayloadReader, PayloadWriter, V1, V2,
};
use accelviz_core::hybrid::HybridFrame;
use std::io::{Read, Write};

/// Request kind: protocol handshake.
pub const REQ_HELLO: u8 = 0x01;
/// Request kind: frame catalog listing.
pub const REQ_LIST: u8 = 0x02;
/// Request kind: one frame at one extraction threshold.
pub const REQ_FRAME: u8 = 0x03;
/// Request kind: server statistics snapshot.
pub const REQ_STATS: u8 = 0x04;
/// Request kind: one frame streamed progressively (coarse-to-fine). The
/// one request answered by *multiple* envelopes: a sequence of
/// [`RESP_FRAME_CHUNK`]s. Valid only on a v2 session — a v1 session gets
/// [`ERR_BAD_REQUEST`], so pre-LOD clients stay byte-identical.
pub const REQ_FRAME_PROGRESSIVE: u8 = 0x05;

/// Response kind: handshake acknowledgment.
pub const RESP_HELLO_ACK: u8 = 0x81;
/// Response kind: frame catalog.
pub const RESP_LIST: u8 = 0x82;
/// Response kind: an encoded hybrid frame.
pub const RESP_FRAME: u8 = 0x83;
/// Response kind: statistics snapshot.
pub const RESP_STATS: u8 = 0x84;
/// Response kind: structured error reply.
pub const RESP_ERROR: u8 = 0x85;
/// Response kind: one record of a progressive frame stream. The payload
/// is an `accelviz-store` progressive record (its own header + FNV
/// trailer) inside the envelope's checksummed framing — per-chunk
/// integrity at both layers. `total` inside the record says how many
/// chunks the stream holds.
pub const RESP_FRAME_CHUNK: u8 = 0x86;

/// Error code: the request could not be understood.
pub const ERR_BAD_REQUEST: u16 = 1;
/// Error code: the requested frame index does not exist.
pub const ERR_NO_SUCH_FRAME: u16 = 2;
/// Error code: the server failed internally.
pub const ERR_INTERNAL: u16 = 3;
/// Error code: the request carried a NaN extraction threshold. (±Inf are
/// valid dials: `+Inf` serves everything — it is the catalog's own
/// unlimited-budget sentinel — and `-Inf` serves an empty extraction.)
pub const ERR_BAD_THRESHOLD: u16 = 4;
/// Error code: the server is shedding load (connection cap or in-flight
/// extraction limit reached). The message carries a retry-after hint;
/// this is the one in-band error a client should retry with backoff.
pub const ERR_BUSY: u16 = 5;

/// One catalog entry in a [`Response::FrameList`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrameInfo {
    /// Frame index, the `frame` field of a [`Request::RequestFrame`].
    pub frame: u32,
    /// The simulation step the frame records.
    pub step: u64,
    /// Particles in the partitioned store behind this frame.
    pub particles: u64,
    /// The threshold the server suggests (its configured point budget).
    pub default_threshold: f64,
}

/// A client-to-server message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Request {
    /// Opens the session; carries the client's protocol version.
    Hello {
        /// The envelope version the client speaks.
        version: u16,
    },
    /// Asks for the frame catalog.
    ListFrames,
    /// Asks for frame `frame` extracted at `threshold`.
    RequestFrame {
        /// Frame index from the catalog.
        frame: u32,
        /// Absolute extraction threshold (leaf density).
        threshold: f64,
    },
    /// Asks for the server's statistics snapshot.
    Stats,
    /// Asks for frame `frame` at `threshold`, streamed coarse-to-fine as
    /// [`RESP_FRAME_CHUNK`] records of roughly `chunk_bytes` each.
    RequestFrameProgressive {
        /// Frame index from the catalog.
        frame: u32,
        /// Absolute extraction threshold (leaf density).
        threshold: f64,
        /// Requested refinement-chunk size in bytes; the server clamps
        /// it (and 0 means "server default", which honors
        /// `ACCELVIZ_LOD_BUDGET`).
        chunk_bytes: u64,
    },
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    HelloAck {
        /// The version the server will speak.
        version: u16,
        /// Frames available.
        frame_count: u32,
    },
    /// The frame catalog.
    FrameList(Vec<FrameInfo>),
    /// One hybrid frame.
    Frame(HybridFrame),
    /// Statistics snapshot.
    Stats(ServerStats),
    /// The request failed; the connection stays usable.
    Error {
        /// One of the `ERR_*` codes.
        code: u16,
        /// Human-readable cause.
        message: String,
    },
}

/// Writes one request; returns wire bytes written.
pub fn write_request<W: Write>(w: &mut W, req: &Request) -> Result<u64> {
    let mut p = PayloadWriter::new();
    let kind = match req {
        Request::Hello { version } => {
            p.put_u16(*version);
            REQ_HELLO
        }
        Request::ListFrames => REQ_LIST,
        Request::RequestFrame { frame, threshold } => {
            p.put_u32(*frame);
            p.put_f64(*threshold);
            REQ_FRAME
        }
        Request::Stats => REQ_STATS,
        Request::RequestFrameProgressive {
            frame,
            threshold,
            chunk_bytes,
        } => {
            p.put_u32(*frame);
            p.put_f64(*threshold);
            p.put_u64(*chunk_bytes);
            REQ_FRAME_PROGRESSIVE
        }
    };
    write_envelope(w, kind, &p.into_bytes())
}

/// Reads one request envelope and decodes it.
pub fn read_request<R: Read>(r: &mut R) -> Result<Request> {
    let env = read_envelope(r)?;
    let mut p = PayloadReader::new(&env.payload);
    let req = match env.kind {
        REQ_HELLO => Request::Hello { version: p.u16()? },
        REQ_LIST => Request::ListFrames,
        REQ_FRAME => Request::RequestFrame {
            frame: p.u32()?,
            threshold: p.f64()?,
        },
        REQ_STATS => Request::Stats,
        REQ_FRAME_PROGRESSIVE => Request::RequestFrameProgressive {
            frame: p.u32()?,
            threshold: p.f64()?,
            chunk_bytes: p.u64()?,
        },
        other => return Err(ServeError::UnknownKind(other)),
    };
    p.finish()?;
    Ok(req)
}

/// Writes one response at protocol version 1 — the shape every peer
/// understood before v2 existed.
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> Result<u64> {
    write_response_v(w, V1, resp)
}

/// Writes one response at the session's negotiated protocol version;
/// returns wire bytes written. At `V1` the bytes are identical to what
/// the pre-v2 server produced; at `V2` frame payloads are compressed and
/// the stats payload carries the raw/wire byte counters.
pub fn write_response_v<W: Write>(w: &mut W, version: u16, resp: &Response) -> Result<u64> {
    let mut p = PayloadWriter::new();
    let kind = match resp {
        Response::HelloAck {
            version: ack,
            frame_count,
        } => {
            p.put_u16(*ack);
            p.put_u32(*frame_count);
            RESP_HELLO_ACK
        }
        Response::FrameList(frames) => {
            p.put_u32(frames.len() as u32);
            for f in frames {
                p.put_u32(f.frame);
                p.put_u64(f.step);
                p.put_u64(f.particles);
                p.put_f64(f.default_threshold);
            }
            RESP_LIST
        }
        Response::Frame(frame) => {
            if version >= V2 {
                let (payload, _raw) = encode_frame_v2(frame);
                return write_envelope_v(w, V2, RESP_FRAME, &payload);
            }
            return write_envelope(w, RESP_FRAME, &encode_frame(frame));
        }
        Response::Stats(s) => {
            p.put_u64(s.requests);
            p.put_u64(s.frames_served);
            p.put_u64(s.bytes_sent);
            p.put_u64(s.cache_hits);
            p.put_u64(s.cache_misses);
            for &c in &s.latency.counts {
                p.put_u64(c);
            }
            if version >= V2 {
                p.put_u64(s.frame_bytes_raw);
                p.put_u64(s.frame_bytes_wire);
            }
            RESP_STATS
        }
        Response::Error { code, message } => {
            p.put_u16(*code);
            p.put_str(message);
            RESP_ERROR
        }
    };
    write_envelope_v(w, version, kind, &p.into_bytes())
}

/// Reads one response envelope and decodes it. An in-band
/// [`Response::Error`] is returned as `Ok` — deciding whether that is
/// fatal belongs to the caller.
pub fn read_response<R: Read>(r: &mut R) -> Result<(Response, u64)> {
    let env = read_envelope(r)?;
    let wire_bytes = env.wire_bytes();
    let mut p = PayloadReader::new(&env.payload);
    let resp = match env.kind {
        RESP_HELLO_ACK => Response::HelloAck {
            version: p.u16()?,
            frame_count: p.u32()?,
        },
        RESP_LIST => {
            let n = p.u32()? as usize;
            let mut frames = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                frames.push(FrameInfo {
                    frame: p.u32()?,
                    step: p.u64()?,
                    particles: p.u64()?,
                    default_threshold: p.f64()?,
                });
            }
            Response::FrameList(frames)
        }
        RESP_FRAME => {
            // The envelope's version says how the payload was encoded.
            let frame = if env.version >= V2 {
                decode_frame_v2(&env.payload)?
            } else {
                decode_frame(&env.payload)?
            };
            return Ok((Response::Frame(frame), wire_bytes));
        }
        RESP_STATS => {
            let mut s = ServerStats {
                requests: p.u64()?,
                frames_served: p.u64()?,
                bytes_sent: p.u64()?,
                cache_hits: p.u64()?,
                cache_misses: p.u64()?,
                latency: LatencyHistogram::default(),
                frame_bytes_raw: 0,
                frame_bytes_wire: 0,
            };
            for i in 0..LATENCY_BUCKETS {
                s.latency.counts[i] = p.u64()?;
            }
            if env.version >= V2 {
                s.frame_bytes_raw = p.u64()?;
                s.frame_bytes_wire = p.u64()?;
            }
            Response::Stats(s)
        }
        RESP_ERROR => Response::Error {
            code: p.u16()?,
            message: p.str()?,
        },
        other => return Err(ServeError::UnknownKind(other)),
    };
    p.finish()?;
    Ok((resp, wire_bytes))
}

/// One streamed reply to a [`Request::RequestFrameProgressive`]: either
/// the next record of the stream or the terminal in-band error (a server
/// that answers with an error sends nothing further for that request).
#[derive(Clone, Debug, PartialEq)]
pub enum ChunkReply {
    /// The next record's encoded bytes (feed to a progressive assembler).
    Chunk(Vec<u8>),
    /// The request failed; the connection stays usable.
    Error {
        /// One of the `ERR_*` codes.
        code: u16,
        /// Human-readable cause.
        message: String,
    },
}

/// Writes one progressive chunk envelope (always framed at v2 — chunks
/// only exist on v2 sessions); returns wire bytes written.
pub fn write_chunk<W: Write>(w: &mut W, record: &[u8]) -> Result<u64> {
    write_envelope_v(w, V2, RESP_FRAME_CHUNK, record)
}

/// Reads one reply envelope of a progressive stream; returns the reply
/// and its wire bytes. Any kind other than a chunk or an in-band error
/// means the stream lost framing and is a structured failure.
pub fn read_chunk_reply<R: Read>(r: &mut R) -> Result<(ChunkReply, u64)> {
    let env = read_envelope(r)?;
    let wire_bytes = env.wire_bytes();
    match env.kind {
        RESP_FRAME_CHUNK => Ok((ChunkReply::Chunk(env.payload), wire_bytes)),
        RESP_ERROR => {
            let mut p = PayloadReader::new(&env.payload);
            let reply = ChunkReply::Error {
                code: p.u16()?,
                message: p.str()?,
            };
            p.finish()?;
            Ok((reply, wire_bytes))
        }
        other => Err(ServeError::UnknownKind(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) -> Request {
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        read_request(&mut buf.as_slice()).unwrap()
    }

    fn roundtrip_response(resp: &Response) -> Response {
        let mut buf = Vec::new();
        write_response(&mut buf, resp).unwrap();
        read_response(&mut buf.as_slice()).unwrap().0
    }

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::Hello { version: 1 },
            Request::ListFrames,
            Request::RequestFrame {
                frame: 7,
                threshold: 0.125,
            },
            Request::Stats,
            Request::RequestFrameProgressive {
                frame: 3,
                threshold: 1.5e6,
                chunk_bytes: 65_536,
            },
        ] {
            assert_eq!(roundtrip_request(req), req);
        }
    }

    #[test]
    fn chunk_replies_roundtrip_and_reject_foreign_kinds() {
        let mut buf = Vec::new();
        write_chunk(&mut buf, b"record bytes").unwrap();
        let (reply, wire) = read_chunk_reply(&mut buf.as_slice()).unwrap();
        assert_eq!(reply, ChunkReply::Chunk(b"record bytes".to_vec()));
        assert_eq!(wire as usize, buf.len());

        // An in-band error terminates the stream but stays structured.
        let mut buf = Vec::new();
        write_response(
            &mut buf,
            &Response::Error {
                code: ERR_BUSY,
                message: "retry".into(),
            },
        )
        .unwrap();
        match read_chunk_reply(&mut buf.as_slice()).unwrap().0 {
            ChunkReply::Error { code, .. } => assert_eq!(code, ERR_BUSY),
            other => panic!("expected Error, got {other:?}"),
        }

        // A whole-frame reply in a progressive stream is lost framing.
        let mut buf = Vec::new();
        write_response(
            &mut buf,
            &Response::HelloAck {
                version: 1,
                frame_count: 0,
            },
        )
        .unwrap();
        assert!(matches!(
            read_chunk_reply(&mut buf.as_slice()),
            Err(ServeError::UnknownKind(RESP_HELLO_ACK))
        ));
    }

    #[test]
    fn responses_roundtrip() {
        let list = Response::FrameList(vec![
            FrameInfo {
                frame: 0,
                step: 10,
                particles: 5_000,
                default_threshold: 0.5,
            },
            FrameInfo {
                frame: 1,
                step: 20,
                particles: 5_000,
                default_threshold: 0.25,
            },
        ]);
        let mut stats = ServerStats {
            requests: 9,
            frames_served: 4,
            bytes_sent: 123_456,
            cache_hits: 2,
            cache_misses: 2,
            latency: LatencyHistogram::default(),
            // A v1 stats payload has no slots for the byte counters, so a
            // roundtrip through it can only preserve zeros; the v2 test
            // below carries real values.
            frame_bytes_raw: 0,
            frame_bytes_wire: 0,
        };
        stats.latency.record(0.002);
        for resp in [
            Response::HelloAck {
                version: 1,
                frame_count: 3,
            },
            list,
            Response::Stats(stats),
            Response::Error {
                code: ERR_NO_SUCH_FRAME,
                message: "frame 9 of 3".into(),
            },
        ] {
            assert_eq!(roundtrip_response(&resp), resp);
        }
    }

    #[test]
    fn v2_stats_carry_the_byte_counters_and_v1_drops_them() {
        let stats = ServerStats {
            requests: 3,
            frames_served: 3,
            frame_bytes_raw: 1_000_000,
            frame_bytes_wire: 250_000,
            ..ServerStats::default()
        };
        let mut buf = Vec::new();
        write_response_v(&mut buf, V2, &Response::Stats(stats.clone())).unwrap();
        match read_response(&mut buf.as_slice()).unwrap().0 {
            Response::Stats(back) => assert_eq!(back, stats),
            other => panic!("expected Stats, got {other:?}"),
        }

        // The same snapshot through a v1 session: byte-compatible shape,
        // counters legitimately absent on the wire.
        let mut buf = Vec::new();
        write_response(&mut buf, &Response::Stats(stats.clone())).unwrap();
        match read_response(&mut buf.as_slice()).unwrap().0 {
            Response::Stats(back) => {
                assert_eq!(back.frame_bytes_raw, 0);
                assert_eq!(back.frame_bytes_wire, 0);
                assert_eq!(back.requests, stats.requests);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn unknown_request_kind_is_structured() {
        let mut buf = Vec::new();
        crate::wire::write_envelope(&mut buf, 0x7f, b"").unwrap();
        match read_request(&mut buf.as_slice()) {
            Err(ServeError::UnknownKind(0x7f)) => {}
            other => panic!("expected UnknownKind, got {other:?}"),
        }
    }
}
