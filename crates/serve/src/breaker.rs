//! Per-shard circuit breakers for the router's upstream leg.
//!
//! Without a breaker, every request routed to a dead shard burns the
//! full upstream retry budget (seconds) before degrading — the
//! availability cliff the PR 5 model was meant to smooth over. A
//! breaker makes the *knowledge* that a shard is down cheap to reuse:
//! after `failure_threshold` consecutive upstream failures the shard's
//! breaker trips [`BreakerState::Open`] and subsequent requests
//! fast-fail in microseconds (skipping straight to the next replica, or
//! to the degraded path when no replica remains). After
//! `open_cooldown`, the first arrival is admitted as a single
//! [`Admission::Trial`] ([`BreakerState::HalfOpen`]); its success
//! closes the breaker, its failure re-opens it for another cooldown.
//! The background [`crate::health`] prober drives the same state
//! machine from its `Stats` pings, so a recovering shard is reinstated
//! even when no client traffic is probing it.
//!
//! The breaker is deliberately *pessimistic about consecutive failures
//! only*: one success resets the count, so a shard that answers most
//! requests but occasionally times out never trips. Every state
//! transition is surfaced as a [`Transition`] so the router can land it
//! on the `router.breaker_*` counters.

use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// When a shard's breaker trips and how long it stays tripped.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive upstream failures (requests or probes) that trip the
    /// breaker from Closed to Open. One success resets the count.
    pub failure_threshold: u32,
    /// How long an Open breaker fast-fails before admitting a single
    /// half-open trial. A failure while Open (from a request admitted
    /// before the trip) refreshes this window.
    pub open_cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_cooldown: Duration::from_millis(500),
        }
    }
}

/// The externally visible breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are being counted.
    Closed,
    /// Requests fast-fail without touching the shard.
    Open,
    /// One trial request is probing whether the shard recovered.
    HalfOpen,
}

/// What `admit` decided for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: proceed normally.
    Allow,
    /// Breaker half-open and this caller won the single trial slot; its
    /// `on_success`/`on_failure` report decides the next state.
    Trial,
    /// Breaker open (or a trial is already in flight): fail fast
    /// without spending the upstream retry budget.
    FastFail,
}

/// A state transition worth a counter increment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transition {
    /// Closed or HalfOpen → Open: the shard was ejected.
    Opened,
    /// Open → HalfOpen: the cooldown elapsed and a trial was admitted.
    HalfOpened,
    /// Open or HalfOpen → Closed: the shard was reinstated.
    Closed,
}

enum State {
    Closed { consecutive_failures: u32 },
    Open { until: Instant },
    HalfOpen { trial_started: Option<Instant> },
}

/// One shard's circuit breaker. Thread-safe; every method is a short
/// critical section, so `admit` on an open breaker costs microseconds —
/// that *is* the feature.
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: Mutex<State>,
}

impl CircuitBreaker {
    /// A closed breaker with the given trip thresholds.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: Mutex::new(State::Closed {
                consecutive_failures: 0,
            }),
        }
    }

    /// The current state, for gauges and tests.
    pub fn state(&self) -> BreakerState {
        match *self.state.lock() {
            State::Closed { .. } => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Decides whether one request may proceed. Open breakers past
    /// their cooldown admit exactly one [`Admission::Trial`]; a trial
    /// whose owner never reports back (e.g. an isolated panic) is
    /// abandoned after another cooldown so the breaker cannot wedge in
    /// HalfOpen forever.
    pub fn admit(&self) -> (Admission, Option<Transition>) {
        let now = Instant::now();
        let mut state = self.state.lock();
        match *state {
            State::Closed { .. } => (Admission::Allow, None),
            State::Open { until } if now >= until => {
                *state = State::HalfOpen {
                    trial_started: Some(now),
                };
                (Admission::Trial, Some(Transition::HalfOpened))
            }
            State::Open { .. } => (Admission::FastFail, None),
            State::HalfOpen { trial_started } => match trial_started {
                Some(started) if now.duration_since(started) <= self.config.open_cooldown => {
                    (Admission::FastFail, None)
                }
                // No trial in flight (or the previous one was abandoned):
                // this caller takes the slot.
                _ => {
                    *state = State::HalfOpen {
                        trial_started: Some(now),
                    };
                    (Admission::Trial, None)
                }
            },
        }
    }

    /// Reports a successful upstream operation (request or probe): the
    /// breaker closes from any state and the failure count resets.
    pub fn on_success(&self) -> Option<Transition> {
        let mut state = self.state.lock();
        let was_closed = matches!(*state, State::Closed { .. });
        *state = State::Closed {
            consecutive_failures: 0,
        };
        if was_closed {
            None
        } else {
            Some(Transition::Closed)
        }
    }

    /// Reports a failed upstream operation. Closed breakers count it
    /// (and trip at the threshold); a failed half-open trial re-opens;
    /// a failure reported while already Open (a request admitted before
    /// the trip) refreshes the cooldown window.
    pub fn on_failure(&self) -> Option<Transition> {
        let now = Instant::now();
        let mut state = self.state.lock();
        match *state {
            State::Closed {
                consecutive_failures,
            } => {
                let failures = consecutive_failures + 1;
                if failures >= self.config.failure_threshold {
                    *state = State::Open {
                        until: now + self.config.open_cooldown,
                    };
                    Some(Transition::Opened)
                } else {
                    *state = State::Closed {
                        consecutive_failures: failures,
                    };
                    None
                }
            }
            State::HalfOpen { .. } => {
                *state = State::Open {
                    until: now + self.config.open_cooldown,
                };
                Some(Transition::Opened)
            }
            State::Open { .. } => {
                *state = State::Open {
                    until: now + self.config.open_cooldown,
                };
                None
            }
        }
    }

    /// Forces the breaker closed with a clean slate — the
    /// `set_shard_addr` operator override: a pool repointed at a
    /// replacement shard must not inherit the dead one's verdict.
    pub fn reset(&self) -> Option<Transition> {
        let mut state = self.state.lock();
        let was_closed = matches!(*state, State::Closed { .. });
        *state = State::Closed {
            consecutive_failures: 0,
        };
        if was_closed {
            None
        } else {
            Some(Transition::Closed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_cooldown: Duration::from_millis(30),
        }
    }

    #[test]
    fn trips_open_after_consecutive_failures_and_fast_fails() {
        let b = CircuitBreaker::new(fast());
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.on_failure(), None);
        assert_eq!(b.on_failure(), None);
        assert_eq!(b.on_failure(), Some(Transition::Opened));
        assert_eq!(b.state(), BreakerState::Open);
        let (admission, t) = b.admit();
        assert_eq!(admission, Admission::FastFail);
        assert_eq!(t, None);
    }

    #[test]
    fn one_success_resets_the_failure_count() {
        let b = CircuitBreaker::new(fast());
        b.on_failure();
        b.on_failure();
        assert_eq!(b.on_success(), None, "closed stays closed");
        // The count restarted: two more failures do not trip.
        b.on_failure();
        assert_eq!(b.on_failure(), None);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_admits_one_trial_then_success_closes() {
        let b = CircuitBreaker::new(fast());
        for _ in 0..3 {
            b.on_failure();
        }
        std::thread::sleep(Duration::from_millis(40));
        let (admission, t) = b.admit();
        assert_eq!(admission, Admission::Trial);
        assert_eq!(t, Some(Transition::HalfOpened));
        // A second arrival while the trial is in flight fast-fails.
        assert_eq!(b.admit().0, Admission::FastFail);
        assert_eq!(b.on_success(), Some(Transition::Closed));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit().0, Admission::Allow);
    }

    #[test]
    fn failed_trial_reopens_for_another_cooldown() {
        let b = CircuitBreaker::new(fast());
        for _ in 0..3 {
            b.on_failure();
        }
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(b.admit().0, Admission::Trial);
        assert_eq!(b.on_failure(), Some(Transition::Opened));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit().0, Admission::FastFail);
        // ...and the next cooldown admits a fresh trial.
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(b.admit().0, Admission::Trial);
    }

    #[test]
    fn abandoned_trial_is_reclaimed_after_a_cooldown() {
        let b = CircuitBreaker::new(fast());
        for _ in 0..3 {
            b.on_failure();
        }
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(b.admit().0, Admission::Trial);
        // The trial's owner vanishes without reporting. After another
        // cooldown the slot is reclaimed instead of wedging HalfOpen.
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(b.admit().0, Admission::Trial);
    }

    #[test]
    fn reset_closes_from_any_state() {
        let b = CircuitBreaker::new(fast());
        for _ in 0..3 {
            b.on_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.reset(), Some(Transition::Closed));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.reset(), None, "already closed");
        assert_eq!(b.admit().0, Admission::Allow);
    }

    #[test]
    fn open_failure_refreshes_the_cooldown() {
        let b = CircuitBreaker::new(fast());
        for _ in 0..3 {
            b.on_failure();
        }
        std::thread::sleep(Duration::from_millis(20));
        // A straggler admitted before the trip reports its failure now:
        // the cooldown restarts, so 20 ms later the breaker is still
        // fully open rather than half-open.
        assert_eq!(b.on_failure(), None);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(b.admit().0, Admission::FastFail);
    }
}
