//! Deterministic fault injection for the frame service.
//!
//! Real links stall, reset, and corrupt; a resilience layer that is only
//! exercised by luck is not tested at all. This module makes faults a
//! *scheduled, seeded input*: a [`FaultPlan`] lists exactly which byte
//! offset of the connection suffers which [`FaultKind`], a [`FaultScript`]
//! tracks the plan's progress across reconnects, and [`FaultyTransport`]
//! wraps any `Read + Write` stream and fires the scheduled faults as the
//! bytes flow. The same seed always produces the same plan, so a chaos
//! run that fails is a chaos run that reproduces.
//!
//! Production pays nothing: the wrapper only exists when a test or chaos
//! harness installs it (via [`crate::client::FaultyConnector`] or
//! [`crate::server::FrameServer::spawn_chaos`]); the ordinary client and
//! server speak over bare `TcpStream`s.
//!
//! Every injected fault is counted in the script's [`FaultStats`] and
//! mirrored to `fault.*` counters on the global
//! [`accelviz_trace`] registry, so a Chrome trace of a chaos run shows
//! what was injected next to how the pipeline coped.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Global-registry counter: injected read/write delays.
pub const CTR_FAULT_DELAYS: &str = "fault.delays";
/// Global-registry counter: injected mid-message disconnects.
pub const CTR_FAULT_DISCONNECTS: &str = "fault.disconnects";
/// Global-registry counter: injected truncations (peer-close mid-message).
pub const CTR_FAULT_TRUNCATIONS: &str = "fault.truncations";
/// Global-registry counter: injected single-bit corruptions.
pub const CTR_FAULT_BIT_FLIPS: &str = "fault.bit_flips";

/// What goes wrong when a fault fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The link stalls for the given duration before delivering the byte.
    Delay(Duration),
    /// The connection drops hard: the operation fails with
    /// `ConnectionReset` and every later operation on this transport
    /// fails the same way.
    Disconnect,
    /// The peer appears to close cleanly mid-message: reads return EOF
    /// from the scheduled offset on, writes fail with `BrokenPipe`.
    Truncate,
    /// The byte at the scheduled offset has one bit flipped (the wire
    /// checksum is expected to catch it downstream).
    FlipBit(u8),
}

/// Which half of the stream a fault applies to, counted in that
/// direction's cumulative bytes across the whole session (reconnects
/// continue the count — the plan describes the *link*, not one socket).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDirection {
    /// Bytes flowing into the wrapped side (`read`).
    Read,
    /// Bytes flowing out of the wrapped side (`write`).
    Write,
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug)]
pub struct FaultEvent {
    /// Stream half the fault applies to.
    pub direction: FaultDirection,
    /// Cumulative byte offset in that half at which the fault fires.
    pub at_byte: u64,
    /// What happens there.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults. Build one explicitly with
/// [`FaultPlan::new`] or generate a seeded chaos mix with
/// [`FaultPlan::chaos`].
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// SplitMix64 — the plan generator's only randomness, fully determined
/// by the seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan firing exactly `events` (sorted by offset per direction).
    pub fn new(mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| e.at_byte);
        FaultPlan { events }
    }

    /// A plan that injects nothing — the identity wrapper.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A seeded chaos mix of `faults >= 3` events spread over a link
    /// expected to carry about `byte_span` bytes in the faulted
    /// direction. The first three events are guaranteed to be one delay,
    /// one disconnect, and one truncation, placed in the first half of
    /// the span so a session that runs to completion provably survived
    /// all three; the rest are drawn uniformly from all four kinds. The
    /// same `(seed, faults, byte_span)` always yields the same plan.
    pub fn chaos(seed: u64, faults: usize, byte_span: u64) -> FaultPlan {
        assert!(
            faults >= 3,
            "a chaos plan needs room for all three mandatory faults"
        );
        let span = byte_span.max(64);
        let mut s = seed ^ 0xC4A0_5CA7_A5C4_0FEE;
        let mut events = Vec::with_capacity(faults);
        // Mandatory trio, early enough to certainly fire.
        let early = |s: &mut u64| span / 8 + splitmix64(s) % (span / 2 - span / 8).max(1);
        for kind in [
            FaultKind::Delay(Duration::from_millis(1 + splitmix64(&mut s) % 8)),
            FaultKind::Disconnect,
            FaultKind::Truncate,
        ] {
            events.push(FaultEvent {
                direction: FaultDirection::Read,
                at_byte: early(&mut s),
                kind,
            });
        }
        for _ in 3..faults {
            let kind = match splitmix64(&mut s) % 4 {
                0 => FaultKind::Delay(Duration::from_millis(1 + splitmix64(&mut s) % 8)),
                1 => FaultKind::Disconnect,
                2 => FaultKind::Truncate,
                _ => FaultKind::FlipBit((splitmix64(&mut s) % 8) as u8),
            };
            // Bit flips only corrupt the inbound half: a flipped *request*
            // byte is rejected server-side as ERR_BAD_REQUEST, which a
            // client correctly treats as its own fatal bug — the chaos
            // generator must only schedule faults resilience can heal.
            let direction =
                if matches!(kind, FaultKind::FlipBit(_)) || !splitmix64(&mut s).is_multiple_of(4) {
                    FaultDirection::Read
                } else {
                    FaultDirection::Write
                };
            events.push(FaultEvent {
                direction,
                at_byte: 16 + splitmix64(&mut s) % span,
                kind,
            });
        }
        FaultPlan::new(events)
    }

    /// The scheduled events, sorted by offset.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Turns the plan into a shareable runtime script (one per session;
    /// hand clones of the `Arc` to every transport the session opens).
    pub fn script(self) -> Arc<FaultScript> {
        Arc::new(FaultScript::new(self))
    }
}

/// How many faults of each kind have actually fired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Delays slept.
    pub delays: u64,
    /// Hard disconnects injected.
    pub disconnects: u64,
    /// Truncations injected.
    pub truncations: u64,
    /// Bits flipped.
    pub bit_flips: u64,
}

impl FaultStats {
    /// Total faults fired.
    pub fn total(&self) -> u64 {
        self.delays + self.disconnects + self.truncations + self.bit_flips
    }
}

struct Lane {
    queue: VecDeque<(u64, FaultKind)>,
    pos: u64,
}

struct ScriptState {
    read: Lane,
    write: Lane,
    stats: FaultStats,
}

/// The runtime state of a [`FaultPlan`]: per-direction event queues and
/// cumulative byte positions that survive reconnects, plus the fired-fault
/// statistics. Shared (`Arc`) between every [`FaultyTransport`] of one
/// session.
pub struct FaultScript {
    inner: Mutex<ScriptState>,
}

impl FaultScript {
    /// A fresh script at byte position zero in both directions.
    pub fn new(plan: FaultPlan) -> FaultScript {
        let lane = |dir: FaultDirection| Lane {
            queue: plan
                .events
                .iter()
                .filter(|e| e.direction == dir)
                .map(|e| (e.at_byte, e.kind))
                .collect(),
            pos: 0,
        };
        FaultScript {
            inner: Mutex::new(ScriptState {
                read: lane(FaultDirection::Read),
                write: lane(FaultDirection::Write),
                stats: FaultStats::default(),
            }),
        }
    }

    /// Faults fired so far.
    pub fn stats(&self) -> FaultStats {
        self.lock().stats
    }

    /// Scheduled faults that have not fired yet.
    pub fn remaining(&self) -> usize {
        let g = self.lock();
        g.read.queue.len() + g.write.queue.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ScriptState> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn count(stats: &mut FaultStats, kind: FaultKind) {
        let (field, ctr) = match kind {
            FaultKind::Delay(_) => (&mut stats.delays, CTR_FAULT_DELAYS),
            FaultKind::Disconnect => (&mut stats.disconnects, CTR_FAULT_DISCONNECTS),
            FaultKind::Truncate => (&mut stats.truncations, CTR_FAULT_TRUNCATIONS),
            FaultKind::FlipBit(_) => (&mut stats.bit_flips, CTR_FAULT_BIT_FLIPS),
        };
        *field += 1;
        accelviz_trace::global().add(ctr, 1);
    }
}

/// Why a transport stopped working after an injected fault.
#[derive(Clone, Copy, Debug)]
enum Poison {
    /// Hard reset: every later operation fails `ConnectionReset`.
    Reset,
    /// Clean peer close: reads return EOF, writes fail `BrokenPipe`.
    Closed,
}

/// A `Read + Write` wrapper that fires the faults its shared
/// [`FaultScript`] schedules. Wrap a `TcpStream` (or an in-memory pipe in
/// unit tests) and use it wherever the bare stream went.
pub struct FaultyTransport<S> {
    inner: S,
    script: Arc<FaultScript>,
    poison: Option<Poison>,
}

impl<S> FaultyTransport<S> {
    /// Wraps `inner`, drawing faults from `script`.
    pub fn new(inner: S, script: Arc<FaultScript>) -> FaultyTransport<S> {
        FaultyTransport {
            inner,
            script,
            poison: None,
        }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

fn reset_err() -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionReset,
        "injected fault: connection reset",
    )
}

fn broken_err() -> io::Error {
    io::Error::new(
        io::ErrorKind::BrokenPipe,
        "injected fault: peer closed the stream",
    )
}

impl<S: Read> Read for FaultyTransport<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.poison {
            Some(Poison::Reset) => return Err(reset_err()),
            Some(Poison::Closed) => return Ok(0),
            None => {}
        }
        // Faults already due at the current offset fire before we block
        // on the inner stream — a disconnect scheduled "now" must not
        // wait for the peer to send more data first.
        loop {
            let due = {
                let mut g = self.script.lock();
                match g.read.queue.front().copied() {
                    Some((at, kind))
                        if at <= g.read.pos && !matches!(kind, FaultKind::FlipBit(_)) =>
                    {
                        g.read.queue.pop_front();
                        let ScriptState { stats, .. } = &mut *g;
                        FaultScript::count(stats, kind);
                        Some(kind)
                    }
                    _ => None,
                }
            };
            match due {
                Some(FaultKind::Delay(d)) => std::thread::sleep(d),
                Some(FaultKind::Disconnect) => {
                    self.poison = Some(Poison::Reset);
                    return Err(reset_err());
                }
                Some(FaultKind::Truncate) => {
                    self.poison = Some(Poison::Closed);
                    return Ok(0);
                }
                Some(FaultKind::FlipBit(_)) => unreachable!("flips are applied post-read"),
                None => break,
            }
        }
        let n = self.inner.read(buf)?;
        if n == 0 {
            return Ok(0);
        }
        // Now fire everything scheduled inside the chunk we just read.
        let mut delay = Duration::ZERO;
        let mut keep = n;
        {
            let mut g = self.script.lock();
            let pos = g.read.pos;
            while let Some(&(at, kind)) = g.read.queue.front() {
                if at >= pos + keep as u64 {
                    break;
                }
                g.read.queue.pop_front();
                let ScriptState { stats, .. } = &mut *g;
                FaultScript::count(stats, kind);
                let idx = at.saturating_sub(pos) as usize;
                match kind {
                    FaultKind::Delay(d) => delay += d,
                    FaultKind::FlipBit(bit) => buf[idx.min(keep - 1)] ^= 1 << (bit % 8),
                    FaultKind::Disconnect => {
                        keep = idx;
                        self.poison = Some(Poison::Reset);
                        break;
                    }
                    FaultKind::Truncate => {
                        keep = idx;
                        self.poison = Some(Poison::Closed);
                        break;
                    }
                }
            }
            g.read.pos = pos + keep as u64;
        }
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        match (keep, self.poison) {
            (0, Some(Poison::Reset)) => Err(reset_err()),
            (0, Some(Poison::Closed)) => Ok(0),
            _ => Ok(keep),
        }
    }
}

impl<S: Write> Write for FaultyTransport<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.poison {
            Some(Poison::Reset) => return Err(reset_err()),
            Some(Poison::Closed) => return Err(broken_err()),
            None => {}
        }
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        // Decide what this call does while holding the lock, then touch
        // the inner stream outside it.
        enum Act {
            Pass(usize, Duration, Option<(usize, u8)>),
            Fail(Poison, Duration),
            PartialThen(usize, Poison, Duration),
        }
        let act = {
            let mut g = self.script.lock();
            let pos = g.write.pos;
            let mut delay = Duration::ZERO;
            let mut flip: Option<(usize, u8)> = None;
            let mut act = Act::Pass(buf.len(), Duration::ZERO, None);
            'events: while let Some(&(at, kind)) = g.write.queue.front() {
                if at >= pos + buf.len() as u64 {
                    break;
                }
                g.write.queue.pop_front();
                let ScriptState { stats, .. } = &mut *g;
                FaultScript::count(stats, kind);
                let idx = at.saturating_sub(pos) as usize;
                match kind {
                    FaultKind::Delay(d) => delay += d,
                    FaultKind::FlipBit(bit) => flip = Some((idx.min(buf.len() - 1), bit % 8)),
                    FaultKind::Disconnect => {
                        act = if idx == 0 {
                            Act::Fail(Poison::Reset, delay)
                        } else {
                            Act::PartialThen(idx, Poison::Reset, delay)
                        };
                        break 'events;
                    }
                    FaultKind::Truncate => {
                        act = if idx == 0 {
                            Act::Fail(Poison::Closed, delay)
                        } else {
                            Act::PartialThen(idx, Poison::Closed, delay)
                        };
                        break 'events;
                    }
                }
            }
            if let Act::Pass(n, d, f) = &mut act {
                *n = buf.len();
                *d = delay;
                *f = flip;
            }
            let written = match &act {
                Act::Pass(n, ..) | Act::PartialThen(n, ..) => *n as u64,
                Act::Fail(..) => 0,
            };
            g.write.pos = pos + written;
            act
        };
        match act {
            Act::Pass(n, delay, flip) => {
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                match flip {
                    Some((idx, bit)) => {
                        let mut corrupted = buf[..n].to_vec();
                        corrupted[idx] ^= 1 << bit;
                        self.inner.write_all(&corrupted)?;
                        Ok(n)
                    }
                    None => {
                        self.inner.write_all(&buf[..n])?;
                        Ok(n)
                    }
                }
            }
            Act::Fail(poison, delay) => {
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                self.poison = Some(poison);
                Err(match poison {
                    Poison::Reset => reset_err(),
                    Poison::Closed => broken_err(),
                })
            }
            Act::PartialThen(n, poison, delay) => {
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                self.inner.write_all(&buf[..n])?;
                self.poison = Some(poison);
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self.poison {
            Some(Poison::Reset) => Err(reset_err()),
            Some(Poison::Closed) => Err(broken_err()),
            None => self.inner.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn plan(events: Vec<FaultEvent>) -> Arc<FaultScript> {
        FaultPlan::new(events).script()
    }

    fn read_event(at_byte: u64, kind: FaultKind) -> FaultEvent {
        FaultEvent {
            direction: FaultDirection::Read,
            at_byte,
            kind,
        }
    }

    #[test]
    fn chaos_plans_are_deterministic_per_seed() {
        let a = FaultPlan::chaos(7, 10, 100_000);
        let b = FaultPlan::chaos(7, 10, 100_000);
        let c = FaultPlan::chaos(8, 10, 100_000);
        let key = |p: &FaultPlan| -> Vec<(u64, bool)> {
            p.events()
                .iter()
                .map(|e| (e.at_byte, e.direction == FaultDirection::Read))
                .collect()
        };
        assert_eq!(key(&a), key(&b));
        assert_ne!(key(&a), key(&c), "different seeds must differ");
        assert_eq!(a.events().len(), 10);
        // The mandatory trio is present and early.
        let kinds: Vec<_> = a.events().iter().map(|e| e.kind).collect();
        assert!(kinds.iter().any(|k| matches!(k, FaultKind::Delay(_))));
        assert!(kinds.contains(&FaultKind::Disconnect));
        assert!(kinds.contains(&FaultKind::Truncate));
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let data = vec![0u8; 16];
        let script = plan(vec![read_event(5, FaultKind::FlipBit(3))]);
        let mut t = FaultyTransport::new(Cursor::new(data), Arc::clone(&script));
        let mut out = [0u8; 16];
        let mut filled = 0;
        while filled < 16 {
            filled += t.read(&mut out[filled..]).unwrap();
        }
        assert_eq!(out[5], 1 << 3);
        assert!(out.iter().enumerate().all(|(i, &b)| i == 5 || b == 0));
        assert_eq!(script.stats().bit_flips, 1);
    }

    #[test]
    fn disconnect_cuts_the_stream_and_poisons_it() {
        let data = vec![7u8; 32];
        let script = plan(vec![read_event(10, FaultKind::Disconnect)]);
        let mut t = FaultyTransport::new(Cursor::new(data), Arc::clone(&script));
        let mut out = vec![0u8; 32];
        let n = t.read(&mut out).unwrap();
        assert_eq!(n, 10, "bytes before the fault still arrive");
        let err = t.read(&mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // Writes on the poisoned transport fail the same way.
        assert_eq!(
            t.write(b"x").unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        assert_eq!(script.stats().disconnects, 1);
    }

    #[test]
    fn truncation_is_a_clean_eof_mid_stream() {
        let data = vec![9u8; 32];
        let script = plan(vec![read_event(4, FaultKind::Truncate)]);
        let mut t = FaultyTransport::new(Cursor::new(data), Arc::clone(&script));
        let mut out = vec![0u8; 32];
        assert_eq!(t.read(&mut out).unwrap(), 4);
        assert_eq!(t.read(&mut out).unwrap(), 0, "EOF from the cut on");
        assert_eq!(t.read(&mut out).unwrap(), 0);
        assert_eq!(t.write(b"x").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(script.stats().truncations, 1);
    }

    #[test]
    fn delays_fire_once_and_data_is_untouched() {
        let data: Vec<u8> = (0..20).collect();
        let script = plan(vec![read_event(
            3,
            FaultKind::Delay(Duration::from_millis(5)),
        )]);
        let mut t = FaultyTransport::new(Cursor::new(data.clone()), Arc::clone(&script));
        let t0 = std::time::Instant::now();
        let mut out = vec![0u8; 20];
        let mut filled = 0;
        while filled < 20 {
            filled += t.read(&mut out[filled..]).unwrap();
        }
        assert!(t0.elapsed() >= Duration::from_millis(4));
        assert_eq!(out, data, "a delay never corrupts");
        assert_eq!(script.stats().delays, 1);
        assert_eq!(script.remaining(), 0);
    }

    #[test]
    fn write_faults_hit_the_outbound_half() {
        let script = plan(vec![FaultEvent {
            direction: FaultDirection::Write,
            at_byte: 6,
            kind: FaultKind::Disconnect,
        }]);
        let mut t = FaultyTransport::new(Cursor::new(Vec::new()), Arc::clone(&script));
        assert_eq!(t.write(&[1u8; 6]).unwrap(), 6);
        let err = t.write(&[2u8; 4]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(
            t.get_ref().get_ref().len(),
            6,
            "nothing past the fault leaks out"
        );
        assert_eq!(script.stats().disconnects, 1);
    }

    #[test]
    fn positions_continue_across_transports() {
        // The script describes the link; a reconnect (new transport, same
        // script) keeps counting where the old one stopped.
        let script = plan(vec![
            read_event(4, FaultKind::Disconnect),
            read_event(10, FaultKind::FlipBit(0)),
        ]);
        let mut a = FaultyTransport::new(Cursor::new(vec![0u8; 8]), Arc::clone(&script));
        let mut buf = [0u8; 8];
        assert_eq!(a.read(&mut buf).unwrap(), 4);
        assert!(a.read(&mut buf).is_err());
        // New transport: 4 bytes already consumed, flip lands at link
        // offset 10 = 6 bytes into this stream.
        let mut b = FaultyTransport::new(Cursor::new(vec![0u8; 12]), Arc::clone(&script));
        let mut out = [0u8; 12];
        let mut filled = 0;
        while filled < 12 {
            filled += b.read(&mut out[filled..]).unwrap();
        }
        assert_eq!(out[6], 1, "flip offset is link-cumulative");
        assert_eq!(script.stats().total(), 2);
    }
}
