//! Background shard health probing for the router.
//!
//! The circuit breakers in [`crate::breaker`] learn about shard death
//! from request traffic — but a shard with no live requests routed at
//! it (its frames all cached, or its breaker open) would otherwise
//! never be observed recovering. The crate-internal `Prober` closes
//! that loop: a
//! single background thread walks every shard on a seeded-jitter
//! interval and issues the cheapest genuine round trip the protocol has
//! — connect, `Hello`, `Stats` — with tight timeouts and no retries.
//! Each verdict is reported back to the router, which feeds the shard's
//! breaker: a successful ping closes an open breaker (reinstating the
//! shard with no operator in the loop), a failed ping counts toward
//! tripping it even before any client request pays the discovery cost.
//!
//! The interval is jittered deterministically per `probe_seed` so a
//! fleet of routers probing shared shards does not synchronize into a
//! probe storm — the same argument as the retry jitter in
//! [`crate::retry`], and just as replayable.

use crate::client::{Client, ClientConfig};
use crate::wire::VERSION;
use std::net::SocketAddr;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How the background prober paces and bounds its pings.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Base pause between probe rounds (each round pings every shard).
    /// `Duration::ZERO` disables probing entirely — breakers then learn
    /// only from request traffic and `set_shard_addr`.
    pub probe_interval: Duration,
    /// Fraction by which each round's pause is stretched, drawn
    /// deterministically from `probe_seed` — e.g. `0.2` spreads rounds
    /// over `[interval, 1.2 * interval)`.
    pub probe_jitter: f64,
    /// Connect/read/write bound on one ping; a dead-but-routable shard
    /// costs at most this long per round.
    pub probe_timeout: Duration,
    /// Seed for the jitter sequence.
    pub probe_seed: u64,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            probe_interval: Duration::from_millis(500),
            probe_jitter: 0.2,
            probe_timeout: Duration::from_secs(2),
            probe_seed: 0,
        }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl HealthConfig {
    /// The jittered pause before probe round `tick`: pure in
    /// `(probe_seed, tick)`, so a probing schedule is replayable.
    pub fn interval_for(&self, tick: u64) -> Duration {
        let bits = splitmix64(self.probe_seed ^ tick.wrapping_mul(0xA24B_AED4_963E_E407));
        let u = (bits >> 11) as f64 / (1u64 << 53) as f64;
        Duration::from_secs_f64(
            self.probe_interval.as_secs_f64() * (1.0 + self.probe_jitter.max(0.0) * u),
        )
    }
}

/// One liveness ping: connect, `Hello`, `Stats`, every leg bounded by
/// `timeout`, no retries — either the shard answers a genuine request
/// quickly or it is counted down. `Stats` is the cheapest request that
/// exercises the shard's full request/reply path without touching the
/// extraction cache or any frame payload.
pub fn probe(addr: SocketAddr, timeout: Duration) -> bool {
    let config = ClientConfig {
        connect_timeout: Some(timeout),
        read_timeout: Some(timeout),
        write_timeout: Some(timeout),
        retry: None,
        max_version: VERSION,
    };
    match Client::connect_with(addr, config) {
        Ok(mut client) => client.stats().is_ok(),
        Err(_) => false,
    }
}

/// Wakes the prober loop out of its inter-round sleep at shutdown.
struct StopFlag {
    stopped: Mutex<bool>,
    cv: Condvar,
}

/// The background probing thread: walks shards `0..shard_count` each
/// round, resolving the current address via `addr_of` (so
/// `set_shard_addr` repoints probing too) and reporting each verdict
/// through `on_verdict`. Owned by the router; join on drop is bounded
/// by one probe timeout plus one jittered interval.
pub(crate) struct Prober {
    handle: Option<JoinHandle<()>>,
    stop: Arc<StopFlag>,
}

impl Prober {
    /// Spawns the probe loop, or returns `None` when `probe_interval`
    /// is zero (probing disabled).
    pub(crate) fn spawn(
        config: HealthConfig,
        shard_count: usize,
        addr_of: impl Fn(usize) -> SocketAddr + Send + 'static,
        on_verdict: impl Fn(usize, bool) + Send + 'static,
    ) -> Option<Prober> {
        if config.probe_interval.is_zero() {
            return None;
        }
        let stop = Arc::new(StopFlag {
            stopped: Mutex::new(false),
            cv: Condvar::new(),
        });
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut tick = 0u64;
            loop {
                // Sleep first so a freshly spawned router (whose shards
                // were all reachable at spawn) does not pay a probe
                // round before serving its first request.
                let pause = config.interval_for(tick);
                tick = tick.wrapping_add(1);
                {
                    let guard = flag.stopped.lock().unwrap_or_else(|e| e.into_inner());
                    let (guard, _timeout) = flag
                        .cv
                        .wait_timeout_while(guard, pause, |stopped| !*stopped)
                        .unwrap_or_else(|e| e.into_inner());
                    if *guard {
                        return;
                    }
                }
                for shard in 0..shard_count {
                    if *flag.stopped.lock().unwrap_or_else(|e| e.into_inner()) {
                        return;
                    }
                    let ok = probe(addr_of(shard), config.probe_timeout);
                    on_verdict(shard, ok);
                }
            }
        });
        Some(Prober {
            handle: Some(handle),
            stop,
        })
    }

    /// Stops the loop and joins the thread.
    pub(crate) fn shutdown(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        *self.stop.stopped.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.stop.cv.notify_all();
        let _ = handle.join();
    }
}

impl Drop for Prober {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jittered_intervals_are_deterministic_and_bounded() {
        let config = HealthConfig {
            probe_interval: Duration::from_millis(100),
            probe_jitter: 0.5,
            probe_seed: 42,
            ..HealthConfig::default()
        };
        let again = config;
        let mut distinct = false;
        for tick in 0..64 {
            let d = config.interval_for(tick);
            assert_eq!(d, again.interval_for(tick), "pure in (seed, tick)");
            assert!(d >= Duration::from_millis(100));
            assert!(d < Duration::from_millis(150));
            if d != config.interval_for(0) {
                distinct = true;
            }
        }
        assert!(distinct, "jitter must actually vary across ticks");
        let other = HealthConfig {
            probe_seed: 43,
            ..config
        };
        assert_ne!(
            (0..8).map(|t| config.interval_for(t)).collect::<Vec<_>>(),
            (0..8).map(|t| other.interval_for(t)).collect::<Vec<_>>(),
            "different seeds must schedule differently"
        );
    }

    #[test]
    fn probe_distinguishes_live_from_dead() {
        use crate::server::{FrameServer, ServerConfig};
        let server = FrameServer::spawn_loopback(Vec::new(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        assert!(probe(addr, Duration::from_secs(2)), "live server answers");
        server.shutdown();
        assert!(
            !probe(addr, Duration::from_millis(500)),
            "dead server fails the ping"
        );
    }

    #[test]
    fn zero_interval_disables_the_prober() {
        let config = HealthConfig {
            probe_interval: Duration::ZERO,
            ..HealthConfig::default()
        };
        assert!(Prober::spawn(config, 1, |_| "127.0.0.1:1".parse().unwrap(), |_, _| {}).is_none());
    }

    #[test]
    fn prober_reports_verdicts_and_stops_cleanly() {
        use crate::server::{FrameServer, ServerConfig};
        let server = FrameServer::spawn_loopback(Vec::new(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        let verdicts = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&verdicts);
        let mut prober = Prober::spawn(
            HealthConfig {
                probe_interval: Duration::from_millis(10),
                probe_timeout: Duration::from_secs(2),
                ..HealthConfig::default()
            },
            1,
            move |_| addr,
            move |shard, ok| {
                assert_eq!(shard, 0);
                assert!(ok, "loopback server must answer the ping");
                seen.fetch_add(1, Ordering::SeqCst);
            },
        )
        .expect("interval is nonzero");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while verdicts.load(Ordering::SeqCst) < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            verdicts.load(Ordering::SeqCst) >= 2,
            "prober must keep probing"
        );
        prober.shutdown();
        let after = verdicts.load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            verdicts.load(Ordering::SeqCst),
            after,
            "a stopped prober must not probe again"
        );
        server.shutdown();
    }
}
