//! The versioned, checksummed binary wire format.
//!
//! Every message travels in one *envelope*:
//!
//! ```text
//! offset size  field
//! 0      4    magic "AVWF"
//! 4      2    protocol version, little-endian u16
//! 6      1    message kind (see `protocol`)
//! 7      1    reserved, must be 0
//! 8      8    payload length, little-endian u64
//! 16     n    payload
//! 16+n   8    FNV-1a 64 checksum over header + payload
//! ```
//!
//! All integers are little-endian, matching the on-disk formats in
//! `accelviz-octree::store_io` and `accelviz-beam::io`. Payload decoding
//! is strict: trailing bytes, overruns, and out-of-range enum codes are
//! [`ServeError::Corrupt`], never panics.

use crate::error::{Result, ServeError};
use accelviz_beam::particle::{Particle, PhaseCoord};
use accelviz_core::hybrid::HybridFrame;
use accelviz_math::{Aabb, Vec3};
use accelviz_octree::density::DensityGrid;
use accelviz_octree::plots::PlotType;
use accelviz_store::codec::{decode_f32s, decode_f64s, encode_f32s, encode_f64s};
use std::io::{Read, Write};

/// Envelope magic: "accelviz wire format".
pub const MAGIC: [u8; 4] = *b"AVWF";
/// Protocol version 1: every payload in its raw fixed-width encoding.
pub const V1: u16 = 1;
/// Protocol version 2: frame payloads compressed with the
/// `accelviz-store` codecs, stats extended with byte counters.
pub const V2: u16 = 2;
/// The newest protocol version this build speaks. Peers negotiate down
/// to the older of the two sides at `Hello` time.
pub const VERSION: u16 = V2;
/// Envelope header size in bytes (before the payload).
pub const HEADER_BYTES: u64 = 16;
/// Checksum trailer size in bytes (after the payload).
pub const CHECKSUM_BYTES: u64 = 8;
/// Largest payload a peer may declare: 1 GiB, comfortably above the
/// paper's ~100 MB frames but small enough to reject garbage lengths
/// before allocating.
pub const MAX_PAYLOAD: u64 = 1 << 30;

/// FNV-1a 64-bit hash — the envelope checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One framed message: its version, kind byte, and raw payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// The protocol version the envelope was framed with — payload
    /// decoding dispatches on it (a v2 `RESP_FRAME` is compressed).
    pub version: u16,
    /// Message kind (request kinds are `0x0_`, responses `0x8_`).
    pub kind: u8,
    /// The message payload, still encoded.
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Total bytes this envelope occupies on the wire.
    pub fn wire_bytes(&self) -> u64 {
        HEADER_BYTES + self.payload.len() as u64 + CHECKSUM_BYTES
    }
}

/// Writes one envelope at protocol version 1 — the framing every peer
/// speaks before (and unless) a `Hello` negotiates higher. Requests and
/// pre-v2 sessions stay byte-identical through this path.
pub fn write_envelope<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> Result<u64> {
    write_envelope_v(w, V1, kind, payload)
}

/// Writes one envelope at an explicit protocol version; returns the wire
/// bytes written.
pub fn write_envelope_v<W: Write>(
    w: &mut W,
    version: u16,
    kind: u8,
    payload: &[u8],
) -> Result<u64> {
    let mut header = [0u8; 16];
    header[0..4].copy_from_slice(&MAGIC);
    header[4..6].copy_from_slice(&version.to_le_bytes());
    header[6] = kind;
    header[7] = 0;
    header[8..16].copy_from_slice(&(payload.len() as u64).to_le_bytes());

    let mut hash = fnv1a64(&header);
    // Continue the FNV chain over the payload without concatenating.
    for &b in payload {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // fnv1a64(header ++ payload) computed incrementally above.
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.write_all(&hash.to_le_bytes())?;
    w.flush()?;
    Ok(HEADER_BYTES + payload.len() as u64 + CHECKSUM_BYTES)
}

/// Reads exactly `buf.len()` bytes, reporting a short stream as
/// [`ServeError::Truncated`] with how far it got.
fn read_exact_or_truncated<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(ServeError::Truncated {
                    needed: (buf.len() - filled) as u64,
                    got: filled as u64,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ServeError::Io(e)),
        }
    }
    Ok(())
}

/// Reads and validates one envelope: magic, version, length bound, and
/// checksum, in that order.
pub fn read_envelope<R: Read>(r: &mut R) -> Result<Envelope> {
    let mut header = [0u8; 16];
    read_exact_or_truncated(r, &mut header)?;

    let magic: [u8; 4] = header[0..4].try_into().unwrap();
    if magic != MAGIC {
        return Err(ServeError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if version == 0 || version > VERSION {
        return Err(ServeError::UnsupportedVersion(version));
    }
    let kind = header[6];
    let len = u64::from_le_bytes(header[8..16].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(ServeError::Corrupt(format!(
            "declared payload of {len} bytes exceeds the {MAX_PAYLOAD} limit"
        )));
    }

    let mut payload = vec![0u8; len as usize];
    read_exact_or_truncated(r, &mut payload)?;
    let mut trailer = [0u8; 8];
    read_exact_or_truncated(r, &mut trailer)?;
    let expected = u64::from_le_bytes(trailer);

    let mut actual = fnv1a64(&header);
    for &b in &payload {
        actual ^= b as u64;
        actual = actual.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if actual != expected {
        return Err(ServeError::ChecksumMismatch { expected, actual });
    }
    Ok(Envelope {
        version,
        kind,
        payload,
    })
}

/// Little-endian payload builder.
#[derive(Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// An empty payload.
    pub fn new() -> PayloadWriter {
        PayloadWriter::default()
    }

    /// The finished payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32`, little-endian.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64`, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends pre-encoded bytes verbatim (self-describing codec blocks).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Strict little-endian payload cursor: every overrun is
/// [`ServeError::Corrupt`].
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// A cursor over `buf`.
    pub fn new(buf: &'a [u8]) -> PayloadReader<'a> {
        PayloadReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(ServeError::Corrupt(format!(
                "payload overrun: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`, little-endian.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`, little-endian.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`, little-endian.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f32`, little-endian.
    pub fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads an `f64`, little-endian.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ServeError::Corrupt("string is not UTF-8".into()))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The unconsumed tail of the payload — handed to self-describing
    /// sub-decoders (the `accelviz-store` codec blocks) that report how
    /// far they read, which the caller then [`advance`]s past.
    ///
    /// [`advance`]: PayloadReader::advance
    pub fn rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// Skips `n` bytes a sub-decoder already consumed.
    pub fn advance(&mut self, n: usize) -> Result<()> {
        self.take(n).map(|_| ())
    }

    /// A `count` sanity bound: rejects lengths that could not fit in the
    /// remaining payload even at one byte per element.
    pub fn bounded_count(&mut self, elem_bytes: usize) -> Result<usize> {
        let count = self.u64()? as usize;
        let remaining = self.buf.len() - self.pos;
        if count
            .checked_mul(elem_bytes)
            .is_none_or(|total| total > remaining)
        {
            return Err(ServeError::Corrupt(format!(
                "declared count {count} x {elem_bytes} B exceeds remaining {remaining} B"
            )));
        }
        Ok(count)
    }

    /// Errors unless every payload byte was consumed.
    pub fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(ServeError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Phase-coordinate wire code, matching `store_io`'s on-disk codes.
pub(crate) fn coord_code(c: PhaseCoord) -> u8 {
    match c {
        PhaseCoord::X => 0,
        PhaseCoord::Px => 1,
        PhaseCoord::Y => 2,
        PhaseCoord::Py => 3,
        PhaseCoord::Z => 4,
        PhaseCoord::Pz => 5,
    }
}

pub(crate) fn coord_from_code(b: u8) -> Result<PhaseCoord> {
    Ok(match b {
        0 => PhaseCoord::X,
        1 => PhaseCoord::Px,
        2 => PhaseCoord::Y,
        3 => PhaseCoord::Py,
        4 => PhaseCoord::Z,
        5 => PhaseCoord::Pz,
        other => {
            return Err(ServeError::Corrupt(format!(
                "invalid phase-coord code {other}"
            )))
        }
    })
}

pub(crate) fn put_aabb(w: &mut PayloadWriter, b: &Aabb) {
    for v in [b.min, b.max] {
        w.put_f64(v.x);
        w.put_f64(v.y);
        w.put_f64(v.z);
    }
}

pub(crate) fn read_aabb(r: &mut PayloadReader<'_>) -> Result<Aabb> {
    let min = Vec3::new(r.f64()?, r.f64()?, r.f64()?);
    let max = Vec3::new(r.f64()?, r.f64()?, r.f64()?);
    Ok(Aabb { min, max })
}

/// Encodes a [`HybridFrame`] payload (kind `RESP_FRAME` carries one).
pub fn encode_frame(frame: &HybridFrame) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.put_u64(frame.step as u64);
    for c in frame.plot.coords {
        w.put_u8(coord_code(c));
    }
    put_aabb(&mut w, &frame.bounds);
    w.put_f64(frame.threshold);
    w.put_u64(frame.discarded);

    w.put_u64(frame.points.len() as u64);
    for p in &frame.points {
        for v in p.to_array() {
            w.put_f64(v);
        }
    }
    for &d in &frame.point_densities {
        w.put_f64(d);
    }

    let dims = frame.grid.dims();
    for d in dims {
        w.put_u64(d as u64);
    }
    put_aabb(&mut w, frame.grid.bounds());
    for &v in frame.grid.data() {
        w.put_f32(v);
    }
    w.into_bytes()
}

/// Decodes a [`HybridFrame`] payload. The result compares equal
/// (bit-identical fields) to the frame that was encoded.
pub fn decode_frame(payload: &[u8]) -> Result<HybridFrame> {
    let mut r = PayloadReader::new(payload);
    let step = r.u64()? as usize;
    let plot = PlotType {
        coords: [
            coord_from_code(r.u8()?)?,
            coord_from_code(r.u8()?)?,
            coord_from_code(r.u8()?)?,
        ],
    };
    let bounds = read_aabb(&mut r)?;
    let threshold = r.f64()?;
    let discarded = r.u64()?;

    // Points carry 48 B each plus an 8 B density; bound the count by the
    // point part alone so a hostile count fails fast.
    let n_points = r.bounded_count(48)?;
    let mut points = Vec::with_capacity(n_points);
    for _ in 0..n_points {
        let mut a = [0.0f64; 6];
        for v in &mut a {
            *v = r.f64()?;
        }
        points.push(Particle::from_array(a));
    }
    let mut point_densities = Vec::with_capacity(n_points);
    for _ in 0..n_points {
        point_densities.push(r.f64()?);
    }

    let dims = [r.u64()? as usize, r.u64()? as usize, r.u64()? as usize];
    let n_cells = dims[0]
        .checked_mul(dims[1])
        .and_then(|n| n.checked_mul(dims[2]))
        .ok_or_else(|| ServeError::Corrupt("grid dims overflow".into()))?;
    if dims.contains(&0) {
        return Err(ServeError::Corrupt("grid dims must be positive".into()));
    }
    let grid_bounds = read_aabb(&mut r)?;
    let remaining = r.buf.len() - r.pos;
    if n_cells * 4 != remaining {
        return Err(ServeError::Corrupt(format!(
            "grid of {n_cells} cells needs {} B, payload has {remaining}",
            n_cells * 4
        )));
    }
    let mut data = Vec::with_capacity(n_cells);
    for _ in 0..n_cells {
        data.push(r.f32()?);
    }
    r.finish()?;

    Ok(HybridFrame {
        step,
        plot,
        bounds,
        points,
        point_densities,
        grid: DensityGrid::from_raw(grid_bounds, dims, data),
        threshold,
        discarded,
    })
}

/// Encodes a [`HybridFrame`] as the AVWF v2 compressed payload.
///
/// Layout: the v1 header fields verbatim (step, plot codes, bounds,
/// threshold, discarded), then a point count followed by seven
/// self-describing codec blocks (six `f64` point columns and the point
/// densities), the grid dims and bounds, one `f32` codec block for the
/// grid cells, and finally the length and FNV-1a 64 checksum of the
/// frame's *v1 encoding*. The trailing checksum is over the decoded
/// content, not the compressed bytes: [`decode_frame_v2`] re-encodes
/// what it decoded and must land on these exact bytes, so any codec
/// defect is caught end-to-end rather than trusted.
///
/// Returns `(payload, raw_len)` where `raw_len` is the size the same
/// frame occupies under [`encode_frame`] — the numerator of the
/// compression ratio the server's stats report.
pub fn encode_frame_v2(frame: &HybridFrame) -> (Vec<u8>, u64) {
    let raw = encode_frame(frame);
    let raw_fnv = fnv1a64(&raw);

    let mut w = PayloadWriter::new();
    w.put_u64(frame.step as u64);
    for c in frame.plot.coords {
        w.put_u8(coord_code(c));
    }
    put_aabb(&mut w, &frame.bounds);
    w.put_f64(frame.threshold);
    w.put_u64(frame.discarded);

    let n = frame.points.len();
    w.put_u64(n as u64);
    let mut col = vec![0.0f64; n];
    for c in 0..6 {
        for (slot, p) in col.iter_mut().zip(&frame.points) {
            *slot = p.to_array()[c];
        }
        w.put_bytes(&encode_f64s(&col));
    }
    w.put_bytes(&encode_f64s(&frame.point_densities));

    let dims = frame.grid.dims();
    for d in dims {
        w.put_u64(d as u64);
    }
    put_aabb(&mut w, frame.grid.bounds());
    w.put_bytes(&encode_f32s(frame.grid.data()));

    w.put_u64(raw.len() as u64);
    w.put_u64(raw_fnv);
    (w.into_bytes(), raw.len() as u64)
}

/// Reads one codec block of `expect` `f64`s from the reader's tail.
pub(crate) fn read_f64_block(r: &mut PayloadReader<'_>, expect: usize) -> Result<Vec<f64>> {
    let mut pos = 0;
    let values =
        decode_f64s(r.rest(), &mut pos, expect).map_err(|e| ServeError::Corrupt(e.to_string()))?;
    r.advance(pos)?;
    Ok(values)
}

/// Decodes an AVWF v2 frame payload, then verifies it by re-encoding:
/// the decoded frame's v1 bytes must match the length and checksum the
/// encoder stamped into the trailer.
pub fn decode_frame_v2(payload: &[u8]) -> Result<HybridFrame> {
    let mut r = PayloadReader::new(payload);
    let step = r.u64()? as usize;
    let plot = PlotType {
        coords: [
            coord_from_code(r.u8()?)?,
            coord_from_code(r.u8()?)?,
            coord_from_code(r.u8()?)?,
        ],
    };
    let bounds = read_aabb(&mut r)?;
    let threshold = r.f64()?;
    let discarded = r.u64()?;

    // A compressed payload can be far smaller than the data it carries,
    // so the v1 remaining-bytes bound does not apply; cap counts against
    // what the *decoded* frame would occupy instead.
    let n_points = r.u64()?;
    if n_points > MAX_PAYLOAD / 48 {
        return Err(ServeError::Corrupt(format!(
            "declared point count {n_points} exceeds the decoded-payload limit"
        )));
    }
    let n_points = n_points as usize;
    let mut cols = Vec::with_capacity(6);
    for _ in 0..6 {
        cols.push(read_f64_block(&mut r, n_points)?);
    }
    let points: Vec<Particle> = (0..n_points)
        .map(|i| {
            Particle::from_array([
                cols[0][i], cols[1][i], cols[2][i], cols[3][i], cols[4][i], cols[5][i],
            ])
        })
        .collect();
    let point_densities = read_f64_block(&mut r, n_points)?;

    let dims = [r.u64()? as usize, r.u64()? as usize, r.u64()? as usize];
    let n_cells = dims[0]
        .checked_mul(dims[1])
        .and_then(|n| n.checked_mul(dims[2]))
        .ok_or_else(|| ServeError::Corrupt("grid dims overflow".into()))?;
    if dims.contains(&0) {
        return Err(ServeError::Corrupt("grid dims must be positive".into()));
    }
    if n_cells as u64 > MAX_PAYLOAD / 4 {
        return Err(ServeError::Corrupt(format!(
            "declared grid of {n_cells} cells exceeds the decoded-payload limit"
        )));
    }
    let grid_bounds = read_aabb(&mut r)?;
    let data = {
        let mut pos = 0;
        let values = decode_f32s(r.rest(), &mut pos, n_cells)
            .map_err(|e| ServeError::Corrupt(e.to_string()))?;
        r.advance(pos)?;
        values
    };
    let raw_len = r.u64()?;
    let raw_fnv = r.u64()?;
    r.finish()?;

    let frame = HybridFrame {
        step,
        plot,
        bounds,
        points,
        point_densities,
        grid: DensityGrid::from_raw(grid_bounds, dims, data),
        threshold,
        discarded,
    };
    let reencoded = encode_frame(&frame);
    if reencoded.len() as u64 != raw_len || fnv1a64(&reencoded) != raw_fnv {
        return Err(ServeError::Corrupt(format!(
            "decoded frame re-encodes to {} bytes (fnv {:#018x}), trailer promised {raw_len} \
             (fnv {raw_fnv:#018x})",
            reencoded.len(),
            fnv1a64(&reencoded)
        )));
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Known FNV-1a 64 values.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn envelope_roundtrips() {
        let mut buf = Vec::new();
        let n = write_envelope(&mut buf, 0x03, b"hello payload").unwrap();
        assert_eq!(n as usize, buf.len());
        let env = read_envelope(&mut buf.as_slice()).unwrap();
        assert_eq!(env.kind, 0x03);
        assert_eq!(env.payload, b"hello payload");
        assert_eq!(env.wire_bytes(), n);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let mut buf = Vec::new();
        write_envelope(&mut buf, 0x01, b"").unwrap();
        let env = read_envelope(&mut buf.as_slice()).unwrap();
        assert_eq!(env.kind, 0x01);
        assert!(env.payload.is_empty());
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        write_envelope(&mut buf, 0x01, b"x").unwrap();
        buf[8..16].copy_from_slice(&(u64::MAX).to_le_bytes());
        match read_envelope(&mut buf.as_slice()) {
            Err(ServeError::Corrupt(msg)) => assert!(msg.contains("limit"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn payload_reader_rejects_overrun_and_trailing() {
        let mut r = PayloadReader::new(&[1, 2, 3]);
        assert_eq!(r.u8().unwrap(), 1);
        assert!(matches!(r.u64(), Err(ServeError::Corrupt(_))));
        let r = PayloadReader::new(&[1, 2, 3]);
        assert!(matches!(r.finish(), Err(ServeError::Corrupt(_))));
    }

    #[test]
    fn strings_roundtrip() {
        let mut w = PayloadWriter::new();
        w.put_str("x–px–y"); // non-ASCII on purpose
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.str().unwrap(), "x–px–y");
        r.finish().unwrap();
    }

    #[test]
    fn both_live_versions_read_back_and_report_themselves() {
        for version in [V1, V2] {
            let mut buf = Vec::new();
            write_envelope_v(&mut buf, version, 0x03, b"payload").unwrap();
            let env = read_envelope(&mut buf.as_slice()).unwrap();
            assert_eq!(env.version, version);
            assert_eq!(env.payload, b"payload");
        }
        // The legacy writer still frames at v1: requests and pre-v2
        // sessions are byte-identical to what they always were.
        let mut buf = Vec::new();
        write_envelope(&mut buf, 0x01, b"x").unwrap();
        assert_eq!(u16::from_le_bytes(buf[4..6].try_into().unwrap()), V1);
    }

    #[test]
    fn version_zero_and_future_versions_are_rejected() {
        for bad in [0u16, VERSION + 1, 99] {
            let mut buf = Vec::new();
            write_envelope(&mut buf, 0x01, b"x").unwrap();
            buf[4..6].copy_from_slice(&bad.to_le_bytes());
            match read_envelope(&mut buf.as_slice()) {
                Err(ServeError::UnsupportedVersion(v)) => assert_eq!(v, bad),
                other => panic!("version {bad} gave {other:?}"),
            }
        }
    }

    fn sample_frame(n_points: usize) -> HybridFrame {
        let bounds = Aabb {
            min: Vec3::new(-1.0, -2.0, -3.0),
            max: Vec3::new(1.0, 2.0, 3.0),
        };
        let points: Vec<Particle> = (0..n_points)
            .map(|i| {
                let t = i as f64 * 0.37;
                Particle::from_array([t.sin(), t.cos() * 1e-3, -t.sin(), t * 1e-4, t, -t])
            })
            .collect();
        let point_densities: Vec<f64> = (0..n_points).map(|i| 1.0 + i as f64).collect();
        let dims = [8, 8, 8];
        // A mostly-zero count grid, like real binned density volumes.
        let mut cells = vec![0.0f32; 512];
        for (i, c) in cells.iter_mut().enumerate().step_by(17) {
            *c = (i % 40) as f32;
        }
        HybridFrame {
            step: 11,
            plot: PlotType::X_PX_Y,
            bounds,
            points,
            point_densities,
            grid: DensityGrid::from_raw(bounds, dims, cells),
            threshold: 2.5,
            discarded: 940,
        }
    }

    #[test]
    fn v2_frames_roundtrip_bit_identically_and_compress() {
        let frame = sample_frame(100);
        let (payload, raw_len) = encode_frame_v2(&frame);
        assert_eq!(raw_len as usize, encode_frame(&frame).len());
        assert!(
            (payload.len() as u64) < raw_len,
            "v2 payload of {} B did not beat the raw {} B",
            payload.len(),
            raw_len
        );
        let decoded = decode_frame_v2(&payload).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn v2_empty_frame_roundtrips() {
        let mut frame = sample_frame(0);
        frame.grid = DensityGrid::from_raw(frame.bounds, [1, 1, 1], vec![0.0]);
        let (payload, _) = encode_frame_v2(&frame);
        assert_eq!(decode_frame_v2(&payload).unwrap(), frame);
    }

    #[test]
    fn v2_bitflips_are_caught_by_the_decoded_checksum() {
        // The envelope checksum already rejects wire damage; this drives
        // the *inner* guarantee — a flipped payload byte must never
        // produce a silently wrong frame even when handed straight to the
        // payload decoder.
        let (payload, _) = encode_frame_v2(&sample_frame(64));
        for at in [
            0,
            9,
            80,
            payload.len() / 2,
            payload.len() - 9,
            payload.len() - 1,
        ] {
            let mut bad = payload.clone();
            bad[at] ^= 0x10;
            assert!(
                decode_frame_v2(&bad).is_err(),
                "flip at {at} decoded silently"
            );
        }
    }

    #[test]
    fn v2_truncation_is_structured() {
        let (payload, _) = encode_frame_v2(&sample_frame(32));
        for keep in [0, 1, 8, 60, payload.len() / 2, payload.len() - 1] {
            match decode_frame_v2(&payload[..keep]) {
                Err(ServeError::Corrupt(_)) => {}
                other => panic!("cut at {keep} gave {other:?}"),
            }
        }
    }

    #[test]
    fn v2_rejects_implausible_counts_before_allocating() {
        let (payload, _) = encode_frame_v2(&sample_frame(4));
        let mut bad = payload.clone();
        // The point count sits after step(8) + plot(3) + bounds(48) +
        // threshold(8) + discarded(8) = 75 bytes.
        bad[75..83].copy_from_slice(&u64::MAX.to_le_bytes());
        match decode_frame_v2(&bad) {
            Err(ServeError::Corrupt(msg)) => assert!(msg.contains("point count"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
